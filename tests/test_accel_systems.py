"""Integration tests across the six accelerator systems."""

import pytest

from repro.accel.pipeline import PipelineConfig
from repro.accel.systems import SYSTEM_ORDER, SYSTEMS, make_system
from repro.graph.generators import rmat

CACHE_BYTES = 2048
MSHR_KW = dict(mshr_entries=32, fg_tag_bits=4)


@pytest.fixture(scope="module")
def graph():
    return rmat(2048, avg_degree=8.0, seed=13, name="itest")


def run(system_name, graph, algorithm="PR", iters=2, **kwargs):
    defaults = {"onchip_bytes": CACHE_BYTES}
    if system_name in ("Piccolo", "NMP"):
        defaults.update(MSHR_KW)
    defaults.update(kwargs)
    system = make_system(system_name, **defaults)
    return system.run(graph, algorithm, max_iterations=iters)


class TestAllSystemsRun:
    @pytest.mark.parametrize("system", SYSTEM_ORDER)
    def test_pagerank_completes(self, graph, system):
        result = run(system, graph)
        assert result.total_ns > 0
        assert result.iterations == 2
        assert result.edges_processed == 2 * graph.num_edges

    @pytest.mark.parametrize("system", ("GraphDyns (Cache)", "Piccolo"))
    @pytest.mark.parametrize("algorithm", ("BFS", "CC", "SSSP", "SSWP"))
    def test_active_vertex_algorithms(self, graph, system, algorithm):
        result = run(system, graph, algorithm=algorithm, iters=10)
        assert result.total_ns > 0
        assert result.iterations >= 1

    def test_unknown_system_rejected(self):
        with pytest.raises(KeyError, match="unknown system"):
            make_system("TPU")


class TestResultInvariants:
    def test_total_at_least_memory_and_compute(self, graph):
        for system in SYSTEM_ORDER:
            r = run(system, graph)
            assert r.total_ns >= r.memory_ns - 1e-6
            assert r.total_ns >= r.compute_ns - 1e-6

    def test_spm_systems_have_no_cache_traffic(self, graph):
        for system in ("Graphicionado", "GraphDyns (SPM)"):
            r = run(system, graph)
            assert r.cache_accesses == 0
            # Streams are 100 % useful modulo per-phase burst rounding.
            assert r.useful_fraction == pytest.approx(1.0, abs=0.01)

    def test_cache_systems_track_accesses(self, graph):
        for system in ("GraphDyns (Cache)", "NMP", "Piccolo"):
            r = run(system, graph)
            assert r.cache_accesses > 0
            assert 0.0 < r.cache_hit_rate < 1.0

    def test_piccolo_issues_fim_ops(self, graph):
        r = run("Piccolo", graph)
        assert r.dram.fim_gathers > 0
        assert r.mshr_ops > 0

    def test_conventional_issues_no_fim_ops(self, graph):
        r = run("GraphDyns (Cache)", graph)
        assert r.dram.fim_gathers == 0
        assert r.dram.fim_scatters == 0

    def test_pim_uses_internal_words(self, graph):
        r = run("PIM", graph)
        assert r.dram.internal_words >= graph.num_edges


class TestPaperShape:
    """First-order qualitative claims of the evaluation."""

    def test_piccolo_fewer_transactions_than_baseline(self, graph):
        base = run("GraphDyns (Cache)", graph, tile_scale=2)
        picc = run("Piccolo", graph, tile_scale=8)
        base_tx = base.dram.read_bursts + base.dram.write_bursts
        picc_tx = picc.dram.read_bursts + picc.dram.write_bursts
        assert picc_tx < base_tx  # Fig. 12: fewer off-chip transactions

    def test_piccolo_faster_than_baseline(self, graph):
        base = run("GraphDyns (Cache)", graph, tile_scale=2)
        picc = run("Piccolo", graph, tile_scale=8)
        assert picc.total_ns < base.total_ns  # Fig. 10

    def test_piccolo_beats_nmp(self, graph):
        nmp = run("NMP", graph, tile_scale=8)
        picc = run("Piccolo", graph, tile_scale=8)
        assert picc.total_ns <= nmp.total_ns * 1.05  # Fig. 10 ordering

    def test_piccolo_tolerates_larger_tiles(self, graph):
        """Fig. 17: the baseline prefers small tiles, Piccolo large ones."""
        base_small = run("GraphDyns (Cache)", graph, tile_scale=1)
        base_large = run("GraphDyns (Cache)", graph, tile_scale=16)
        picc_small = run("Piccolo", graph, tile_scale=1)
        picc_large = run("Piccolo", graph, tile_scale=16)
        base_ratio = base_large.total_ns / base_small.total_ns
        picc_ratio = picc_large.total_ns / picc_small.total_ns
        assert picc_ratio < base_ratio

    def test_prefetch_disabled_slows_down(self, graph):
        """Fig. 20b."""
        with_pf = run("Piccolo", graph)
        without = run(
            "Piccolo", graph, pipeline=PipelineConfig(prefetch=False)
        )
        assert without.total_ns > with_pf.total_ns

    def test_useful_fraction_improves_with_piccolo(self, graph):
        base = run("GraphDyns (Cache)", graph)
        picc = run("Piccolo", graph)
        assert picc.useful_fraction > base.useful_fraction


class TestTileWidthControl:
    def test_explicit_width_overrides_scale(self, graph):
        system = make_system(
            "Piccolo", onchip_bytes=CACHE_BYTES, **MSHR_KW
        )
        r = system.run(graph, "PR", max_iterations=1, tile_width=500)
        assert r.tile_width == 500

    def test_perfect_tiling_width(self, graph):
        r = run("Graphicionado", graph)
        assert r.tile_width == CACHE_BYTES // 8

    def test_pim_never_tiles(self, graph):
        r = run("PIM", graph, tile_scale=4)
        assert r.num_tiles == 1
