"""Tests for the functional FIM device: bit-exact gather/scatter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fim import FimBank, FimChip, FimCommandError
from repro.dram.spec import DEVICES

SPEC = DEVICES["DDR4_2400_x16"]


@pytest.fixture
def bank():
    b = FimBank(SPEC, rows=8)
    for r in range(8):
        b.cells[r] = np.arange(SPEC.row_words, dtype=np.uint64) + r * 10_000
    return b


class TestBankBasics:
    def test_activate_loads_row_buffer(self, bank):
        bank.activate(3)
        assert bank.read_word(5) == 30_005

    def test_precharge_writes_back(self, bank):
        bank.activate(2)
        bank.write_word(7, 999)
        bank.precharge()
        assert bank.cells[2][7] == 999

    def test_double_activate_rejected(self, bank):
        bank.activate(0)
        with pytest.raises(FimCommandError):
            bank.activate(1)

    def test_read_without_open_row_rejected(self, bank):
        with pytest.raises(FimCommandError):
            bank.read_word(0)

    def test_row_out_of_range(self, bank):
        with pytest.raises(FimCommandError):
            bank.activate(100)


class TestGather:
    def test_gather_picks_offsets(self, bank):
        bank.activate(1)
        bank.write_offset_buffer([0, 5, 9, 1000, 3, 2, 1, 7])
        bank.gather_execute()
        got = bank.read_data_buffer()
        assert got == [10_000, 10_005, 10_009, 11_000, 10_003, 10_002,
                       10_001, 10_007]

    def test_partial_gather(self, bank):
        bank.activate(0)
        bank.write_offset_buffer([42, 17])
        bank.gather_execute()
        assert bank.read_data_buffer() == [42, 17]

    def test_gather_requires_offsets(self, bank):
        bank.activate(0)
        with pytest.raises(FimCommandError):
            bank.gather_execute()

    def test_gather_requires_open_row(self, bank):
        bank.write_offset_buffer([1])
        with pytest.raises(FimCommandError):
            bank.gather_execute()

    def test_offset_out_of_row_rejected(self, bank):
        bank.activate(0)
        with pytest.raises(FimCommandError):
            bank.write_offset_buffer([SPEC.row_words])

    def test_too_many_offsets_rejected(self, bank):
        bank.activate(0)
        with pytest.raises(FimCommandError):
            bank.write_offset_buffer(list(range(9)))

    def test_empty_data_buffer_read_rejected(self, bank):
        bank.activate(0)
        with pytest.raises(FimCommandError):
            bank.read_data_buffer()


class TestScatter:
    def test_scatter_writes_offsets(self, bank):
        bank.activate(4)
        bank.write_offset_buffer([10, 20, 30])
        bank.write_data_buffer([111, 222, 333])
        bank.scatter_execute()
        assert bank.read_word(10) == 111
        assert bank.read_word(20) == 222
        assert bank.read_word(30) == 333

    def test_scatter_survives_precharge(self, bank):
        bank.activate(4)
        bank.write_offset_buffer([8])
        bank.write_data_buffer([12345])
        bank.scatter_execute()
        bank.precharge()
        assert bank.cells[4][8] == 12345

    def test_scatter_without_data_rejected(self, bank):
        bank.activate(0)
        bank.write_offset_buffer([1, 2, 3])
        bank.write_data_buffer([5])
        with pytest.raises(FimCommandError):
            bank.scatter_execute()


class TestChipHelpers:
    def test_gather_scatter_roundtrip(self):
        chip = FimChip(SPEC, rows=4)
        offsets = [3, 99, 7, 512, 0, 1, 2, 64]
        values = [v * 11 for v in range(8)]
        chip.scatter(2, 1, offsets, values)
        assert chip.gather(2, 1, offsets) == values

    def test_gather_switches_rows(self):
        chip = FimChip(SPEC, rows=4)
        chip.scatter(0, 0, [5], [1])
        chip.scatter(0, 3, [5], [2])
        assert chip.gather(0, 0, [5]) == [1]
        assert chip.gather(0, 3, [5]) == [2]

    def test_mismatched_scatter_args(self):
        chip = FimChip(SPEC, rows=4)
        with pytest.raises(FimCommandError):
            chip.scatter(0, 0, [1, 2], [1])


@settings(max_examples=100, deadline=None)
@given(
    offsets=st.lists(
        st.integers(min_value=0, max_value=SPEC.row_words - 1),
        min_size=1, max_size=8, unique=True,
    ),
    row=st.integers(min_value=0, max_value=3),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_gather_matches_direct_read(offsets, row, seed):
    """Property: gather returns exactly the row words at the offsets."""
    rng = np.random.default_rng(seed)
    bank = FimBank(SPEC, rows=4)
    bank.cells[row] = rng.integers(
        0, 1 << 63, size=SPEC.row_words, dtype=np.uint64
    )
    bank.activate(row)
    bank.write_offset_buffer(offsets)
    bank.gather_execute()
    expected = [int(bank.cells[row][o]) for o in offsets]
    assert bank.read_data_buffer() == expected


@settings(max_examples=100, deadline=None)
@given(
    offsets=st.lists(
        st.integers(min_value=0, max_value=SPEC.row_words - 1),
        min_size=1, max_size=8, unique=True,
    ),
    values=st.lists(
        st.integers(min_value=0, max_value=(1 << 63) - 1),
        min_size=8, max_size=8,
    ),
)
def test_scatter_then_gather_roundtrip(offsets, values):
    """Property: scatter followed by gather is the identity."""
    chip = FimChip(SPEC, rows=2)
    vals = values[: len(offsets)]
    chip.scatter(1, 0, offsets, vals)
    assert chip.gather(1, 0, offsets) == vals
