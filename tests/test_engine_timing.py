"""Timing-table derivation for the command-level engine."""

import pytest

from repro.dram.engine.timing import TimingTable, timing_from_spec
from repro.dram.spec import DEVICES


@pytest.fixture(scope="module")
def ddr4():
    return timing_from_spec(DEVICES["DDR4_2400_x16"])


class TestDDR4Derivation:
    def test_clock_period(self, ddr4):
        assert ddr4.tck_ns == pytest.approx(2 / 2.4)

    def test_core_timings_in_clocks(self, ddr4):
        assert ddr4.tRCD == 16
        assert ddr4.tRP == 16
        assert ddr4.tCL == 17
        assert ddr4.tCCD_L == 6

    def test_burst_length_bl8(self, ddr4):
        # 64 B over an 8 B DDR bus: 8 beats = 4 clocks.
        assert ddr4.tBL == 4

    def test_ccd_s_is_burst_floor(self, ddr4):
        assert ddr4.tCCD_S == 4
        assert ddr4.tCCD_S <= ddr4.tCCD_L

    def test_bank_groups(self, ddr4):
        assert ddr4.bank_groups == 4
        assert ddr4.banks_per_group == 2
        assert ddr4.banks_per_rank == 8

    def test_trc_is_ras_plus_rp(self, ddr4):
        assert ddr4.tRC == ddr4.tRAS + ddr4.tRP

    def test_refresh_parameters(self, ddr4):
        # 7.8 us every tREFI, 350 ns tRFC at 1.2 GHz.
        assert ddr4.tREFI == pytest.approx(9360, abs=2)
        assert ddr4.tRFC == pytest.approx(420, abs=2)

    def test_fim_window_feasibility(self, ddr4):
        # Sec. VI: 8 x tCCD_L (48 clocks = 40 ns) must fit inside
        # tWR + tRP + tRCD (50 clocks = 41.7 ns) on DDR4-2400.
        window = ddr4.tWR + ddr4.tRP + ddr4.tRCD
        assert 8 * ddr4.tCCD_L <= window


class TestHelpers:
    def test_same_group(self, ddr4):
        assert ddr4.same_group(0, 1)
        assert not ddr4.same_group(0, 2)

    def test_ccd_selector(self, ddr4):
        assert ddr4.ccd(same_group=True) == ddr4.tCCD_L
        assert ddr4.ccd(same_group=False) == ddr4.tCCD_S

    def test_rrd_selector(self, ddr4):
        assert ddr4.rrd(True) == ddr4.tRRD_L
        assert ddr4.rrd(False) == ddr4.tRRD_S

    def test_wtr_selector(self, ddr4):
        assert ddr4.wtr(True) == ddr4.tWTR_L
        assert ddr4.wtr(False) == ddr4.tWTR_S

    def test_ns_cycle_roundtrip(self, ddr4):
        assert ddr4.ns(ddr4.cycles(100.0)) >= 100.0 - 1e-9
        assert ddr4.cycles(0.0) == 0

    def test_cycles_rounds_up(self, ddr4):
        one_and_a_bit = ddr4.tck_ns * 1.01
        assert ddr4.cycles(one_and_a_bit) == 2


class TestAllGrades:
    @pytest.mark.parametrize("name", sorted(DEVICES))
    def test_derivable_and_valid(self, name):
        table = timing_from_spec(DEVICES[name])
        table.validate()
        assert table.banks_per_rank == DEVICES[name].banks_per_rank

    @pytest.mark.parametrize("name", sorted(DEVICES))
    def test_burst_matches_spec(self, name):
        spec = DEVICES[name]
        table = timing_from_spec(spec)
        beats = spec.burst_bytes // spec.bus_bytes
        assert table.tBL == max(1, beats // 2)

    def test_hbm_narrow_burst(self):
        table = timing_from_spec(DEVICES["HBM2_2000"])
        # 32 B over a 16 B bus: 2 beats = 1 clock.
        assert table.tBL == 1


class TestValidation:
    def _table(self, **overrides):
        base = dict(
            name="t", tck_ns=1.0, bank_groups=2, banks_per_group=2,
            tRCD=10, tRP=10, tRAS=25, tCL=10, tCWL=8, tBL=4,
            tCCD_S=4, tCCD_L=6, tRRD_S=4, tRRD_L=6, tFAW=20,
            tWR=12, tWTR_S=2, tWTR_L=6, tRTP=6, tREFI=5000, tRFC=300,
        )
        base.update(overrides)
        return TimingTable(**base)

    def test_valid_table_passes(self):
        self._table().validate()

    def test_ccd_ordering_enforced(self):
        with pytest.raises(ValueError, match="tCCD_S"):
            self._table(tCCD_S=8).validate()

    def test_rrd_ordering_enforced(self):
        with pytest.raises(ValueError, match="tRRD_S"):
            self._table(tRRD_S=8).validate()

    def test_ras_covers_rcd(self):
        with pytest.raises(ValueError, match="tRAS"):
            self._table(tRAS=5).validate()

    def test_faw_covers_rrd(self):
        with pytest.raises(ValueError, match="tFAW"):
            self._table(tFAW=2).validate()

    def test_positive_clock(self):
        with pytest.raises(ValueError, match="tck_ns"):
            self._table(tck_ns=0.0).validate()

    def test_unknown_family_rejected(self):
        import dataclasses

        spec = dataclasses.replace(DEVICES["DDR4_2400_x16"], family="DDR5")
        with pytest.raises(ValueError, match="DDR5"):
            timing_from_spec(spec)
