"""Unit tests for the CSR graph structure."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph


class TestConstruction:
    def test_from_edges_basic(self, tiny_graph):
        assert tiny_graph.num_vertices == 6
        assert tiny_graph.num_edges == 7
        assert tiny_graph.average_degree == pytest.approx(7 / 6)

    def test_neighbors_sorted_by_destination(self, tiny_graph):
        assert tiny_graph.neighbors(0).tolist() == [1, 2]
        assert tiny_graph.neighbors(3).tolist() == [4]
        assert tiny_graph.neighbors(5).tolist() == [0]

    def test_weights_follow_edges(self, tiny_graph):
        assert tiny_graph.edge_weights(0).tolist() == [1, 2]

    def test_out_degrees(self, tiny_graph):
        assert tiny_graph.out_degrees().tolist() == [2, 1, 1, 1, 1, 1]

    def test_dedupe_removes_parallel_edges(self):
        g = CSRGraph.from_edges(
            3, np.array([0, 0, 0]), np.array([1, 1, 2]), dedupe=True
        )
        assert g.num_edges == 2

    def test_dedupe_off_keeps_parallel_edges(self):
        g = CSRGraph.from_edges(
            3, np.array([0, 0]), np.array([1, 1]), dedupe=False
        )
        assert g.num_edges == 2

    def test_empty_graph(self):
        g = CSRGraph.from_edges(4, np.array([]), np.array([]))
        assert g.num_vertices == 4
        assert g.num_edges == 0
        assert g.average_degree == 0.0

    def test_out_of_range_source_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, np.array([5]), np.array([0]))

    def test_out_of_range_destination_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, np.array([0]), np.array([7]))

    def test_invalid_indptr_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(
                indptr=np.array([0, 2, 1]),
                indices=np.array([0, 0]),
                weights=np.zeros(2),
            )

    def test_indptr_must_match_edges(self):
        with pytest.raises(ValueError):
            CSRGraph(
                indptr=np.array([0, 3]),
                indices=np.array([0]),
                weights=np.zeros(1),
            )


class TestTransforms:
    def test_edge_array_roundtrip(self, small_random_graph):
        g = small_random_graph
        src, dst, w = g.edge_array()
        g2 = CSRGraph.from_edges(g.num_vertices, src, dst, w, dedupe=False)
        assert np.array_equal(g.indptr, g2.indptr)
        assert np.array_equal(g.indices, g2.indices)
        assert np.array_equal(g.weights, g2.weights)

    def test_reversed_preserves_edge_count(self, small_random_graph):
        rev = small_random_graph.reversed()
        assert rev.num_edges == small_random_graph.num_edges

    def test_reversed_twice_is_identity(self, tiny_graph):
        back = tiny_graph.reversed().reversed()
        assert np.array_equal(back.indptr, tiny_graph.indptr)
        assert np.array_equal(back.indices, tiny_graph.indices)

    def test_relabel_identity(self, tiny_graph):
        same = tiny_graph.relabel(np.arange(6))
        assert np.array_equal(same.indices, tiny_graph.indices)

    def test_relabel_preserves_degree_multiset(self, small_random_graph):
        rng = np.random.default_rng(0)
        perm = rng.permutation(small_random_graph.num_vertices)
        shuffled = small_random_graph.relabel(perm)
        assert sorted(shuffled.out_degrees().tolist()) == sorted(
            small_random_graph.out_degrees().tolist()
        )

    def test_relabel_rejects_non_bijection(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.relabel(np.zeros(6, dtype=np.int64))

    def test_with_weights(self, tiny_graph):
        w = np.full(7, 9)
        g = tiny_graph.with_weights(w)
        assert g.edge_weights(0).tolist() == [9, 9]
