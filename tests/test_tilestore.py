"""Disk-backed tile store: differential, hygiene, and memory-bound tests.

The contract of :mod:`repro.graph.tilestore` is *bit-identity*: a
disk-backed :class:`~repro.graph.partition.TiledCSR` must produce
tiles whose every array (src/dst/weight/src_unique/src_edge_start,
ordering and dtype included) equals the in-memory global-argsort
build's.  The hypothesis suite below drives random graphs through both
builds across tile widths (non-divisible, width >= |V|), empty tiles,
and with_weights on/off.

The store's hygiene contract is "atomic or missing": failed builds
leave no spill buckets or partial stores, stale partials from a killed
builder are swept, and a store with missing/short arrays reads as
absent and is rebuilt.  The build's transient memory must stay
O(bucket), not O(edges) -- pinned with tracemalloc (which sees NumPy
heap allocations but not memmap pages, exactly the split we want).
"""

import json
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import tilestore
from repro.graph.csr import CSRGraph
from repro.graph.generators import erdos_renyi
from repro.graph.partition import TiledCSR

TILE_FIELDS = ("src", "dst", "weight", "src_unique", "src_edge_start")


def assert_tilings_identical(mem: TiledCSR, dsk: TiledCSR) -> None:
    assert len(mem) == len(dsk)
    for a, b in zip(mem, dsk):
        assert (a.index, a.dst_lo, a.dst_hi) == (b.index, b.dst_lo, b.dst_hi)
        for name in TILE_FIELDS:
            x, y = getattr(a, name), getattr(b, name)
            assert x.dtype == y.dtype, (name, x.dtype, y.dtype)
            assert np.array_equal(x, y), name


@st.composite
def graphs(draw):
    n_v = draw(st.integers(min_value=1, max_value=48))
    n_e = draw(st.integers(min_value=0, max_value=300))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n_v, n_e)
    dst = rng.integers(0, n_v, n_e)
    weights = rng.integers(0, 1_000, n_e)
    return CSRGraph.from_edges(n_v, src, dst, weights, name="hyp")


class TestDifferentialBitIdentity:
    @settings(max_examples=60, deadline=None)
    @given(
        graph=graphs(),
        width_frac=st.floats(min_value=0.01, max_value=2.0),
        with_weights=st.booleans(),
        bucket_edges=st.sampled_from([1, 3, 17, 64, None]),
    )
    def test_disk_tiles_match_memory_build(
        self, graph, width_frac, with_weights, bucket_edges
    ):
        # widths span sub-vertex fractions through >= num_vertices
        # (incl. non-divisible widths); bucket_edges=1 forces a spill
        # append per edge, the adversarial chunking extreme
        width = max(1, int(graph.num_vertices * width_frac))
        with tempfile.TemporaryDirectory() as root:
            mem = TiledCSR(graph, width, with_weights=with_weights)
            dsk = TiledCSR(
                graph,
                width,
                with_weights=with_weights,
                backing="disk",
                store_root=root,
                bucket_edges=bucket_edges,
            )
            assert_tilings_identical(mem, dsk)
            assert dsk.total_edges() == graph.num_edges

    def test_empty_tiles_and_isolated_vertices(self, tmp_path):
        # all edges land in tile 0 of 8: tiles 1..7 are empty
        src = np.array([4, 9, 15])
        dst = np.array([0, 1, 0])
        graph = CSRGraph.from_edges(16, src, dst, name="sparse")
        mem = TiledCSR(graph, 2)
        dsk = TiledCSR(graph, 2, backing="disk", store_root=tmp_path)
        assert len(dsk) == 8
        assert_tilings_identical(mem, dsk)
        assert dsk[5].num_edges == 0
        assert dsk[5].src_edge_start.tolist() == [0]

    def test_weightless_tiles_share_zero_view(self, tmp_path, tiny_graph):
        dsk = TiledCSR(
            tiny_graph, 2, with_weights=False, backing="disk",
            store_root=tmp_path,
        )
        for tile in dsk:
            assert tile.weight.shape == tile.src.shape
            assert not tile.weight.any()

    def test_memmap_views_returned(self, tmp_path, medium_power_law_graph):
        dsk = TiledCSR(
            medium_power_law_graph, 128, backing="disk", store_root=tmp_path
        )
        tile = dsk[0]
        assert isinstance(tile.src, np.memmap) or isinstance(
            tile.src.base, np.memmap
        )

    def test_invalid_backing_rejected(self, tiny_graph):
        with pytest.raises(ValueError, match="backing"):
            TiledCSR(tiny_graph, 2, backing="tape")


class TestStoreAttachAndValidation:
    def test_second_build_attaches_without_rebuilding(
        self, tmp_path, monkeypatch, medium_power_law_graph
    ):
        TiledCSR(
            medium_power_law_graph, 128, backing="disk", store_root=tmp_path
        )

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("store should have been attached, not built")

        monkeypatch.setattr(tilestore, "_external_sort_build", boom)
        dsk = TiledCSR(
            medium_power_law_graph, 128, backing="disk", store_root=tmp_path
        )
        assert dsk.total_edges() == medium_power_law_graph.num_edges

    def test_distinct_configs_get_distinct_stores(
        self, tmp_path, medium_power_law_graph
    ):
        TiledCSR(
            medium_power_law_graph, 128, backing="disk", store_root=tmp_path
        )
        TiledCSR(
            medium_power_law_graph, 256, backing="disk", store_root=tmp_path
        )
        TiledCSR(
            medium_power_law_graph, 128, with_weights=False, backing="disk",
            store_root=tmp_path,
        )
        assert len(list(tmp_path.glob("tiles-*"))) == 3

    def _store_dir(self, root):
        (store,) = root.glob("tiles-*")
        return store

    def test_short_array_reads_as_absent_and_rebuilds(
        self, tmp_path, medium_power_law_graph
    ):
        mem = TiledCSR(medium_power_law_graph, 128)
        TiledCSR(
            medium_power_law_graph, 128, backing="disk", store_root=tmp_path
        )
        store = self._store_dir(tmp_path)
        src_npy = store / "src.npy"
        src_npy.write_bytes(src_npy.read_bytes()[:-16])  # truncate tail
        assert not tilestore.store_valid(store)
        dsk = TiledCSR(
            medium_power_law_graph, 128, backing="disk", store_root=tmp_path
        )
        assert_tilings_identical(mem, dsk)

    def test_missing_array_reads_as_absent(
        self, tmp_path, medium_power_law_graph
    ):
        TiledCSR(
            medium_power_law_graph, 128, backing="disk", store_root=tmp_path
        )
        store = self._store_dir(tmp_path)
        assert tilestore.store_valid(store)
        (store / "src_unique.npy").unlink()
        assert not tilestore.store_valid(store)

    def test_corrupt_manifest_reads_as_absent(
        self, tmp_path, medium_power_law_graph
    ):
        TiledCSR(
            medium_power_law_graph, 128, backing="disk", store_root=tmp_path
        )
        store = self._store_dir(tmp_path)
        (store / "meta.json").write_text("{not json")
        assert not tilestore.store_valid(store)

    def test_wrong_manifest_length_reads_as_absent(
        self, tmp_path, medium_power_law_graph
    ):
        TiledCSR(
            medium_power_law_graph, 128, backing="disk", store_root=tmp_path
        )
        store = self._store_dir(tmp_path)
        meta = json.loads((store / "meta.json").read_text())
        meta["arrays"]["dst"] += 1
        (store / "meta.json").write_text(json.dumps(meta))
        assert not tilestore.store_valid(store)


class TestSpillHygiene:
    def test_failed_build_leaves_no_partials(
        self, tmp_path, monkeypatch, medium_power_law_graph
    ):
        def boom(*args, **kwargs):
            raise RuntimeError("injected sort failure")

        monkeypatch.setattr(np, "lexsort", boom)
        with pytest.raises(RuntimeError, match="injected"):
            TiledCSR(
                medium_power_law_graph, 128, backing="disk",
                store_root=tmp_path,
            )
        # no store, no tmp build dir, no spill dir survives the failure
        assert list(tmp_path.iterdir()) == []

    def test_stale_partials_from_killed_builder_swept(
        self, tmp_path, medium_power_law_graph
    ):
        import subprocess

        # a pid guaranteed dead: a subprocess we already reaped
        proc = subprocess.Popen(["true"])
        proc.wait()
        digest = tilestore.store_digest(medium_power_law_graph, 128, True)
        stale = tmp_path / f".tiles-{digest}.tmp.{proc.pid}"
        stale.mkdir()
        (stale / "src.npy").write_bytes(b"partial")
        dsk = TiledCSR(
            medium_power_law_graph, 128, backing="disk", store_root=tmp_path
        )
        assert not stale.exists()
        assert dsk.total_edges() == medium_power_law_graph.num_edges

    def test_live_builders_partials_left_alone(
        self, tmp_path, medium_power_law_graph
    ):
        import os

        # partials owned by a live pid (ours) belong to a concurrent
        # builder racing us to os.replace: the sweep must not touch them
        digest = tilestore.store_digest(medium_power_law_graph, 128, True)
        live = tmp_path / f".tiles-{digest}.spill.{os.getpid()}.x1y2"
        live.mkdir()
        (live / "bucket_0.bin").write_bytes(b"\x00" * 48)
        dsk = TiledCSR(
            medium_power_law_graph, 128, backing="disk", store_root=tmp_path
        )
        assert live.exists()
        assert dsk.total_edges() == medium_power_law_graph.num_edges

    def test_invalid_store_remnant_is_replaced(
        self, tmp_path, medium_power_law_graph
    ):
        digest = tilestore.store_digest(medium_power_law_graph, 128, True)
        remnant = tmp_path / f"tiles-{digest}"
        remnant.mkdir()
        (remnant / "junk.bin").write_bytes(b"\x00")
        mem = TiledCSR(medium_power_law_graph, 128)
        dsk = TiledCSR(
            medium_power_law_graph, 128, backing="disk", store_root=tmp_path
        )
        assert_tilings_identical(mem, dsk)


class TestDefaultRoot:
    def test_env_var_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TILE_STORE", str(tmp_path / "env"))
        assert tilestore.default_root() == tmp_path / "env"

    def test_set_default_root_round_trips(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TILE_STORE", raising=False)
        previous = tilestore.set_default_root(tmp_path / "shared")
        try:
            assert tilestore.default_root() == tmp_path / "shared"
        finally:
            tilestore.set_default_root(previous)


class TestBuildMemoryBound:
    def test_transient_memory_is_o_bucket_not_o_edges(self, tmp_path):
        """The external build's NumPy-heap peak must be a small fraction
        of the edge arrays (O(bucket + largest tile)), where the
        in-memory argsort build's peak is a *multiple* of them."""
        import tracemalloc

        graph = erdos_renyi(1 << 15, avg_degree=12.0, seed=9, name="bound")
        edge_bytes = graph.indices.nbytes  # one edge-sized int64 array
        assert graph.num_edges > 300_000

        tracemalloc.start()
        TiledCSR(graph, 1024)
        _, mem_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        tracemalloc.start()
        TiledCSR(
            graph, 1024, backing="disk", store_root=tmp_path,
            bucket_edges=8192,
        )
        _, disk_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        # in-memory: src copy + packed key + argsort + sorted copies
        # >= several edge-sized arrays; external: one 8192-edge scatter
        # chunk / one ~12k-edge tile bucket at a time
        assert mem_peak > 3 * edge_bytes
        assert disk_peak < edge_bytes
        assert disk_peak < mem_peak / 4
