"""Crossbar-contention pipeline model (Sec. II-B's atomic-update path)."""

import numpy as np
import pytest

from repro.accel.pipeline import PipelineConfig


@pytest.fixture
def flat():
    return PipelineConfig(crossbar_model=False)


@pytest.fixture
def xbar():
    return PipelineConfig(crossbar_model=True)


class TestFlatModel:
    def test_edges_per_lane(self, flat):
        base = flat.compute_ns(0, 0)
        t = flat.compute_ns(640, 0)
        assert t - base == pytest.approx(640 / 64)

    def test_vertex_ops_add_time(self, flat):
        assert flat.compute_ns(0, 128) > flat.compute_ns(0, 0)

    def test_frequency_scales(self):
        slow = PipelineConfig(freq_ghz=0.5)
        fast = PipelineConfig(freq_ghz=2.0)
        assert slow.compute_ns(1000, 0) == pytest.approx(
            4 * fast.compute_ns(1000, 0)
        )


class TestCrossbarModel:
    def test_uniform_destinations_match_flat(self, flat, xbar):
        dst = np.arange(6400, dtype=np.int64)
        flat_t = flat.compute_ns(6400, 0)
        xbar_t = xbar.compute_ns_for_tile(dst, 0)
        assert xbar_t == pytest.approx(flat_t, rel=0.01)

    def test_hot_destination_serialises(self, xbar, flat):
        dst = np.zeros(6400, dtype=np.int64)  # every edge hits vertex 0
        base = flat.compute_ns(0, 0)          # fill/drain overhead
        hot_t = xbar.compute_ns_for_tile(dst, 0) - base
        uniform_t = flat.compute_ns(6400, 0) - base
        # One updater lane (8-wide) does all the work: 8x slower.
        assert hot_t == pytest.approx(8 * uniform_t, rel=0.01)

    def test_contention_bounded_by_num_pes(self, xbar, flat):
        dst = np.zeros(6400, dtype=np.int64)
        hot_t = xbar.compute_ns_for_tile(dst, 0)
        assert hot_t < (xbar.num_pes + 1) * flat.compute_ns(6400, 0)

    def test_flat_config_ignores_distribution(self, flat):
        hot = np.zeros(640, dtype=np.int64)
        uniform = np.arange(640, dtype=np.int64)
        assert flat.compute_ns_for_tile(hot, 0) == pytest.approx(
            flat.compute_ns_for_tile(uniform, 0)
        )

    def test_empty_tile(self, xbar):
        t = xbar.compute_ns_for_tile(np.zeros(0, dtype=np.int64), 0)
        assert t == pytest.approx(xbar.compute_ns(0, 0))

    def test_skewed_vs_uniform_ordering(self, xbar):
        rng = np.random.default_rng(0)
        uniform = rng.integers(0, 1024, 8000)
        skewed = rng.zipf(1.8, 8000) % 1024
        assert (xbar.compute_ns_for_tile(skewed, 0)
                > xbar.compute_ns_for_tile(uniform, 0))


class TestSystemsIntegration:
    def test_crossbar_slows_powerlaw_run(self):
        from repro.accel.systems import make_system
        from repro.graph.datasets import load_dataset

        graph = load_dataset("SW")
        flat_sys = make_system("GraphDyns (Cache)",
                               pipeline=PipelineConfig())
        xbar_sys = make_system("GraphDyns (Cache)",
                               pipeline=PipelineConfig(crossbar_model=True))
        flat_res = flat_sys.run(graph, "PR", max_iterations=2)
        xbar_res = xbar_sys.run(graph, "PR", max_iterations=2)
        assert xbar_res.compute_ns >= flat_res.compute_ns
