"""Tests for the collection-extended MSHR (Sec. V-C, Fig. 7)."""

import pytest

from repro.core.collection_mshr import CollectionExtendedMSHR
from repro.dram.address import AddressMapper
from repro.dram.spec import DEVICES, DRAMConfig


@pytest.fixture
def mapper():
    config = DRAMConfig(spec=DEVICES["DDR4_2400_x16"], channels=1, ranks=1)
    return AddressMapper(config)


def make_mshr(mapper, **kwargs):
    defaults = dict(num_entries=16, items_per_op=8)
    defaults.update(kwargs)
    return CollectionExtendedMSHR(mapper, **defaults)


def same_row_addrs(mapper, n, row_block=0):
    """n distinct 8 B word addresses within one DRAM row (n <= 8).

    Words inside one 64 B block always share a (bank, row); blocks
    ``row_block`` stripes apart differ in row.
    """
    assert n <= 8
    cfg = mapper.config
    stripe = (
        cfg.channels * cfg.ranks * cfg.spec.banks_per_rank
        * cfg.spec.row_bytes
    )
    base = row_block * stripe
    return [base + i * 8 for i in range(n)]


class TestGatherCollection:
    def test_full_gather_at_eight(self, mapper):
        mshr = make_mshr(mapper)
        ops = []
        for addr in same_row_addrs(mapper, 8):
            ops.extend(mshr.add_read(addr))
        assert len(ops) == 1
        assert ops[0].items == 8
        assert not ops[0].is_scatter
        assert mshr.stats.gathers_full == 1

    def test_no_op_before_eight(self, mapper):
        mshr = make_mshr(mapper)
        ops = []
        for addr in same_row_addrs(mapper, 7):
            ops.extend(mshr.add_read(addr))
        assert ops == []

    def test_duplicate_offsets_merge(self, mapper):
        mshr = make_mshr(mapper)
        addr = same_row_addrs(mapper, 1)[0]
        assert mshr.add_read(addr) == []
        assert mshr.add_read(addr) == []
        assert mshr.stats.merged_reads == 1

    def test_flush_issues_partial(self, mapper):
        mshr = make_mshr(mapper)
        for addr in same_row_addrs(mapper, 3):
            mshr.add_read(addr)
        ops = mshr.flush()
        assert len(ops) == 1
        assert ops[0].items == 3
        assert mshr.stats.gathers_partial == 1

    def test_flush_idempotent(self, mapper):
        mshr = make_mshr(mapper)
        mshr.add_read(8)
        mshr.flush()
        assert mshr.flush() == []


class TestScatterCollection:
    def test_full_scatter_at_eight(self, mapper):
        mshr = make_mshr(mapper)
        ops = []
        for addr in same_row_addrs(mapper, 8):
            ops.extend(mshr.add_write(addr))
        assert len(ops) == 1
        assert ops[0].is_scatter
        assert mshr.stats.scatters_full == 1

    def test_write_coalescing(self, mapper):
        mshr = make_mshr(mapper)
        addr = same_row_addrs(mapper, 1)[0]
        mshr.add_write(addr)
        mshr.add_write(addr)
        assert mshr.stats.merged_writes == 1


class TestForwarding:
    def test_read_after_write_forwarded(self, mapper):
        """A read hitting a pending SC-MSHR offset is served from the
        write-back data (Fig. 7's first controller rule)."""
        mshr = make_mshr(mapper)
        addr = same_row_addrs(mapper, 1)[0]
        mshr.add_write(addr)
        ops = mshr.add_read(addr)
        assert ops == []
        assert mshr.stats.forwarded_reads == 1
        # The gather side must NOT have recorded an offset.
        assert mshr.flush()[0].is_scatter


class TestConflictEviction:
    def test_conflicting_row_evicts_partial(self, mapper):
        mshr = make_mshr(mapper, num_entries=1)  # every row conflicts
        a = same_row_addrs(mapper, 1, row_block=0)[0]
        b = same_row_addrs(mapper, 1, row_block=1)[0]
        mshr.add_read(a)
        ops = mshr.add_read(b)
        assert len(ops) == 1
        assert ops[0].items == 1
        assert mshr.stats.conflict_evictions == 1
        assert mshr.stats.gathers_partial == 1

    def test_eviction_drains_both_halves(self, mapper):
        mshr = make_mshr(mapper, num_entries=1)
        a = same_row_addrs(mapper, 2, row_block=0)
        b = same_row_addrs(mapper, 1, row_block=1)[0]
        mshr.add_read(a[0])
        mshr.add_write(a[1])
        ops = mshr.add_read(b)
        kinds = sorted(op.is_scatter for op in ops)
        assert kinds == [False, True]


class TestConfiguration:
    def test_items_per_op_respected(self, mapper):
        mshr = make_mshr(mapper, items_per_op=4)
        ops = []
        for addr in same_row_addrs(mapper, 4):
            ops.extend(mshr.add_read(addr))
        assert len(ops) == 1
        assert ops[0].items == 4

    def test_rank_level_flag_propagates(self, mapper):
        mshr = make_mshr(mapper, rank_level=True)
        for addr in same_row_addrs(mapper, 8):
            ops = mshr.add_read(addr)
        assert ops[0].rank_level

    def test_entries_power_of_two(self, mapper):
        with pytest.raises(ValueError):
            make_mshr(mapper, num_entries=3)

    def test_op_location_matches_address(self, mapper):
        mshr = make_mshr(mapper)
        addr = same_row_addrs(mapper, 1, row_block=5)[0]
        mshr.add_read(addr)
        op = mshr.flush()[0]
        ch, ra, gb, ro, _ = mapper.decode_scalar(addr)
        assert (op.channel, op.rank, op.bank, op.row) == (ch, ra, gb, ro)
