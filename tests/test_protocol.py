"""Tests for the DDR4 protocol checker and Piccolo's command compliance."""

import pytest

from repro.core.fim_commands import (
    DDRCommand,
    VirtualRowMap,
    gather_sequence,
    scatter_sequence,
)
from repro.dram.spec import DEVICES
from repro.validate.protocol import DDR4ProtocolChecker, ProtocolViolation

SPEC = DEVICES["DDR4_2400_x16"]


def checker(strict_ras=True):
    return DDR4ProtocolChecker(SPEC, strict_ras=strict_ras)


class TestTimingRules:
    def test_trcd_violation(self):
        c = checker()
        c.check(DDRCommand(0.0, "ACT", 0, row=1))
        with pytest.raises(ProtocolViolation, match="tRCD"):
            c.check(DDRCommand(SPEC.tRCD / 2, "RD", 0, row=1, col=0))

    def test_trcd_satisfied(self):
        c = checker()
        c.check(DDRCommand(0.0, "ACT", 0, row=1))
        c.check(DDRCommand(SPEC.tRCD, "RD", 0, row=1, col=0))
        assert c.commands_checked == 2

    def test_tccd_violation(self):
        c = checker()
        c.check(DDRCommand(0.0, "ACT", 0, row=1))
        c.check(DDRCommand(SPEC.tRCD, "RD", 0, row=1, col=0))
        with pytest.raises(ProtocolViolation, match="tCCD"):
            c.check(DDRCommand(SPEC.tRCD + SPEC.tCCD / 2, "RD", 0, row=1, col=8))

    def test_tras_violation(self):
        c = checker()
        c.check(DDRCommand(0.0, "ACT", 0, row=1))
        with pytest.raises(ProtocolViolation, match="tRAS"):
            c.check(DDRCommand(SPEC.tRAS / 2, "PRE", 0))

    def test_trp_violation(self):
        c = checker()
        c.check(DDRCommand(0.0, "ACT", 0, row=1))
        c.check(DDRCommand(SPEC.tRAS, "PRE", 0))
        with pytest.raises(ProtocolViolation, match="tRP"):
            c.check(DDRCommand(SPEC.tRAS + SPEC.tRP / 2, "ACT", 0, row=2))

    def test_twr_violation(self):
        c = checker(strict_ras=False)
        c.check(DDRCommand(0.0, "ACT", 0, row=1))
        t = SPEC.tRCD
        c.check(DDRCommand(t, "WR", 0, row=1, col=0, data=(1,)))
        with pytest.raises(ProtocolViolation, match="tWR"):
            c.check(DDRCommand(t + SPEC.tBURST + SPEC.tWR / 2, "PRE", 0))

    def test_rd_without_open_row(self):
        c = checker()
        with pytest.raises(ProtocolViolation, match="no open row"):
            c.check(DDRCommand(0.0, "RD", 0, row=1, col=0))

    def test_wrong_open_row(self):
        c = checker()
        c.check(DDRCommand(0.0, "ACT", 0, row=1))
        with pytest.raises(ProtocolViolation, match="not the open row"):
            c.check(DDRCommand(SPEC.tRCD, "RD", 0, row=2, col=0))

    def test_double_activate(self):
        c = checker()
        c.check(DDRCommand(0.0, "ACT", 0, row=1))
        with pytest.raises(ProtocolViolation, match="already"):
            c.check(DDRCommand(100.0, "ACT", 0, row=2))

    def test_banks_independent(self):
        c = checker()
        c.check(DDRCommand(0.0, "ACT", 0, row=1))
        c.check(DDRCommand(1.0, "ACT", 1, row=5))  # different bank: legal
        assert c.commands_checked == 2


class TestPiccoloCompliance:
    """Replaying Sec. VI sequences through the standard checker -- the
    reproduction's substitute for the paper's FPGA validation."""

    def _activated(self, c, vmap, bank=0, t0=-100.0):
        c.check(DDRCommand(t0, "ACT", bank, row=vmap.row_y))

    def test_gather_sequence_is_protocol_legal(self):
        vmap = VirtualRowMap(physical_rows=32)
        c = checker(strict_ras=False)
        self._activated(c, vmap)
        cmds = gather_sequence(SPEC, vmap, 0, list(range(8)), start_ns=0.0)
        c.check_sequence(cmds)
        assert c.commands_checked == 1 + len(cmds)

    def test_scatter_sequence_is_protocol_legal(self):
        vmap = VirtualRowMap(physical_rows=32)
        c = checker(strict_ras=False)
        self._activated(c, vmap)
        cmds = scatter_sequence(
            SPEC, vmap, 0, list(range(8)), [0] * 8, start_ns=0.0
        )
        c.check_sequence(cmds)

    def test_gather_gap_covers_eight_tccd(self):
        """The headline feasibility numbers of Sec. VI."""
        c = checker()
        assert c.window_covers_internal_op(8)
        assert 8 * SPEC.tCCD == pytest.approx(40.0, abs=0.2)
        assert SPEC.fim_internal_window == pytest.approx(41.67, abs=0.1)

    def test_all_devices_window_check(self):
        for spec in DEVICES.values():
            c = DDR4ProtocolChecker(spec)
            assert c.window_covers_internal_op(spec.fim_items_per_op), spec.name

    def test_non_standard_command_rejected(self):
        c = checker()
        cmd = DDRCommand.__new__(DDRCommand)
        object.__setattr__(cmd, "time_ns", 0.0)
        object.__setattr__(cmd, "kind", "GATHER_EXECUTE")
        object.__setattr__(cmd, "bank", 0)
        object.__setattr__(cmd, "row", None)
        object.__setattr__(cmd, "col", None)
        object.__setattr__(cmd, "data", None)
        with pytest.raises(ProtocolViolation, match="non-standard"):
            c.check(cmd)
