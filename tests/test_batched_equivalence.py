"""Property-based equivalence: batched engines vs the scalar loop.

The batched memory path (``access_many`` / ``add_batch`` / batched
``run``) must be *event-for-event* identical to the per-address scalar
path on any access stream: same CacheStats, same fill/write-back
sequences, same FIM-operation streams, same post-flush state.  These
tests drive randomized address streams (split into random batch
boundaries to exercise cross-batch state) through both paths and
compare everything observable.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.base import BaseCache
from repro.cache.conventional import ConventionalCache
from repro.cache.variants import FIG11_VARIANTS
from repro.core.collection_mshr import CollectionExtendedMSHR
from repro.core.memory_path import (
    ConventionalMemoryPath,
    FineGrainedMemoryPath,
    LocalityMonitor,
)
from repro.core.piccolo_cache import PiccoloCache
from repro.dram.address import AddressMapper
from repro.dram.spec import DEVICES, DRAMConfig


def make_mapper():
    return AddressMapper(
        DRAMConfig(spec=DEVICES["DDR4_2400_x16"], channels=1, ranks=1)
    )


# 8 B-aligned addresses in a window small enough to thrash 1 KB caches.
addr_streams = st.lists(
    st.integers(min_value=0, max_value=(1 << 14) - 1).map(lambda v: v * 8),
    min_size=1,
    max_size=300,
)
chunk_seed = st.integers(min_value=0, max_value=2**31 - 1)
rmw_flags = st.booleans()


CACHE_FACTORIES = {
    "piccolo-lru": lambda: PiccoloCache(1024, ways=4, fg_tag_bits=4),
    "piccolo-rrip": lambda: PiccoloCache(
        1024, ways=4, fg_tag_bits=4, policy="rrip"
    ),
    "piccolo-quota": lambda: _quota_cache(),
    "conventional": lambda: ConventionalCache(1024, ways=2),
}
# Every Fig. 11 registry design rides along automatically, at a small
# geometry that thrashes (the registry is the single source of truth:
# a design added there enters this suite unasked).
CACHE_FACTORIES.update(
    {
        f"fig11-{name.lower()}": (lambda _f=factory: _f(1024, 4))
        for name, factory in FIG11_VARIANTS.items()
    }
)


def _quota_cache():
    cache = PiccoloCache(2048, ways=8, fg_tag_bits=4)
    cache.set_way_quota(4)  # quota 2: exercises multi-line tag groups
    return cache


def split_chunks(addrs, seed):
    """Deterministic random batch boundaries (including size-1 batches)."""
    rng = np.random.default_rng(seed)
    arr = np.asarray(addrs, dtype=np.int64)
    if arr.size <= 1:
        return [arr]
    n_cuts = int(rng.integers(0, min(6, arr.size - 1) + 1))
    cuts = sorted(rng.choice(np.arange(1, arr.size), size=n_cuts, replace=False))
    return np.split(arr, cuts)


def scalar_batch(cache, addrs, rmw):
    """Run the batch through the scalar loop via the base-class fallback."""
    return BaseCache.access_many(cache, addrs, rmw)


def cache_signature(cache):
    sig = dict(vars(cache.stats).items())
    # every counter a batched engine declares beyond CacheStats
    for name in getattr(cache, "EXTRA_COUNTERS", ()):
        sig[name] = getattr(cache, name)
    return sig


@pytest.mark.parametrize("kind", sorted(CACHE_FACTORIES))
@settings(max_examples=40, deadline=None)
@given(addrs=addr_streams, seed=chunk_seed, rmw=rmw_flags)
def test_access_many_matches_scalar_loop(kind, addrs, seed, rmw):
    batched = CACHE_FACTORIES[kind]()
    scalar = CACHE_FACTORIES[kind]()
    for chunk in split_chunks(addrs, seed):
        res_b = batched.access_many(chunk, rmw)
        res_s = scalar_batch(scalar, chunk, rmw)
        assert res_b.accesses == res_s.accesses
        assert res_b.hits == res_s.hits
        np.testing.assert_array_equal(res_b.ev_addr, res_s.ev_addr)
        np.testing.assert_array_equal(res_b.ev_is_wb, res_s.ev_is_wb)
        np.testing.assert_array_equal(res_b.ev_bytes, res_s.ev_bytes)
    assert cache_signature(batched) == cache_signature(scalar)
    assert batched.flush() == scalar.flush()


@settings(max_examples=40, deadline=None)
@given(addrs=addr_streams, seed=chunk_seed)
def test_mixed_read_write_batches(addrs, seed):
    """Alternating rmw flags across batches (cross-batch dirty state)."""
    batched = PiccoloCache(1024, ways=4, fg_tag_bits=4)
    scalar = PiccoloCache(1024, ways=4, fg_tag_bits=4)
    for i, chunk in enumerate(split_chunks(addrs, seed)):
        rmw = i % 2 == 0
        res_b = batched.access_many(chunk, rmw)
        res_s = scalar_batch(scalar, chunk, rmw)
        np.testing.assert_array_equal(res_b.ev_addr, res_s.ev_addr)
        np.testing.assert_array_equal(res_b.ev_is_wb, res_s.ev_is_wb)
    assert cache_signature(batched) == cache_signature(scalar)
    assert batched.flush() == scalar.flush()


@settings(max_examples=40, deadline=None)
@given(addrs=addr_streams, seed=chunk_seed, wb_seed=chunk_seed)
def test_mshr_add_batch_matches_scalar(addrs, seed, wb_seed):
    mapper = make_mapper()
    rng = np.random.default_rng(wb_seed)
    batched = CollectionExtendedMSHR(mapper, num_entries=16, items_per_op=4)
    scalar = CollectionExtendedMSHR(mapper, num_entries=16, items_per_op=4)
    for chunk in split_chunks(addrs, seed):
        is_wb = rng.random(chunk.size) < 0.5
        ops_b = batched.add_batch(chunk, is_wb)
        ops_s = []
        for addr, wb in zip(chunk.tolist(), is_wb.tolist()):
            ops_s.extend(
                scalar.add_write(addr) if wb else scalar.add_read(addr)
            )
        assert ops_b == ops_s
    assert vars(batched.stats) == vars(scalar.stats)
    assert batched.flush() == scalar.flush()


def drain_all(path):
    ops, addrs, writes = path.drain()
    return ops, addrs.tolist(), writes.tolist()


@pytest.mark.parametrize(
    "kind",
    ["piccolo-lru", "piccolo-rrip", "conventional"]
    + [f"fig11-{name.lower()}" for name in FIG11_VARIANTS],
)
@pytest.mark.parametrize("monitor", [False, True])
@settings(max_examples=25, deadline=None)
@given(addrs=addr_streams, seed=chunk_seed, rmw=rmw_flags)
def test_fine_grained_path_batched_matches_scalar(kind, monitor, addrs, seed, rmw):
    """Whole-path equivalence: cache + MSHR (+ locality monitor)."""
    mapper = make_mapper()

    def build(batched):
        cache = CACHE_FACTORIES[kind]()
        mshr = CollectionExtendedMSHR(mapper, num_entries=16, items_per_op=4)
        mon = LocalityMonitor(window=8, threshold=0.5) if monitor else None
        return FineGrainedMemoryPath(
            cache, mshr, locality_monitor=mon, batched=batched
        )

    path_b = build(True)
    path_s = build(False)
    chunks = split_chunks(addrs, seed)
    for chunk in chunks:
        path_b.run(chunk, rmw)
        path_s.run(chunk, rmw)
    path_b.flush()
    path_s.flush()
    ops_b, addr_b, wr_b = drain_all(path_b)
    ops_s, addr_s, wr_s = drain_all(path_s)
    assert ops_b == ops_s
    assert addr_b == addr_s
    assert wr_b == wr_s
    assert cache_signature(path_b.cache) == cache_signature(path_s.cache)
    assert vars(path_b.mshr.stats) == vars(path_s.mshr.stats)


@settings(max_examples=25, deadline=None)
@given(addrs=addr_streams, seed=chunk_seed, rmw=rmw_flags)
def test_conventional_path_batched_matches_scalar(addrs, seed, rmw):
    path_b = ConventionalMemoryPath(ConventionalCache(1024, ways=2), batched=True)
    path_s = ConventionalMemoryPath(ConventionalCache(1024, ways=2), batched=False)
    for chunk in split_chunks(addrs, seed):
        path_b.run(chunk, rmw)
        path_s.run(chunk, rmw)
    path_b.flush()
    path_s.flush()
    a_b, w_b = path_b.drain()
    a_s, w_s = path_s.drain()
    np.testing.assert_array_equal(a_b, a_s)
    np.testing.assert_array_equal(w_b, w_s)
    assert cache_signature(path_b.cache) == cache_signature(path_s.cache)


@pytest.mark.parametrize(
    "kind",
    ["piccolo-lru"] + [f"fig11-{name.lower()}" for name in FIG11_VARIANTS],
)
@settings(max_examples=25, deadline=None)
@given(addrs=addr_streams, seed=chunk_seed)
def test_replay_memo_is_transparent(kind, addrs, seed):
    """Feeding the same batch sequence twice (second pass replayed from
    the memo) must match a memo-less path exactly."""
    mapper = make_mapper()

    def build(capacity):
        cache = CACHE_FACTORIES[kind]()
        mshr = CollectionExtendedMSHR(mapper, num_entries=16, items_per_op=4)
        return FineGrainedMemoryPath(cache, mshr, replay_capacity=capacity)

    with_memo = build(64)
    without = build(0)
    chunks = split_chunks(addrs, seed)
    for _ in range(3):  # repeat rounds: later rounds can hit the memo
        for chunk in chunks:
            with_memo.run(chunk, True)
            without.run(chunk, True)
    with_memo.flush()
    without.flush()
    assert drain_all(with_memo) == drain_all(without)
    assert cache_signature(with_memo.cache) == cache_signature(without.cache)
    assert vars(with_memo.mshr.stats) == vars(without.mshr.stats)
    # the second/third rounds may or may not converge to identical
    # states, but any replay must have been exact (asserted above)
    assert with_memo.memo.hits + with_memo.memo.misses == 3 * len(chunks)


# ---------------------------------------------------------------------------
# Chunked tile streaming: a finite chunk_size must be invisible in the
# produced counters, fill/write-back sequences, and FIM-op streams --
# including chunk sizes that don't divide the batch evenly, and across
# repeated rounds where the replay memo kicks in.
# ---------------------------------------------------------------------------
CHUNK_SIZES = [1, 7, 64, 1 << 20]


@pytest.mark.parametrize(
    "kind", ["piccolo-lru", "conventional", "fig11-sectored", "fig11-amoeba"]
)
@pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
@pytest.mark.parametrize("monitor", [False, True])
@settings(max_examples=15, deadline=None)
@given(addrs=addr_streams, rmw=rmw_flags)
def test_chunked_fine_grained_path_matches_whole_tile(
    kind, chunk_size, monitor, addrs, rmw
):
    mapper = make_mapper()

    def build(chunk):
        cache = CACHE_FACTORIES[kind]()
        mshr = CollectionExtendedMSHR(mapper, num_entries=16, items_per_op=4)
        mon = LocalityMonitor(window=8, threshold=0.5) if monitor else None
        return FineGrainedMemoryPath(
            cache, mshr, locality_monitor=mon, chunk_size=chunk
        )

    chunked = build(chunk_size)
    whole = build(None)
    stream = np.asarray(addrs, dtype=np.int64)
    for _ in range(2):  # second round exercises memo + chunk interplay
        chunked.run(stream, rmw)
        whole.run(stream, rmw)
    chunked.flush()
    whole.flush()
    assert drain_all(chunked) == drain_all(whole)
    assert cache_signature(chunked.cache) == cache_signature(whole.cache)
    assert vars(chunked.mshr.stats) == vars(whole.mshr.stats)


@pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
@settings(max_examples=15, deadline=None)
@given(addrs=addr_streams, rmw=rmw_flags)
def test_chunked_conventional_path_matches_whole_tile(chunk_size, addrs, rmw):
    chunked = ConventionalMemoryPath(
        ConventionalCache(1024, ways=2), chunk_size=chunk_size
    )
    whole = ConventionalMemoryPath(ConventionalCache(1024, ways=2))
    stream = np.asarray(addrs, dtype=np.int64)
    for _ in range(2):
        chunked.run(stream, rmw)
        whole.run(stream, rmw)
    chunked.flush()
    whole.flush()
    a_c, w_c = chunked.drain()
    a_w, w_w = whole.drain()
    np.testing.assert_array_equal(a_c, a_w)
    np.testing.assert_array_equal(w_c, w_w)
    assert cache_signature(chunked.cache) == cache_signature(whole.cache)


@pytest.mark.parametrize("chunk_size", [3, 50])
def test_chunked_matches_scalar_loop_directly(chunk_size):
    """Chunked *batched* execution against the *scalar* fallback: the
    two orthogonal modes must still agree."""
    mapper = make_mapper()
    rng = np.random.default_rng(13)
    stream = rng.integers(0, 1 << 12, 500).astype(np.int64) * 8

    def build(batched, chunk):
        cache = PiccoloCache(1024, ways=4, fg_tag_bits=4)
        mshr = CollectionExtendedMSHR(mapper, num_entries=16, items_per_op=4)
        return FineGrainedMemoryPath(
            cache, mshr, batched=batched, chunk_size=chunk
        )

    chunked = build(True, chunk_size)
    scalar = build(False, None)
    chunked.run(stream, True)
    scalar.run(stream, True)
    chunked.flush()
    scalar.flush()
    assert drain_all(chunked) == drain_all(scalar)
    assert cache_signature(chunked.cache) == cache_signature(scalar.cache)
    assert vars(chunked.mshr.stats) == vars(scalar.mshr.stats)


@settings(max_examples=40, deadline=None)
@given(addrs=addr_streams, seed=chunk_seed)
def test_locality_monitor_observe_many_matches_scalar(addrs, seed):
    mon_b = LocalityMonitor(window=8, threshold=0.5)
    mon_s = LocalityMonitor(window=8, threshold=0.5)
    for chunk in split_chunks(addrs, seed):
        flags = mon_b.observe_many(chunk)
        expected = []
        for a in chunk.tolist():
            mon_s.observe(a)
            expected.append(mon_s.bypass)
        assert flags.tolist() == expected
        assert mon_b.state_tuple() == mon_s.state_tuple()


@pytest.mark.parametrize("kind", ["piccolo-lru", "conventional"])
def test_bypass_segments_batched_matches_scalar(kind):
    """Deterministic sequential stream: the monitor flips to bypass and
    back, exercising the burst-coalescing path in both modes."""
    mapper = make_mapper()

    def build(batched):
        cache = CACHE_FACTORIES[kind]()
        mshr = CollectionExtendedMSHR(mapper, num_entries=16, items_per_op=4)
        mon = LocalityMonitor(window=8, threshold=0.75)
        return FineGrainedMemoryPath(
            cache, mshr, locality_monitor=mon, batched=batched
        )

    rng = np.random.default_rng(7)
    seq = np.arange(256, dtype=np.int64) * 8
    rand = rng.integers(0, 1 << 12, 96) * 8
    stream = np.concatenate([seq, rand, seq + (1 << 16), rand])
    path_b, path_s = build(True), build(False)
    for chunk in np.split(stream, [100, 300, 420, 600]):
        path_b.run(chunk, True)
        path_s.run(chunk, True)
    path_b.flush()
    path_s.flush()
    out_b = drain_all(path_b)
    assert out_b == drain_all(path_s)
    # the sequential phases must actually have produced bypass bursts
    assert len(out_b[1]) > 0
    assert cache_signature(path_b.cache) == cache_signature(path_s.cache)
    assert vars(path_b.mshr.stats) == vars(path_s.mshr.stats)


def test_locality_monitor_counts_all_window_pairs():
    """The first access of a window seeds the next delta instead of
    being dropped: window=4 sees 3 pairs per window, so a pure
    sequential stream reaches a 3/3 fraction (the old implementation
    topped out at (window-1)/window and fired late)."""
    monitor = LocalityMonitor(window=4, threshold=1.0)
    for i in range(4):
        monitor.observe(i * 8)
    assert monitor.bypass  # 3 of 3 pairs sequential

    # one stray address per window keeps it below a 2/3 threshold
    monitor = LocalityMonitor(window=4, threshold=0.75)
    stream = [0, 8, 4096, 4104, 8192, 8200, 12288]
    for a in stream:
        monitor.observe(a)
    assert not monitor.bypass
