"""Seed-determinism properties of the engine workload generators.

The differential suite and the ``engine-xval`` trajectory cells both
assume that :mod:`repro.dram.engine.workloads` generators are pure
functions of their arguments: the same seed must reproduce the same
request stream on any controller mode, and the streams themselves must
be engine-mode agnostic (the generators never consult the engine).
Hypothesis pins both properties.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dram.engine import DRAMEngine
from repro.dram.engine.workloads import (
    conventional_requests,
    fim_requests,
    random_mix,
    strided_addresses,
)
from repro.dram.spec import default_config

CONFIG = default_config()

_slow = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@_slow
@given(
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=1, max_value=400),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_random_mix_is_seed_deterministic(seed, n, write_frac):
    first = random_mix(CONFIG, n, seed=seed, write_fraction=write_frac)
    second = random_mix(CONFIG, n, seed=seed, write_fraction=write_frac)
    np.testing.assert_array_equal(first[0], second[0])
    np.testing.assert_array_equal(first[1], second[1])


@_slow
@given(
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=2, max_value=300),
)
def test_different_seeds_differ(seed, n):
    base_addrs, _ = random_mix(CONFIG, n, seed=seed)
    other_addrs, _ = random_mix(CONFIG, n, seed=seed + 1)
    assert not np.array_equal(base_addrs, other_addrs)


@_slow
@given(
    st.integers(min_value=12, max_value=18),
    st.sampled_from([2, 4, 8, 16, 32]),
    st.booleans(),
)
def test_strided_addresses_are_pure(log2_bytes, stride, single_row):
    first = strided_addresses(CONFIG, 1 << log2_bytes, stride, single_row)
    second = strided_addresses(CONFIG, 1 << log2_bytes, stride, single_row)
    np.testing.assert_array_equal(first, second)


@_slow
@given(
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=1, max_value=150),
    st.booleans(),
)
def test_generated_streams_are_mode_agnostic(seed, n, scatter):
    """Request streams built for one engine mode run identically on the
    other: generators depend on the seed and config alone, so the two
    controller implementations see byte-identical inputs and must
    produce the identical outcome."""
    addrs, is_write = random_mix(CONFIG, n, seed=seed)
    conv, conv_route = conventional_requests(CONFIG, addrs, is_write)
    fim, fim_route = fim_requests(CONFIG, addrs, scatter=scatter)
    again, again_route = conventional_requests(CONFIG, addrs, is_write)
    assert conv == again
    np.testing.assert_array_equal(conv_route, again_route)

    outcomes = {}
    for mode in ("batched", "scalar"):
        engine = DRAMEngine(CONFIG, refresh_enabled=True, mode=mode)
        requests = [
            type(r)(**{**r.__dict__, "issue_cycle": -1, "finish_cycle": -1})
            for r in conv + fim
        ]
        route = np.concatenate([conv_route, fim_route])
        result = engine.run(requests, route)
        outcomes[mode] = (result.cycles, result.stats.acts,
                          result.stats.reads, result.stats.writes,
                          result.stats.gathers, result.stats.scatters)
    assert outcomes["batched"] == outcomes["scalar"]
