"""Tests for the way-partitioning modes of the Piccolo system (Sec. V-B)."""

import pytest

from repro.accel.systems import make_system
from repro.graph.generators import rmat


@pytest.fixture(scope="module")
def graph():
    return rmat(4096, avg_degree=12.0, seed=31, name="waypart")


def run(way_partition, graph):
    system = make_system(
        "Piccolo", onchip_bytes=1024, mshr_entries=32, fg_tag_bits=4,
        tile_scale=4, way_partition=way_partition,
    )
    return system.run(graph, "PR", max_iterations=2)


class TestWayPartition:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="way_partition"):
            make_system("Piccolo", way_partition="utility")

    def test_naive_mode_caps_tags_at_one_way(self, graph):
        system = make_system(
            "Piccolo", onchip_bytes=1024, mshr_entries=32, fg_tag_bits=4,
            way_partition="naive",
        )
        system.run(graph, "PR", max_iterations=1)
        assert system.path.cache.way_quota == 1

    def test_equal_mode_uses_tile_span(self, graph):
        system = make_system(
            "Piccolo", onchip_bytes=1024, mshr_entries=32, fg_tag_bits=4,
            tile_scale=1, way_partition="equal",
        )
        system.run(graph, "PR", max_iterations=1)
        # Perfect tiling at 1 KB: the tile spans <= 1 window per set, so
        # a tag may claim many ways.
        assert system.path.cache.way_quota > 1

    def test_partitioning_not_worse(self, graph):
        equal = run("equal", graph)
        naive = run("naive", graph)
        assert equal.total_ns <= naive.total_ns * 1.1

    def test_both_modes_functionally_identical_traffic_type(self, graph):
        # Partitioning changes victim choice, never correctness: both
        # modes process the same access stream.
        equal = run("equal", graph)
        naive = run("naive", graph)
        assert equal.cache_accesses == naive.cache_accesses
        assert equal.edges_processed == naive.edges_processed
