"""Tests for graph I/O round-tripping."""

import numpy as np
import pytest

from repro.graph.graphio import load_edge_list, load_npz, save_edge_list, save_npz


class TestNpz:
    def test_roundtrip(self, medium_power_law_graph, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(medium_power_law_graph, path)
        loaded = load_npz(path)
        assert np.array_equal(loaded.indptr, medium_power_law_graph.indptr)
        assert np.array_equal(loaded.indices, medium_power_law_graph.indices)
        assert np.array_equal(loaded.weights, medium_power_law_graph.weights)
        assert loaded.name == medium_power_law_graph.name


class TestEdgeList:
    def test_roundtrip(self, tiny_graph, tmp_path):
        path = tmp_path / "g.txt"
        save_edge_list(tiny_graph, path)
        loaded = load_edge_list(path, num_vertices=6)
        assert np.array_equal(loaded.indptr, tiny_graph.indptr)
        assert np.array_equal(loaded.indices, tiny_graph.indices)
        assert np.array_equal(loaded.weights, tiny_graph.weights)

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n\n% another\n0 1\n1 2 7\n")
        g = load_edge_list(path)
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert g.edge_weights(1).tolist() == [7]

    def test_infers_vertex_count(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 9\n")
        assert load_edge_list(path).num_vertices == 10

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2 3\n")
        with pytest.raises(ValueError, match="expected 2 or 3"):
            load_edge_list(path)

    def test_default_name_is_filename(self, tmp_path):
        path = tmp_path / "mygraph.txt"
        path.write_text("0 1\n")
        assert load_edge_list(path).name == "mygraph.txt"
