"""Shared fixtures: small deterministic graphs and memory configs."""

import numpy as np
import pytest

from repro.dram.spec import DEVICES, DRAMConfig
from repro.graph.csr import CSRGraph
from repro.graph.generators import erdos_renyi, rmat


@pytest.fixture
def tiny_graph() -> CSRGraph:
    """A hand-built 6-vertex graph with known structure.

    Edges: 0->1, 0->2, 1->3, 2->3, 3->4, 4->5, 5->0 (weights 1..7).
    """
    src = np.array([0, 0, 1, 2, 3, 4, 5])
    dst = np.array([1, 2, 3, 3, 4, 5, 0])
    w = np.arange(1, 8)
    return CSRGraph.from_edges(6, src, dst, w, name="tiny")


@pytest.fixture
def small_random_graph() -> CSRGraph:
    return erdos_renyi(256, avg_degree=4.0, seed=42, name="small-random")


@pytest.fixture
def medium_power_law_graph() -> CSRGraph:
    return rmat(1024, avg_degree=8.0, seed=7, name="medium-rmat")


@pytest.fixture
def ddr4_config() -> DRAMConfig:
    return DRAMConfig(spec=DEVICES["DDR4_2400_x16"], channels=1, ranks=4)


@pytest.fixture
def small_ddr4_config() -> DRAMConfig:
    return DRAMConfig(
        spec=DEVICES["DDR4_2400_x16"], channels=1, ranks=1, rows_per_bank=256
    )
