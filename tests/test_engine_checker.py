"""The trace checker must reject hand-built illegal command streams."""

import pytest

from repro.dram.engine.checker import (
    EngineProtocolViolation,
    TraceChecker,
)
from repro.dram.engine.commands import Command, CommandType
from repro.dram.engine.timing import timing_from_spec
from repro.dram.spec import DEVICES

ACT, PRE, RD, WR, REF = (CommandType.ACT, CommandType.PRE, CommandType.RD,
                         CommandType.WR, CommandType.REF)


@pytest.fixture
def timing():
    return timing_from_spec(DEVICES["DDR4_2400_x16"])


@pytest.fixture
def checker(timing):
    return TraceChecker(timing, ranks=2)


def act(cycle, bank=0, row=1, rank=0):
    return Command(cycle, ACT, rank, bank, row=row)


def rd(cycle, bank=0, rank=0, timing=None, data=True):
    start = cycle + (timing.tCL if timing else 0)
    return Command(cycle, RD, rank, bank, column=0,
                   data_clocks=timing.tBL if (timing and data) else 0,
                   data_start=start)


def wr(cycle, bank=0, rank=0, timing=None):
    start = cycle + (timing.tCWL if timing else 0)
    return Command(cycle, WR, rank, bank, column=0,
                   data_clocks=timing.tBL if timing else 0,
                   data_start=start)


class TestAcceptsLegal:
    def test_basic_read(self, checker, timing):
        checker.check(act(0))
        checker.check(rd(timing.tRCD, timing=timing))
        assert checker.commands_checked == 2

    def test_full_episode(self, checker, timing):
        checker.check(act(0))
        checker.check(rd(timing.tRCD, timing=timing))
        checker.check(Command(timing.tRAS + 10, PRE, 0, 0))
        checker.check(act(timing.tRAS + 10 + timing.tRP, row=2))


class TestRejectsIllegal:
    def test_rcd_violation(self, checker, timing):
        checker.check(act(0))
        with pytest.raises(EngineProtocolViolation, match="tRCD"):
            checker.check(rd(timing.tRCD - 1, timing=timing))

    def test_ras_violation(self, checker, timing):
        checker.check(act(0))
        with pytest.raises(EngineProtocolViolation, match="tRAS"):
            checker.check(Command(timing.tRAS - 1, PRE, 0, 0))

    def test_rp_violation(self, checker, timing):
        checker.check(act(0))
        checker.check(Command(timing.tRAS, PRE, 0, 0))
        with pytest.raises(EngineProtocolViolation, match="tRP"):
            checker.check(act(timing.tRAS + timing.tRP - 1, row=2))

    def test_double_act(self, checker, timing):
        checker.check(act(0))
        with pytest.raises(EngineProtocolViolation, match="already open"):
            checker.check(act(timing.tRC + 100, row=2))

    def test_column_without_open_row(self, checker, timing):
        with pytest.raises(EngineProtocolViolation, match="no open row"):
            checker.check(rd(100, timing=timing))

    def test_rrd_violation(self, checker, timing):
        checker.check(act(0, bank=0))
        with pytest.raises(EngineProtocolViolation, match="tRRD"):
            checker.check(act(1, bank=4, row=1))

    def test_faw_violation(self, checker, timing):
        cycle = 0
        for bank in (0, 2, 4, 6):  # different groups: tRRD_S spacing
            checker.check(act(cycle, bank=bank))
            cycle += timing.tRRD_S
        with pytest.raises(EngineProtocolViolation, match="tFAW"):
            checker.check(act(cycle, bank=1, row=1))

    def test_ccd_violation(self, checker, timing):
        checker.check(act(0, bank=0))
        checker.check(act(timing.tRRD_S, bank=4))
        first = timing.tRCD + timing.tRRD_S
        checker.check(rd(first, bank=0, timing=timing))
        bad = rd(first + timing.tCCD_S - 1, bank=4, timing=timing)
        with pytest.raises(EngineProtocolViolation, match="tCCD"):
            checker.check(bad)

    def test_wtr_violation(self, checker, timing):
        checker.check(act(0, bank=0))
        checker.check(wr(timing.tRCD, bank=0, timing=timing))
        data_end = timing.tRCD + timing.tCWL + timing.tBL
        bad = rd(data_end + timing.tWTR_S - 1, bank=0, timing=timing)
        with pytest.raises(EngineProtocolViolation, match="tWTR"):
            checker.check(bad)

    def test_rtp_violation(self, checker, timing):
        checker.check(act(0))
        # Issue the read after tRAS has elapsed so only tRTP can bind.
        rd_cycle = timing.tRAS
        checker.check(rd(rd_cycle, timing=timing))
        with pytest.raises(EngineProtocolViolation, match="tRTP"):
            checker.check(Command(rd_cycle + timing.tRTP - 1, PRE, 0, 0))

    def test_wr_recovery_violation(self, checker, timing):
        checker.check(act(0))
        checker.check(wr(timing.tRCD, timing=timing))
        data_end = timing.tRCD + timing.tCWL + timing.tBL
        bad_cycle = max(timing.tRAS, data_end + timing.tWR - 1)
        if bad_cycle >= data_end + timing.tWR:
            pytest.skip("tRAS dominates on this grade")
        with pytest.raises(EngineProtocolViolation, match="tWR"):
            checker.check(Command(bad_cycle, PRE, 0, 0))

    def test_data_bus_overlap(self, checker, timing):
        checker.check(act(0, bank=0))
        checker.check(act(timing.tRRD_S, bank=4))
        first = timing.tRCD + timing.tRRD_S
        checker.check(rd(first, bank=0, timing=timing))
        overlap = Command(first + timing.tCCD_S, RD, 0, 4, column=0,
                          data_clocks=timing.tBL,
                          data_start=first + timing.tCL + 1)
        with pytest.raises(EngineProtocolViolation, match="data bus"):
            checker.check(overlap)

    def test_data_before_cas(self, checker, timing):
        checker.check(act(0))
        early = Command(timing.tRCD, RD, 0, 0, column=0,
                        data_clocks=timing.tBL,
                        data_start=timing.tRCD + timing.tCL - 1)
        with pytest.raises(EngineProtocolViolation, match="CAS"):
            checker.check(early)

    def test_unordered_trace(self, checker, timing):
        checker.check(act(100))
        with pytest.raises(EngineProtocolViolation, match="time-ordered"):
            checker.check(Command(50, PRE, 0, 0))

    def test_two_commands_one_slot(self, checker, timing):
        checker.check(act(100, bank=0))
        with pytest.raises(EngineProtocolViolation, match="bus slot"):
            checker.check(act(100, bank=4, row=1))

    def test_ref_with_open_bank(self, checker, timing):
        checker.check(act(0))
        with pytest.raises(EngineProtocolViolation, match="bank open"):
            checker.check(Command(timing.tRC, REF, 0, 0))

    def test_command_during_rfc(self, checker, timing):
        checker.check(Command(0, REF, 0, 0))
        with pytest.raises(EngineProtocolViolation, match="tRFC"):
            checker.check(act(timing.tRFC - 1))

    def test_ref_then_act_after_rfc(self, checker, timing):
        checker.check(Command(0, REF, 0, 0))
        checker.check(act(timing.tRFC))
        assert checker.commands_checked == 2
