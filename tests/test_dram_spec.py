"""Tests for DRAM device specs and FIM geometry (Sec. IV-B / VI / VIII-B)."""

import pytest

from repro.dram.spec import DEVICES, DRAMConfig, default_config


class TestDeviceGeometry:
    def test_all_paper_devices_present(self):
        for name in ("DDR4_2400_x16", "DDR4_2400_x8", "DDR4_2400_x4",
                     "LPDDR4_3200", "GDDR5_6000", "HBM2_2000"):
            assert name in DEVICES

    def test_chips_per_rank(self):
        assert DEVICES["DDR4_2400_x16"].chips_per_rank == 4
        assert DEVICES["DDR4_2400_x8"].chips_per_rank == 8
        assert DEVICES["DDR4_2400_x4"].chips_per_rank == 16

    def test_ddr4_burst_is_64b(self):
        assert DEVICES["DDR4_2400_x16"].burst_bytes == 64

    def test_small_burst_devices(self):
        for name in ("LPDDR4_3200", "GDDR5_6000", "HBM2_2000"):
            assert DEVICES[name].burst_bytes == 32

    def test_ddr4_2400_peak_bandwidth(self):
        assert DEVICES["DDR4_2400_x16"].peak_bandwidth_gbps == pytest.approx(19.2)

    def test_tburst_is_four_clocks_ddr4(self):
        spec = DEVICES["DDR4_2400_x16"]
        assert spec.tBURST == pytest.approx(4 / 1.2, rel=1e-6)

    def test_validate_accepts_all(self):
        for spec in DEVICES.values():
            spec.validate()


class TestFimWindow:
    """The Sec. VI feasibility numbers."""

    def test_eight_tccd_fits_window_ddr4_2400(self):
        spec = DEVICES["DDR4_2400_x16"]
        # 8 x tCCD_L ~= 40 ns vs tWR + tRP + tRCD ~= 41.7 ns
        assert 8 * spec.tCCD == pytest.approx(40.0, abs=0.2)
        assert spec.fim_internal_window == pytest.approx(41.67, abs=0.1)
        assert spec.fim_window_ok()

    def test_all_devices_window_ok(self):
        for spec in DEVICES.values():
            assert spec.fim_window_ok(), spec.name


class TestFimGeometry:
    """Offset-burst counts per device width (Fig. 15 / Sec. VIII-B)."""

    def test_offset_bursts_by_width(self):
        # 8 offsets x 16 b duplicated across chips, over 512-bit bursts
        assert DEVICES["DDR4_2400_x16"].fim_offset_bursts(16) == 1
        assert DEVICES["DDR4_2400_x8"].fim_offset_bursts(16) == 2
        assert DEVICES["DDR4_2400_x4"].fim_offset_bursts(16) == 4

    def test_enhanced_11bit_offsets_reduce_x4_bursts(self):
        assert DEVICES["DDR4_2400_x4"].fim_offset_bursts(11) == 3

    def test_small_burst_devices_move_four_items(self):
        for name in ("LPDDR4_3200", "GDDR5_6000", "HBM2_2000"):
            assert DEVICES[name].fim_items_per_op == 4

    def test_hbm_two_transactions_per_op(self):
        spec = DEVICES["HBM2_2000"]
        assert spec.fim_offset_bursts(16) + spec.fim_data_bursts == 2

    def test_enhanced_long_burst_hbm(self):
        config = DRAMConfig(
            spec=DEVICES["HBM2_2000"], channels=1, ranks=1, long_burst_fim=True
        )
        assert config.fim_items_per_op == 8
        # 8 items in (1 long offset burst + 64 B of data) vs 2 ops of 4.
        baseline = DRAMConfig(spec=DEVICES["HBM2_2000"], channels=1, ranks=1)
        per_item_enh = (
            config.fim_offset_bursts + config.fim_data_bursts
        ) / config.fim_items_per_op
        per_item_base = (
            baseline.fim_offset_bursts + baseline.fim_data_bursts
        ) / baseline.fim_items_per_op
        assert per_item_enh < per_item_base


class TestDRAMConfig:
    def test_default_is_paper_setup(self):
        config = default_config()
        assert config.spec.name == "DDR4_2400_x16"
        assert config.channels == 1
        assert config.ranks == 4

    def test_total_banks(self, ddr4_config):
        assert ddr4_config.total_banks == 32

    def test_overrides(self):
        config = default_config(ranks=2)
        assert config.ranks == 2

    def test_invalid_offset_bits(self):
        with pytest.raises(ValueError):
            DRAMConfig(spec=DEVICES["DDR4_2400_x16"], offset_bits=0)

    def test_non_power_of_two_channels_rejected(self):
        with pytest.raises(ValueError):
            DRAMConfig(spec=DEVICES["DDR4_2400_x16"], channels=3)
