"""Dirty-data conservation across every cache design.

Whatever a cache's organisation -- lines, sectors, variable blocks,
merged words, split tags -- a write-back stream is only correct if

1. every word the program wrote is covered by some write-back
   (eviction or flush): no dirty data is silently dropped, and
2. every write-back range contains at least one written word: the
   cache never invents dirty traffic out of clean data.

Hypothesis drives random read/write streams through all designs and
checks both properties, which is the value-correctness argument for a
timing model that does not carry payloads.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache.amoeba import AmoebaCache
from repro.cache.conventional import ConventionalCache
from repro.cache.fine8b import EightByteLineCache
from repro.cache.graphfire import GraphfireCache
from repro.cache.scrabble import ScrabbleCache
from repro.cache.sectored import SectoredCache
from repro.core.piccolo_cache import PiccoloCache

DESIGNS = {
    "conventional": lambda: ConventionalCache(2048, ways=4),
    "sectored": lambda: SectoredCache(2048, ways=4),
    "fine8b": lambda: EightByteLineCache(2048, ways=4),
    "amoeba": lambda: AmoebaCache(2048, ways=4),
    "scrabble": lambda: ScrabbleCache(2048, ways=4),
    "graphfire": lambda: GraphfireCache(2048, ways=4),
    "piccolo-lru": lambda: PiccoloCache(2048, ways=4),
    "piccolo-rrip": lambda: PiccoloCache(2048, ways=4, policy="rrip"),
}

_settings = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run_stream(design, stream):
    """Returns (written_words, writeback_ranges)."""
    cache = DESIGNS[design]()
    written = set()
    ranges = []
    for word, is_write in stream:
        addr = word * 8
        if is_write:
            written.add(word)
        result = cache.access(addr, is_write)
        if result.writebacks:
            ranges.extend(result.writebacks)
    ranges.extend(cache.flush())
    return written, ranges


@st.composite
def streams(draw):
    n = draw(st.integers(min_value=1, max_value=400))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    span = draw(st.sampled_from([64, 512, 4096]))
    rng = np.random.default_rng(seed)
    words = rng.integers(0, span, size=n)
    writes = rng.random(n) < 0.5
    return list(zip(words.tolist(), writes.tolist()))


@pytest.mark.parametrize("design", sorted(DESIGNS))
@_settings
@given(stream=streams())
def test_no_dirty_word_is_dropped(design, stream):
    written, ranges = run_stream(design, stream)
    covered = set()
    for addr, nbytes in ranges:
        assert addr % 8 == 0 and nbytes % 8 == 0
        covered.update(range(addr // 8, (addr + nbytes) // 8))
    missing = written - covered
    assert not missing, f"{design} dropped dirty words {sorted(missing)}"


@pytest.mark.parametrize("design", sorted(DESIGNS))
@_settings
@given(stream=streams())
def test_no_clean_data_written_back(design, stream):
    written, ranges = run_stream(design, stream)
    for addr, nbytes in ranges:
        words = set(range(addr // 8, (addr + nbytes) // 8))
        assert words & written, (
            f"{design} wrote back a fully clean range at {addr:#x}"
        )


@pytest.mark.parametrize("design", sorted(DESIGNS))
def test_read_only_stream_never_writes_back(design):
    rng = np.random.default_rng(5)
    stream = [(int(w), False) for w in rng.integers(0, 512, 500)]
    written, ranges = run_stream(design, stream)
    assert not written
    assert not ranges


@pytest.mark.parametrize("design", sorted(DESIGNS))
def test_write_once_writes_back_once(design):
    written, ranges = run_stream(design, [(7, True)])
    covered = [r for r in ranges if r[0] <= 7 * 8 < r[0] + r[1]]
    assert len(covered) == 1
