"""Tests for the vertex-centric engine: correctness against oracles and
tiling invariance (the engine's results must not depend on tile width)."""

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.algorithms.bfs import reference_bfs
from repro.algorithms.cc import reference_cc
from repro.algorithms.pagerank import reference_pagerank
from repro.algorithms.sssp import reference_sssp
from repro.algorithms.sswp import reference_sswp
from repro.algorithms.vcm import VertexCentricEngine


def run_engine(graph, algorithm, tile_width=None, iterations=64, **kwargs):
    spec = make_algorithm(algorithm, graph, **kwargs)
    engine = VertexCentricEngine(spec, tile_width)
    engine.run(iterations)
    return engine


class TestPageRank:
    def test_matches_reference(self, small_random_graph):
        engine = run_engine(small_random_graph, "PR", iterations=10)
        ref = reference_pagerank(small_random_graph, iterations=10)
        np.testing.assert_allclose(engine.prop, ref, rtol=1e-9)

    def test_tiling_invariance(self, medium_power_law_graph):
        whole = run_engine(medium_power_law_graph, "PR", iterations=5)
        tiled = run_engine(
            medium_power_law_graph, "PR", tile_width=100, iterations=5
        )
        np.testing.assert_allclose(whole.prop, tiled.prop, rtol=1e-12)

    def test_ranks_form_distribution(self, medium_power_law_graph):
        engine = run_engine(medium_power_law_graph, "PR", iterations=30)
        assert engine.prop.min() > 0
        # Dangling vertices leak mass, so the sum is at most 1.
        assert engine.prop.sum() <= 1.0 + 1e-9

    def test_converges_and_deactivates(self, tiny_graph):
        engine = run_engine(tiny_graph, "PR", iterations=500)
        assert engine.converged()


class TestBFS:
    def test_matches_reference(self, medium_power_law_graph):
        engine = run_engine(medium_power_law_graph, "BFS")
        ref = reference_bfs(medium_power_law_graph, 0)
        assert np.array_equal(engine.prop, ref)

    def test_tiling_invariance(self, medium_power_law_graph):
        whole = run_engine(medium_power_law_graph, "BFS")
        tiled = run_engine(medium_power_law_graph, "BFS", tile_width=77)
        assert np.array_equal(whole.prop, tiled.prop)

    def test_frontier_is_sparse(self, medium_power_law_graph):
        spec = make_algorithm("BFS", medium_power_law_graph)
        engine = VertexCentricEngine(spec)
        first = engine.step()
        assert first.active_vertices == 1

    def test_unreachable_stays_infinite(self, tiny_graph):
        # Vertex ids 0..5 form a cycle plus branches; all reachable from 0.
        engine = run_engine(tiny_graph, "BFS")
        assert np.all(np.isfinite(engine.prop))

    def test_source_validation(self, tiny_graph):
        with pytest.raises(ValueError):
            make_algorithm("BFS", tiny_graph, source=100)


class TestCC:
    def test_matches_reference(self, small_random_graph):
        engine = run_engine(small_random_graph, "CC", iterations=200)
        ref = reference_cc(small_random_graph)
        assert np.array_equal(engine.prop, ref)

    def test_tiling_invariance(self, small_random_graph):
        whole = run_engine(small_random_graph, "CC", iterations=200)
        tiled = run_engine(small_random_graph, "CC", tile_width=50,
                           iterations=200)
        assert np.array_equal(whole.prop, tiled.prop)

    def test_ring_collapses_to_zero(self):
        from repro.graph.csr import CSRGraph

        n = 8
        src = np.arange(n)
        dst = (src + 1) % n
        ring = CSRGraph.from_edges(n, src, dst)
        engine = run_engine(ring, "CC", iterations=100)
        assert np.all(engine.prop == 0)


class TestSSSP:
    def test_matches_dijkstra(self, medium_power_law_graph):
        engine = run_engine(medium_power_law_graph, "SSSP", iterations=200)
        ref = reference_sssp(medium_power_law_graph, 0)
        np.testing.assert_allclose(engine.prop, ref)

    def test_tiling_invariance(self, medium_power_law_graph):
        whole = run_engine(medium_power_law_graph, "SSSP", iterations=200)
        tiled = run_engine(
            medium_power_law_graph, "SSSP", tile_width=123, iterations=200
        )
        assert np.array_equal(whole.prop, tiled.prop)

    def test_negative_weights_rejected(self, tiny_graph):
        bad = tiny_graph.with_weights(np.full(7, -1))
        with pytest.raises(ValueError):
            make_algorithm("SSSP", bad)


class TestSSWP:
    def test_matches_reference(self, medium_power_law_graph):
        engine = run_engine(medium_power_law_graph, "SSWP", iterations=200)
        ref = reference_sswp(medium_power_law_graph, 0)
        np.testing.assert_allclose(engine.prop, ref)

    def test_source_width_infinite(self, tiny_graph):
        engine = run_engine(tiny_graph, "SSWP")
        assert engine.prop[0] == np.inf

    def test_width_bounded_by_max_weight(self, medium_power_law_graph):
        engine = run_engine(medium_power_law_graph, "SSWP", iterations=200)
        finite = engine.prop[np.isfinite(engine.prop)]
        if finite.size:
            assert finite.max() <= medium_power_law_graph.weights.max()


class TestTraces:
    def test_edges_match_active_sources(self, medium_power_law_graph):
        spec = make_algorithm("BFS", medium_power_law_graph)
        engine = VertexCentricEngine(spec, tile_width=128)
        trace = engine.step()
        # First iteration: only the source's edges are traversed.
        expected = medium_power_law_graph.out_degrees()[0]
        assert trace.num_edges == expected

    def test_pagerank_trace_covers_all_edges(self, medium_power_law_graph):
        spec = make_algorithm("PR", medium_power_law_graph)
        engine = VertexCentricEngine(spec, tile_width=100)
        trace = engine.step()
        assert trace.num_edges == medium_power_law_graph.num_edges

    def test_changed_subset_of_apply(self, medium_power_law_graph):
        spec = make_algorithm("CC", medium_power_law_graph)
        engine = VertexCentricEngine(spec, tile_width=200)
        trace = engine.step()
        for tile in trace.tiles:
            assert set(tile.changed_dst).issubset(set(tile.apply_dst))

    def test_run_iter_stops_at_convergence(self, tiny_graph):
        spec = make_algorithm("BFS", tiny_graph)
        engine = VertexCentricEngine(spec)
        traces = list(engine.run_iter(64))
        assert engine.converged()
        assert traces[-1].next_active == 0

    def test_max_iterations_validated(self, tiny_graph):
        spec = make_algorithm("BFS", tiny_graph)
        engine = VertexCentricEngine(spec)
        with pytest.raises(ValueError):
            list(engine.run_iter(0))
