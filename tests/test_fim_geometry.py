"""FIM geometry across device grades (Sec. IV-B, Sec. VIII-B math).

The offset-broadcast arithmetic drives Figs. 15 and 20a: offsets are
duplicated across every chip of a rank, so narrower devices (more
chips) need more offset-write bursts, 32 B-burst devices move four
items per op, and the enhanced designs (11-bit offsets, long bursts)
cut the burst counts.  These tests pin the numbers the paper quotes.
"""

import pytest

from repro.dram.spec import DEVICES, DRAMConfig
from repro.utils.units import ceil_div


def config_for(grade, **kwargs):
    return DRAMConfig(spec=DEVICES[grade], channels=1, ranks=1, **kwargs)


class TestPaperNumbers:
    def test_x16_single_offset_burst(self):
        # Sec. IV-B: 16-bit offsets x 8 x 4 chips = 512 bits = one 64 B
        # burst on x16 DDR4.
        spec = DEVICES["DDR4_2400_x16"]
        assert spec.chips_per_rank == 4
        assert spec.fim_offset_bursts(16) == 1

    def test_x8_two_offset_bursts(self):
        # 8 chips: 1024 bits = two bursts.
        spec = DEVICES["DDR4_2400_x8"]
        assert spec.chips_per_rank == 8
        assert spec.fim_offset_bursts(16) == 2

    def test_x4_four_offset_bursts(self):
        spec = DEVICES["DDR4_2400_x4"]
        assert spec.chips_per_rank == 16
        assert spec.fim_offset_bursts(16) == 4

    def test_items_per_op_by_burst(self):
        assert DEVICES["DDR4_2400_x16"].fim_items_per_op == 8
        for grade in ("LPDDR4_3200", "GDDR5_6000", "HBM2_2000"):
            assert DEVICES[grade].fim_items_per_op == 4

    def test_ideal_bandwidth_gain_x16(self):
        # 8 reads -> 1 offset burst + 1 data burst: the 4x of Sec. IV-B.
        config = config_for("DDR4_2400_x16")
        total = config.fim_offset_bursts + config.fim_data_bursts
        assert 8 / total == 4.0


class TestEnhancedDesigns:
    def test_narrow_offsets_cut_x4_bursts(self):
        # Sec. VIII-B: 11-bit offsets on x4 (row < 8 KB needs < 11 bits).
        plain = config_for("DDR4_2400_x4")
        enhanced = config_for("DDR4_2400_x4", offset_bits=11)
        assert enhanced.fim_offset_bursts < plain.fim_offset_bursts

    def test_narrow_offsets_match_manual_math(self):
        enhanced = config_for("DDR4_2400_x4", offset_bits=11)
        spec = enhanced.spec
        bits = spec.fim_items_per_op * 11 * spec.chips_per_rank
        assert enhanced.fim_offset_bursts == ceil_div(bits, 64 * 8)

    def test_long_burst_doubles_hbm_items(self):
        plain = config_for("HBM2_2000")
        enhanced = config_for("HBM2_2000", long_burst_fim=True)
        assert plain.fim_items_per_op == 4
        assert enhanced.fim_items_per_op == 8

    def test_long_burst_improves_per_item_cost(self):
        plain = config_for("HBM2_2000")
        enhanced = config_for("HBM2_2000", long_burst_fim=True)

        def bursts_per_item(config):
            total = config.fim_offset_bursts + config.fim_data_bursts
            return total / config.fim_items_per_op

        assert bursts_per_item(enhanced) < bursts_per_item(plain)

    def test_offset_bits_bounds(self):
        with pytest.raises(ValueError, match="offset_bits"):
            config_for("DDR4_2400_x16", offset_bits=0)
        with pytest.raises(ValueError, match="offset_bits"):
            config_for("DDR4_2400_x16", offset_bits=17)


class TestWindowFeasibility:
    @pytest.mark.parametrize("grade", sorted(DEVICES))
    def test_window_vs_walk(self, grade):
        """Sec. VI: where items x tCCD exceeds tWR+tRP+tRCD the design
        'slightly adjusts tWR'; the spec must report which case holds."""
        spec = DEVICES[grade]
        expected = (spec.fim_items_per_op * spec.tCCD
                    <= spec.fim_internal_window)
        assert spec.fim_window_ok() == expected

    def test_ddr4_2400_window_holds(self):
        # The paper's 39.84 ns <= 41.64 ns argument.
        spec = DEVICES["DDR4_2400_x16"]
        assert spec.fim_window_ok()
        assert 8 * spec.tCCD == pytest.approx(40.0, abs=0.2)
        assert spec.fim_internal_window == pytest.approx(41.67, abs=0.2)
