"""repro-lint: rule fixtures, suppressions, --fix round-trips, meta-tests.

Each RLxxx rule gets positive (bad source -> violation) and negative
(good source -> clean) fixtures, run through a synthetic scope config
so the tests don't depend on the repo's real file layout.  The
meta-tests then pin the shipped tree itself: ``src/`` + ``tools/``
lint clean under the default config, and the strict-typing gate
(mypy.ini) passes when mypy is available.
"""

import json
import pathlib
import subprocess
import sys
import textwrap

import pytest

from repro.lint import (
    LintConfig,
    Linter,
    PARSE_ERROR,
    SUPPRESSION_DISCIPLINE,
    apply_fixes,
    make_rules,
    run_paths,
)
from repro.lint import cli

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: synthetic scope layout: one module name per rule
SCOPES = {
    "RL001": ("digestmod.py",),
    "RL002": ("storemod.py",),
    "RL003": ("spawnmod.py",),
    "RL004": ("memmapmod.py",),
    "RL005": ("soamod.py",),
    "RL006": ("engine/batched.py",),
}


def make_linter(all_rules_selected: bool = True) -> Linter:
    config = LintConfig(
        scopes=dict(SCOPES),
        digest_extra_functions={"digestmod.py": ("resolve",)},
        loop_setup_functions=("__init__", "_setup"),
    )
    return Linter(
        make_rules(), config, all_rules_selected=all_rules_selected
    )


def lint(rel_path: str, source: str):
    return make_linter().check_source(rel_path, textwrap.dedent(source))


def codes(rel_path: str, source: str) -> list[str]:
    return [v.rule for v in lint(rel_path, source)]


def fix_roundtrip(rel_path: str, source: str) -> str:
    """Apply every fix and assert the rule is then satisfied."""
    source = textwrap.dedent(source)
    linter = make_linter()
    violations = linter.check_source(rel_path, source)
    assert any(v.fixable for v in violations)
    fixed, applied = apply_fixes(source, violations)
    assert applied == sum(1 for v in violations if v.fixable)
    assert linter.check_source(rel_path, fixed) == []
    return fixed


# ---------------------------------------------------------------------------
# RL001 digest determinism
# ---------------------------------------------------------------------------

class TestRL001:
    def test_unsorted_dict_items_flagged_and_fixable(self):
        src = """
        def state_digest(d):
            out = []
            for k, v in d.items():
                out.append((k, v))
            return out
        """
        vs = lint("digestmod.py", src)
        assert [v.rule for v in vs] == ["RL001"]
        assert vs[0].fixable
        fixed = fix_roundtrip("digestmod.py", src)
        assert "sorted(d.items())" in fixed

    def test_set_literal_and_comprehension_iteration(self):
        src = """
        def canonical(xs):
            a = [x for x in {1, 2, 3}]
            b = [k for k in xs.keys()]
            return a, b
        """
        assert codes("digestmod.py", src) == ["RL001", "RL001"]

    def test_sorted_wrap_is_clean(self):
        src = """
        def state_digest(d):
            flat = sorted((k, v) for k, v in d.items())
            for k in sorted(d.keys()):
                flat.append(k)
            return flat
        """
        assert codes("digestmod.py", src) == []

    def test_banned_global_state_calls(self):
        src = """
        import time, random
        def snapshot(x):
            a = time.time()
            b = random.random()
            c = np.random.rand()
            d = hash(x)
            return a, b, c, d
        """
        assert codes("digestmod.py", src) == ["RL001"] * 4

    def test_repr_flagged(self):
        src = """
        def _hash_part(value):
            return repr(value).encode()
        """
        assert codes("digestmod.py", src) == ["RL001"]

    def test_extra_function_name_in_scope(self):
        src = """
        def resolve(d):
            return list(d.items())

        def run(d):
            for k in d.items():
                pass
        """
        # `resolve` is scoped via digest_extra_functions; `run` is not.
        vs = lint("digestmod.py", src)
        assert [v.rule for v in vs] == []
        src_bad = src.replace("return list(d.items())",
                              "return [k for k in d.items()]")
        assert codes("digestmod.py", src_bad) == ["RL001"]

    def test_out_of_scope_file_clean(self):
        src = """
        def state_digest(d):
            for k in d.items():
                pass
        """
        assert codes("othermod.py", src) == []


# ---------------------------------------------------------------------------
# RL002 atomic writes
# ---------------------------------------------------------------------------

class TestRL002:
    def test_direct_writes_flagged(self):
        src = """
        import json
        import numpy as np
        def save(path, obj, arr):
            with open(path, "w") as fh:
                json.dump(obj, fh)
            np.save(path, arr)
            path.write_text("x")
        """
        # open(path, "w") + json.dump to its handle + np.save + write_text
        assert codes("storemod.py", src) == ["RL002"] * 4

    def test_tmp_staging_and_replace_clean(self):
        src = """
        import json, os
        import numpy as np
        def save(path, obj, arr):
            json_tmp = path.with_suffix(".tmp")
            with open(json_tmp, "w") as fh:
                json.dump(obj, fh)
            os.replace(json_tmp, path)
            npz_tmp = str(path) + ".tmp.npz"
            np.save(npz_tmp, arr)
            os.replace(npz_tmp, path)
        """
        assert codes("storemod.py", src) == []

    def test_tempfile_assignment_tracking(self):
        src = """
        import tempfile
        def build(dest):
            workdir = tempfile.mkdtemp()
            staging = workdir + "/part.bin"
            with open(staging, "wb") as fh:
                fh.write(b"x")
        """
        assert codes("storemod.py", src) == []

    def test_read_mode_open_clean(self):
        src = """
        def load(path):
            with open(path, "rb") as fh:
                return fh.read()
        """
        assert codes("storemod.py", src) == []

    def test_open_memmap_write_mode(self):
        src = """
        from numpy.lib.format import open_memmap
        def build(path, n):
            return open_memmap(path, mode="w+", shape=(n,))
        """
        assert codes("storemod.py", src) == ["RL002"]


# ---------------------------------------------------------------------------
# RL003 spawn safety
# ---------------------------------------------------------------------------

class TestRL003:
    def test_fork_context_and_direct_pool(self):
        src = """
        import multiprocessing as mp
        def sweep(cells):
            ctx = mp.get_context("fork")
            pool = mp.Pool(4)
            return ctx, pool
        """
        assert codes("spawnmod.py", src) == ["RL003", "RL003"]

    def test_default_context_flagged(self):
        src = """
        import multiprocessing as mp
        def sweep():
            return mp.get_context()
        """
        assert codes("spawnmod.py", src) == ["RL003"]

    def test_lambda_worker_flagged(self):
        src = """
        def sweep(pool, xs):
            pool.map(lambda x: x + 1, xs)
            pool.apply_async(func=lambda: 0)
        """
        assert codes("spawnmod.py", src) == ["RL003", "RL003"]

    def test_mutable_defaults_flagged(self):
        src = """
        def run(cells=[], opts={}, make=lambda: 1, extra=list()):
            return cells, opts, make, extra
        """
        assert codes("spawnmod.py", src) == ["RL003"] * 4

    def test_spawn_and_module_level_worker_clean(self):
        src = """
        import multiprocessing as mp

        def _worker(cell):
            return cell

        def sweep(cells, opts=None, extra=()):
            ctx = mp.get_context("spawn")
            with ctx.Pool(2) as pool:
                return pool.map(_worker, cells)
        """
        assert codes("spawnmod.py", src) == []


# ---------------------------------------------------------------------------
# RL004 memmap hygiene
# ---------------------------------------------------------------------------

class TestRL004:
    def test_copies_inside_loops_flagged(self):
        src = """
        import numpy as np
        def stream(tiles):
            out = 0
            for tile in tiles:
                a = np.array(tile)
                b = tile.copy()
                c = np.ascontiguousarray(tile)
                out += a.sum() + b.sum() + c.sum()
            return out
        """
        assert codes("memmapmod.py", src) == ["RL004"] * 3

    def test_while_loop_covered_and_deduped(self):
        src = """
        import numpy as np
        def stream(arr, n):
            i = 0
            while i < n:
                for j in range(2):
                    chunk = np.copy(arr[i:i + 4])
                i += 4
            return chunk
        """
        # nested loops must report the same call once
        assert codes("memmapmod.py", src) == ["RL004"]

    def test_copy_outside_loop_and_copy_module_clean(self):
        src = """
        import copy
        import numpy as np
        def stream(tiles, template):
            base = np.array(template)
            for tile in tiles:
                meta = copy.copy(tile.meta)
                base += tile[:4].sum() + len(meta)
            return base
        """
        assert codes("memmapmod.py", src) == []


# ---------------------------------------------------------------------------
# RL005 SoA dtype discipline
# ---------------------------------------------------------------------------

class TestRL005:
    def test_bare_constructions_flagged(self):
        src = """
        import numpy as np
        def build(n):
            a = np.zeros(n)
            b = np.arange(n)
            c = np.full(n, 7)
            return a, b, c
        """
        vs = lint("soamod.py", src)
        assert [v.rule for v in vs] == ["RL005"] * 3
        # zeros is mechanically fixable; arange/full infer, so hand-fix
        assert [v.fixable for v in vs] == [True, False, False]

    def test_fix_roundtrip_makes_default_explicit(self):
        src = """
        import numpy as np
        def build(n):
            return np.zeros(n), np.empty((n, 2))
        """
        fixed = fix_roundtrip("soamod.py", src)
        assert "np.zeros(n, dtype=np.float64)" in fixed
        assert "np.empty((n, 2), dtype=np.float64)" in fixed

    def test_explicit_dtype_clean(self):
        src = """
        import numpy as np
        def build(n):
            a = np.zeros(n, dtype=np.int64)
            b = np.arange(n, dtype=np.int64)
            c = np.full((n, 4), -1, dtype=np.int32)
            return a, b, c
        """
        assert codes("soamod.py", src) == []


# ---------------------------------------------------------------------------
# RL006 no scalar loops in batched modules
# ---------------------------------------------------------------------------

class TestRL006:
    def test_per_request_loop_and_while_flagged(self):
        src = """
        class Engine:
            def run(self, addrs):
                total = 0
                for addr in addrs:
                    total += addr
                while total > 0:
                    total -= 1
                return total
        """
        assert codes("engine/batched.py", src) == ["RL006", "RL006"]

    def test_structural_and_setup_loops_clean(self):
        src = """
        _COLS = ("a", "b")

        class Engine:
            STATE_ARRAYS = ("x", "y")

            def __init__(self, reqs):
                for r in reqs:
                    self.push(r)

            def seal(self, state):
                for name in _COLS:
                    pass
                for name, arr in zip(self.STATE_ARRAYS, state):
                    pass
                for i in range(4):
                    pass
                return [x * 2 for x in state]
        """
        assert codes("engine/batched.py", src) == []

    def test_scope_glob_only_batched_modules(self):
        src = """
        def run(addrs):
            for addr in addrs:
                pass
        """
        assert codes("engine/scalar.py", src) == []


# ---------------------------------------------------------------------------
# Suppressions (RL007 discipline) and parse errors (RL000)
# ---------------------------------------------------------------------------

class TestSuppressions:
    BAD = """
    import numpy as np
    def build(n):
        return np.arange(n){comment}
    """

    def test_justified_inline_suppression(self):
        src = self.BAD.format(
            comment="  # repro-lint: disable=RL005 -- dtype set by caller"
        )
        assert codes("soamod.py", src) == []

    def test_missing_justification_is_error_and_does_not_suppress(self):
        src = self.BAD.format(comment="  # repro-lint: disable=RL005")
        assert sorted(codes("soamod.py", src)) == [
            "RL005", SUPPRESSION_DISCIPLINE
        ]

    def test_unknown_code_is_error(self):
        src = self.BAD.format(
            comment="  # repro-lint: disable=RL005,RL999 -- both of them"
        )
        # RL005 suppressed, RL999 reported as unknown
        assert codes("soamod.py", src) == [SUPPRESSION_DISCIPLINE]

    def test_unused_suppression_is_error(self):
        src = """
        import numpy as np
        def build(n):
            return np.arange(n, dtype=np.int64)  # repro-lint: disable=RL005 -- not needed
        """
        assert codes("soamod.py", src) == [SUPPRESSION_DISCIPLINE]

    def test_unused_check_off_under_rule_subset(self):
        src = textwrap.dedent("""
        import numpy as np
        def build(n):
            return np.arange(n, dtype=np.int64)  # repro-lint: disable=RL005 -- not needed
        """)
        linter = make_linter(all_rules_selected=False)
        assert linter.check_source("soamod.py", src) == []

    def test_standalone_comment_covers_next_statement(self):
        src = """
        import numpy as np
        def build(n):
            # repro-lint: disable=RL005 -- fp accumulator, float64 intended
            return np.arange(
                n,
            )
        """
        assert codes("soamod.py", src) == []

    def test_suppression_text_in_docstring_ignored(self):
        src = '''
        def build(n):
            """Quote: # repro-lint: disable=RL005 -- not a real comment."""
            return n
        '''
        assert codes("soamod.py", src) == []

    def test_parse_error_reported_as_rl000(self):
        assert codes("soamod.py", "def f(:\n") == [PARSE_ERROR]


# ---------------------------------------------------------------------------
# CLI contract and --fix end to end
# ---------------------------------------------------------------------------

class TestCLI:
    def test_unknown_select_code_exits_2(self, capsys):
        rc = cli.main(["--select", "RL999", str(REPO_ROOT / "src")])
        assert rc == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_missing_path_exits_2(self, capsys):
        rc = cli.main([str(REPO_ROOT / "no-such-dir")])
        assert rc == 2

    def test_list_rules(self, capsys):
        assert cli.main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in SCOPES:
            assert code in out

    def test_json_report_on_violating_tree(self, tmp_path, capsys):
        mod = tmp_path / "eng" / "batched.py"
        mod.parent.mkdir()
        mod.write_text(
            "def run(addrs):\n    for a in addrs:\n        pass\n"
        )
        rc = cli.main(
            ["--json", "--root", str(tmp_path), str(tmp_path)]
        )
        assert rc == 1
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False
        assert report["counts_by_rule"] == {"RL006": 1}
        assert report["violations"][0]["path"] == "eng/batched.py"

    def test_fix_rewrites_file(self, tmp_path):
        mod = tmp_path / "soamod.py"
        mod.write_text(
            "import numpy as np\n\ndef build(n):\n"
            "    return np.zeros(n)\n"
        )
        linter = make_linter()
        report = linter.run([("soamod.py", mod)], fix=True)
        assert report.fixes_applied == 1
        assert report.ok
        assert "np.zeros(n, dtype=np.float64)" in mod.read_text()


# ---------------------------------------------------------------------------
# Meta-tests: the shipped tree itself
# ---------------------------------------------------------------------------

class TestShippedTree:
    def test_tree_is_lint_clean(self):
        report = run_paths(root=REPO_ROOT)
        assert report.files_checked > 50
        assert report.ok, "\n" + report.render()

    def test_cli_clean_exit_matches(self, capsys):
        rc = cli.main(["--root", str(REPO_ROOT),
                       str(REPO_ROOT / "src"), str(REPO_ROOT / "tools")])
        assert rc == 0
        assert "clean" in capsys.readouterr().out

    def test_mypy_strict_gate(self):
        pytest.importorskip("mypy")
        proc = subprocess.run(
            [sys.executable, "-m", "mypy", "--config-file",
             str(REPO_ROOT / "mypy.ini")],
            capture_output=True, text=True, cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
