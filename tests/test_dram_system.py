"""Tests for the episode-based DRAM timing model."""

import numpy as np
import pytest

from repro.dram.spec import DEVICES, DRAMConfig
from repro.dram.system import DRAMModel, FimOp, PhaseStats


@pytest.fixture
def model(ddr4_config):
    return DRAMModel(ddr4_config)


def random_block_addrs(n, region_bytes, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.integers(0, region_bytes // 64, n) * 64).astype(np.int64)


class TestBasicTiming:
    def test_empty_phase_is_free(self, model):
        stats = model.phase()
        assert stats.time_ns == 0.0
        assert stats.read_bursts == 0

    def test_single_read_pays_latency_floor(self, model):
        stats = model.phase(addrs=np.asarray([0], dtype=np.int64))
        assert stats.time_ns >= model.latency_ns()
        assert stats.read_bursts == 1
        assert stats.acts == 1

    def test_time_monotonic_in_requests(self, model):
        region = 1 << 20
        t_small = model.phase(addrs=random_block_addrs(100, region)).time_ns
        t_large = model.phase(addrs=random_block_addrs(10_000, region)).time_ns
        assert t_large > t_small

    def test_row_hits_cheaper_than_misses(self, model):
        # Sequential blocks in one row vs blocks scattered across rows.
        hits = np.arange(64, dtype=np.int64) * 64
        row_stride = model.config.spec.row_bytes * model.config.total_banks
        misses = np.arange(64, dtype=np.int64) * row_stride
        t_hits = model.phase(addrs=hits).time_ns
        t_miss = model.phase(addrs=misses).time_ns
        assert t_miss > t_hits

    def test_writes_counted(self, model):
        addrs = random_block_addrs(50, 1 << 20)
        writes = np.ones(50, dtype=bool)
        stats = model.phase(addrs=addrs, is_write=writes)
        assert stats.write_bursts == 50
        assert stats.read_bursts == 0

    def test_internal_requests_skip_bus(self, model):
        addrs = random_block_addrs(100, 1 << 20)
        internal = np.ones(100, dtype=bool)
        stats = model.phase(addrs=addrs, internal_mask=internal)
        assert stats.read_bursts == 0
        assert stats.internal_words == 100 * 8
        assert stats.time_ns > 0  # bank time still paid


class TestStreams:
    def test_stream_bandwidth_near_peak(self, model):
        nbytes = 64 * 1024 * 1024
        stats = model.phase(stream_read_bytes=nbytes)
        achieved = nbytes / stats.time_ns  # GB/s
        peak = model.config.peak_bandwidth_gbps
        assert achieved > 0.9 * peak
        assert achieved <= peak + 1e-6

    def test_channels_scale_stream_bandwidth(self):
        nbytes = 16 * 1024 * 1024
        one = DRAMModel(DRAMConfig(spec=DEVICES["DDR4_2400_x16"], channels=1))
        two = DRAMModel(DRAMConfig(spec=DEVICES["DDR4_2400_x16"], channels=2))
        t1 = one.phase(stream_read_bytes=nbytes).time_ns
        t2 = two.phase(stream_read_bytes=nbytes).time_ns
        assert t1 / t2 == pytest.approx(2.0, rel=0.01)

    def test_stream_activation_count(self, model):
        nbytes = model.config.spec.row_bytes * 10
        stats = model.phase(stream_read_bytes=nbytes)
        assert stats.acts == 10


class TestFimOps:
    def _gather(self, model, n_ops, items=8, same_row=False, scatter=False):
        ops = []
        for i in range(n_ops):
            row = 0 if same_row else i
            ops.append(
                FimOp(channel=0, rank=0, bank=(0 if same_row else i % 8),
                      row=row, items=items, is_scatter=scatter)
            )
        return model.phase(fim_ops=ops)

    def test_gather_counts(self, model):
        stats = self._gather(model, 10)
        assert stats.fim_gathers == 10
        assert stats.fim_scatters == 0
        assert stats.internal_words == 80
        # 1 offset burst (write) + 1 data burst (read) per op on x16
        assert stats.read_bursts == 10
        assert stats.write_bursts == 10
        assert stats.fim_offset_bursts == 10

    def test_scatter_counts(self, model):
        stats = self._gather(model, 10, scatter=True)
        assert stats.fim_scatters == 10
        # offset burst + data burst, both writes
        assert stats.write_bursts == 20
        assert stats.read_bursts == 0

    def test_fim_beats_conventional_random(self, model):
        # 8000 random 8 B items in a 512 KB region.
        region = 512 * 1024
        addrs = random_block_addrs(8000, region, seed=3)
        t_conv = model.phase(addrs=addrs).time_ns
        bank, row = model.mapper.bank_key_many(addrs)
        key = row * model.config.total_banks + bank
        order = np.argsort(key, kind="stable")
        ops = []
        i = 0
        while i < 8000:
            j = min(i + 8, 8000)
            while j > i + 1 and key[order[j - 1]] != key[order[i]]:
                j -= 1
            k = order[i]
            ops.append(FimOp(0, int(bank[k]) // 8 % 4, int(bank[k]),
                             int(row[k]), j - i, False))
            i = j
        t_fim = model.phase(fim_ops=ops).time_ns
        assert t_conv / t_fim > 2.5  # approaching the 4x ideal

    def test_rank_level_ops_serialise_on_rank(self, ddr4_config):
        model = DRAMModel(ddr4_config)
        # Many rank-level gathers on one rank: rank data path binds.
        ops = [
            FimOp(channel=0, rank=0, bank=i % 8, row=i, items=8,
                  is_scatter=False, rank_level=True)
            for i in range(500)
        ]
        t_nmp = model.phase(fim_ops=ops).time_ns
        ops_bank = [
            FimOp(channel=0, rank=0, bank=i % 8, row=i, items=8,
                  is_scatter=False, rank_level=False)
            for i in range(500)
        ]
        t_fim = DRAMModel(ddr4_config).phase(fim_ops=ops_bank).time_ns
        assert t_nmp >= t_fim

    def test_partial_ops_cost_full_window(self, model):
        full = self._gather(model, 100, items=8).time_ns
        partial = self._gather(model, 100, items=2).time_ns
        # Partial gathers still occupy the virtual-row window.
        assert partial == pytest.approx(full, rel=0.2)


class TestLooseBursts:
    def test_bus_only_bursts(self, model):
        stats = model.phase(loose_read_bursts=1000)
        expected = 1000 * model.config.spec.tBURST
        assert stats.time_ns == pytest.approx(expected, rel=0.01)
        assert stats.read_bursts == 1000
        assert stats.acts == 0


class TestPhaseStatsMerge:
    def test_sequential_merge_adds_time(self):
        a = PhaseStats(time_ns=10.0, read_bursts=1)
        b = PhaseStats(time_ns=5.0, read_bursts=2)
        a.merge(b)
        assert a.time_ns == 15.0
        assert a.read_bursts == 3

    def test_overlap_merge_takes_max(self):
        a = PhaseStats(time_ns=10.0)
        b = PhaseStats(time_ns=25.0)
        a.merge(b, overlap=True)
        assert a.time_ns == 25.0

    def test_byte_properties_follow_burst_size(self):
        s = PhaseStats(read_bursts=4, _burst_bytes=32)
        assert s.read_bytes == 128


class TestRankSensitivity:
    def test_more_ranks_help_random_traffic(self):
        region = 1 << 20
        addrs = random_block_addrs(20_000, region, seed=1)
        times = {}
        for ranks in (1, 2, 4):
            cfg = DRAMConfig(spec=DEVICES["DDR4_2400_x16"], ranks=ranks)
            times[ranks] = DRAMModel(cfg).phase(addrs=addrs).time_ns
        assert times[1] >= times[2] >= times[4]
