"""Channel-controller scheduling: command sequences, FR-FCFS, FIM."""

import pytest

from repro.dram.engine.commands import CommandType, Request, RequestType
from repro.dram.engine.controller import ChannelController
from repro.dram.engine.timing import timing_from_spec
from repro.dram.spec import DEVICES

ACT, PRE, RD, WR = (CommandType.ACT, CommandType.PRE,
                    CommandType.RD, CommandType.WR)


def make_controller(refresh=False, **kwargs):
    timing = timing_from_spec(DEVICES["DDR4_2400_x16"])
    return ChannelController(timing, ranks=1, refresh_enabled=refresh,
                             **kwargs)


def drain(controller, limit=200_000):
    now = 0
    while controller.pending:
        next_cycle, issued = controller.step(now)
        now = next_cycle if issued else max(now + 1, min(next_cycle,
                                                         now + 10_000))
        limit -= 1
        assert limit > 0, "controller failed to drain"
    return controller


def read(bank, row, column=0, req_id=0, arrival=0):
    return Request(RequestType.READ, rank=0, bank=bank, row=row,
                   column=column, req_id=req_id, arrival=arrival)


def write(bank, row, column=0, req_id=0):
    return Request(RequestType.WRITE, rank=0, bank=bank, row=row,
                   column=column, req_id=req_id)


def gather(bank, row, offsets=(0, 1, 2, 3, 4, 5, 6, 7), req_id=0):
    return Request(RequestType.GATHER, rank=0, bank=bank, row=row,
                   offsets=tuple(offsets), req_id=req_id)


def scatter(bank, row, offsets=(0, 1, 2, 3, 4, 5, 6, 7), req_id=0):
    return Request(RequestType.SCATTER, rank=0, bank=bank, row=row,
                   offsets=tuple(offsets), req_id=req_id)


class TestSingleRequests:
    def test_cold_read_sequence(self):
        controller = make_controller()
        controller.enqueue(read(0, 5))
        drain(controller)
        kinds = [c.kind for c in controller.trace]
        assert kinds == [ACT, RD]
        assert controller.trace[0].row == 5

    def test_read_latency_is_rcd_cl_bl(self):
        controller = make_controller()
        request = read(0, 5)
        controller.enqueue(request)
        drain(controller)
        timing = controller.timing
        assert request.finish_cycle == (
            timing.tRCD + timing.tCL + timing.tBL
        )

    def test_row_hit_skips_act(self):
        controller = make_controller()
        controller.enqueue(read(0, 5, column=0, req_id=0))
        controller.enqueue(read(0, 5, column=1, req_id=1))
        drain(controller)
        kinds = [c.kind for c in controller.trace]
        assert kinds == [ACT, RD, RD]

    def test_row_conflict_precharges(self):
        controller = make_controller()
        controller.enqueue(read(0, 5, req_id=0))
        controller.enqueue(read(0, 9, req_id=1))
        drain(controller)
        kinds = [c.kind for c in controller.trace]
        assert kinds == [ACT, RD, PRE, ACT, RD]

    def test_write_completes_at_data_end(self):
        controller = make_controller()
        request = write(0, 5)
        controller.enqueue(request)
        drain(controller)
        timing = controller.timing
        wr = [c for c in controller.trace if c.kind is WR][0]
        assert request.finish_cycle == wr.data_start + timing.tBL


class TestFRFCFS:
    def test_row_hit_served_before_older_conflict(self):
        controller = make_controller()
        # Oldest request conflicts (row 9); a younger one hits row 5.
        controller.enqueue(read(0, 5, column=0, req_id=0))
        controller.enqueue(read(0, 9, column=0, req_id=1))
        controller.enqueue(read(0, 5, column=1, req_id=2))
        drain(controller)
        order = [c.req_id for c in controller.trace if c.kind is RD]
        assert order == [0, 2, 1]

    def test_bank_parallelism_overlaps_activations(self):
        controller = make_controller()
        for bank in range(4):
            controller.enqueue(read(bank, 1, req_id=bank))
        drain(controller)
        acts = [c.cycle for c in controller.trace if c.kind is ACT]
        # Activations pipeline at tRRD spacing, far below serial tRC.
        assert len(acts) == 4
        assert acts[-1] - acts[0] < controller.timing.tRC

    def test_writes_drain_when_no_reads(self):
        controller = make_controller()
        for i in range(3):
            controller.enqueue(write(0, 1, column=i, req_id=i))
        drain(controller)
        assert controller.stats.writes == 3

    def test_write_drain_watermark(self):
        controller = make_controller(queue_depth=8)
        # Fill writes to the high watermark; reads still pending.
        controller.enqueue(read(1, 1, req_id=100))
        for i in range(6):
            controller.enqueue(write(0, 1, column=i, req_id=i))
        drain(controller)
        assert controller.stats.writes == 6
        assert controller.stats.reads == 1


class TestFimSequences:
    def test_gather_command_shape(self):
        controller = make_controller()
        controller.enqueue(gather(0, 5))
        drain(controller)
        kinds = [c.kind for c in controller.trace]
        assert kinds == [ACT, WR, PRE, ACT, RD]
        virtual = [c.virtual for c in controller.trace]
        assert virtual == [False, True, True, True, True]
        assert controller.stats.gathers == 1

    def test_scatter_command_shape(self):
        controller = make_controller()
        controller.enqueue(scatter(0, 5))
        drain(controller)
        kinds = [c.kind for c in controller.trace]
        # offsets, data, PRE/ACT gap, dummy trigger write
        assert kinds == [ACT, WR, WR, PRE, ACT, WR]
        assert controller.stats.scatters == 1

    def test_gather_window_bound(self):
        controller = make_controller()
        controller.enqueue(gather(0, 5))
        drain(controller)
        timing = controller.timing
        wr_offsets = [c for c in controller.trace
                      if c.kind is WR and c.virtual][0]
        rd = [c for c in controller.trace if c.kind is RD][0]
        window = 8 * timing.tCCD_L
        assert rd.cycle >= wr_offsets.data_end + window

    def test_physical_row_survives_fim(self):
        controller = make_controller()
        controller.enqueue(gather(0, 5, req_id=0))
        controller.enqueue(read(0, 5, req_id=1))
        drain(controller)
        # The read after the gather must be a row hit: exactly one
        # non-virtual ACT in the whole trace.
        real_acts = [c for c in controller.trace
                     if c.kind is ACT and not c.virtual]
        assert len(real_acts) == 1

    def test_fim_different_row_reactivates(self):
        controller = make_controller()
        controller.enqueue(gather(0, 5, req_id=0))
        controller.enqueue(gather(0, 6, req_id=1))
        drain(controller)
        real_acts = [c for c in controller.trace
                     if c.kind is ACT and not c.virtual]
        assert [c.row for c in real_acts] == [5, 6]

    def test_partial_gather_fewer_offsets(self):
        controller = make_controller()
        controller.enqueue(gather(0, 5, offsets=(1, 2, 3)))
        drain(controller)
        assert controller.stats.gathers == 1

    def test_fim_and_reads_interleave_across_banks(self):
        controller = make_controller()
        controller.enqueue(gather(0, 5, req_id=0))
        controller.enqueue(read(3, 2, req_id=1))
        drain(controller)
        assert controller.stats.gathers == 1
        assert controller.stats.reads >= 1

    def test_offsets_required(self):
        with pytest.raises(ValueError, match="offsets"):
            Request(RequestType.GATHER, rank=0, bank=0, row=0)


class TestRefresh:
    def test_refresh_issued_on_schedule(self):
        controller = make_controller(refresh=True)
        timing = controller.timing
        # Spread arrivals over ~3 tREFI so refreshes interleave.
        horizon = 3 * timing.tREFI
        for i in range(60):
            controller.enqueue(read(i % 8, 1, column=i,
                                    arrival=i * horizon // 60, req_id=i))
        drain(controller)
        assert controller.stats.refreshes >= 2

    def test_refresh_closes_banks_first(self):
        controller = make_controller(refresh=True)
        timing = controller.timing
        controller.enqueue(read(0, 1, req_id=0))
        controller.enqueue(read(0, 1, column=5, req_id=1,
                                arrival=timing.tREFI + 10))
        drain(controller)
        trace = controller.trace
        ref_idx = next(i for i, c in enumerate(trace)
                       if c.kind is CommandType.REF)
        # A PRE must close bank 0 before REF.
        assert any(c.kind is PRE for c in trace[:ref_idx])
