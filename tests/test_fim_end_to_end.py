"""End-to-end FIM validation: randomized gather/scatter command streams.

The strongest form of the paper's FPGA validation claim: for arbitrary
interleavings of scatters and gathers on arbitrary rows/offsets, the
virtual-row command sequences must (a) contain only standard DDR4
commands, (b) satisfy every JEDEC timing constraint, and (c) move data
bit-exactly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fim import FimBank
from repro.core.fim_commands import (
    DDRCommand,
    VirtualRowController,
    VirtualRowMap,
    gather_sequence,
    scatter_sequence,
)
from repro.dram.spec import DEVICES
from repro.validate.protocol import DDR4ProtocolChecker

SPEC = DEVICES["DDR4_2400_x16"]
ROWS = 4


@st.composite
def operations(draw):
    """A short programme of scatters and gathers on one bank."""
    n_ops = draw(st.integers(min_value=1, max_value=6))
    ops = []
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["gather", "scatter"]))
        row = draw(st.integers(min_value=0, max_value=ROWS - 1))
        offsets = draw(
            st.lists(
                st.integers(min_value=0, max_value=SPEC.row_words - 1),
                min_size=1, max_size=8, unique=True,
            )
        )
        values = draw(
            st.lists(
                st.integers(min_value=0, max_value=(1 << 62)),
                min_size=len(offsets), max_size=len(offsets),
            )
        )
        ops.append((kind, row, offsets, values))
    return ops


@settings(max_examples=60, deadline=None)
@given(ops=operations(), seed=st.integers(min_value=0, max_value=2**31))
def test_random_programmes_are_legal_and_bit_exact(ops, seed):
    rng = np.random.default_rng(seed)
    bank = FimBank(SPEC, rows=ROWS)
    for r in range(ROWS):
        bank.cells[r] = rng.integers(
            0, 1 << 63, size=SPEC.row_words, dtype=np.uint64
        )
    # The shadow model: plain numpy arrays updated directly.
    shadow = bank.cells.copy()

    vmap = VirtualRowMap(physical_rows=ROWS)
    controller = VirtualRowController(bank, vmap)
    checker = DDR4ProtocolChecker(SPEC, strict_ras=False)

    t = 0.0
    open_row = None
    use_y = True
    for kind, row, offsets, values in ops:
        # Open the target row (the checker tracks the virtual row the
        # memory controller believes it is using).
        if open_row != row:
            if open_row is not None:
                t += max(SPEC.tRAS, SPEC.fim_internal_window)
                controller.handle(DDRCommand(t, "PRE", 0))
                checker.check(DDRCommand(t, "PRE", 0))
                t += SPEC.tRP
            controller.handle(DDRCommand(t, "ACT", 0, row=row))
            checker.check(
                DDRCommand(t, "ACT", 0,
                           row=vmap.row_y if use_y else vmap.row_z)
            )
            t += SPEC.tRCD
            open_row = row

        if kind == "gather":
            cmds = gather_sequence(
                SPEC, vmap, 0, offsets, start_ns=t, use_row_y=use_y
            )
        else:
            cmds = scatter_sequence(
                SPEC, vmap, 0, offsets, values, start_ns=t, use_row_y=use_y
            )
        data = None
        for cmd in cmds:
            checker.check(cmd)
            out = controller.handle(cmd)
            if out is not None:
                data = out
        t = cmds[-1].time_ns + SPEC.tCCD
        use_y = not use_y  # sequences alternate the virtual rows

        if kind == "gather":
            expected = [int(shadow[row][o]) for o in offsets]
            assert data == expected, "gather must match the shadow model"
        else:
            for o, v in zip(offsets, values):
                shadow[row][o] = np.uint64(v)

    # Final state check: precharge and compare every row.
    t += max(SPEC.tRAS, SPEC.fim_internal_window)
    controller.handle(DDRCommand(t, "PRE", 0))
    assert np.array_equal(bank.cells, shadow)
