"""Engine corner cases: degenerate queues, tiny ops, mixed rows."""

import numpy as np
import pytest

from repro.dram.engine import (
    DRAMEngine,
    Request,
    RequestType,
    check_engine_result,
)
from repro.dram.engine.workloads import conventional_requests
from repro.dram.spec import DEVICES, DRAMConfig, default_config


@pytest.fixture(scope="module")
def config():
    return default_config()


class TestDegenerateInputs:
    def test_empty_run(self, config):
        result = DRAMEngine(config).run([])
        assert result.cycles == 0
        assert result.stats.finished_requests == 0

    def test_single_request(self, config):
        engine = DRAMEngine(config)
        request = Request(RequestType.READ, rank=0, bank=0, row=0)
        result = engine.run([request])
        assert request.done
        assert check_engine_result(result) == 2  # ACT + RD

    def test_queue_depth_one_still_drains(self, config):
        engine = DRAMEngine(config, queue_depth=1)
        addrs = np.arange(0, 64 * 60, 64, dtype=np.int64)
        requests, channels = conventional_requests(config, addrs)
        result = engine.run(requests, channels)
        assert result.stats.finished_requests == 60
        assert check_engine_result(result) > 0

    def test_single_offset_gather(self, config):
        engine = DRAMEngine(config)
        request = Request(RequestType.GATHER, rank=0, bank=0, row=0,
                          offsets=(5,))
        result = engine.run([request])
        assert result.stats.gathers == 1
        assert check_engine_result(result) > 0

    def test_far_future_arrival(self, config):
        engine = DRAMEngine(config)
        request = Request(RequestType.READ, rank=0, bank=0, row=0,
                          arrival=100_000)
        result = engine.run([request])
        assert request.issue_cycle >= 100_000

    def test_duplicate_addresses_collapse(self, config):
        addrs = np.zeros(50, dtype=np.int64)
        requests, _ = conventional_requests(config, addrs)
        assert len(requests) == 1


class TestSameBankContention:
    def test_alternating_rows_get_batched(self, config):
        """Two rows ping-ponging on one bank: FR-FCFS serves all hits of
        the open row first, costing two activations instead of twenty."""
        engine = DRAMEngine(config)
        requests = [
            Request(RequestType.READ, rank=0, bank=0,
                    row=i % 2, column=i, req_id=i)
            for i in range(20)
        ]
        result = engine.run(requests)
        assert result.stats.acts == 2
        row0_last = max(r.finish_cycle for r in requests if r.row == 0)
        row1_first = min(r.finish_cycle for r in requests if r.row == 1)
        assert row0_last < row1_first
        assert check_engine_result(result) > 0

    def test_fcfs_order_preserved_on_one_bank_row(self, config):
        engine = DRAMEngine(config)
        requests = [
            Request(RequestType.READ, rank=0, bank=0, row=3,
                    column=i, req_id=i)
            for i in range(16)
        ]
        result = engine.run(requests)
        finish = [r.finish_cycle for r in sorted(result.requests,
                                                 key=lambda r: r.req_id)]
        assert finish == sorted(finish)

    def test_gather_storm_on_one_bank_serialises(self, config):
        engine = DRAMEngine(config)
        requests = [
            Request(RequestType.GATHER, rank=0, bank=0, row=0,
                    offsets=tuple(range(8 * i, 8 * i + 8)), req_id=i)
            for i in range(8)
        ]
        result = engine.run(requests)
        assert result.stats.gathers == 8
        window = 8 * engine.timing.tCCD_L
        # Eight window-bound sequences cannot overlap on one bank.
        assert result.cycles >= 8 * window
        assert check_engine_result(result) > 0


class TestLowLevelConfigs:
    def test_single_bank_rank(self):
        spec = DEVICES["DDR4_2400_x16"]
        config = DRAMConfig(spec=spec, channels=1, ranks=1)
        engine = DRAMEngine(config)
        addrs = np.arange(0, 64 * 40, 64, dtype=np.int64)
        requests, channels = conventional_requests(config, addrs)
        result = engine.run(requests, channels)
        assert result.stats.finished_requests == 40
        assert check_engine_result(result) > 0

    @pytest.mark.parametrize("grade", sorted(DEVICES))
    def test_refresh_alone(self, grade):
        """No requests: the engine must not spin on refresh deadlines."""
        config = DRAMConfig(spec=DEVICES[grade], channels=1, ranks=1)
        result = DRAMEngine(config, refresh_enabled=True).run([])
        assert result.cycles == 0
