"""Experiment-service contract tests: adapter, cache, single-flight,
failure/retry, backend parity.

The service's value claims are pinned here at toy scale:

- every JSON config either 400s with a self-describing error or
  canonicalizes to the repo-wide cell digest (the cache key);
- digest-identical concurrent POSTs run the cell ONCE (single-flight);
- a cache hit returns a record bit-identical to a direct
  ``run_resolved`` call (and survives a service restart via the
  content-addressed store);
- failed cells report ``failed`` with the error and are retryable;
- the stdlib HTTP fallback and the FastAPI app serialize the same
  ``(status, payload)`` core contract (FastAPI checked when installed,
  and its absence produces a clear error, never a broken server).
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.accel.base import SystemResult
from repro.experiments import runner
from repro.experiments.parallel import CellOutcome
from repro.experiments.requests import (
    REQUEST_FIELDS,
    RequestError,
    resolve_request,
)
from repro.experiments.runner import (
    CellSpec,
    clear_result_cache,
    resolve_cell,
    run_resolved,
)
from repro.service import ExperimentService, make_server
from repro.service.fastapi_app import create_fastapi_app, fastapi_available

#: a fast toy cell for real-simulation tests
CONFIG = {
    "system": "Piccolo",
    "algorithm": "PR",
    "dataset": "UU",
    "profile": "toy",
    "max_iterations": 2,
}


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_result_cache()
    yield
    clear_result_cache()


def _fake_outcome(cell, total_ns=123.0):
    result = SystemResult(
        system=cell.system, algorithm=cell.algorithm,
        dataset=cell.dataset, total_ns=total_ns,
    )
    return CellOutcome(
        spec=cell.spec, digest=cell.digest, result=result,
        seconds=0.01, rss_mb=1.0, source="run",
    )


def _wait_job(service, digest, timeout=30.0):
    job = service._jobs[digest]
    assert job.wait(timeout), f"job {digest} did not finish"
    return job


# ---------------------------------------------------------------------------
# resolve_request: the JSON -> CellSpec adapter
# ---------------------------------------------------------------------------
class TestResolveRequest:
    def test_minimal_config_resolves_with_digest(self):
        cell = resolve_request(CONFIG)
        assert cell.digest is not None and len(cell.digest) == 32

    def test_digest_matches_the_runner_canonicalization(self):
        cell = resolve_request(CONFIG)
        spec = CellSpec(
            system="Piccolo", algorithm="PR", dataset="UU",
            scale="toy", max_iterations=2,
        )
        assert cell.digest == resolve_cell(spec).digest

    def test_profile_defaults_to_toy(self):
        trimmed = {k: v for k, v in CONFIG.items() if k != "profile"}
        assert resolve_request(trimmed).digest == resolve_request(CONFIG).digest

    @pytest.mark.parametrize("payload,fragment", [
        ("not a dict", "JSON object"),
        ([1, 2], "JSON object"),
        ({"algorithm": "PR", "dataset": "UU"}, "missing required"),
        ({**CONFIG, "seed": 3}, "unknown config key"),
        ({**CONFIG, "system": "Nope"}, "unknown system"),
        ({**CONFIG, "dataset": "XX"}, "unknown dataset"),
        ({**CONFIG, "profile": "huge"}, "unknown profile"),
        ({**CONFIG, "cache_design": "magic"}, "unknown cache_design"),
        ({**CONFIG, "tile_backing": "tape"}, "unknown tile_backing"),
        ({**CONFIG, "max_iterations": "three"}, "must be int"),
        ({**CONFIG, "max_iterations": True}, "must be int"),
        ({**CONFIG, "max_iterations": 0}, ">= 1"),
        ({**CONFIG, "scale_shift": -1}, ">= 0"),
        ({**CONFIG, "system": 7}, "must be str"),
    ])
    def test_bad_configs_raise_self_describing_errors(
        self, payload, fragment
    ):
        with pytest.raises(RequestError, match=fragment):
            resolve_request(payload)

    def test_every_field_is_json_expressible(self):
        # the schema must never grow a key that JSON cannot carry
        for types, _description in REQUEST_FIELDS.values():
            assert set(types) <= {str, int}

    def test_cache_design_request_resolves(self):
        cell = resolve_request({**CONFIG, "cache_design": "Piccolo (LRU)"})
        assert cell.digest is not None
        assert "cache_factory" in cell.make_kwargs


# ---------------------------------------------------------------------------
# single-flight + cache layering (injected runner: no simulation)
# ---------------------------------------------------------------------------
class TestSingleFlight:
    def test_concurrent_identical_posts_run_once(self, tmp_path):
        release = threading.Event()
        calls = []

        def slow_runner(cell):
            calls.append(cell.digest)
            assert release.wait(30)
            return _fake_outcome(cell)

        with ExperimentService(tmp_path, run_cell=slow_runner) as service:
            codes = []
            first = service.submit(CONFIG)
            codes.append(first)
            barrier = threading.Barrier(3)

            def fire():
                barrier.wait()
                codes.append(service.submit(CONFIG))

            threads = [threading.Thread(target=fire) for _ in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            release.set()
            digest = first[1]["digest"]
            _wait_job(service, digest)
            assert calls == [digest]  # exactly one simulation
            joined = [p for c, p in codes if p.get("joined")]
            assert len(joined) == 3 and all(
                p["digest"] == digest for p in joined
            )
            assert service.stats.misses == 1
            assert service.stats.single_flight_joined == 3
            # after completion: a plain cache hit
            code, payload = service.submit(CONFIG)
            assert code == 200 and payload["cached"]
            assert payload["source"] == "memo"

    def test_distinct_configs_do_not_share_a_flight(self, tmp_path):
        def fast_runner(cell):
            return _fake_outcome(cell)

        with ExperimentService(tmp_path, run_cell=fast_runner) as service:
            a = service.submit(CONFIG)
            b = service.submit({**CONFIG, "max_iterations": 3})
            assert a[1]["digest"] != b[1]["digest"]
            assert service.stats.misses == 2


# ---------------------------------------------------------------------------
# failure + retry
# ---------------------------------------------------------------------------
class TestFailureAndRetry:
    def test_failed_cell_reports_error_and_is_retryable(self, tmp_path):
        attempts = []

        def flaky_runner(cell):
            attempts.append(cell.digest)
            if len(attempts) == 1:
                raise RuntimeError("synthetic simulation crash")
            return _fake_outcome(cell)

        with ExperimentService(tmp_path, run_cell=flaky_runner) as service:
            code, payload = service.submit(CONFIG)
            assert code == 202
            digest = payload["digest"]
            _wait_job(service, digest)
            code, status = service.status(digest)
            assert code == 200 and status["status"] == "failed"
            assert "synthetic simulation crash" in status["error"]
            assert status["retryable"] is True
            # retry: the same config enqueues a FRESH run
            code, payload = service.submit(CONFIG)
            assert code == 202 and payload["status"] == "queued"
            _wait_job(service, digest)
            code, status = service.status(digest)
            assert code == 200 and status["status"] == "done"
            assert len(attempts) == 2

    def test_unknown_digest_is_404(self, tmp_path):
        with ExperimentService(tmp_path) as service:
            code, payload = service.status("0" * 32)
            assert code == 404 and "unknown experiment digest" in payload["error"]


# ---------------------------------------------------------------------------
# cache hits are bit-identical to direct serial runs, across restarts
# ---------------------------------------------------------------------------
class TestCacheFidelity:
    def test_hit_record_bit_identical_to_run_resolved(self, tmp_path):
        with ExperimentService(tmp_path) as service:
            code, payload = service.submit(CONFIG)
            assert code == 202
            digest = payload["digest"]
            _wait_job(service, digest)
            code, served = service.status(digest)
            assert code == 200 and served["status"] == "done", served
        clear_result_cache()
        direct = run_resolved(resolve_cell(CellSpec(
            system="Piccolo", algorithm="PR", dataset="UU",
            scale="toy", max_iterations=2,
        )))
        assert served["result"] == direct.to_record()
        # and the record survives a JSON wire round-trip bit-for-bit
        assert json.loads(json.dumps(served["result"])) == direct.to_record()

    def test_store_serves_across_service_restarts(self, tmp_path):
        with ExperimentService(tmp_path) as service:
            _code, payload = service.submit(CONFIG)
            digest = payload["digest"]
            _wait_job(service, digest)
            _code, first = service.status(digest)
        clear_result_cache()  # drop the in-process memo: only disk is left
        with ExperimentService(tmp_path) as reborn:
            code, payload = reborn.submit(CONFIG)
            assert code == 200 and payload["cached"]
            assert payload["source"] == "store"
            assert payload["result"] == first["result"]
            assert reborn.stats.hits_store == 1
            # status of a store-served digest also resolves
            code, status = reborn.status(digest)
            assert code == 200 and status["status"] == "done"


# ---------------------------------------------------------------------------
# stdlib HTTP transport
# ---------------------------------------------------------------------------
@pytest.fixture()
def http_service(tmp_path):
    trajectory = tmp_path / "BENCH.json"
    trajectory.write_text(json.dumps({
        "workloads": {},
        "trajectory": [
            {"label": "seed", "mode": "scalar",
             "timestamp": "2026-01-01T00:00:00+00:00",
             "times": {"fig10/x": 2.0, "service/hit-latency/toy-pr3": 0.1}},
            {"label": "now", "mode": "batched",
             "timestamp": "2026-01-02T00:00:00+00:00",
             "times": {"fig10/x": 1.0}},
        ],
    }))

    def fast_runner(cell):
        return _fake_outcome(cell)

    service = ExperimentService(
        tmp_path / "store", run_cell=fast_runner,
        trajectory_path=trajectory,
    )
    server = make_server(service)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://{host}:{port}", service
    finally:
        server.shutdown()
        server.server_close()
        service.close()


def _http(base, path, data=None, headers=None):
    request = urllib.request.Request(
        base + path, data=data, headers=headers or {}
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestStdlibHTTP:
    def test_full_miss_then_hit_cycle_over_the_wire(self, http_service):
        base, service = http_service
        body = json.dumps(CONFIG).encode()
        headers = {"Content-Type": "application/json"}
        code, payload = _http(base, "/experiments", body, headers)
        assert code == 202 and payload["status"] == "queued"
        digest = payload["digest"]
        _wait_job(service, digest)
        code, status = _http(base, f"/experiments/{digest}")
        assert code == 200 and status["status"] == "done"
        assert status["seconds"] == 0.01 and status["source"] == "run"
        code, hit = _http(base, "/experiments", body, headers)
        assert code == 200 and hit["cached"]
        assert hit["result"] == status["result"]

    def test_wire_errors(self, http_service):
        base, _service = http_service
        assert _http(base, "/experiments", b"")[0] == 400        # empty body
        assert _http(base, "/experiments", b"{nope")[0] == 400   # bad JSON
        code, payload = _http(
            base, "/experiments", json.dumps({"seed": 1}).encode()
        )
        assert code == 400 and "unknown config key" in payload["error"]
        assert _http(base, "/experiments/zzz")[0] == 400         # bad digest
        assert _http(base, "/experiments/" + "0" * 32)[0] == 404
        assert _http(base, "/nope")[0] == 404
        code, payload = _http(base, "/healthz")
        assert code == 200 and payload["ok"]

    def test_cache_stats_and_trajectory_endpoints(self, http_service):
        base, _service = http_service
        code, stats = _http(base, "/cache/stats")
        assert code == 200
        assert set(stats) == {"cache", "jobs", "store"}
        code, trajectory = _http(base, "/trajectory")
        assert code == 200
        assert set(trajectory["cells"]) == {
            "fig10/x", "service/hit-latency/toy-pr3"
        }
        assert [p["seconds"] for p in trajectory["cells"]["fig10/x"]] == [
            2.0, 1.0
        ]
        code, filtered = _http(base, "/trajectory?prefix=service/")
        assert code == 200
        assert set(filtered["cells"]) == {"service/hit-latency/toy-pr3"}


# ---------------------------------------------------------------------------
# backend parity: stdlib fallback vs (optional) FastAPI
# ---------------------------------------------------------------------------
class TestBackends:
    def test_missing_fastapi_raises_a_clear_error(self, tmp_path):
        if fastapi_available():
            pytest.skip("fastapi installed; absence path not testable")
        with ExperimentService(tmp_path) as service:
            with pytest.raises(RuntimeError, match="backend stdlib"):
                create_fastapi_app(service)

    def test_fastapi_serves_the_same_contract(self, tmp_path):
        fastapi = pytest.importorskip("fastapi")  # noqa: F841
        testclient = pytest.importorskip("fastapi.testclient")

        def fast_runner(cell):
            return _fake_outcome(cell)

        with ExperimentService(tmp_path, run_cell=fast_runner) as service:
            client = testclient.TestClient(create_fastapi_app(service))
            response = client.post("/experiments", json=CONFIG)
            assert response.status_code == 202
            digest = response.json()["digest"]
            _wait_job(service, digest)
            # the FastAPI body equals the core payload verbatim
            assert client.get(f"/experiments/{digest}").json() == \
                service.status(digest)[1]
            assert client.get("/cache/stats").json() == \
                service.cache_stats()[1]
            assert client.get("/healthz").json() == service.health()[1]
            bad = client.post("/experiments", json={"seed": 1})
            assert bad.status_code == 400
