"""Tests for the cache substrate: conventional, sectored, 8B-line,
and the Fig. 11 comparison variants."""

import pytest

from repro.cache.conventional import ConventionalCache
from repro.cache.fine8b import EightByteLineCache
from repro.cache.sectored import SectoredCache
from repro.cache.variants import AmoebaCache, GraphfireCache, ScrabbleCache


class TestConventional:
    def test_miss_fetches_full_line(self):
        cache = ConventionalCache(4096, ways=4)
        result = cache.access(0x123, False)
        assert not result.hit
        assert result.fill_bytes == 64
        assert result.fill_addr == 0x100

    def test_same_line_hits(self):
        cache = ConventionalCache(4096, ways=4)
        cache.access(0x100, False)
        assert cache.access(0x138, False).hit  # same 64 B line

    def test_lru_eviction_order(self):
        cache = ConventionalCache(2 * 64, ways=2)  # 1 set, 2 ways
        cache.access(0 * 64, False)
        cache.access(1 * 64, False)
        cache.access(0 * 64, False)   # touch A: now B is LRU
        cache.access(2 * 64, False)   # evicts B
        assert cache.access(0 * 64, False).hit
        assert not cache.access(1 * 64, False).hit

    def test_dirty_eviction_writes_back_line(self):
        cache = ConventionalCache(64, ways=1)  # one line total
        cache.access(0x0, True)
        result = cache.access(0x1000, False)
        assert result.writebacks == [(0x0, 64)]

    def test_clean_eviction_silent(self):
        cache = ConventionalCache(64, ways=1)
        cache.access(0x0, False)
        assert cache.access(0x1000, False).writebacks is None

    def test_useful_byte_tracking(self):
        cache = ConventionalCache(64, ways=1)
        cache.access(0x0, False)
        cache.access(0x8, False)   # second word of the same line
        cache.access(0x1000, False)  # evict: 2 of 8 words touched
        assert cache.useful_fill_bytes == 16

    def test_dirty_word_tracking(self):
        cache = ConventionalCache(64, ways=1)
        cache.access(0x0, True)
        cache.access(0x1000, False)
        assert cache.useful_wb_bytes == 8  # one dirty word of the 64 B wb

    def test_flush_settles_accounting(self):
        cache = ConventionalCache(4096, ways=4)
        cache.access(0x0, True)
        writebacks = cache.flush()
        assert writebacks == [(0x0, 64)]
        assert cache.useful_fill_bytes == 8

    def test_tag_overhead_excludes_state_bits(self):
        # 4 MB / 8-way / 64 B / 48-bit: tag = 48 - 13 - 6 = 29? No:
        # sets = 8192 (13 bits), so tag = 48 - 13 - 6 = 29 bits.
        cache = ConventionalCache(4 * 1024 * 1024, ways=8, line_bytes=64)
        lines = cache.num_sets * cache.ways
        assert cache.tag_overhead_bits == lines * (48 - 13 - 6)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            ConventionalCache(100, ways=8)


class TestSectored:
    def test_line_miss_fetches_one_sector(self):
        cache = SectoredCache(4096, ways=4)
        result = cache.access(0x108, False)
        assert not result.hit
        assert result.fill_bytes == 8
        assert result.fill_addr == 0x108

    def test_sector_miss_in_present_line(self):
        cache = SectoredCache(4096, ways=4)
        cache.access(0x100, False)
        result = cache.access(0x108, False)  # same line, other sector
        assert not result.hit
        assert result.fill_bytes == 8
        assert cache.access(0x108, False).hit

    def test_whole_line_claimed_by_single_sector(self):
        """The capacity weakness of Sec. V-A: one sector occupies a line."""
        cache = SectoredCache(2 * 64, ways=2)  # 1 set, 2 ways
        cache.access(0 * 64, False)
        cache.access(1 * 64, False)
        result = cache.access(2 * 64, False)  # line miss evicts a whole line
        assert cache.stats.evictions == 1

    def test_eviction_writes_back_dirty_sectors_individually(self):
        cache = SectoredCache(64, ways=1)
        cache.access(0x0, True)
        cache.access(0x18, True)
        cache.access(0x8, False)
        result = cache.access(0x1000, False)
        assert sorted(result.writebacks) == [(0x0, 8), (0x18, 8)]

    def test_flush(self):
        cache = SectoredCache(4096, ways=4)
        cache.access(0x20, True)
        assert cache.flush() == [(0x20, 8)]

    def test_tag_overhead_between_conventional_and_8b(self):
        conventional = ConventionalCache(4 * 1024 * 1024, ways=8)
        sectored = SectoredCache(4 * 1024 * 1024, ways=8)
        fine = EightByteLineCache(4 * 1024 * 1024, ways=8)
        assert (
            conventional.tag_overhead_bits
            < sectored.tag_overhead_bits
            < fine.tag_overhead_bits
        )


class TestEightByteLine:
    def test_fills_are_words(self):
        cache = EightByteLineCache(4096, ways=4)
        result = cache.access(0x10, False)
        assert result.fill_bytes == 8

    def test_paper_tag_overhead(self):
        cache = EightByteLineCache(4 * 1024 * 1024, ways=8)
        # 29 tag bits per 64-bit word ~= 45.3 %
        assert cache.tag_overhead_fraction == pytest.approx(0.4531, abs=0.001)

    def test_no_spatial_waste(self):
        cache = EightByteLineCache(4096, ways=4)
        for i in range(64):
            cache.access(i * 8, False)
        assert cache.stats.fill_bytes == cache.stats.requested_bytes


class TestVariants:
    def test_amoeba_loses_capacity(self):
        amoeba = AmoebaCache(4096)
        fine = EightByteLineCache(4096)
        assert amoeba.capacity_bytes < fine.capacity_bytes

    def test_scrabble_keeps_capacity_pays_metadata(self):
        scrabble = ScrabbleCache(4096)
        fine = EightByteLineCache(4096)
        assert scrabble.capacity_bytes == fine.capacity_bytes
        assert scrabble.tag_overhead_bits > fine.tag_overhead_bits

    def test_graphfire_between(self):
        graphfire = GraphfireCache(4096)
        amoeba = AmoebaCache(4096)
        fine = EightByteLineCache(4096)
        assert amoeba.capacity_bytes <= graphfire.capacity_bytes
        assert graphfire.capacity_bytes < fine.capacity_bytes

    def test_reduced_capacity_hurts_hit_rate(self):
        """Sanity: on a working set that fits the full cache but not the
        reduced one, amoeba misses more."""
        fine = EightByteLineCache(4096, ways=8)
        amoeba = AmoebaCache(4096, ways=8)
        import numpy as np

        rng = np.random.default_rng(0)
        addrs = (rng.integers(0, 4096 // 8, 20_000) * 8).tolist()
        for addr in addrs:
            fine.access(addr, False)
            amoeba.access(addr, False)
        assert amoeba.stats.hit_rate < fine.stats.hit_rate
