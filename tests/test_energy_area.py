"""Tests for the energy/area models, anchored to Sec. VII-F's numbers."""

import pytest

from repro.dram.spec import default_config
from repro.dram.system import PhaseStats
from repro.energy.area import (
    CONVENTIONAL_ACCEL_MM2,
    PICCOLO_ACCEL_MM2,
    accelerator_area_mm2,
    controller_area_fraction,
    controller_transistors,
    dram_fim_overhead,
    piccolo_area_increase,
)
from repro.energy.cacti import SRAMModel
from repro.energy.dram_energy import DRAMEnergyModel, EnergyBreakdown


class TestPaperAreaNumbers:
    def test_controller_is_126_transistors(self):
        assert controller_transistors() == 126

    def test_controller_area_fraction_0_04_percent(self):
        assert controller_area_fraction() == pytest.approx(0.0004, abs=0.0001)

    def test_dram_overhead_4_36_percent(self):
        assert dram_fim_overhead() == pytest.approx(0.0436, abs=0.0002)

    def test_accelerator_area_increase_4_10_percent(self):
        assert piccolo_area_increase() == pytest.approx(0.0410, abs=0.0005)

    def test_published_totals(self):
        assert CONVENTIONAL_ACCEL_MM2 == 6.34
        assert PICCOLO_ACCEL_MM2 == 6.60

    def test_area_report_scales_with_sram(self):
        big = accelerator_area_mm2(piccolo=True, cache_bytes=4 * 1024 * 1024)
        small = accelerator_area_mm2(piccolo=True, cache_bytes=4096)
        assert big.total_mm2 > small.total_mm2
        assert big.logic_mm2 == small.logic_mm2


class TestSRAMModel:
    def test_energy_grows_with_capacity(self):
        small = SRAMModel(4 * 1024)
        big = SRAMModel(4 * 1024 * 1024)
        assert big.dynamic_nj_per_access > small.dynamic_nj_per_access

    def test_sqrt_scaling(self):
        a = SRAMModel(1024 * 1024)
        b = SRAMModel(4 * 1024 * 1024)
        assert b.dynamic_nj_per_access / a.dynamic_nj_per_access == \
            pytest.approx(2.0, rel=0.01)

    def test_sequential_search_cheaper(self):
        parallel = SRAMModel(4096, ways_probed=8.0)
        sequential = SRAMModel(4096, ways_probed=1.5)
        assert sequential.dynamic_nj_per_access < \
            parallel.dynamic_nj_per_access

    def test_leakage_proportional_to_bits(self):
        assert SRAMModel(2048).leakage_w == pytest.approx(
            2 * SRAMModel(1024).leakage_w
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            SRAMModel(0)
        with pytest.raises(ValueError):
            SRAMModel(64, ways_probed=0)


class TestDRAMEnergy:
    def test_io_dominates_for_bursty_traffic(self):
        model = DRAMEnergyModel(default_config())
        stats = PhaseStats(read_bursts=10_000, write_bursts=5_000, acts=100)
        bd = model.energy(stats, duration_ns=1000.0)
        assert bd.dram_io > bd.dram_rd
        assert bd.dram_io > bd.dram_wr

    def test_fewer_bursts_less_energy(self):
        model = DRAMEnergyModel(default_config())
        heavy = model.energy(PhaseStats(read_bursts=10_000), 1e5)
        light = model.energy(PhaseStats(read_bursts=5_000), 1e5)
        assert light.total < heavy.total

    def test_background_scales_with_time(self):
        model = DRAMEnergyModel(default_config())
        short = model.energy(PhaseStats(), 1e3)
        long = model.energy(PhaseStats(), 1e6)
        assert long.others == pytest.approx(1e3 * short.others)

    def test_internal_words_cost_array_not_io(self):
        model = DRAMEnergyModel(default_config())
        without = model.energy(PhaseStats(read_bursts=100), 1.0)
        with_internal = model.energy(
            PhaseStats(read_bursts=100, internal_words=800), 1.0
        )
        assert with_internal.dram_io == without.dram_io
        assert with_internal.total > without.total

    def test_breakdown_dict_keys_match_figure(self):
        bd = EnergyBreakdown()
        assert list(bd.as_dict()) == [
            "Acc", "Cache", "DRAM RD", "DRAM WR", "DRAM I/O", "Others",
        ]
