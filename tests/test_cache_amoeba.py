"""Amoeba cache: variable granularity, in-array tags, predictor."""

import numpy as np
import pytest

from repro.cache.amoeba import (
    AmoebaCache,
    DEFAULT_GRANULARITY,
    MAX_BLOCK_WORDS,
)
from repro.cache.fine8b import EightByteLineCache


def small_cache(**kwargs):
    return AmoebaCache(2 * 64, ways=2, **kwargs)  # one set, 16-word budget


class TestBasics:
    def test_miss_fetches_predicted_granularity(self):
        cache = AmoebaCache(4096)
        result = cache.access(0x0, False)
        assert not result.hit
        assert result.fill_bytes == DEFAULT_GRANULARITY * 8

    def test_hit_within_block(self):
        cache = AmoebaCache(4096)
        cache.access(0x0, False)
        assert cache.access(0x8, False).hit  # same 2-word default block

    def test_miss_outside_block(self):
        cache = AmoebaCache(4096)
        cache.access(0x0, False)
        assert not cache.access(0x10, False).hit

    def test_fill_alignment(self):
        cache = AmoebaCache(4096)
        result = cache.access(0x18, False)  # word 3, gran 2 -> start word 2
        assert result.fill_addr == 0x10
        assert result.fill_bytes == 16

    def test_write_marks_dirty_word_only(self):
        cache = small_cache()
        cache.access(0x0, True)
        writebacks = cache.flush()
        assert writebacks == [(0x0, 8)]

    def test_contiguous_dirty_words_coalesce(self):
        cache = small_cache()
        cache.access(0x0, True)
        cache.access(0x8, True)
        assert cache.flush() == [(0x0, 16)]

    def test_disjoint_dirty_runs_split(self):
        cache = AmoebaCache(4096)
        # Grow a 4-word block by training the predictor first.
        for _ in range(4):
            for word in range(4):
                cache.access(word * 8, False)
            cache.flush()
        cache.access(0x0, True)
        if cache.access(0x10, True).hit:  # only if one block covers both
            writebacks = cache.flush()
            assert (0x0, 8) in writebacks and (0x10, 8) in writebacks


class TestFootprintBudget:
    def test_tag_word_counts_against_budget(self):
        # 16-word budget; 2-word blocks cost 3 words each -> 5 blocks fit.
        cache = small_cache()
        for i in range(5):
            cache.access(i * 16, False)
        assert cache.stats.evictions == 0
        cache.access(5 * 16, False)
        assert cache.stats.evictions >= 1

    def test_eviction_is_lru(self):
        cache = small_cache()
        for i in range(5):
            cache.access(i * 16, False)
        cache.access(0 * 16, False)       # touch block 0
        cache.access(5 * 16, False)       # evicts block 1 (LRU)
        assert cache.access(0 * 16, False).hit
        assert not cache.access(1 * 16, False).hit


class TestPredictor:
    def test_full_use_grows_granularity(self):
        cache = AmoebaCache(4096)
        for _ in range(6):
            for word in range(MAX_BLOCK_WORDS):
                cache.access(word * 8, False)
            cache.flush()
        result = cache.access(0x0, False)
        assert result.fill_bytes > DEFAULT_GRANULARITY * 8

    def test_sparse_use_shrinks_granularity(self):
        cache = AmoebaCache(4096)
        # Touch one word per block repeatedly; utilisation 1/2 -> shrink.
        for round_ in range(4):
            cache.access(0x0, False)
            cache.flush()
        result = cache.access(0x0, False)
        assert result.fill_bytes == 8

    def test_no_overlap_with_resident_block(self):
        cache = AmoebaCache(4096)
        cache.access(0x8, False)   # words 1-2 (gran 2, aligned to 0) ->
        # words 0..1 resident; a miss on word 2 must not refetch them.
        result = cache.access(0x10, False)
        assert result.fill_addr >= 0x10


class TestCapacityAndMetadata:
    def test_capacity_below_full_array(self):
        cache = AmoebaCache(4096)
        assert cache.capacity_bytes < 4096

    def test_dedicated_metadata_small(self):
        cache = AmoebaCache(4096)
        fine = EightByteLineCache(4096)
        assert cache.tag_overhead_bits < fine.tag_overhead_bits

    def test_in_array_tags_reported(self):
        assert AmoebaCache(4096).in_array_tag_bits > 0

    def test_size_validation(self):
        with pytest.raises(ValueError):
            AmoebaCache(1000)


class TestWorkloadBehaviour:
    def test_random_words_lower_hit_rate_than_fine8b(self):
        fine = EightByteLineCache(4096, ways=8)
        amoeba = AmoebaCache(4096, ways=8)
        rng = np.random.default_rng(0)
        addrs = (rng.integers(0, 4096 // 8, 20_000) * 8).tolist()
        for addr in addrs:
            fine.access(addr, False)
            amoeba.access(addr, False)
        assert amoeba.stats.hit_rate < fine.stats.hit_rate

    def test_sequential_scan_beats_random_fills(self):
        cache = AmoebaCache(4096)
        for word in range(2048):
            cache.access((word % 256) * 8, False)
        # After predictor warm-up the scan should mostly hit.
        assert cache.stats.hit_rate > 0.5

    def test_flush_resets_occupancy(self):
        cache = small_cache()
        for i in range(5):
            cache.access(i * 16, True)
        cache.flush()
        assert cache._used_words[0] == 0
        for i in range(5):
            assert not cache.access(i * 16, False).hit
