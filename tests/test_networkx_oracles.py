"""Independent oracles: algorithm results vs networkx.

The in-repo reference implementations share numpy idioms with the
engine; networkx is a fully independent implementation of the same
graph semantics, so agreement here rules out a family of shared bugs
(direction conventions, weight handling, dangling-vertex treatment).
"""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.algorithms.vcm import VertexCentricEngine
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat


def run(graph, algorithm, iterations=128, **kwargs):
    spec = make_algorithm(algorithm, graph, **kwargs)
    engine = VertexCentricEngine(spec)
    engine.run(iterations)
    return engine.prop


def to_networkx(graph: CSRGraph) -> nx.DiGraph:
    g = nx.DiGraph()
    g.add_nodes_from(range(graph.num_vertices))
    for u in range(graph.num_vertices):
        lo, hi = graph.indptr[u], graph.indptr[u + 1]
        for e in range(lo, hi):
            g.add_edge(u, int(graph.indices[e]),
                       weight=int(graph.weights[e]))
    return g


@pytest.fixture(scope="module", params=[3, 17, 91])
def graph(request):
    return rmat(num_vertices=256, avg_degree=6.0, seed=request.param)


@pytest.fixture(scope="module")
def nx_graph(graph):
    return to_networkx(graph)


class TestBFS:
    def test_levels_match(self, graph, nx_graph):
        levels = run(graph, "BFS")
        oracle = nx.single_source_shortest_path_length(nx_graph, 0)
        for v in range(graph.num_vertices):
            if v in oracle:
                assert levels[v] == oracle[v], v
            else:
                assert np.isinf(levels[v]), v


class TestSSSP:
    def test_distances_match(self, graph, nx_graph):
        dist = run(graph, "SSSP")
        oracle = nx.single_source_dijkstra_path_length(
            nx_graph, 0, weight="weight"
        )
        for v in range(graph.num_vertices):
            if v in oracle:
                assert dist[v] == pytest.approx(oracle[v]), v
            else:
                assert np.isinf(dist[v]), v


class TestCC:
    """CC propagates min labels along *directed* edges (Algorithm 1's
    push direction), so the oracle is the directed fixpoint, checked
    with networkx's adjacency, plus label sharing inside SCCs."""

    def test_directed_fixpoint(self, graph, nx_graph):
        labels = run(graph, "CC")
        for v in range(graph.num_vertices):
            candidates = [v] + [int(labels[u])
                                for u in nx_graph.predecessors(v)]
            assert labels[v] == min(candidates), v

    def test_scc_members_share_label(self, graph, nx_graph):
        labels = run(graph, "CC")
        for component in nx.strongly_connected_components(nx_graph):
            got = {int(labels[v]) for v in component}
            assert len(got) == 1, "SCC must converge to one label"

    def test_labels_never_increase_from_init(self, graph):
        labels = run(graph, "CC")
        assert np.all(labels <= np.arange(graph.num_vertices))


class TestPageRank:
    def test_ranks_correlate_with_networkx(self, graph, nx_graph):
        """Exact PR variants differ on dangling-mass handling, so check
        rank agreement: same top vertices, high rank correlation."""
        ours = run(graph, "PR", iterations=60)
        oracle = nx.pagerank(nx_graph, alpha=0.85, max_iter=200,
                             tol=1e-12)
        oracle_arr = np.array([oracle[v]
                               for v in range(graph.num_vertices)])
        ours_order = np.argsort(-ours)
        oracle_order = np.argsort(-oracle_arr)
        top = 10
        overlap = len(set(ours_order[:top].tolist())
                      & set(oracle_order[:top].tolist()))
        assert overlap >= 7
        rank_ours = np.empty(graph.num_vertices)
        rank_ours[ours_order] = np.arange(graph.num_vertices)
        rank_oracle = np.empty(graph.num_vertices)
        rank_oracle[oracle_order] = np.arange(graph.num_vertices)
        corr = np.corrcoef(rank_ours, rank_oracle)[0, 1]
        assert corr > 0.9


class TestSSWP:
    def test_widest_path_matches_bruteforce_nx(self, graph, nx_graph):
        """networkx has no SSWP; use its max-bottleneck via modified
        Dijkstra on a small vertex sample."""
        width = run(graph, "SSWP")
        # Bottleneck of the best path: negate widths and use shortest
        # path in a transformed graph is wrong; brute-force via
        # networkx's all simple paths is exponential.  Instead verify
        # the classic SSWP optimality conditions against nx adjacency:
        # width[v] = max over in-edges (min(width[u], w(u,v))).
        for v in range(graph.num_vertices):
            preds = list(nx_graph.predecessors(v))
            if v == 0:
                assert width[v] == np.inf
                continue
            if not preds:
                assert width[v] == -np.inf
                continue
            best = max(
                min(width[u], nx_graph[u][v]["weight"]) for u in preds
            )
            assert width[v] == pytest.approx(max(best, -np.inf))
