"""Bridge validation: engine traces replayed through the ns-domain checker.

The repository now has two independent protocol validators: the
ns-domain :class:`~repro.validate.protocol.DDR4ProtocolChecker` (built
for the hand-constructed Sec. VI sequences -- the FPGA-emulation
substitute) and the cycle-domain :class:`TraceChecker` of the engine.
This suite closes the loop: command streams produced by the
*cycle-level engine* are converted to ns-domain ``DDRCommand`` records
and must satisfy the original checker too.  A bug in either timing
domain, the clock conversion, or the virtual-row sequences shows up as
a violation here.
"""

import numpy as np
import pytest

from repro.core.fim_commands import DDRCommand
from repro.dram.engine import CommandType, DRAMEngine
from repro.dram.engine.workloads import (
    conventional_requests,
    fim_requests,
    random_mix,
    strided_addresses,
)
from repro.dram.spec import DEVICES, DRAMConfig, default_config
from repro.validate.protocol import DDR4ProtocolChecker


def to_ns_commands(result, banks_per_rank):
    """Convert one engine run's channel-0 trace to DDRCommand records."""
    commands = []
    for cmd in result.traces[0]:
        if cmd.kind is CommandType.REF:
            continue  # the ns checker predates refresh modelling
        commands.append(DDRCommand(
            time_ns=result.timing.ns(cmd.cycle),
            kind=cmd.kind.value,
            bank=cmd.rank * banks_per_rank + cmd.bank,
            row=cmd.row,
            col=cmd.column,
        ))
    return commands


def replay(config, requests, channels, strict_ras=True):
    engine = DRAMEngine(config, refresh_enabled=False)
    result = engine.run(requests, channels)
    checker = DDR4ProtocolChecker(config.spec, strict_ras=strict_ras)
    checker.check_sequence(to_ns_commands(result,
                                          config.spec.banks_per_rank))
    return checker


@pytest.fixture(scope="module")
def config():
    return default_config()


class TestConventionalTraces:
    def test_sequential_reads(self, config):
        addrs = np.arange(0, 64 * 300, 64, dtype=np.int64)
        requests, channels = conventional_requests(config, addrs)
        checker = replay(config, requests, channels)
        assert checker.commands_checked > 300

    def test_random_mix(self, config):
        addrs, is_write = random_mix(config, 800, seed=21)
        requests, channels = conventional_requests(config, addrs, is_write)
        checker = replay(config, requests, channels)
        assert checker.commands_checked > 800


class TestFimTraces:
    def test_gather_sequences(self, config):
        addrs = strided_addresses(config, 1 << 16, 8, single_row=True)
        requests, channels = fim_requests(config, addrs)
        checker = replay(config, requests, channels)
        assert checker.commands_checked > 0

    def test_scatter_sequences(self, config):
        addrs = strided_addresses(config, 1 << 15, 8, single_row=True)
        requests, channels = fim_requests(config, addrs, scatter=True)
        checker = replay(config, requests, channels)
        assert checker.commands_checked > 0

    def test_multi_row_gathers(self, config):
        addrs = strided_addresses(config, 1 << 16, 8, single_row=False)
        requests, channels = fim_requests(config, addrs)
        checker = replay(config, requests, channels)
        assert checker.commands_checked > 0

    @pytest.mark.parametrize("grade", sorted(DEVICES))
    def test_every_grade(self, grade):
        grade_config = DRAMConfig(spec=DEVICES[grade], channels=1, ranks=2)
        addrs = strided_addresses(grade_config, 1 << 14, 8,
                                  single_row=True)
        requests, channels = fim_requests(grade_config, addrs)
        checker = replay(grade_config, requests, channels)
        assert checker.commands_checked > 0

    def test_window_condition_reported(self, config):
        checker = DDR4ProtocolChecker(config.spec)
        assert checker.window_covers_internal_op(
            config.fim_items_per_op
        ), "DDR4-2400 must hide 8 x tCCD_L inside tWR+tRP+tRCD (Sec. VI)"
