"""Tests for the virtual-row command translation (Sec. VI)."""

import numpy as np
import pytest

from repro.core.fim import FimBank, FimCommandError
from repro.core.fim_commands import (
    DDRCommand,
    VirtualRowController,
    VirtualRowMap,
    gather_sequence,
    scatter_sequence,
)
from repro.dram.spec import DEVICES

SPEC = DEVICES["DDR4_2400_x16"]


@pytest.fixture
def setup():
    bank = FimBank(SPEC, rows=4)
    bank.cells[1] = np.arange(SPEC.row_words, dtype=np.uint64) * 3
    vmap = VirtualRowMap(physical_rows=4)
    ctrl = VirtualRowController(bank, vmap)
    ctrl.handle(DDRCommand(0.0, "ACT", 0, row=1))
    return bank, vmap, ctrl


class TestVirtualRowMap:
    def test_virtual_rows_above_physical(self):
        vmap = VirtualRowMap(physical_rows=16)
        assert vmap.row_y == 16
        assert vmap.row_z == 17
        assert vmap.is_virtual(16)
        assert not vmap.is_virtual(15)

    def test_other_flips(self):
        vmap = VirtualRowMap(physical_rows=4)
        assert vmap.other(vmap.row_y) == vmap.row_z
        assert vmap.other(vmap.row_z) == vmap.row_y
        with pytest.raises(ValueError):
            vmap.other(0)


class TestSequences:
    def test_gather_uses_only_standard_commands(self, setup):
        _, vmap, _ = setup
        cmds = gather_sequence(SPEC, vmap, 0, [1, 2, 3])
        assert [c.kind for c in cmds] == ["WR", "PRE", "ACT", "RD"]

    def test_gather_window_is_twr_trp_trcd(self, setup):
        _, vmap, _ = setup
        cmds = gather_sequence(SPEC, vmap, 0, [1], start_ns=0.0)
        gap = cmds[-1].time_ns - cmds[0].time_ns
        assert gap >= SPEC.fim_internal_window

    def test_gather_returns_row_data(self, setup):
        bank, vmap, ctrl = setup
        cmds = gather_sequence(SPEC, vmap, 0, [5, 10, 0], start_ns=10.0)
        data = None
        for cmd in cmds:
            out = ctrl.handle(cmd)
            if out is not None:
                data = out
        assert data == [15, 30, 0]
        assert ctrl.executed_ops[-1][0] == "gather"

    def test_target_row_stays_open(self, setup):
        bank, vmap, ctrl = setup
        for cmd in gather_sequence(SPEC, vmap, 0, [1]):
            ctrl.handle(cmd)
        # Virtual PRE/ACT must not disturb the physically open row.
        assert bank.open_row == 1

    def test_scatter_writes_through(self, setup):
        bank, vmap, ctrl = setup
        cmds = scatter_sequence(
            SPEC, vmap, 0, [100, 200], [7, 8], start_ns=5.0
        )
        for cmd in cmds:
            ctrl.handle(cmd)
        assert bank.read_word(100) == 7
        assert bank.read_word(200) == 8
        assert ctrl.executed_ops[-1][0] == "scatter"

    def test_scatter_requires_matching_lengths(self, setup):
        _, vmap, _ = setup
        with pytest.raises(ValueError):
            scatter_sequence(SPEC, vmap, 0, [1, 2], [3])

    def test_short_window_rejected(self, setup):
        """Reading the data buffer before the internal gather can finish
        must raise -- the feasibility condition of Sec. VI."""
        bank, vmap, ctrl = setup
        ctrl.handle(
            DDRCommand(0.0, "WR", 0, row=vmap.row_y,
                       col=vmap.OFFSET_BUF_COL, data=(1, 2, 3, 4, 5, 6, 7, 0))
        )
        with pytest.raises(FimCommandError, match="window too short"):
            ctrl.handle(
                DDRCommand(10.0, "RD", 0, row=vmap.row_z,
                           col=vmap.DATA_BUF_COL)
            )

    def test_unmapped_virtual_column_rejected(self, setup):
        _, vmap, ctrl = setup
        with pytest.raises(FimCommandError):
            ctrl.handle(
                DDRCommand(0.0, "WR", 0, row=vmap.row_y, col=999, data=(1,))
            )

    def test_dummy_write_triggers_scatter(self, setup):
        """With no follow-on command, the controller sends a dummy write
        to keep the activation cadence (Sec. VI)."""
        bank, vmap, ctrl = setup
        cmds = scatter_sequence(
            SPEC, vmap, 0, [9], [77], start_ns=0.0, dummy_write=True
        )
        kinds = [c.kind for c in cmds]
        assert kinds == ["WR", "WR", "PRE", "ACT", "WR"]
        for cmd in cmds:
            ctrl.handle(cmd)
        assert bank.read_word(9) == 77


class TestCommandValidation:
    def test_non_standard_kind_rejected(self):
        with pytest.raises(ValueError):
            DDRCommand(0.0, "GATHER", 0)
