"""Tests for the OLAP workload (Fig. 19b)."""

import numpy as np
import pytest

from repro.olap.queries import OLAP_QUERIES, query_speedups, run_query
from repro.olap.table import Table


class TestTable:
    def test_column_addresses_strided(self):
        table = Table(num_rows=16, num_fields=8, base_addr=0)
        addrs = table.column_addrs(2)
        assert addrs[0] == 16
        assert np.all(np.diff(addrs) == 64)  # 8 fields x 8 B

    def test_row_filter(self):
        table = Table(num_rows=100, num_fields=4, base_addr=0)
        rows = np.asarray([3, 7])
        addrs = table.column_addrs(0, rows)
        assert addrs.tolist() == [3 * 32, 7 * 32]

    def test_select_matches_numpy(self):
        table = Table(num_rows=1000, num_fields=4, seed=5)
        threshold = int(np.median(table.data[:, 0]))
        selected = table.select(0, lambda col: col < threshold)
        expected = np.flatnonzero(table.data[:, 0] < threshold)
        assert np.array_equal(selected, expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            Table(0, 4)
        table = Table(4, 4)
        with pytest.raises(IndexError):
            table.column_addrs(9)

    def test_deterministic(self):
        a = Table(64, 4, seed=9)
        b = Table(64, 4, seed=9)
        assert np.array_equal(a.data, b.data)


class TestQueries:
    def test_four_queries_defined(self):
        assert [q.name for q in OLAP_QUERIES] == ["Qa", "Qb", "Qc", "Qd"]

    def test_speedups_near_paper_value(self):
        """The paper reports ~3.8x for OLAP queries (Sec. VIII-A)."""
        speedups = query_speedups(num_rows=1 << 14)
        for name, speedup in speedups.items():
            assert 2.5 < speedup < 4.5, (name, speedup)
        mean = sum(speedups.values()) / len(speedups)
        assert mean == pytest.approx(3.8, abs=0.4)

    def test_run_query_fields(self):
        out = run_query(OLAP_QUERIES[0], num_rows=1 << 12)
        assert out["conventional_ns"] > out["piccolo_ns"] > 0
        assert out["speedup"] == pytest.approx(
            out["conventional_ns"] / out["piccolo_ns"]
        )

    def test_wide_rows_still_win(self):
        out = run_query(OLAP_QUERIES[3], num_rows=1 << 12)
        assert out["speedup"] > 2.0
