"""Tests for the parallel sweep runner: cell digests, shared-memmap
graphs, checkpoint records, parallel-vs-serial equivalence, and
kill-and-resume."""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.accel.base import SystemResult
from repro.experiments import parallel, runner
from repro.experiments.config import get_profile
from repro.experiments.runner import (
    CellSpec,
    clear_result_cache,
    resolve_cell,
    run_system,
)
from repro.graph import datasets, graphio

SRC_DIR = pathlib.Path(__file__).resolve().parent.parent / "src"


@pytest.fixture(autouse=True)
def _clean_state():
    clear_result_cache()
    yield
    clear_result_cache()
    datasets.detach_memmaps()
    datasets.set_require_attached(False)


def _spec(system="PIM", algorithm="PR", dataset="UU", **kw):
    kw.setdefault("max_iterations", 1)
    return CellSpec(system=system, algorithm=algorithm, dataset=dataset, **kw)


# ---------------------------------------------------------------------------
# Canonical cell digests
# ---------------------------------------------------------------------------
class TestCellDigest:
    def test_equivalent_spellings_share_a_digest(self):
        base = resolve_cell(_spec()).digest
        assert base is not None
        # profile by name, by object, and explicit default shift all
        # resolve to the same cell
        assert resolve_cell(_spec(scale="toy")).digest == base
        assert resolve_cell(_spec(scale=get_profile("toy"))).digest == base
        default_shift = datasets.resolve_shift("UU", None)
        assert (
            resolve_cell(_spec(scale_shift=default_shift)).digest == base
        )

    def test_distinct_cells_differ(self):
        base = resolve_cell(_spec()).digest
        assert resolve_cell(_spec(system="Piccolo")).digest != base
        assert resolve_cell(_spec(algorithm="BFS")).digest != base
        assert resolve_cell(_spec(max_iterations=2)).digest != base
        assert resolve_cell(_spec(tile_scale=4)).digest != base

    def test_cache_design_is_digestable(self):
        cell = resolve_cell(
            _spec(system="Piccolo", cache_design="Sectored")
        )
        assert cell.digest is not None
        assert "cache_factory" in cell.make_kwargs

    def test_callable_kwarg_is_undigestable(self):
        cell = resolve_cell(
            _spec(
                system="Piccolo",
                system_kwargs=(("cache_factory", lambda size: None),),
            )
        )
        assert cell.digest is None

    def test_digest_keys_the_result_memo(self):
        # run_system and the checkpoint store must agree on cell identity
        a = run_system("PIM", "PR", "UU", max_iterations=1)
        digest = resolve_cell(_spec()).digest
        fake = SystemResult(system="PIM", algorithm="PR", dataset="UU")
        runner.install_result(digest, fake)
        assert run_system("PIM", "PR", "UU", max_iterations=1) is fake
        assert a is not fake


class TestResultCacheBound:
    def test_lru_eviction(self):
        cache = runner._ResultCache(maxsize=3)
        results = {}
        for i in range(5):
            results[i] = SystemResult(system=f"s{i}", algorithm="PR",
                                      dataset="X")
            cache.put(f"d{i}", results[i])
        assert len(cache) == 3
        assert "d0" not in cache and "d1" not in cache
        assert cache.get("d4") is results[4]

    def test_global_memo_is_bounded(self):
        clear_result_cache()
        for i in range(runner.RESULT_CACHE_MAXSIZE + 16):
            runner.install_result(
                f"digest-{i}",
                SystemResult(system="s", algorithm="PR", dataset="X"),
            )
        assert len(runner._RESULT_CACHE) == runner.RESULT_CACHE_MAXSIZE


# ---------------------------------------------------------------------------
# Memmapped graph sharing
# ---------------------------------------------------------------------------
class TestGraphMemmap:
    def test_round_trip(self, tmp_path, small_random_graph):
        target = graphio.to_memmap(small_random_graph, tmp_path / "g")
        loaded = graphio.from_memmap(target)
        assert loaded.name == small_random_graph.name
        np.testing.assert_array_equal(
            loaded.indptr, small_random_graph.indptr
        )
        np.testing.assert_array_equal(
            loaded.indices, small_random_graph.indices
        )
        np.testing.assert_array_equal(
            loaded.weights, small_random_graph.weights
        )
        # attached arrays are zero-copy read-only views of the mapping
        # (CSRGraph validation re-wraps them as base ndarrays)
        assert isinstance(loaded.indices.base, np.memmap)
        assert not loaded.indices.flags.writeable
        with pytest.raises(ValueError):
            loaded.indices[0] = 1

    def test_first_writer_wins(self, tmp_path, small_random_graph,
                               tiny_graph):
        target = graphio.to_memmap(small_random_graph, tmp_path / "g")
        again = graphio.to_memmap(tiny_graph, tmp_path / "g")
        assert again == target
        assert graphio.from_memmap(target).name == small_random_graph.name

    def test_incomplete_directory_rejected(self, tmp_path):
        (tmp_path / "g").mkdir()
        (tmp_path / "g" / "meta.json").write_text("{not json")
        with pytest.raises(FileNotFoundError):
            graphio.from_memmap(tmp_path / "g")

    def test_attach_serves_load_dataset(self, tmp_path):
        path = datasets.materialize_memmap("UU", None, tmp_path)
        datasets.detach_memmaps()
        graph = datasets.attach_memmap("UU", None, path)
        assert datasets.load_dataset("UU") is graph
        assert isinstance(graph.indices.base, np.memmap)

    def test_require_attached_forbids_generation(self):
        datasets.load_dataset.cache_clear()
        datasets.set_require_attached(True)
        with pytest.raises(RuntimeError, match="not memmap-attached"):
            datasets.load_dataset("UU")

    def test_materialize_generates_once_per_dataset_shift(
        self, tmp_path, monkeypatch
    ):
        import dataclasses as dc

        calls = []
        spec = datasets.DATASETS["UU"]
        counting = dc.replace(
            spec, build=lambda shift: (calls.append(shift),
                                       spec.build(shift))[1]
        )
        monkeypatch.setitem(datasets.DATASETS, "UU", counting)
        datasets.load_dataset.cache_clear()
        datasets.materialize_memmap("UU", None, tmp_path)
        # a second materialisation -- even with cold caches, as after a
        # kill -- reuses the on-disk graph instead of regenerating
        datasets.load_dataset.cache_clear()
        datasets.materialize_memmap("UU", None, tmp_path)
        assert calls == [spec.scale_shift]


# ---------------------------------------------------------------------------
# Checkpoint records
# ---------------------------------------------------------------------------
class TestCheckpointStore:
    def test_record_round_trip(self, tmp_path):
        cell = resolve_cell(_spec())
        result = runner.run_resolved(cell)
        store = parallel.SweepCheckpointStore(tmp_path)
        store.save(cell, result, seconds=1.25, rss_mb=64.0)
        loaded, record = store.load(cell.digest)
        assert loaded == result  # bit-exact dataclass equality
        assert record["cell"]["system"] == "PIM"
        assert record["timing"]["seconds"] == 1.25

    def test_result_record_json_round_trip(self):
        result = runner.run_resolved(resolve_cell(_spec()))
        wire = json.loads(json.dumps(result.to_record()))
        assert SystemResult.from_record(wire) == result

    def test_unknown_record_fields_rejected(self):
        result = SystemResult(system="s", algorithm="PR", dataset="X")
        record = result.to_record()
        record["bogus"] = 1
        with pytest.raises(ValueError, match="unknown SystemResult"):
            SystemResult.from_record(record)

    def test_corrupt_record_reads_as_missing(self, tmp_path):
        cell = resolve_cell(_spec())
        result = runner.run_resolved(cell)
        store = parallel.SweepCheckpointStore(tmp_path)
        store.save(cell, result, seconds=0.1, rss_mb=1.0)
        store.json_path(cell.digest).write_text("{truncated")
        assert store.load(cell.digest) is None
        store.npz_path(cell.digest).unlink()
        assert not store.has(cell.digest)

    def test_undigestable_cell_cannot_checkpoint(self, tmp_path):
        cell = resolve_cell(
            _spec(system="Piccolo",
                  system_kwargs=(("cache_factory", lambda s: None),))
        )
        store = parallel.SweepCheckpointStore(tmp_path)
        result = SystemResult(system="Piccolo", algorithm="PR", dataset="UU")
        with pytest.raises(ValueError, match="undigestable"):
            store.save(cell, result, seconds=0.0, rss_mb=0.0)

    def test_missing_directory_is_created(self, tmp_path):
        root = tmp_path / "deep" / "nested" / "ckpt"
        assert not root.exists()
        store = parallel.SweepCheckpointStore(root)
        assert root.is_dir()
        assert len(store) == 0

    def test_root_colliding_with_a_file_is_a_clear_error(self, tmp_path):
        collision = tmp_path / "ckpt"
        collision.write_text("I am not a directory")
        with pytest.raises(ValueError, match="existing non-directory file"):
            parallel.SweepCheckpointStore(collision)

    def test_root_under_a_file_ancestor_is_a_clear_error(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("files cannot have children")
        with pytest.raises(ValueError, match="non-directory ancestor"):
            parallel.SweepCheckpointStore(blocker / "ckpt")

    def test_directory_vanishing_after_open_is_a_clear_error(self, tmp_path):
        import shutil

        root = tmp_path / "ckpt"
        store = parallel.SweepCheckpointStore(root)
        cell = resolve_cell(_spec())
        result = runner.run_resolved(cell)
        shutil.rmtree(root)
        with pytest.raises(ValueError, match="disappeared"):
            store.save(cell, result, seconds=0.0, rss_mb=0.0)


# ---------------------------------------------------------------------------
# Parallel-vs-serial equivalence and resume
# ---------------------------------------------------------------------------
EQUIV_SPECS = [
    _spec(system=system, dataset=dataset)
    for system in ("GraphDyns (Cache)", "Piccolo", "PIM")
    for dataset in ("UU", "SW")
]


class TestRunCells:
    def test_parallel_matches_serial_bit_for_bit(self):
        serial = [o.result for o in parallel.run_cells(EQUIV_SPECS)]
        clear_result_cache()
        sharded = parallel.run_cells(EQUIV_SPECS, workers=4)
        assert {o.source for o in sharded} == {"worker"}
        for expect, outcome in zip(serial, sharded):
            assert outcome.result == expect  # all-scalar dataclass ==
        assert all(o.seconds > 0 for o in sharded)
        assert all(o.rss_mb > 0 for o in sharded)

    def test_duplicate_specs_share_one_outcome(self):
        outcomes = parallel.run_cells([_spec(), _spec()])
        assert outcomes[0] is outcomes[1]

    def test_serial_checkpoints_and_resume_skips(self, tmp_path,
                                                 monkeypatch):
        specs = EQUIV_SPECS[:3]
        parallel.run_cells(specs, checkpoint_dir=tmp_path)
        assert len(parallel.SweepCheckpointStore(tmp_path)) == 3

        ran = []
        real = runner.run_resolved
        monkeypatch.setattr(
            runner, "run_resolved",
            lambda cell: (ran.append(cell.digest), real(cell))[1],
        )
        clear_result_cache()
        outcomes = parallel.run_cells(
            specs, resume=True, checkpoint_dir=tmp_path
        )
        assert ran == []  # nothing re-simulated
        assert {o.source for o in outcomes} == {"checkpoint"}
        # checkpoint restores seed the memo: a follow-up run_system call
        # for the same cell is a pure lookup
        assert run_system(
            "GraphDyns (Cache)", "PR", "UU", max_iterations=1
        ) is outcomes[0].result

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(ValueError, match="requires a checkpoint_dir"):
            parallel.run_cells(EQUIV_SPECS[:1], resume=True)

    def test_workers_share_one_tile_store(self, tmp_path):
        """Disk-backed cells in a pool build each (graph, width) store
        once under the sweep's graph root; later workers attach it --
        the tile analogue of the shared memmapped CSR graphs."""
        specs = [
            _spec(system="Piccolo", tile_backing="disk"),
            _spec(system="NMP", tile_backing="disk"),
        ]
        outcomes = parallel.run_cells(
            specs, workers=2, checkpoint_dir=tmp_path
        )
        assert {o.source for o in outcomes} == {"worker"}
        stores = list((tmp_path / "graphs" / "tiles").glob("tiles-*"))
        assert stores  # built under the shared sweep root, not /tmp
        clear_result_cache()
        serial = [
            runner.run_resolved(resolve_cell(_spec(system=s)))
            for s in ("Piccolo", "NMP")
        ]
        for expect, outcome in zip(serial, outcomes):
            assert outcome.result == expect

    def test_unpicklable_cells_fall_back_to_serial(self, tmp_path):
        from repro.cache.sectored import SectoredCache

        specs = [
            _spec(),
            _spec(
                system="Piccolo",
                system_kwargs=(
                    ("cache_factory",
                     lambda size: SectoredCache(size, ways=8)),
                ),
            ),
        ]
        # must not raise: the lambda cell runs in-process
        outcomes = parallel.run_cells(specs, workers=2)
        assert outcomes[1].digest is None
        assert outcomes[1].source == "run"

    def test_workers_never_generate_datasets(self, tmp_path, monkeypatch):
        import dataclasses as dc

        calls = []
        spec = datasets.DATASETS["UU"]
        counting = dc.replace(
            spec, build=lambda shift: (calls.append(shift),
                                       spec.build(shift))[1]
        )
        monkeypatch.setitem(datasets.DATASETS, "UU", counting)
        datasets.load_dataset.cache_clear()
        specs = [
            _spec(system=s) for s in ("PIM", "Piccolo", "GraphDyns (Cache)")
        ]
        outcomes = parallel.run_cells(
            specs, workers=2, graph_dir=tmp_path
        )
        assert {o.source for o in outcomes} == {"worker"}
        # the parent generated the shared graph exactly once; workers
        # attached the memmap (a worker-side generation would have died
        # on the require-attached guard, failing the sweep)
        assert calls == [spec.scale_shift]


KILL_SCRIPT = """\
import sys, time
sys.path.insert(0, {src!r})
from repro.experiments import parallel
from repro.experiments.runner import CellSpec

_save = parallel.SweepCheckpointStore.save
def slow_save(self, *args, **kwargs):
    _save(self, *args, **kwargs)
    time.sleep(2.0)  # window for the test to SIGKILL us mid-sweep
parallel.SweepCheckpointStore.save = slow_save

specs = [
    CellSpec(system=system, algorithm="PR", dataset="UU", max_iterations=1)
    for system in ("PIM", "Piccolo", "GraphDyns (Cache)")
]
parallel.run_cells(specs, checkpoint_dir={ckpt!r})
"""


class TestKillAndResume:
    def test_sigkill_mid_sweep_then_resume(self, tmp_path):
        ckpt = tmp_path / "ck"
        script = tmp_path / "sweep.py"
        script.write_text(
            KILL_SCRIPT.format(src=str(SRC_DIR), ckpt=str(ckpt))
        )
        proc = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            start_new_session=True,
        )
        try:
            deadline = time.monotonic() + 120
            store = parallel.SweepCheckpointStore(ckpt)
            while len(store) < 1:
                assert proc.poll() is None, "sweep died before checkpointing"
                assert time.monotonic() < deadline, "no checkpoint in time"
                time.sleep(0.05)
            os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
        finally:
            proc.wait()

        done = store.digests()
        assert 1 <= len(done) < 3
        mtimes = {d: store.json_path(d).stat().st_mtime_ns for d in done}

        specs = [
            _spec(system=s) for s in ("PIM", "Piccolo", "GraphDyns (Cache)")
        ]
        outcomes = parallel.run_cells(
            specs, resume=True, checkpoint_dir=ckpt
        )
        assert len(parallel.SweepCheckpointStore(ckpt)) == 3
        by_digest = {o.digest: o for o in outcomes}
        for digest in done:
            # finished cells were loaded, not re-run...
            assert by_digest[digest].source == "checkpoint"
            # ...and their records were not rewritten
            assert store.json_path(digest).stat().st_mtime_ns == mtimes[digest]
        assert sum(o.source != "checkpoint" for o in outcomes) == 3 - len(done)
        # the resumed sweep's results match a fresh serial run
        clear_result_cache()
        fresh = parallel.run_cells(specs)
        for a, b in zip(outcomes, fresh):
            assert a.result == b.result
