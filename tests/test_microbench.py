"""Tests for the Fig. 9 strided microbenchmark."""

import pytest

from repro.dram.spec import DEVICES, DRAMConfig
from repro.validate.microbench import (
    STRIDES,
    MicrobenchResult,
    strided_microbenchmark,
    sweep,
)

SMALL = 2 * 1024 * 1024


class TestShape:
    """The qualitative claims of Fig. 9."""

    def test_stride8_single_row_near_4x(self):
        r = strided_microbenchmark(8, single_row=True, total_bytes=SMALL)
        assert r.speedup == pytest.approx(4.0, abs=0.15)

    def test_stride4_half_gain(self):
        """Two elements share a burst at stride 4, halving the baseline
        penalty (Sec. VII-B)."""
        r = strided_microbenchmark(4, single_row=True, total_bytes=SMALL)
        assert r.speedup == pytest.approx(2.0, abs=0.15)

    def test_multi_row_lower_than_single_row(self):
        for stride in (8, 16, 32):
            single = strided_microbenchmark(stride, True, SMALL)
            multi = strided_microbenchmark(stride, False, SMALL)
            assert multi.speedup < single.speedup, stride

    def test_multi_row_still_speeds_up(self):
        for stride in STRIDES:
            r = strided_microbenchmark(stride, False, SMALL)
            assert r.speedup > 1.5, stride

    def test_speedup_never_exceeds_theoretical(self):
        for r in sweep(SMALL):
            assert r.speedup <= 4.0 + 1e-9


class TestMechanics:
    def test_sweep_covers_grid(self):
        results = sweep(SMALL)
        assert len(results) == 2 * len(STRIDES)
        assert {r.single_row for r in results} == {True, False}

    def test_result_is_frozen_record(self):
        r = strided_microbenchmark(8, True, SMALL)
        assert isinstance(r, MicrobenchResult)
        with pytest.raises(AttributeError):
            r.speedup = 5  # frozen

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            strided_microbenchmark(0, True)

    def test_narrow_device_lower_gain(self):
        """x4 devices need 4 offset bursts: less headroom (Fig. 15)."""
        x16 = DRAMConfig(spec=DEVICES["DDR4_2400_x16"], channels=1, ranks=4)
        x4 = DRAMConfig(spec=DEVICES["DDR4_2400_x4"], channels=1, ranks=4)
        r16 = strided_microbenchmark(8, True, SMALL, config=x16)
        r4 = strided_microbenchmark(8, True, SMALL, config=x4)
        assert r4.speedup < r16.speedup

    def test_enhanced_offsets_help_x4(self):
        """11-bit offsets reduce x4 offset bursts (Sec. VIII-B)."""
        base = DRAMConfig(spec=DEVICES["DDR4_2400_x4"], channels=1, ranks=4)
        enhanced = DRAMConfig(
            spec=DEVICES["DDR4_2400_x4"], channels=1, ranks=4, offset_bits=11
        )
        r_base = strided_microbenchmark(8, True, SMALL, config=base)
        r_enh = strided_microbenchmark(8, True, SMALL, config=enhanced)
        assert r_enh.speedup > r_base.speedup
