"""Property-based cross-checks of the cache implementations.

The conventional cache is compared against a brute-force reference model
(dict of sets with explicit LRU lists); the fine-grained caches are
checked against structural invariants that must hold for any access
sequence.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.conventional import ConventionalCache
from repro.cache.sectored import SectoredCache
from repro.core.piccolo_cache import PiccoloCache


class ReferenceLRUCache:
    """Brute-force set-associative LRU model."""

    def __init__(self, sets, ways, line_shift):
        self.sets = [[] for _ in range(sets)]
        self.ways = ways
        self.mask = sets - 1
        self.shift = line_shift

    def access(self, addr):
        block = addr >> self.shift
        entry = self.sets[block & self.mask]
        if block in entry:
            entry.remove(block)
            entry.insert(0, block)
            return True
        entry.insert(0, block)
        if len(entry) > self.ways:
            entry.pop()
        return False


addr_lists = st.lists(
    st.integers(min_value=0, max_value=(1 << 16) - 1), min_size=1, max_size=400
)


@settings(max_examples=60, deadline=None)
@given(addrs=addr_lists)
def test_conventional_matches_reference_lru(addrs):
    cache = ConventionalCache(1024, ways=2, line_bytes=64)
    ref = ReferenceLRUCache(cache.num_sets, 2, 6)
    for raw in addrs:
        addr = raw & ~0x7
        assert cache.access(addr, False).hit == ref.access(addr)


@settings(max_examples=60, deadline=None)
@given(addrs=addr_lists)
def test_hits_plus_misses_equals_accesses(addrs):
    for cache in (
        ConventionalCache(1024, ways=2),
        SectoredCache(1024, ways=2),
        PiccoloCache(1024, ways=2, fg_tag_bits=4),
    ):
        for raw in addrs:
            cache.access(raw & ~0x7, raw % 3 == 0)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses


@settings(max_examples=60, deadline=None)
@given(addrs=addr_lists)
def test_immediate_reaccess_always_hits(addrs):
    """Any fine-grained cache must hit on an immediate repeat access."""
    for cache in (
        SectoredCache(1024, ways=2),
        PiccoloCache(1024, ways=2, fg_tag_bits=4),
        PiccoloCache(1024, ways=2, fg_tag_bits=4, policy="rrip"),
    ):
        for raw in addrs:
            addr = raw & ~0x7
            cache.access(addr, False)
            assert cache.access(addr, False).hit


@settings(max_examples=60, deadline=None)
@given(addrs=addr_lists)
def test_writeback_conservation_piccolo(addrs):
    """Every dirty word written is eventually written back exactly once
    (via eviction or flush), and never from a clean access."""
    cache = PiccoloCache(512, ways=2, fg_tag_bits=4)
    written: set[int] = set()
    written_back: list[int] = []
    for raw in addrs:
        addr = raw & ~0x7
        result = cache.access(addr, True)
        written.add(addr)
        if result.writebacks:
            written_back.extend(a for a, _ in result.writebacks)
    written_back.extend(a for a, _ in cache.flush())
    # Each written-back address must have been written at some point.
    assert set(written_back).issubset(written)
    # Nothing is dirty twice without an intervening write: the multiset
    # of write-backs never exceeds the write count per address.
    for addr in set(written_back):
        assert written_back.count(addr) <= addrs_count(addrs, addr)


def addrs_count(addrs, addr):
    return sum(1 for raw in addrs if (raw & ~0x7) == addr)


@settings(max_examples=40, deadline=None)
@given(
    addrs=st.lists(
        st.integers(min_value=0, max_value=(1 << 14) - 1),
        min_size=1, max_size=200,
    ),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_piccolo_behaves_like_8b_line_when_tags_uniform(addrs, seed):
    """Within one 2 KB window (constant tag), Piccolo-cache hit/miss
    behaviour must track the 8B-line cache of equal capacity reasonably:
    both always hit on repeats, and Piccolo's hit count is within the
    8B-line cache's by a bounded margin (Sec. V-A's 'operates as if
    8B line cache')."""
    from repro.cache.fine8b import EightByteLineCache

    piccolo = PiccoloCache(2048, ways=8, fg_tag_bits=4)
    fine = EightByteLineCache(2048, ways=8)
    window = piccolo.window_bytes
    hits_p = hits_f = 0
    for raw in addrs:
        addr = (raw % window) & ~0x7
        hits_p += piccolo.access(addr, False).hit
        hits_f += fine.access(addr, False).hit
    assert abs(hits_p - hits_f) <= max(4, len(addrs) // 3)
