"""Tests for the accelerator pipeline timing model."""

import pytest

from repro.accel.pipeline import PipelineConfig


class TestComputeModel:
    def test_paper_configuration(self):
        config = PipelineConfig()
        assert config.num_pes == 8
        assert config.simd_width == 8
        assert config.lanes == 64
        assert config.freq_ghz == 1.0

    def test_compute_scales_with_edges(self):
        config = PipelineConfig()
        short = config.compute_ns(6400, 0)
        long = config.compute_ns(64000, 0)
        assert long > short
        # 64 lanes at 1 GHz: 64 edges per ns in steady state.
        assert long - short == pytest.approx((64000 - 6400) / 64)

    def test_vertex_ops_counted(self):
        config = PipelineConfig()
        assert config.compute_ns(0, 640) > config.compute_ns(0, 0)

    def test_tile_overhead_floor(self):
        config = PipelineConfig(tile_overhead_cycles=100)
        assert config.compute_ns(0, 0) == pytest.approx(100.0)


class TestPrefetchModel:
    def test_prefetch_enabled_full_bandwidth(self):
        config = PipelineConfig(prefetch=True)
        assert config.stream_bandwidth_scale(21.0, 19.2) == 1.0

    def test_prefetch_disabled_limits_streams(self):
        config = PipelineConfig(prefetch=False, no_prefetch_outstanding=4)
        scale = config.stream_bandwidth_scale(21.0, 19.2)
        # 4 x 64 B / 21 ns ~= 12.2 GB/s of 19.2 GB/s peak
        assert scale == pytest.approx(12.19 / 19.2, rel=0.01)

    def test_enough_outstanding_reaches_peak(self):
        config = PipelineConfig(prefetch=False, no_prefetch_outstanding=64)
        assert config.stream_bandwidth_scale(21.0, 19.2) == 1.0
