"""Property-based tests on the algorithm engines (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import make_algorithm
from repro.algorithms.vcm import VertexCentricEngine
from repro.graph.csr import CSRGraph


@st.composite
def random_graphs(draw, max_vertices=64, max_edges=256):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    dst = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    w = draw(st.lists(st.integers(0, 255), min_size=m, max_size=m))
    return CSRGraph.from_edges(
        n, np.asarray(src, dtype=np.int64), np.asarray(dst, dtype=np.int64),
        np.asarray(w, dtype=np.int64), name="hypo",
    )


@settings(max_examples=50, deadline=None)
@given(graph=random_graphs(), tile=st.integers(min_value=1, max_value=64))
def test_tiling_never_changes_results(graph, tile):
    """Algorithm results are invariant to the tile width."""
    for algo in ("PR", "BFS", "CC"):
        whole = VertexCentricEngine(make_algorithm(algo, graph))
        tiled = VertexCentricEngine(make_algorithm(algo, graph), tile)
        whole.run(12)
        tiled.run(12)
        np.testing.assert_allclose(whole.prop, tiled.prop, rtol=1e-12)


@settings(max_examples=50, deadline=None)
@given(graph=random_graphs())
def test_bfs_levels_are_consistent(graph):
    """BFS levels differ by at most 1 across any edge (triangle property)
    and the source has level 0."""
    engine = VertexCentricEngine(make_algorithm("BFS", graph))
    engine.run(graph.num_vertices + 1)
    levels = engine.prop
    assert levels[0] == 0
    src, dst, _ = graph.edge_array()
    for u, v in zip(src.tolist(), dst.tolist()):
        if np.isfinite(levels[u]):
            assert levels[v] <= levels[u] + 1


@settings(max_examples=50, deadline=None)
@given(graph=random_graphs())
def test_sssp_dominated_by_bfs_times_max_weight(graph):
    """dist(v) <= levels(v) * max_weight for every reachable v."""
    bfs = VertexCentricEngine(make_algorithm("BFS", graph))
    bfs.run(graph.num_vertices + 1)
    sssp = VertexCentricEngine(make_algorithm("SSSP", graph))
    sssp.run(4 * (graph.num_vertices + 1))
    max_w = graph.weights.max() if graph.num_edges else 0
    reachable = np.isfinite(bfs.prop)
    assert np.all(
        sssp.prop[reachable] <= bfs.prop[reachable] * max(max_w, 1) + 1e-9
    )
    # Unreachable vertices stay at infinity in both.
    assert np.array_equal(np.isfinite(sssp.prop), reachable)


@settings(max_examples=50, deadline=None)
@given(graph=random_graphs())
def test_cc_labels_are_fixpoint_and_minimal(graph):
    """At convergence no edge can further lower a label, and labels never
    exceed the vertex id."""
    engine = VertexCentricEngine(make_algorithm("CC", graph))
    engine.run(graph.num_vertices + 1)
    labels = engine.prop
    assert np.all(labels <= np.arange(graph.num_vertices))
    src, dst, _ = graph.edge_array()
    for u, v in zip(src.tolist(), dst.tolist()):
        assert labels[v] <= labels[u]


@settings(max_examples=30, deadline=None)
@given(graph=random_graphs(), damping=st.floats(0.5, 0.95))
def test_pagerank_mass_bounded(graph, damping):
    """Rank mass stays in (0, 1] (dangling vertices leak mass)."""
    engine = VertexCentricEngine(make_algorithm("PR", graph, damping=damping))
    engine.run(20)
    assert engine.prop.min() > 0
    assert engine.prop.sum() <= 1.0 + 1e-9
