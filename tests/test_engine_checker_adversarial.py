"""Adversarial checker tests: corrupt *real* traces, expect rejection.

:mod:`tests.test_engine_checker` hand-builds small illegal streams; this
module instead takes protocol-clean traces produced by the engine and
injects targeted corruptions -- commands shifted to break tRP/tRC/tCCD,
data-bus overlaps, deleted ACT/PRE commands, reordered slots -- and the
independent :class:`TraceChecker` must reject every one.  This is the
evidence that the differential suite's "checker accepts the batched
trace" assertion has teeth.
"""

import dataclasses

import pytest

from repro.dram.engine import DRAMEngine
from repro.dram.engine.checker import EngineProtocolViolation, TraceChecker
from repro.dram.engine.commands import CommandType, Request, RequestType
from repro.dram.spec import DRAMConfig, default_config


@pytest.fixture(scope="module")
def config():
    return dataclasses.replace(default_config(), channels=1, ranks=1)


def _run(config, requests, refresh=False):
    engine = DRAMEngine(config, refresh_enabled=refresh)
    result = engine.run(requests)
    return result.traces[0], engine.timing


def _reads(rows_cols):
    return [
        Request(kind=RequestType.READ, rank=0, bank=0, row=row, column=col)
        for row, col in rows_cols
    ]


def _replay(timing, config, trace):
    TraceChecker(timing, ranks=config.ranks).check_trace(trace)


@pytest.fixture(scope="module")
def episode(config):
    """ACT RD PRE ACT RD: one same-bank row conflict."""
    return _run(config, _reads([(0, 0), (1, 0)]))


@pytest.fixture(scope="module")
def stream(config):
    """ACT RD RD RD RD: one open-row burst stream."""
    return _run(config, _reads([(0, col) for col in (0, 8, 16, 24)]))


def test_fixtures_replay_clean(config, episode, stream):
    for trace, timing in (episode, stream):
        _replay(timing, config, trace)


def test_shifted_act_breaks_trp(config, episode):
    trace, timing = episode
    trace = list(trace)
    pre_at = next(i for i, c in enumerate(trace)
                  if c.kind is CommandType.PRE)
    act_at = next(i for i in range(pre_at, len(trace))
                  if trace[i].kind is CommandType.ACT)
    trace[act_at] = dataclasses.replace(
        trace[act_at], cycle=trace[pre_at].cycle + timing.tRP - 1
    )
    with pytest.raises(EngineProtocolViolation, match="tRP"):
        _replay(timing, config, trace)


def test_shifted_act_breaks_trc(config, episode):
    trace, timing = episode
    trace = list(trace)
    first_act = trace[0]
    assert first_act.kind is CommandType.ACT
    act_at = next(i for i in range(1, len(trace))
                  if trace[i].kind is CommandType.ACT)
    # Earlier than any row-cycle budget allows: whichever of the
    # tRP/tRC family fires first, the checker must reject the gap.
    trace[act_at] = dataclasses.replace(
        trace[act_at], cycle=first_act.cycle + timing.tRC - 1
    )
    trace.sort(key=lambda c: c.cycle)
    with pytest.raises(EngineProtocolViolation, match="tR"):
        _replay(timing, config, trace)


def test_shifted_read_breaks_tccd(config, stream):
    trace, timing = stream
    trace = list(trace)
    rds = [i for i, c in enumerate(trace) if c.kind is CommandType.RD]
    second = trace[rds[1]]
    trace[rds[1]] = dataclasses.replace(
        second, cycle=trace[rds[0]].cycle + 1
    )
    with pytest.raises(EngineProtocolViolation, match="tCCD"):
        _replay(timing, config, trace)


def test_stretched_data_overlaps_bus(config, stream):
    trace, timing = stream
    trace = list(trace)
    rds = [i for i, c in enumerate(trace) if c.kind is CommandType.RD]
    # Lengthen the first read's transfer past the second's data start.
    first = trace[rds[0]]
    trace[rds[0]] = dataclasses.replace(
        first, data_clocks=first.data_clocks + timing.tCCD_L + timing.tBL
    )
    with pytest.raises(EngineProtocolViolation, match="data bus overlap"):
        _replay(timing, config, trace)


def test_early_data_start_rejected(config, stream):
    trace, timing = stream
    trace = list(trace)
    rds = [i for i, c in enumerate(trace) if c.kind is CommandType.RD]
    first = trace[rds[0]]
    trace[rds[0]] = dataclasses.replace(
        first, data_start=first.cycle + timing.tCL - 1
    )
    with pytest.raises(EngineProtocolViolation, match="CAS latency"):
        _replay(timing, config, trace)


def test_deleted_act_orphans_columns(config, stream):
    trace, timing = stream
    assert trace[0].kind is CommandType.ACT
    with pytest.raises(EngineProtocolViolation, match="no open row"):
        _replay(timing, config, trace[1:])


def test_deleted_pre_leaves_bank_open(config, episode):
    trace, timing = episode
    kept = [c for c in trace if c.kind is not CommandType.PRE]
    with pytest.raises(EngineProtocolViolation, match="already open"):
        _replay(timing, config, kept)


def test_swapped_slots_break_time_order(config, stream):
    trace, timing = stream
    trace = list(trace)
    rds = [i for i, c in enumerate(trace) if c.kind is CommandType.RD]
    trace[rds[1]], trace[rds[2]] = trace[rds[2]], trace[rds[1]]
    with pytest.raises(EngineProtocolViolation, match="not time-ordered"):
        _replay(timing, config, trace)


def test_duplicated_slot_rejected(config, stream):
    trace, timing = stream
    rds = [i for i, c in enumerate(trace) if c.kind is CommandType.RD]
    doubled = list(trace)
    doubled.insert(rds[1], trace[rds[1]])
    with pytest.raises(EngineProtocolViolation,
                       match="one bus slot|tCCD"):
        _replay(timing, config, doubled)


def test_deleted_pre_for_ref_rejected(config):
    """Drop the PRE a refresh forced: REF must see the bank still open."""
    requests = _reads([(row, col) for row in range(500)
                       for col in (0, 8)])
    trace, timing = _run(config, requests, refresh=True)
    ref_at = next((i for i, c in enumerate(trace)
                   if c.kind is CommandType.REF), None)
    assert ref_at is not None, "workload too short to hit a refresh"
    pre_at = next(i for i in range(ref_at - 1, -1, -1)
                  if trace[i].kind is CommandType.PRE)
    kept = trace[:pre_at] + trace[pre_at + 1:]
    with pytest.raises(EngineProtocolViolation):
        _replay(timing, config, kept)
