"""Tests for the edge-centric accelerator systems (Fig. 19a)."""

import pytest

from repro.accel.edge_centric import ECConventionalSystem, ECPiccoloSystem
from repro.graph.generators import community_graph, rmat


@pytest.fixture(scope="module")
def graph():
    return rmat(2048, avg_degree=8.0, seed=21, name="ec-test")


class TestECConventional:
    def test_runs_and_counts_edges(self, graph):
        system = ECConventionalSystem(onchip_bytes=2048)
        result = system.run(graph, "PR", max_iterations=2)
        assert result.edges_processed == 2 * graph.num_edges
        assert result.total_ns > 0

    def test_streams_are_useful(self, graph):
        system = ECConventionalSystem(onchip_bytes=2048)
        result = system.run(graph, "PR", max_iterations=1)
        # 100 % useful modulo per-phase burst rounding.
        assert result.useful_fraction == pytest.approx(1.0, abs=0.02)

    def test_grid_repetition_costs_grow_with_smaller_tiles(self, graph):
        small = ECConventionalSystem(onchip_bytes=1024)
        big = ECConventionalSystem(onchip_bytes=8192)
        r_small = small.run(graph, "PR", max_iterations=1)
        r_big = big.run(graph, "PR", max_iterations=1)
        # More blocks -> more source-tile reloads -> more stream traffic.
        assert r_small.stream_read_bytes > r_big.stream_read_bytes


class TestECPiccolo:
    def test_runs_with_fim_ops(self, graph):
        system = ECPiccoloSystem(
            onchip_bytes=2048, mshr_entries=32, fg_tag_bits=4
        )
        result = system.run(graph, "PR", max_iterations=2)
        assert result.dram.fim_gathers > 0
        assert result.cache_accesses > 0

    def test_wins_when_onchip_capacity_is_scarce(self):
        """The paper's Fig. 19a regime: at full scale the conventional EC
        grid reload (~ P x |V|) dominates.  At our 2^12-scaled size that
        quadratic term only bites when on-chip capacity is proportionally
        scarce -- there Piccolo's fine-grained path wins clearly (see
        EXPERIMENTS.md for the deviation discussion)."""
        dense = community_graph(
            4096, avg_degree=24.0, num_communities=32, seed=3, name="dense"
        )
        conv = ECConventionalSystem(onchip_bytes=1024).run(
            dense, "PR", max_iterations=2
        )
        picc = ECPiccoloSystem(
            onchip_bytes=1024, mshr_entries=32, fg_tag_bits=4, tile_scale=8
        ).run(dense, "PR", max_iterations=2)
        assert picc.total_ns < conv.total_ns

    def test_conventional_reload_grows_quadratically(self):
        """Halving the EC grid's on-chip buffers roughly doubles the grid
        dimension and the source-reload traffic."""
        dense = community_graph(
            4096, avg_degree=24.0, num_communities=32, seed=3, name="dense"
        )
        big = ECConventionalSystem(onchip_bytes=4096).run(
            dense, "PR", max_iterations=1
        )
        small = ECConventionalSystem(onchip_bytes=1024).run(
            dense, "PR", max_iterations=1
        )
        # The edge stream is constant; the reload term grows with the
        # grid dimension (sub-quadratically only because empty blocks
        # are skipped).
        edge_bytes = dense.num_edges * 8
        reload_big = big.stream_read_bytes - edge_bytes
        reload_small = small.stream_read_bytes - edge_bytes
        assert reload_small > 2.0 * reload_big

    def test_tile_scale_enlarges_blocks(self, graph):
        narrow = ECPiccoloSystem(onchip_bytes=2048, tile_scale=1,
                                 mshr_entries=32, fg_tag_bits=4)
        wide = ECPiccoloSystem(onchip_bytes=2048, tile_scale=8,
                               mshr_entries=32, fg_tag_bits=4)
        assert wide.tile_widths(graph)[0] > narrow.tile_widths(graph)[0]
