"""FR-FCFS scheduler behaviour: drain hysteresis, priorities, bus
awareness."""

import numpy as np
import pytest

from repro.dram.engine.commands import CommandType, Request, RequestType
from repro.dram.engine.controller import WRITE_HI, WRITE_LO, ChannelController
from repro.dram.engine.timing import timing_from_spec
from repro.dram.spec import DEVICES


def make_controller(**kwargs):
    timing = timing_from_spec(DEVICES["DDR4_2400_x16"])
    kwargs.setdefault("ranks", 4)
    kwargs.setdefault("refresh_enabled", False)
    return ChannelController(timing, **kwargs)


def drain(controller, limit=500_000):
    now = 0
    while controller.pending:
        next_cycle, issued = controller.step(now)
        now = next_cycle if issued else max(now + 1,
                                            min(next_cycle, now + 10_000))
        limit -= 1
        assert limit > 0, "controller failed to drain"


def read(bank, row, rank=0, column=0, req_id=0):
    return Request(RequestType.READ, rank=rank, bank=bank, row=row,
                   column=column, req_id=req_id)


def write(bank, row, rank=0, column=0, req_id=0):
    return Request(RequestType.WRITE, rank=rank, bank=bank, row=row,
                   column=column, req_id=req_id)


class TestWriteDrain:
    def test_reads_preferred_below_watermark(self):
        controller = make_controller(queue_depth=16)
        controller.enqueue(write(0, 1, req_id=0))
        controller.enqueue(read(1, 1, req_id=1))
        drain(controller)
        cols = [c for c in controller.trace
                if c.kind in (CommandType.RD, CommandType.WR)]
        assert cols[0].kind is CommandType.RD

    def test_drain_mode_entered_at_high_watermark(self):
        depth = 16
        controller = make_controller(queue_depth=depth)
        hi = int(depth * WRITE_HI)
        controller.enqueue(read(7, 1, req_id=99))
        for i in range(hi):
            controller.enqueue(write(i % 4, 1, column=i, req_id=i))
        controller._update_write_mode()
        assert controller._write_mode

    def test_drain_mode_exits_at_low_watermark(self):
        depth = 16
        controller = make_controller(queue_depth=depth)
        controller._write_mode = True
        controller.enqueue(read(7, 1, req_id=99))
        for i in range(int(depth * WRITE_LO)):
            controller.enqueue(write(0, 1, column=i, req_id=i))
        controller._update_write_mode()
        assert not controller._write_mode

    def test_writes_eventually_complete_even_below_watermark(self):
        controller = make_controller(queue_depth=32)
        controller.enqueue(write(0, 1, req_id=0))
        drain(controller)
        assert controller.stats.writes == 1


class TestBusAwareSelection:
    def test_same_rank_hits_batch(self):
        """With row hits ready on two ranks, the scheduler must not
        strictly alternate ranks (each switch costs tRTRS on the data
        bus)."""
        controller = make_controller()
        req_id = 0
        for column in range(8):
            for rank in (0, 1):
                controller.enqueue(read(0, 1, rank=rank, column=column,
                                        req_id=req_id))
                req_id += 1
        drain(controller)
        cols = [c for c in controller.trace
                if c.kind is CommandType.RD]
        switches = sum(1 for a, b in zip(cols, cols[1:])
                       if a.rank != b.rank)
        assert switches < len(cols) - 2  # strict alternation would be 15

    def test_prep_commands_fill_idle_slots(self):
        """An ACT for a second bank should issue while the first bank's
        column commands are pacing at tCCD."""
        controller = make_controller()
        for column in range(4):
            controller.enqueue(read(0, 1, column=column, req_id=column))
        controller.enqueue(read(1, 2, req_id=10))
        drain(controller)
        trace = controller.trace
        act_b1 = next(c for c in trace
                      if c.kind is CommandType.ACT and c.bank == 1)
        last_rd_b0 = max(c.cycle for c in trace
                         if c.kind is CommandType.RD and c.bank == 0)
        assert act_b1.cycle < last_rd_b0


class TestFairness:
    def test_no_request_starves(self):
        rng = np.random.default_rng(0)
        controller = make_controller(queue_depth=8)
        requests = [
            Request(RequestType.READ if rng.random() < 0.7
                    else RequestType.WRITE,
                    rank=int(rng.integers(0, 4)),
                    bank=int(rng.integers(0, 8)),
                    row=int(rng.integers(0, 16)),
                    column=int(rng.integers(0, 64)),
                    req_id=i)
            for i in range(120)
        ]
        for request in requests:
            # Feed through a driver that respects queue depth.
            pass
        from repro.dram.engine import DRAMEngine
        from repro.dram.spec import default_config

        engine = DRAMEngine(default_config(), queue_depth=8)
        result = engine.run(requests)
        assert all(r.done for r in result.requests)

    def test_fim_does_not_starve_reads_on_other_banks(self):
        controller = make_controller()
        for i in range(4):
            controller.enqueue(Request(
                RequestType.GATHER, rank=0, bank=0, row=0,
                offsets=tuple(range(8 * i, 8 * i + 8)), req_id=i,
            ))
        controller.enqueue(read(5, 1, req_id=100))
        drain(controller)
        rd = next(c for c in controller.trace
                  if c.kind is CommandType.RD and c.bank == 5)
        last = controller.trace[-1]
        assert rd.cycle < last.cycle  # the read finished mid-storm
