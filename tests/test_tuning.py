"""Tests for the tile tuner and the baked tuning table."""

import pytest

from repro.accel.systems import make_system
from repro.accel.tuner import tune_tile_scale
from repro.experiments.tuning import TUNED_TILE_SCALES, tile_scale_for
from repro.graph.generators import rmat


class TestTuner:
    def test_returns_best_of_timings(self):
        graph = rmat(1024, avg_degree=6.0, seed=5, name="tune-test")

        def factory(scale):
            return make_system(
                "GraphDyns (Cache)", onchip_bytes=1024, tile_scale=scale
            )

        best, timings = tune_tile_scale(
            factory, graph, "PR", scales=(1, 4, 16), probe_iterations=1
        )
        assert best in (1, 4, 16)
        assert timings[best] == min(timings.values())
        assert set(timings) == {1, 4, 16}

    def test_empty_scales_rejected(self):
        with pytest.raises(ValueError):
            tune_tile_scale(lambda s: None, None, "PR", scales=())


class TestBakedTable:
    def test_lookup_falls_back_to_none(self):
        assert tile_scale_for("Piccolo", "PR", "no-such-dataset") is None

    def test_table_entries_are_positive_scales(self):
        for (system, algo, dataset), scale in TUNED_TILE_SCALES.items():
            assert scale >= 1, (system, algo, dataset)
            assert system in ("GraphDyns (Cache)", "NMP", "Piccolo")

    @pytest.mark.skipif(
        not TUNED_TILE_SCALES, reason="tuning table not generated"
    )
    def test_real_world_grid_covered(self):
        for system in ("GraphDyns (Cache)", "Piccolo"):
            for algo in ("PR", "BFS", "CC", "SSSP", "SSWP"):
                for dataset in ("UU", "TW", "SW", "FS", "PP"):
                    assert tile_scale_for(system, algo, dataset) is not None
