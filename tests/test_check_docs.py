"""The docs consistency gate (``tools/check_docs.py``)."""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_docs import DEFAULT_DOCS, check_files  # noqa: E402


class TestCheckFiles:
    def test_clean_doc_passes(self, tmp_path):
        target = tmp_path / "other.md"
        target.write_text("# hi\n")
        doc = tmp_path / "doc.md"
        doc.write_text(
            "See [other](other.md) and [web](https://example.com) "
            "and [anchor](#section).\n"
            "Run `python -m repro figure fig10`.\n"
        )
        assert check_files([doc], tmp_path) == []

    def test_broken_link_reported(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("See [ghost](DESIGN.md).\n")
        problems = check_files([doc], tmp_path)
        assert len(problems) == 1
        assert "broken link -> DESIGN.md" in problems[0]

    def test_links_inside_code_fences_are_ignored(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            "```\n[illustrative](does-not-exist.md)\n```\n"
        )
        assert check_files([doc], tmp_path) == []

    def test_unknown_cli_subcommand_reported(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("Run `python -m repro frobnicate` daily.\n")
        problems = check_files([doc], tmp_path)
        assert len(problems) == 1
        assert "frobnicate" in problems[0]

    def test_cli_mentions_in_fences_are_checked_too(self, tmp_path):
        # quickstarts live in code fences; a stale command there is
        # exactly the rot this gate exists for
        doc = tmp_path / "doc.md"
        doc.write_text("```bash\npython -m repro boguscmd\n```\n")
        problems = check_files([doc], tmp_path)
        assert len(problems) == 1 and "boguscmd" in problems[0]

    def test_link_anchor_suffix_is_stripped(self, tmp_path):
        target = tmp_path / "other.md"
        target.write_text("# hi\n")
        doc = tmp_path / "doc.md"
        doc.write_text("See [sec](other.md#section).\n")
        assert check_files([doc], tmp_path) == []

    def test_missing_checked_file_is_a_problem(self, tmp_path):
        ghost = tmp_path / "absent.md"
        problems = check_files([ghost], tmp_path)
        assert len(problems) == 1 and "does not exist" in problems[0]


class TestRepoDocs:
    def test_the_repo_doc_set_is_clean(self):
        paths = [REPO_ROOT / name for name in DEFAULT_DOCS]
        assert check_files(paths, REPO_ROOT) == []

    def test_cli_entry_point_exits_zero(self):
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "check_docs.py")],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin"},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
