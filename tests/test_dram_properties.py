"""Property-based invariants of the DRAM episode timing model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.spec import DEVICES, DRAMConfig
from repro.dram.system import DRAMModel, FimOp


def make_model(ranks=4, channels=1, window=32):
    config = DRAMConfig(
        spec=DEVICES["DDR4_2400_x16"], channels=channels, ranks=ranks
    )
    return DRAMModel(config, scheduler_window=window)


block_streams = st.lists(
    st.integers(min_value=0, max_value=(1 << 22) - 1), min_size=1, max_size=300
)


@settings(max_examples=50, deadline=None)
@given(blocks=block_streams)
def test_time_positive_and_bounded_by_serial_sum(blocks):
    """Phase time is positive and never exceeds fully-serial service."""
    model = make_model()
    spec = model.spec
    addrs = np.asarray(blocks, dtype=np.int64) * 64
    stats = model.phase(addrs=addrs)
    assert stats.time_ns > 0
    # Fully serial worst case: every access opens its own row.
    serial = len(blocks) * (spec.tRC + spec.tRCD + spec.tCCD) + 1000
    assert stats.time_ns <= serial


@settings(max_examples=50, deadline=None)
@given(blocks=block_streams)
def test_subset_never_slower(blocks):
    """Removing requests never increases the phase time."""
    model = make_model()
    addrs = np.asarray(blocks, dtype=np.int64) * 64
    t_full = model.phase(addrs=addrs).time_ns
    t_half = model.phase(addrs=addrs[: max(1, len(blocks) // 2)]).time_ns
    assert t_half <= t_full + 1e-6


@settings(max_examples=50, deadline=None)
@given(blocks=block_streams)
def test_burst_conservation(blocks):
    """Every request becomes exactly one burst (reads here)."""
    model = make_model()
    addrs = np.asarray(blocks, dtype=np.int64) * 64
    stats = model.phase(addrs=addrs)
    assert stats.read_bursts == len(blocks)
    assert stats.write_bursts == 0


@settings(max_examples=50, deadline=None)
@given(blocks=block_streams)
def test_acts_bounded_by_requests_and_floor(blocks):
    """1 <= activations <= requests (episodes merge same-row runs)."""
    model = make_model()
    addrs = np.asarray(blocks, dtype=np.int64) * 64
    stats = model.phase(addrs=addrs)
    assert 1 <= stats.acts <= len(blocks)


@settings(max_examples=50, deadline=None)
@given(
    blocks=block_streams,
    window=st.sampled_from([1, 8, 64]),
)
def test_larger_scheduler_window_never_hurts_activations(blocks, window):
    """Row-hit-first reordering with a larger window cannot create more
    episodes than in-order service."""
    addrs = np.asarray(blocks, dtype=np.int64) * 64
    in_order = make_model(window=1).phase(addrs=addrs)
    windowed = make_model(window=window).phase(addrs=addrs)
    assert windowed.acts <= in_order.acts


@settings(max_examples=30, deadline=None)
@given(
    items=st.lists(st.integers(min_value=1, max_value=8), min_size=1,
                   max_size=50),
    scatter=st.booleans(),
)
def test_fim_burst_accounting(items, scatter):
    """Offset + data bursts per op follow the device geometry exactly."""
    model = make_model()
    config = model.config
    ops = [
        FimOp(channel=0, rank=i % 4, bank=i % 32, row=i, items=n,
              is_scatter=scatter)
        for i, n in enumerate(items)
    ]
    stats = model.phase(fim_ops=ops)
    n_ops = len(items)
    assert stats.fim_offset_bursts == n_ops * config.fim_offset_bursts
    assert stats.internal_words == sum(items)
    if scatter:
        assert stats.fim_scatters == n_ops
        assert stats.read_bursts == 0
    else:
        assert stats.fim_gathers == n_ops
        # one data burst back per gather on a 64 B-burst device
        assert stats.read_bursts == n_ops


@settings(max_examples=30, deadline=None)
@given(nbytes=st.integers(min_value=64, max_value=1 << 24))
def test_stream_time_linear_in_bytes(nbytes):
    """Stream service time tracks bytes / peak bandwidth closely."""
    model = make_model()
    stats = model.phase(stream_read_bytes=nbytes)
    ideal = nbytes / model.config.peak_bandwidth_gbps
    assert stats.time_ns >= ideal - 1e-6
    assert stats.time_ns <= ideal + model.latency_ns() + model.spec.tBURST * 2
