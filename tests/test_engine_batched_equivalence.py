"""Differential suite: batched engine vs the scalar oracle.

The vectorized columnar controller (``mode="batched"``) is an
independent reimplementation of the scalar FR-FCFS walk in
:mod:`repro.dram.engine.controller`, which stays untouched as the
bit-exactness oracle.  Hypothesis drives both over random conventional,
FIM and mixed workloads -- across device grades, channel/rank
geometries, queue depths, staggered arrivals and refresh on/off -- and
every observable must match bit-for-bit: the full command trace, the
per-bank command counters, every stats field, per-request issue/finish
cycles, and the total duration.
"""

import dataclasses

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dram.engine import CommandColumns, DRAMEngine, check_engine_result
from repro.dram.engine.workloads import (
    conventional_requests,
    fim_requests,
)
from repro.dram.spec import DEVICES, DRAMConfig, default_config

GRADES = sorted(DEVICES)

_slow = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_STATS_FIELDS = (
    "cycles", "acts", "pres", "reads", "writes", "refreshes",
    "gathers", "scatters", "data_bus_clocks", "total_latency",
    "finished_requests",
)


def _config(grade, channels, ranks):
    return DRAMConfig(spec=DEVICES[grade], channels=channels, ranks=ranks)


def _fresh(requests):
    """Independent request copies (the engine mutates issue/finish)."""
    return [dataclasses.replace(r, issue_cycle=-1, finish_cycle=-1)
            for r in requests]


def assert_bit_identical(config, requests, channels, *, queue_depth=32,
                         refresh=True):
    """Run both modes on copies of one workload and diff everything."""
    scalar = DRAMEngine(config, queue_depth=queue_depth,
                        refresh_enabled=refresh, mode="scalar")
    batched = DRAMEngine(config, queue_depth=queue_depth,
                         refresh_enabled=refresh, mode="batched")
    s_requests = _fresh(requests)
    b_requests = _fresh(requests)
    s = scalar.run(s_requests, channels)
    b = batched.run(b_requests, channels)

    assert b.cycles == s.cycles
    assert b.time_ns == s.time_ns
    for field in _STATS_FIELDS:
        assert getattr(b.stats, field) == getattr(s.stats, field), field
    assert len(b.traces) == len(s.traces)
    for b_trace, s_trace in zip(b.traces, s.traces):
        assert b_trace == s_trace
    for b_req, s_req in zip(b_requests, s_requests):
        assert b_req.issue_cycle == s_req.issue_cycle
        assert b_req.finish_cycle == s_req.finish_cycle

    # Per-bank counters: the batched run's columnar trace against the
    # scalar trace re-columnised -- exercised through the same SoA
    # segment math on both sides.
    banks = config.spec.banks_per_rank
    assert b.trace_columns is not None
    for cols, s_trace in zip(b.trace_columns, s.traces):
        oracle = CommandColumns.from_commands(s_trace)
        np.testing.assert_array_equal(
            cols.per_bank_counts(config.ranks, banks),
            oracle.per_bank_counts(config.ranks, banks),
        )
        assert cols.bus_busy_clocks() == oracle.bus_busy_clocks()

    # The batched trace must also stand on its own: protocol-clean.
    assert check_engine_result(b) > 0
    return b, s


@st.composite
def geometries(draw):
    grade = draw(st.sampled_from(GRADES))
    channels = draw(st.sampled_from([1, 2]))
    ranks = draw(st.sampled_from([1, 2, 4]))
    queue_depth = draw(st.sampled_from([2, 4, 32]))
    refresh = draw(st.booleans())
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    n = draw(st.integers(min_value=1, max_value=200))
    return grade, channels, ranks, queue_depth, refresh, seed, n


def _addrs(config, rng, n, fp_log2=22):
    footprint = min(config.capacity_bytes, 1 << fp_log2)
    return rng.integers(0, footprint // 8, size=n, dtype=np.int64) * 8


@_slow
@given(geometries(), st.floats(min_value=0.0, max_value=1.0))
def test_conventional_traffic_bit_identical(params, write_frac):
    grade, channels, ranks, queue_depth, refresh, seed, n = params
    config = _config(grade, channels, ranks)
    rng = np.random.default_rng(seed)
    addrs = _addrs(config, rng, n)
    is_write = rng.random(n) < write_frac
    requests, route = conventional_requests(config, addrs, is_write)
    assert_bit_identical(config, requests, route,
                         queue_depth=queue_depth, refresh=refresh)


@_slow
@given(geometries())
def test_fim_traffic_bit_identical(params):
    grade, channels, ranks, queue_depth, refresh, seed, n = params
    config = _config(grade, channels, ranks)
    rng = np.random.default_rng(seed)
    addrs = _addrs(config, rng, n)
    requests, route = fim_requests(config, addrs, scatter=bool(seed % 2))
    assert_bit_identical(config, requests, route,
                         queue_depth=queue_depth, refresh=refresh)


@_slow
@given(geometries())
def test_staggered_arrivals_bit_identical(params):
    """Arrival gaps force idle jumps and partial queues in both walks."""
    grade, channels, ranks, queue_depth, refresh, seed, n = params
    config = _config(grade, channels, ranks)
    rng = np.random.default_rng(seed)
    addrs = _addrs(config, rng, n)
    is_write = rng.random(n) < 0.4
    requests, route = conventional_requests(config, addrs, is_write)
    arrivals = np.cumsum(rng.integers(0, 400, size=n))
    for request, arrival in zip(requests, arrivals):
        request.arrival = int(arrival)
    assert_bit_identical(config, requests, route,
                         queue_depth=queue_depth, refresh=refresh)


@_slow
@given(geometries())
def test_mixed_fim_and_conventional_bit_identical(params):
    """Interleaved FIM programs and column bursts contend for banks."""
    grade, channels, ranks, queue_depth, refresh, seed, n = params
    config = _config(grade, channels, ranks)
    rng = np.random.default_rng(seed)
    conv_addrs = _addrs(config, rng, max(1, n // 2))
    fim_addrs = _addrs(config, rng, max(1, n // 2))
    conv, conv_route = conventional_requests(
        config, conv_addrs, rng.random(conv_addrs.size) < 0.3
    )
    fim, fim_route = fim_requests(config, fim_addrs,
                                  scatter=bool(seed % 2))
    requests = conv + fim
    route = np.concatenate([conv_route, fim_route])
    assert_bit_identical(config, requests, route,
                         queue_depth=queue_depth, refresh=refresh)


def test_write_drain_hysteresis_bit_identical():
    """An all-write burst drives the WRITE_HI/WRITE_LO drain mode."""
    config = default_config()
    rng = np.random.default_rng(7)
    addrs = _addrs(config, rng, 300, fp_log2=20)
    requests, route = conventional_requests(
        config, addrs, np.ones(addrs.size, dtype=bool)
    )
    b, s = assert_bit_identical(config, requests, route, queue_depth=32)
    assert b.stats.writes == 300


def test_tiny_queue_depth_backpressure_bit_identical():
    """queue_depth=1 forces admission stalls on every request."""
    config = default_config()
    rng = np.random.default_rng(13)
    addrs = _addrs(config, rng, 120, fp_log2=20)
    is_write = rng.random(addrs.size) < 0.5
    requests, route = conventional_requests(config, addrs, is_write)
    assert_bit_identical(config, requests, route, queue_depth=1)
