"""Scrabble (merged-block) and Graphfire (policy-tuned) cache models."""

import numpy as np
import pytest

from repro.cache.fine8b import EightByteLineCache
from repro.cache.graphfire import GraphfireCache, HOT_THRESHOLD
from repro.cache.scrabble import ScrabbleCache
from repro.cache.sectored import SectoredCache


class TestScrabbleBasics:
    def test_miss_fills_one_word(self):
        cache = ScrabbleCache(4096)
        result = cache.access(0x10, False)
        assert not result.hit
        assert result.fill_bytes == 8
        assert result.fill_addr == 0x10

    def test_word_hit(self):
        cache = ScrabbleCache(4096)
        cache.access(0x10, False)
        assert cache.access(0x10, False).hit

    def test_adjacent_words_merge_into_set(self):
        # Eight adjacent words share a set; all resident simultaneously.
        cache = ScrabbleCache(4096, ways=2)
        for word in range(8):
            cache.access(word * 8, False)
        for word in range(8):
            assert cache.access(word * 8, False).hit

    def test_merged_capacity_exceeds_line_count(self):
        # One set holds ways x 8 words even from different regions --
        # the merged-block advantage over a sectored cache.
        scrabble = ScrabbleCache(2 * 64, ways=2)   # 1 set, 16 slots
        sectored = SectoredCache(2 * 64, ways=2)   # 1 set, 2 lines
        for i in range(4):
            scrabble.access(i * 512, False)
            sectored.access(i * 512, False)
        scrabble_hits = sum(
            scrabble.access(i * 512, False).hit for i in range(4)
        )
        sectored_hits = sum(
            sectored.access(i * 512, False).hit for i in range(4)
        )
        assert scrabble_hits == 4
        assert sectored_hits < 4

    def test_lru_within_slot_pool(self):
        cache = ScrabbleCache(64, ways=1)  # 1 set, 8 slots
        for word in range(8):
            cache.access(word * 8, False)
        cache.access(0, False)           # refresh word 0
        cache.access(9 * 8, False)       # evicts word 1
        assert cache.access(0, False).hit
        assert not cache.access(1 * 8, False).hit

    def test_dirty_eviction(self):
        cache = ScrabbleCache(64, ways=1)
        cache.access(0, True)
        for word in range(1, 9):
            result = cache.access(word * 8, False)
        assert result.writebacks == [(0, 8)]

    def test_flush(self):
        cache = ScrabbleCache(4096)
        cache.access(0x20, True)
        cache.access(0x40, False)
        assert cache.flush() == [(0x20, 8)]

    def test_behaves_like_fine8b_on_random_words(self):
        scrabble = ScrabbleCache(4096, ways=8)
        fine = EightByteLineCache(4096, ways=8)
        rng = np.random.default_rng(7)
        addrs = (rng.integers(0, 1024, 30_000) * 8).tolist()
        for addr in addrs:
            scrabble.access(addr, False)
            fine.access(addr, False)
        assert scrabble.stats.hit_rate == pytest.approx(
            fine.stats.hit_rate, abs=0.05
        )

    def test_metadata_exceeds_fine8b(self):
        scrabble = ScrabbleCache(4096)
        fine = EightByteLineCache(4096)
        assert scrabble.tag_overhead_bits > fine.tag_overhead_bits
        assert scrabble.capacity_bytes == 4096


class TestGraphfireBasics:
    def test_random_miss_fills_sector(self):
        cache = GraphfireCache(4096)
        result = cache.access(0x108, False)
        assert not result.hit
        assert result.fill_bytes == 8
        assert result.fill_addr == 0x108

    def test_sector_hit(self):
        cache = GraphfireCache(4096)
        cache.access(0x108, False)
        assert cache.access(0x108, False).hit

    def test_sector_miss_in_resident_frame(self):
        cache = GraphfireCache(4096)
        cache.access(0x100, False)
        result = cache.access(0x110, False)
        assert not result.hit
        assert result.fill_bytes == 8
        assert cache.stats.evictions == 0

    def test_stream_upgrades_to_full_frame(self):
        cache = GraphfireCache(4096)
        cache.access(0x100, False)   # random fill: one sector
        result = cache.access(0x108, False)  # sequential: stream fill
        assert result.fill_bytes == 7 * 8  # remaining sectors
        for sector in range(2, 8):
            assert cache.access(0x100 + sector * 8, False).hit

    def test_metadata_way_reduces_capacity(self):
        cache = GraphfireCache(4096, ways=8)
        assert cache.capacity_bytes == 4096 * 7 // 8
        assert cache.data_ways == 7

    def test_cold_insertion_evicts_quickly(self):
        # Single-touch (cold) blocks must not displace the hot block.
        cache = GraphfireCache(2 * 8 * 64, ways=8)  # 1 set, 7 data ways
        hot = 0x0
        for _ in range(4):
            cache.access(hot, False)  # hotness saturates
        for i in range(1, 30):
            cache.access(i * (cache.num_sets * 64), False)  # cold storm
        assert cache.access(hot, False).hit

    def test_hot_blocks_insert_mru(self):
        cache = GraphfireCache(4096, ways=8)
        block = 0x200
        for _ in range(HOT_THRESHOLD + 1):
            cache.access(block, False)
        frames = cache._sets[(block >> 6) & cache._set_mask]
        assert frames[0][0] == block >> 6

    def test_dirty_sectors_write_back_individually(self):
        cache = GraphfireCache(4096, ways=2)  # data_ways = 1
        set_stride = cache.num_sets * 64
        cache.access(0x0, True)
        cache.access(0x18, True)
        result = cache.access(set_stride, False)  # evicts the frame
        assert sorted(result.writebacks) == [(0x0, 8), (0x18, 8)]

    def test_flush(self):
        cache = GraphfireCache(4096)
        cache.access(0x40, True)
        assert cache.flush() == [(0x40, 8)]

    def test_needs_two_ways(self):
        with pytest.raises(ValueError, match="ways"):
            GraphfireCache(64, ways=1)

    def test_beats_sectored_on_scan_pollution(self):
        """A reused hot set interleaved with a one-touch scan: LIP-style
        cold insertion must protect the hot frames where plain sectored
        LRU lets the scan flush them."""
        graphfire = GraphfireCache(4096, ways=8)
        sectored = SectoredCache(4096, ways=8)
        rng = np.random.default_rng(3)
        hot_blocks = rng.integers(0, 48, 6_000)  # reused working set
        scan = 4096 + np.arange(12_000)          # never-reused sweep
        addrs = []
        for i in range(6_000):
            addrs.append(int(hot_blocks[i]) * 64)
            addrs.append(int(scan[2 * i]) * 64)
            addrs.append(int(scan[2 * i + 1]) * 64)
        for addr in addrs:
            graphfire.access(addr, False)
            sectored.access(addr, False)
        assert graphfire.stats.hit_rate > sectored.stats.hit_rate + 0.05

    def test_dead_block_feedback_cools_scan_blocks(self):
        cache = GraphfireCache(4096, ways=8)
        set_stride = cache.num_sets * 64
        # One-touch blocks cycling through a set: evicted unreused.
        for i in range(40):
            cache.access(i * set_stride, False)
        # Their hotness entries must not have accumulated heat.
        hot_slots = [cache._hotness[cache._hotness_slot((i * set_stride) >> 6)]
                     for i in range(30)]
        assert max(hot_slots) <= 1
