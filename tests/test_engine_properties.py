"""Property-based validation: the engine never breaks the protocol.

Hypothesis drives the engine with arbitrary mixes of reads, writes and
FIM operations over every device grade and the checker -- an
independent reimplementation of the JEDEC rules -- must accept every
trace.  This is the reproduction's equivalent of running unconstrained
stimulus against the FPGA emulation platform.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dram.engine import DRAMEngine, check_engine_result
from repro.dram.engine.workloads import (
    conventional_requests,
    fim_requests,
)
from repro.dram.spec import DEVICES, DRAMConfig

GRADES = sorted(DEVICES)

_slow = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _config(grade: str, channels: int, ranks: int) -> DRAMConfig:
    return DRAMConfig(spec=DEVICES[grade], channels=channels, ranks=ranks)


@st.composite
def workloads(draw):
    grade = draw(st.sampled_from(GRADES))
    channels = draw(st.sampled_from([1, 2]))
    ranks = draw(st.sampled_from([1, 2, 4]))
    n = draw(st.integers(min_value=1, max_value=250))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    write_frac = draw(st.floats(min_value=0.0, max_value=1.0))
    footprint_log2 = draw(st.integers(min_value=12, max_value=24))
    return grade, channels, ranks, n, seed, write_frac, footprint_log2


@_slow
@given(workloads())
def test_random_traffic_is_protocol_clean(params):
    grade, channels, ranks, n, seed, write_frac, fp_log2 = params
    config = _config(grade, channels, ranks)
    rng = np.random.default_rng(seed)
    footprint = min(config.capacity_bytes, 1 << fp_log2)
    addrs = rng.integers(0, footprint // 8, size=n, dtype=np.int64) * 8
    is_write = rng.random(n) < write_frac
    engine = DRAMEngine(config, refresh_enabled=True)
    requests, route = conventional_requests(config, addrs, is_write)
    result = engine.run(requests, route)
    assert all(r.done for r in result.requests)
    assert check_engine_result(result) > 0


@_slow
@given(workloads())
def test_fim_traffic_is_protocol_clean(params):
    grade, channels, ranks, n, seed, _, fp_log2 = params
    config = _config(grade, channels, ranks)
    rng = np.random.default_rng(seed)
    footprint = min(config.capacity_bytes, 1 << fp_log2)
    addrs = rng.integers(0, footprint // 8, size=n, dtype=np.int64) * 8
    engine = DRAMEngine(config, refresh_enabled=True)
    scatter = bool(seed % 2)
    requests, route = fim_requests(config, addrs, scatter=scatter)
    result = engine.run(requests, route)
    assert all(r.done for r in result.requests)
    assert check_engine_result(result) > 0
    done_fim = result.stats.gathers + result.stats.scatters
    assert done_fim == len(requests)


@_slow
@given(workloads())
def test_mixed_traffic_is_protocol_clean(params):
    grade, channels, ranks, n, seed, write_frac, fp_log2 = params
    config = _config(grade, channels, ranks)
    rng = np.random.default_rng(seed)
    footprint = min(config.capacity_bytes, 1 << fp_log2)
    addrs = rng.integers(0, footprint // 8, size=n, dtype=np.int64) * 8
    split = n // 2
    engine = DRAMEngine(config, refresh_enabled=True)
    conv_reqs, conv_route = conventional_requests(
        config, addrs[:split],
        rng.random(min(split, addrs[:split].size)) < write_frac
        if split else None,
    )
    fim_reqs, fim_route = fim_requests(config, addrs[split:])
    for i, request in enumerate(fim_reqs):
        request.req_id = 10_000 + i
    requests = conv_reqs + fim_reqs
    route = np.concatenate([conv_route, fim_route]) if len(requests) else \
        np.zeros(0, dtype=np.int64)
    result = engine.run(requests, route)
    assert all(r.done for r in result.requests)
    assert check_engine_result(result) > 0


@_slow
@given(
    grade=st.sampled_from(GRADES),
    n=st.integers(min_value=2, max_value=120),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_latency_never_below_cas_floor(grade, n, seed):
    config = _config(grade, 1, 1)
    rng = np.random.default_rng(seed)
    addrs = rng.integers(0, 1 << 20, size=n, dtype=np.int64) * 8
    engine = DRAMEngine(config)
    requests, route = conventional_requests(config, addrs)
    result = engine.run(requests, route)
    floor = result.timing.tCL + result.timing.tBL
    for request in result.requests:
        assert request.latency >= floor


@pytest.mark.parametrize("grade", GRADES)
def test_fim_window_delay_applied_when_needed(grade):
    """On grades where items x tCCD_L exceeds the natural gap, the RD
    must be pushed out (the paper's 'slightly adjust tWR')."""
    config = DRAMConfig(spec=DEVICES[grade], channels=1, ranks=1)
    engine = DRAMEngine(config)
    timing = engine.timing
    addrs = (np.arange(config.fim_items_per_op, dtype=np.int64) * 8)
    requests, route = fim_requests(config, addrs)
    result = engine.run(requests, route)
    window = config.fim_items_per_op * timing.tCCD_L
    trace = result.traces[0]
    offset_wr = next(c for c in trace if c.virtual and c.data_clocks)
    final_col = trace[-1]
    assert final_col.cycle >= offset_wr.data_end + window
    assert check_engine_result(result) > 0
