"""Cross-validation between the engine and the analytic phase model."""

import numpy as np
import pytest

from repro.dram.engine.workloads import random_mix, strided_addresses
from repro.dram.engine.xval import (
    ENGINE_XVAL_PROFILES,
    ENGINE_XVAL_WORKLOADS,
    XValPoint,
    compare_conventional,
    compare_fim,
    microbench_speedups,
    run_engine_xval_cell,
)
from repro.dram.spec import default_config


@pytest.fixture(scope="module")
def config():
    return default_config()


class TestAgreementBands:
    """The engine pays command-bus and CAS overheads the analytic model
    hides, so absolute agreement is loose; it must stay in a stable
    band for bandwidth-bound workloads."""

    def test_sequential_band(self, config):
        addrs = np.arange(0, 64 * 2000, 64, dtype=np.int64)
        point = compare_conventional(config, addrs)
        assert 0.5 < point.ratio < 3.0

    def test_random_band(self, config):
        addrs, is_write = random_mix(config, 1500, seed=11)
        point = compare_conventional(config, addrs, is_write)
        assert 0.4 < point.ratio < 3.0

    def test_fim_band(self, config):
        addrs = strided_addresses(config, 1 << 18, 8, single_row=True)
        point = compare_fim(config, addrs)
        assert 0.5 < point.ratio < 3.0

    def test_ratio_stable_across_strides(self, config):
        ratios = []
        for stride in (4, 8, 16, 32):
            addrs = strided_addresses(config, 1 << 17, stride, True)
            ratios.append(compare_conventional(config, addrs).ratio)
        assert max(ratios) / min(ratios) < 1.8


class TestSpeedupAgreement:
    """Model constants cancel in the FIM-vs-conventional *ratio*, the
    quantity Fig. 9 actually reports -- it must agree tightly."""

    def test_stride8_speedup_near_4x(self, config):
        rows = microbench_speedups(config, 1 << 18)
        by_stride = {r["stride"]: r for r in rows}
        assert 3.0 < by_stride[8]["speedup"] <= 4.3

    def test_stride4_halved_penalty(self, config):
        # Two 8 B words share a burst at stride 4 (Sec. VII-B).
        rows = microbench_speedups(config, 1 << 18)
        by_stride = {r["stride"]: r for r in rows}
        assert by_stride[4]["speedup"] < by_stride[8]["speedup"]
        assert 1.5 < by_stride[4]["speedup"] < 2.6

    def test_engine_vs_analytic_speedup_close(self, config):
        for stride in (8, 16):
            addrs = strided_addresses(config, 1 << 17, stride, True)
            conv = compare_conventional(config, addrs)
            fim = compare_fim(config, addrs)
            engine_speedup = conv.engine_ns / fim.engine_ns
            analytic_speedup = conv.analytic_ns / fim.analytic_ns
            assert engine_speedup == pytest.approx(
                analytic_speedup, rel=0.35
            )

    def test_multi_row_walk_pays_activations(self, config):
        # The multi-row series must genuinely span rows: the engine's
        # conventional run should activate far more often than the
        # single-row series (which opens each bank's row once).
        from repro.dram.engine import DRAMEngine
        from repro.dram.engine.workloads import conventional_requests

        def acts(single_row):
            addrs = strided_addresses(config, 1 << 20, 8, single_row)
            engine = DRAMEngine(config)
            requests, route = conventional_requests(config, addrs)
            return engine.run(requests, route).stats.acts

        assert acts(False) > 4 * acts(True)


class TestCommandCounts:
    def test_engine_reports_commands(self, config):
        addrs = np.arange(0, 64 * 100, 64, dtype=np.int64)
        point = compare_conventional(config, addrs)
        # At least one column command per request.
        assert point.engine_commands >= 100


class TestRatioGuard:
    """Regression: a zero analytic duration used to yield a silent
    ``inf`` ratio that poisoned downstream band assertions; it must be
    a loud error instead."""

    def test_zero_analytic_raises(self):
        point = XValPoint("degenerate", 12.0, 0.0, 3)
        with pytest.raises(ValueError, match="degenerate"):
            point.ratio

    def test_nonzero_analytic_divides(self):
        assert XValPoint("ok", 12.0, 6.0, 3).ratio == 2.0


class TestEngineXvalCells:
    """The trajectory-cell API behind ``perf_report --engine-xval``."""

    def test_toy_grid_runs_and_validates(self):
        for workload in ENGINE_XVAL_WORKLOADS:
            result = run_engine_xval_cell("toy", workload)
            assert result["cell"] == f"engine-xval/toy/{workload}"
            assert result["seconds"] > 0
            assert result["commands"] > 0
            assert 0.4 < result["ratio"] < 3.0, (workload, result["ratio"])

    def test_engine_mode_is_observable_only_in_wall_clock(self):
        batched = run_engine_xval_cell("toy", "fim-gather")
        scalar = run_engine_xval_cell("toy", "fim-gather",
                                      engine_mode="scalar")
        assert batched["cycles"] == scalar["cycles"]
        assert batched["commands"] == scalar["commands"]
        assert batched["engine_ns"] == scalar["engine_ns"]
        assert batched["ratio"] == scalar["ratio"]

    def test_profiles_scale_monotonically(self):
        scales = [ENGINE_XVAL_PROFILES[p]["total_bytes"]
                  for p in ("toy", "mid", "paper")]
        assert scales == sorted(scales) and len(set(scales)) == 3

    def test_unknown_cell_rejected(self):
        with pytest.raises(ValueError, match="profile"):
            run_engine_xval_cell("huge", "mix")
        with pytest.raises(ValueError, match="workload"):
            run_engine_xval_cell("toy", "bogus")
