"""Tests for the experiment runner and figure helpers (fast subsets)."""

import pytest

from repro.accel.base import SystemResult
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.runner import (
    clear_result_cache,
    geomean_speedups,
    run_system,
    speedup_table,
)


class TestRunSystem:
    def test_returns_result(self):
        result = run_system("Piccolo", "PR", "UU", max_iterations=1)
        assert isinstance(result, SystemResult)
        assert result.system == "Piccolo"
        assert result.dataset == "UU"

    def test_unknown_system(self):
        with pytest.raises(KeyError, match="unknown system"):
            run_system("FPGA", "PR", "UU")

    def test_memoisation_returns_same_object(self):
        clear_result_cache()
        a = run_system("PIM", "PR", "UU", max_iterations=1)
        b = run_system("PIM", "PR", "UU", max_iterations=1)
        assert a is b

    def test_tile_scale_busts_cache(self):
        clear_result_cache()
        a = run_system("Piccolo", "PR", "UU", max_iterations=1, tile_scale=1)
        b = run_system("Piccolo", "PR", "UU", max_iterations=1, tile_scale=4)
        assert a is not b
        assert a.tile_width != b.tile_width

    def test_iteration_cap_from_scale(self):
        clear_result_cache()
        result = run_system("PIM", "PR", "UU")
        assert result.iterations <= DEFAULT_SCALE.iterations_for("PR")

    def test_spm_gets_spm_budget(self):
        result = run_system("Graphicionado", "PR", "UU", max_iterations=1)
        assert result.onchip_bytes == DEFAULT_SCALE.spm_bytes


class TestSpeedupTable:
    def _fake(self, system, ns):
        return SystemResult(system=system, algorithm="PR", dataset="X",
                            total_ns=ns)

    def test_normalises_to_baseline(self):
        results = {
            ("GraphDyns (Cache)", "PR", "X"): self._fake("b", 100.0),
            ("Piccolo", "PR", "X"): self._fake("p", 50.0),
        }
        table = speedup_table(results)
        assert table[("Piccolo", "PR", "X")] == pytest.approx(2.0)
        assert table[("GraphDyns (Cache)", "PR", "X")] == pytest.approx(1.0)

    def test_missing_baseline_raises(self):
        results = {("Piccolo", "PR", "X"): self._fake("p", 50.0)}
        with pytest.raises(KeyError, match="missing baseline"):
            speedup_table(results)

    def test_geomean_by_system(self):
        table = {
            ("Piccolo", "PR", "X"): 2.0,
            ("Piccolo", "PR", "Y"): 8.0,
            ("PIM", "PR", "X"): 0.5,
        }
        gm = geomean_speedups(table)
        assert gm["Piccolo"] == pytest.approx(4.0)
        assert gm["PIM"] == pytest.approx(0.5)


class TestExperimentScale:
    def test_default_iterations(self):
        scale = ExperimentScale()
        assert scale.iterations_for("PR") == 3
        assert scale.iterations_for("BFS") == 40
        assert scale.iterations_for("UNKNOWN") == 40

    def test_dram_default_matches_paper(self):
        config = DEFAULT_SCALE.dram()
        assert config.ranks == 4
        assert config.spec.name == "DDR4_2400_x16"

    def test_dram_overrides(self):
        config = DEFAULT_SCALE.dram(ranks=2)
        assert config.ranks == 2


class TestFigureHelpers:
    def test_figure_3_small(self):
        from repro.experiments.figures import figure_3

        rows = figure_3(datasets=("SW",))
        assert len(rows) == 2
        modes = {r["mode"] for r in rows}
        assert modes == {"Non-Tiling", "Perfect Tiling"}

    def test_figure_10_small(self):
        from repro.experiments.figures import figure_10

        rows = figure_10(
            datasets=("UU",), algorithms=("BFS",),
            systems=("GraphDyns (Cache)", "Piccolo"),
        )
        gm_rows = [r for r in rows if r["algorithm"] == "GM"]
        assert len(gm_rows) == 2
        cell = {r["system"]: r["speedup"] for r in rows
                if r["algorithm"] == "BFS"}
        assert cell["GraphDyns (Cache)"] == pytest.approx(1.0)

    def test_figure_19b_small(self):
        from repro.experiments.figures import figure_19b

        rows = figure_19b(num_rows=1 << 12)
        assert {r["query"] for r in rows} == {"Qa", "Qb", "Qc", "Qd"}
