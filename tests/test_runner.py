"""Tests for the experiment runner and figure helpers (fast subsets)."""

import dataclasses

import pytest

from repro.accel.base import SystemResult
from repro.experiments.config import (
    DEFAULT_SCALE,
    ExperimentScale,
    PROFILES,
    get_profile,
)
from repro.experiments.runner import (
    clear_result_cache,
    geomean_speedups,
    run_system,
    speedup_table,
)


class TestRunSystem:
    def test_returns_result(self):
        result = run_system("Piccolo", "PR", "UU", max_iterations=1)
        assert isinstance(result, SystemResult)
        assert result.system == "Piccolo"
        assert result.dataset == "UU"

    def test_unknown_system(self):
        with pytest.raises(KeyError, match="unknown system"):
            run_system("FPGA", "PR", "UU")

    def test_memoisation_returns_same_object(self):
        clear_result_cache()
        a = run_system("PIM", "PR", "UU", max_iterations=1)
        b = run_system("PIM", "PR", "UU", max_iterations=1)
        assert a is b

    def test_tile_scale_busts_cache(self):
        clear_result_cache()
        a = run_system("Piccolo", "PR", "UU", max_iterations=1, tile_scale=1)
        b = run_system("Piccolo", "PR", "UU", max_iterations=1, tile_scale=4)
        assert a is not b
        assert a.tile_width != b.tile_width

    def test_iteration_cap_from_scale(self):
        clear_result_cache()
        result = run_system("PIM", "PR", "UU")
        assert result.iterations <= DEFAULT_SCALE.iterations_for("PR")

    def test_spm_gets_spm_budget(self):
        result = run_system("Graphicionado", "PR", "UU", max_iterations=1)
        assert result.onchip_bytes == DEFAULT_SCALE.spm_bytes


class TestSpeedupTable:
    def _fake(self, system, ns):
        return SystemResult(system=system, algorithm="PR", dataset="X",
                            total_ns=ns)

    def test_normalises_to_baseline(self):
        results = {
            ("GraphDyns (Cache)", "PR", "X"): self._fake("b", 100.0),
            ("Piccolo", "PR", "X"): self._fake("p", 50.0),
        }
        table = speedup_table(results)
        assert table[("Piccolo", "PR", "X")] == pytest.approx(2.0)
        assert table[("GraphDyns (Cache)", "PR", "X")] == pytest.approx(1.0)

    def test_missing_baseline_raises(self):
        results = {("Piccolo", "PR", "X"): self._fake("p", 50.0)}
        with pytest.raises(KeyError, match="missing baseline"):
            speedup_table(results)

    def test_zero_time_baseline_raises(self):
        results = {
            ("GraphDyns (Cache)", "PR", "X"): self._fake("b", 0.0),
            ("Piccolo", "PR", "X"): self._fake("p", 50.0),
        }
        with pytest.raises(ValueError, match="cannot be normalised"):
            speedup_table(results)

    def test_zero_time_result_raises(self):
        results = {
            ("GraphDyns (Cache)", "PR", "X"): self._fake("b", 100.0),
            ("Piccolo", "PR", "X"): self._fake("p", 0.0),
        }
        with pytest.raises(ValueError, match="undefined"):
            speedup_table(results)

    def test_geomean_by_system(self):
        table = {
            ("Piccolo", "PR", "X"): 2.0,
            ("Piccolo", "PR", "Y"): 8.0,
            ("PIM", "PR", "X"): 0.5,
        }
        gm = geomean_speedups(table)
        assert gm["Piccolo"] == pytest.approx(4.0)
        assert gm["PIM"] == pytest.approx(0.5)


class TestExperimentScale:
    def test_default_iterations(self):
        scale = ExperimentScale()
        assert scale.iterations_for("PR") == 3
        assert scale.iterations_for("BFS") == 40
        assert scale.iterations_for("UNKNOWN") == 40

    def test_dram_default_matches_paper(self):
        config = DEFAULT_SCALE.dram()
        assert config.ranks == 4
        assert config.spec.name == "DDR4_2400_x16"

    def test_dram_overrides(self):
        config = DEFAULT_SCALE.dram(ranks=2)
        assert config.ranks == 2


class TestScaleProfiles:
    def test_registry_names(self):
        assert set(PROFILES) == {"toy", "mid", "paper"}
        for name, profile in PROFILES.items():
            assert profile.name == name

    def test_toy_profile_is_the_default_scale(self):
        # The profile refactor must be a pure refactor at toy scale.
        assert PROFILES["toy"] == DEFAULT_SCALE == ExperimentScale()

    def test_paper_profile_matches_paper_capacities(self):
        paper = PROFILES["paper"]
        assert paper.piccolo_cache_bytes == 4 * 1024 * 1024
        assert paper.spm_bytes == 4_718_592  # 4.5 MB
        assert paper.mshr_entries == 4096
        assert paper.fg_tag_bits == 8
        assert paper.chunk_size is not None  # paper scale must chunk
        assert paper.replay_capacity == 0

    def test_get_profile_resolves_names_and_passthrough(self):
        assert get_profile("mid") is PROFILES["mid"]
        custom = ExperimentScale(name="custom", scale_shift=14)
        assert get_profile(custom) is custom
        with pytest.raises(KeyError, match="unknown scale profile"):
            get_profile("huge")

    def test_describe_is_flat(self):
        for profile in PROFILES.values():
            knobs = profile.describe()
            assert knobs["name"] == profile.name
            assert "max_iterations" not in knobs
            assert all(not isinstance(v, dict) for v in knobs.values())

    def test_run_system_accepts_profile_name(self):
        clear_result_cache()
        by_name = run_system("Piccolo", "PR", "UU", scale="toy",
                             max_iterations=1)
        by_default = run_system("Piccolo", "PR", "UU", max_iterations=1)
        assert by_name is by_default  # identical cell -> memoised hit

    def test_chunked_run_is_bit_identical(self):
        clear_result_cache()
        whole = run_system("Piccolo", "PR", "UU", max_iterations=1)
        chunked = run_system("Piccolo", "PR", "UU", max_iterations=1,
                             chunk_size=64)
        assert whole is not chunked
        assert whole.total_ns == chunked.total_ns
        assert whole.cache_hits == chunked.cache_hits
        assert whole.cache_misses == chunked.cache_misses
        assert whole.dram.read_bursts == chunked.dram.read_bursts
        assert whole.dram.write_bursts == chunked.dram.write_bursts
        assert whole.mshr_ops == chunked.mshr_ops

    def test_custom_profile_scales_graph_and_capacities(self):
        clear_result_cache()
        tiny = dataclasses.replace(
            PROFILES["toy"], name="tiny", scale_shift=14,
            piccolo_cache_bytes=512, cache_ways=4, chunk_size=128,
        )
        result = run_system("Piccolo", "PR", "UU", scale=tiny,
                            max_iterations=1)
        default = run_system("Piccolo", "PR", "UU", max_iterations=1)
        assert result.onchip_bytes == 512
        assert result.tile_width < default.tile_width


class TestTileBacking:
    def test_backing_is_not_part_of_the_cell_digest(self, tmp_path):
        """Disk-backed tiles are bit-identical to in-memory ones, so
        backing is an execution detail: memo hits and sweep checkpoints
        are shared across backings."""
        from repro.experiments.runner import CellSpec, resolve_cell

        base = CellSpec(system="Piccolo", algorithm="PR", dataset="UU")
        disk = dataclasses.replace(base, tile_backing="disk")
        store = dataclasses.replace(
            base,
            scale=dataclasses.replace(
                PROFILES["toy"],
                tile_backing="disk",
                tile_store_root=str(tmp_path),
                tile_bucket_edges=1 << 12,
            ),
        )
        digests = {resolve_cell(s).digest for s in (base, disk, store)}
        assert len(digests) == 1 and None not in digests

    def test_disk_backed_run_is_bit_identical(self, tmp_path):
        clear_result_cache()
        mem = run_system("Piccolo", "PR", "SW", max_iterations=2)
        clear_result_cache()
        scale = dataclasses.replace(
            PROFILES["toy"], tile_store_root=str(tmp_path)
        )
        dsk = run_system("Piccolo", "PR", "SW", max_iterations=2,
                         scale=scale, tile_backing="disk")
        assert mem is not dsk
        assert mem.to_record() == dsk.to_record()

    def test_profile_tile_backing_flows_to_system(self, tmp_path):
        from repro.experiments.runner import CellSpec, resolve_cell

        scale = dataclasses.replace(
            PROFILES["toy"], tile_backing="disk",
            tile_store_root=str(tmp_path),
        )
        cell = resolve_cell(
            CellSpec(system="Piccolo", algorithm="PR", dataset="UU",
                     scale=scale)
        )
        assert cell.make_kwargs["tile_backing"] == "disk"
        assert cell.make_kwargs["tile_store_root"] == str(tmp_path)


class TestFigureHelpers:
    def test_figure_3_small(self):
        from repro.experiments.figures import figure_3

        rows = figure_3(datasets=("SW",))
        assert len(rows) == 2
        modes = {r["mode"] for r in rows}
        assert modes == {"Non-Tiling", "Perfect Tiling"}

    def test_figure_10_small(self):
        from repro.experiments.figures import figure_10

        rows = figure_10(
            datasets=("UU",), algorithms=("BFS",),
            systems=("GraphDyns (Cache)", "Piccolo"),
        )
        gm_rows = [r for r in rows if r["algorithm"] == "GM"]
        assert len(gm_rows) == 2
        cell = {r["system"]: r["speedup"] for r in rows
                if r["algorithm"] == "BFS"}
        assert cell["GraphDyns (Cache)"] == pytest.approx(1.0)

    def test_figure_19b_small(self):
        from repro.experiments.figures import figure_19b

        rows = figure_19b(num_rows=1 << 12)
        assert {r["query"] for r in rows} == {"Qa", "Qb", "Qc", "Qd"}
