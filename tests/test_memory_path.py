"""Tests for the cache -> MSHR -> DRAM request paths."""

import numpy as np
import pytest

from repro.cache.conventional import ConventionalCache
from repro.core.collection_mshr import CollectionExtendedMSHR
from repro.core.memory_path import (
    ConventionalMemoryPath,
    FineGrainedMemoryPath,
    LocalityMonitor,
)
from repro.core.piccolo_cache import PiccoloCache
from repro.dram.address import AddressMapper
from repro.dram.spec import DEVICES, DRAMConfig


@pytest.fixture
def mapper():
    return AddressMapper(
        DRAMConfig(spec=DEVICES["DDR4_2400_x16"], channels=1, ranks=1)
    )


class TestConventionalPath:
    def test_misses_become_line_reads(self):
        path = ConventionalMemoryPath(ConventionalCache(1024, ways=2))
        path.run(np.asarray([0, 8, 64, 128]), rmw=False)
        addrs, writes = path.drain()
        # 0 and 8 share a line: 3 fills.
        assert addrs.tolist() == [0, 64, 128]
        assert not writes.any()

    def test_rmw_generates_writebacks_on_eviction(self):
        path = ConventionalMemoryPath(ConventionalCache(64, ways=1))
        path.run(np.asarray([0]), rmw=True)
        path.run(np.asarray([4096]), rmw=False)
        addrs, writes = path.drain()
        assert (0 in addrs.tolist()) and writes.sum() == 1

    def test_drain_resets(self):
        path = ConventionalMemoryPath(ConventionalCache(1024, ways=2))
        path.run(np.asarray([0]), rmw=False)
        path.drain()
        addrs, _ = path.drain()
        assert addrs.size == 0

    def test_flush_emits_dirty_lines(self):
        path = ConventionalMemoryPath(ConventionalCache(1024, ways=2))
        path.run(np.asarray([0]), rmw=True)
        path.drain()
        path.flush()
        addrs, writes = path.drain()
        assert addrs.tolist() == [0]
        assert writes.tolist() == [True]


class TestFineGrainedPath:
    def make_path(self, mapper, monitor=None):
        cache = PiccoloCache(1024, ways=2, fg_tag_bits=4)
        mshr = CollectionExtendedMSHR(mapper, num_entries=16, items_per_op=8)
        return FineGrainedMemoryPath(cache, mshr, locality_monitor=monitor)

    def test_eight_misses_one_gather(self, mapper):
        path = self.make_path(mapper)
        path.run(np.arange(8, dtype=np.int64) * 8, rmw=False)
        ops, addrs, _ = path.drain()
        assert len(ops) == 1
        assert ops[0].items == 8
        assert addrs.size == 0

    def test_flush_drains_cache_and_mshr(self, mapper):
        path = self.make_path(mapper)
        path.run(np.asarray([0, 8, 16]), rmw=True)
        path.flush()
        ops, _, _ = path.drain()
        # Dirty sectors become scatter offsets; pending gathers issue too.
        kinds = {op.is_scatter for op in ops}
        assert kinds == {False, True}

    def test_hits_generate_no_ops(self, mapper):
        path = self.make_path(mapper)
        addrs = np.asarray([0, 0, 0, 0])
        path.run(addrs, rmw=False)
        ops, _, _ = path.drain()
        assert ops == []
        assert path.cache.stats.hits == 3


class TestLocalityMonitor:
    def test_detects_sequential(self):
        monitor = LocalityMonitor(window=16, threshold=0.75)
        for i in range(32):
            monitor.observe(i * 8)
        assert monitor.bypass

    def test_random_does_not_trigger(self):
        monitor = LocalityMonitor(window=16, threshold=0.75)
        rng = np.random.default_rng(0)
        for addr in rng.integers(0, 1 << 20, 64).tolist():
            monitor.observe(addr * 8)
        assert not monitor.bypass

    def test_bypass_reroutes_to_bursts(self, mapper):
        cache = PiccoloCache(1024, ways=2, fg_tag_bits=4)
        mshr = CollectionExtendedMSHR(mapper, num_entries=16)
        monitor = LocalityMonitor(window=8, threshold=0.5)
        path = FineGrainedMemoryPath(cache, mshr, locality_monitor=monitor)
        # Long sequential run: after the window, fills become 64 B bursts.
        path.run(np.arange(256, dtype=np.int64) * 8 + (1 << 20), rmw=False)
        ops, addrs, writes = path.drain()
        assert addrs.size > 0  # bypass bursts were issued

    def test_validation(self):
        with pytest.raises(ValueError):
            LocalityMonitor(window=1)
        with pytest.raises(ValueError):
            LocalityMonitor(threshold=0.0)
