"""Tests for the cache -> MSHR -> DRAM request paths."""

import numpy as np
import pytest

from repro.cache.conventional import ConventionalCache
from repro.core.collection_mshr import CollectionExtendedMSHR
from repro.core.memory_path import (
    BatchReplayMemo,
    ConventionalMemoryPath,
    FineGrainedMemoryPath,
    LocalityMonitor,
)
from repro.core.piccolo_cache import PiccoloCache
from repro.dram.address import AddressMapper
from repro.dram.spec import DEVICES, DRAMConfig


@pytest.fixture
def mapper():
    return AddressMapper(
        DRAMConfig(spec=DEVICES["DDR4_2400_x16"], channels=1, ranks=1)
    )


class TestConventionalPath:
    def test_misses_become_line_reads(self):
        path = ConventionalMemoryPath(ConventionalCache(1024, ways=2))
        path.run(np.asarray([0, 8, 64, 128]), rmw=False)
        addrs, writes = path.drain()
        # 0 and 8 share a line: 3 fills.
        assert addrs.tolist() == [0, 64, 128]
        assert not writes.any()

    def test_rmw_generates_writebacks_on_eviction(self):
        path = ConventionalMemoryPath(ConventionalCache(64, ways=1))
        path.run(np.asarray([0]), rmw=True)
        path.run(np.asarray([4096]), rmw=False)
        addrs, writes = path.drain()
        assert (0 in addrs.tolist()) and writes.sum() == 1

    def test_drain_resets(self):
        path = ConventionalMemoryPath(ConventionalCache(1024, ways=2))
        path.run(np.asarray([0]), rmw=False)
        path.drain()
        addrs, _ = path.drain()
        assert addrs.size == 0

    def test_flush_emits_dirty_lines(self):
        path = ConventionalMemoryPath(ConventionalCache(1024, ways=2))
        path.run(np.asarray([0]), rmw=True)
        path.drain()
        path.flush()
        addrs, writes = path.drain()
        assert addrs.tolist() == [0]
        assert writes.tolist() == [True]


class TestFineGrainedPath:
    def make_path(self, mapper, monitor=None):
        cache = PiccoloCache(1024, ways=2, fg_tag_bits=4)
        mshr = CollectionExtendedMSHR(mapper, num_entries=16, items_per_op=8)
        return FineGrainedMemoryPath(cache, mshr, locality_monitor=monitor)

    def test_eight_misses_one_gather(self, mapper):
        path = self.make_path(mapper)
        path.run(np.arange(8, dtype=np.int64) * 8, rmw=False)
        ops, addrs, _ = path.drain()
        assert len(ops) == 1
        assert ops[0].items == 8
        assert addrs.size == 0

    def test_flush_drains_cache_and_mshr(self, mapper):
        path = self.make_path(mapper)
        path.run(np.asarray([0, 8, 16]), rmw=True)
        path.flush()
        ops, _, _ = path.drain()
        # Dirty sectors become scatter offsets; pending gathers issue too.
        kinds = {op.is_scatter for op in ops}
        assert kinds == {False, True}

    def test_hits_generate_no_ops(self, mapper):
        path = self.make_path(mapper)
        addrs = np.asarray([0, 0, 0, 0])
        path.run(addrs, rmw=False)
        ops, _, _ = path.drain()
        assert ops == []
        assert path.cache.stats.hits == 3


class TestReplayMemoDisabled:
    """``replay_capacity=0`` must disable the memo *entirely*: no
    digests, no sighting tracking, no record-then-evict churn."""

    def test_capacity_zero_short_circuits_every_method(self):
        memo = BatchReplayMemo(0)
        assert not memo.enabled
        key = memo.key([b"cache-state", b"addrs"])
        assert key == b""  # no blake2b work
        assert memo.get(key) is None
        assert memo.hits == 0 and memo.misses == 0  # get() didn't count
        assert memo.should_record(key) is False
        assert memo.should_record(key) is False  # still False on resight
        memo.put(key, ("record",))
        assert len(memo._memo) == 0
        assert len(memo._seen) == 0

    def test_enabled_memo_still_tracks(self):
        memo = BatchReplayMemo(4)
        assert memo.enabled
        key = memo.key([b"x"])
        assert memo.get(key) is None and memo.misses == 1
        assert memo.should_record(key) is False  # first sighting
        assert memo.should_record(key) is True   # second sighting
        memo.put(key, ("record",))
        assert memo.get(key) == ("record",) and memo.hits == 1

    def test_paths_with_zero_capacity_have_no_memo(self, mapper):
        conv = ConventionalMemoryPath(
            ConventionalCache(1024, ways=2), replay_capacity=0
        )
        assert conv.memo is None
        fine = FineGrainedMemoryPath(
            PiccoloCache(1024, ways=2, fg_tag_bits=4),
            CollectionExtendedMSHR(mapper, num_entries=16),
            replay_capacity=0,
        )
        assert fine.memo is None

    def test_zero_capacity_path_never_digests(self, mapper):
        """With the memo off, run() must not even ask the cache for a
        state digest (that is the whole cost being disabled)."""

        class CountingCache(PiccoloCache):
            digest_calls = 0

            def state_digest(self):
                type(self).digest_calls += 1
                return super().state_digest()

        cache = CountingCache(1024, ways=2, fg_tag_bits=4)
        path = FineGrainedMemoryPath(
            cache,
            CollectionExtendedMSHR(mapper, num_entries=16),
            replay_capacity=0,
        )
        path.run(np.arange(32, dtype=np.int64) * 8, rmw=True)
        assert CountingCache.digest_calls == 0


class TestChunkedStreaming:
    def test_chunk_size_validation(self, mapper):
        with pytest.raises(ValueError):
            ConventionalMemoryPath(
                ConventionalCache(1024, ways=2), chunk_size=0
            )
        with pytest.raises(ValueError):
            FineGrainedMemoryPath(
                PiccoloCache(1024, ways=2, fg_tag_bits=4),
                CollectionExtendedMSHR(mapper, num_entries=16),
                chunk_size=-1,
            )

    def test_chunked_requests_identical(self, mapper):
        rng = np.random.default_rng(3)
        stream = rng.integers(0, 1 << 12, 400).astype(np.int64) * 8

        def run(chunk):
            path = FineGrainedMemoryPath(
                PiccoloCache(1024, ways=2, fg_tag_bits=4),
                CollectionExtendedMSHR(mapper, num_entries=16),
                chunk_size=chunk,
            )
            path.run(stream, rmw=True)
            path.flush()
            ops, addrs, writes = path.drain()
            return ops, addrs.tolist(), writes.tolist()

        assert run(None) == run(64) == run(33)

    def test_chunked_batch_temporaries_stay_bounded(self, mapper):
        """Peak allocation during a hit-heavy run must scale with the
        chunk, not the tile: the whole point of chunked streaming."""
        import tracemalloc

        # 8 resident words: everything after the first pass hits, so
        # the measured peak is the engine's per-batch temporaries.
        stream = np.tile(np.arange(8, dtype=np.int64) * 8, 32768)

        def peak(chunk):
            path = FineGrainedMemoryPath(
                PiccoloCache(1024, ways=2, fg_tag_bits=4),
                CollectionExtendedMSHR(mapper, num_entries=16),
                replay_capacity=0,  # measure the engine, not the memo
                chunk_size=chunk,
            )
            tracemalloc.start()
            tracemalloc.reset_peak()
            path.run(stream, rmw=False)
            _, peak_bytes = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return peak_bytes

        whole = peak(None)
        chunked = peak(1024)
        # whole-tile holds O(256k)-element temporaries; chunked holds
        # O(1k).  Require a decisive gap, not an exact model.
        assert chunked < whole / 10, (whole, chunked)


class TestLocalityMonitor:
    def test_detects_sequential(self):
        monitor = LocalityMonitor(window=16, threshold=0.75)
        for i in range(32):
            monitor.observe(i * 8)
        assert monitor.bypass

    def test_random_does_not_trigger(self):
        monitor = LocalityMonitor(window=16, threshold=0.75)
        rng = np.random.default_rng(0)
        for addr in rng.integers(0, 1 << 20, 64).tolist():
            monitor.observe(addr * 8)
        assert not monitor.bypass

    def test_bypass_reroutes_to_bursts(self, mapper):
        cache = PiccoloCache(1024, ways=2, fg_tag_bits=4)
        mshr = CollectionExtendedMSHR(mapper, num_entries=16)
        monitor = LocalityMonitor(window=8, threshold=0.5)
        path = FineGrainedMemoryPath(cache, mshr, locality_monitor=monitor)
        # Long sequential run: after the window, fills become 64 B bursts.
        path.run(np.arange(256, dtype=np.int64) * 8 + (1 << 20), rmw=False)
        ops, addrs, writes = path.drain()
        assert addrs.size > 0  # bypass bursts were issued

    def test_validation(self):
        with pytest.raises(ValueError):
            LocalityMonitor(window=1)
        with pytest.raises(ValueError):
            LocalityMonitor(threshold=0.0)
