"""Tests for destination tiling."""

import numpy as np
import pytest

from repro.graph.partition import TiledCSR, perfect_tile_width, tile_count


class TestTileCount:
    def test_exact_division(self):
        assert tile_count(100, 25) == 4

    def test_remainder_rounds_up(self):
        assert tile_count(100, 30) == 4

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            tile_count(10, 0)


@pytest.fixture(params=["memory", "disk"])
def backing_kwargs(request, tmp_path):
    """Both tile backings; the tiling invariants must hold identically."""
    if request.param == "disk":
        return {"backing": "disk", "store_root": tmp_path}
    return {}


class TestTiledCSR:
    def test_edges_partitioned_exactly_once(
        self, medium_power_law_graph, backing_kwargs
    ):
        tiled = TiledCSR(medium_power_law_graph, 100, **backing_kwargs)
        assert tiled.total_edges() == medium_power_law_graph.num_edges

    def test_destinations_within_range(
        self, medium_power_law_graph, backing_kwargs
    ):
        tiled = TiledCSR(medium_power_law_graph, 128, **backing_kwargs)
        for tile in tiled:
            if tile.num_edges:
                assert tile.dst.min() >= tile.dst_lo
                assert tile.dst.max() < tile.dst_hi

    def test_sources_sorted_within_tile(
        self, medium_power_law_graph, backing_kwargs
    ):
        tiled = TiledCSR(medium_power_law_graph, 128, **backing_kwargs)
        for tile in tiled:
            assert np.all(np.diff(tile.src) >= 0)

    def test_src_edge_start_is_csr_index(
        self, medium_power_law_graph, backing_kwargs
    ):
        tiled = TiledCSR(medium_power_law_graph, 256, **backing_kwargs)
        for tile in tiled:
            for i, u in enumerate(tile.src_unique):
                lo = tile.src_edge_start[i]
                hi = tile.src_edge_start[i + 1]
                assert np.all(tile.src[lo:hi] == u)

    def test_getitem_indexing_matches_iteration(
        self, medium_power_law_graph, backing_kwargs
    ):
        tiled = TiledCSR(medium_power_law_graph, 128, **backing_kwargs)
        for i, tile in enumerate(tiled):
            assert np.array_equal(tiled[i].src, tile.src)
        assert tiled[-1].index == len(tiled) - 1
        with pytest.raises(IndexError):
            tiled[len(tiled)]

    def test_single_tile_covers_everything(self, tiny_graph):
        tiled = TiledCSR(tiny_graph, tiny_graph.num_vertices)
        assert len(tiled) == 1
        assert tiled[0].num_edges == tiny_graph.num_edges

    def test_oversized_width_clamped(self, tiny_graph):
        tiled = TiledCSR(tiny_graph, 10_000)
        assert len(tiled) == 1

    def test_weights_travel_with_edges(self, tiny_graph):
        tiled = TiledCSR(tiny_graph, 2)
        total_weight = sum(int(t.weight.sum()) for t in tiled)
        assert total_weight == int(tiny_graph.weights.sum())

    def test_invalid_width_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            TiledCSR(tiny_graph, 0)


class TestPerfectTileWidth:
    def test_matches_capacity(self):
        # 4 KB of 8 B properties -> 512 vertices per tile
        assert perfect_tile_width(100_000, 4096) == 512

    def test_clamped_to_graph(self):
        assert perfect_tile_width(100, 4096) == 100

    def test_minimum_one(self):
        assert perfect_tile_width(100, 4) == 1
