"""The ``python -m repro`` command-line interface."""

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_parses(self):
        args = build_parser().parse_args(["figure", "fig10", "--fast"])
        assert args.id == "fig10"
        assert args.fast

    def test_microbench_engine_flag(self):
        args = build_parser().parse_args(["microbench", "--engine"])
        assert args.engine

    def test_figure_profile_flags_parse(self):
        args = build_parser().parse_args(
            ["figure", "fig10", "--profile", "mid", "--chunk-size", "1024"]
        )
        assert args.profile == "mid"
        assert args.chunk_size == 1024

    def test_figure_profile_defaults_to_toy(self):
        args = build_parser().parse_args(["figure", "fig10"])
        assert args.profile == "toy"
        assert args.chunk_size is None

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig10", "--profile", "huge"])

    def test_tile_backing_flags_parse(self):
        args = build_parser().parse_args(
            ["figure", "fig10", "--tile-backing", "disk",
             "--tile-store-root", "/tmp/tiles"]
        )
        assert args.tile_backing == "disk"
        assert args.tile_store_root == "/tmp/tiles"

    def test_tile_backing_defaults_to_profile(self):
        args = build_parser().parse_args(["figure", "fig10"])
        assert args.tile_backing is None
        assert args.tile_store_root is None

    def test_unknown_tile_backing_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["figure", "fig10", "--tile-backing", "tape"]
            )

    def test_serve_parses_with_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8321
        assert args.store == ".repro_service"
        assert args.backend == "auto"
        assert args.jobs == 1

    def test_serve_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--port", "9000", "--store", "/tmp/svc",
             "--jobs", "4", "--backend", "stdlib"]
        )
        assert args.port == 9000
        assert args.store == "/tmp/svc"
        assert args.jobs == 4
        assert args.backend == "stdlib"

    def test_serve_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--backend", "gopher"])


class TestTileBackingCommand:
    def test_fast_figure_runs_disk_backed(self, capsys, tmp_path):
        from repro.experiments.runner import clear_result_cache

        # drop memoised cells: backing shares digests by design, so a
        # memo hit from an earlier test would skip the disk build
        clear_result_cache()
        assert main(["figure", "fig3", "--fast", "--tile-backing", "disk",
                     "--tile-store-root", str(tmp_path)]) == 0
        assert "fig3" in capsys.readouterr().out
        assert list(tmp_path.glob("tiles-*"))  # store was built there

    def test_note_for_scale_free_figures(self, capsys):
        assert main(["figure", "fig9", "--tile-backing", "disk"]) == 0
        assert "does not take a scale profile" in capsys.readouterr().err


class TestListCommand:
    def test_lists_all_figures(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in FIGURES:
            assert name in out


class TestFigureCommand:
    def test_unknown_figure_fails(self, capsys):
        assert main(["figure", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_id_normalisation(self, capsys):
        assert main(["figure", "Fig.19b", "--fast"]) == 0
        assert "Qa" in capsys.readouterr().out

    def test_fast_figure_runs(self, capsys):
        assert main(["figure", "fig9"]) == 0
        out = capsys.readouterr().out
        assert "single-row" in out

    def test_every_figure_has_fast_kwargs_that_bind(self):
        import inspect

        for name, (fn, _headline, fast_kwargs) in FIGURES.items():
            signature = inspect.signature(fn)
            for key in fast_kwargs:
                assert key in signature.parameters, (name, key)


class TestProfilesCommand:
    def test_knob_table_printed(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        for column in ("toy", "mid", "paper"):
            assert column in out
        assert "piccolo_cache_bytes" in out
        assert "4194304" in out  # the paper profile's 4 MB cache
        assert "chunk_size" in out

    def test_profile_note_for_scale_free_figures(self, capsys):
        # fig9 (the FPGA microbench) has no scale dimension; a non-toy
        # profile still runs but says it was ignored.
        assert main(["figure", "fig9", "--profile", "mid"]) == 0
        captured = capsys.readouterr()
        assert "single-row" in captured.out
        assert "does not take a scale profile" in captured.err


class TestValidateCommand:
    def test_validate_passes(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "protocol clean" in out


class TestDatasetsCommand:
    def test_registry_printed(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for key in ("UU", "TW", "SW", "FS", "PP", "KN28"):
            assert key in out
