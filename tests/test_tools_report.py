"""The bench-output report generator in tools/."""

import pathlib
import sys

import pytest

TOOLS = pathlib.Path(__file__).parent.parent / "tools"
sys.path.insert(0, str(TOOLS))

from generate_report import headline_numbers, parse_tables  # noqa: E402
from perf_report import (  # noqa: E402
    check_regressions,
    main as perf_report_main,
    ooc_cells,
    reference_times,
)

SAMPLE = """\
some pytest noise
=== Fig. 10: overall speedup ===
     algorithm         dataset          system         speedup        total_ns
            PR              UU         Piccolo           1.880      332963.333
            GM               -         Piccolo           1.812             nan
            GM               -             NMP           1.234             nan
.
GM transaction reduction: 45.4 %
GM energy saving: 40.6 %
mean OLAP speedup: 3.80x
=== Fig. 12: normalised memory accesses ===
     algorithm         dataset          system      total_norm
            PR              UU         Piccolo           0.532
"""


class TestParseTables:
    def test_titles_extracted(self):
        tables = parse_tables(SAMPLE)
        assert "Fig. 10: overall speedup" in tables
        assert "Fig. 12: normalised memory accesses" in tables

    def test_rows_typed(self):
        tables = parse_tables(SAMPLE)
        rows = tables["Fig. 10: overall speedup"]
        assert rows[0]["speedup"] == pytest.approx(1.880)
        assert rows[0]["dataset"] == "UU"

    def test_ragged_lines_stop_table(self):
        tables = parse_tables(SAMPLE)
        rows = tables["Fig. 10: overall speedup"]
        # The lone "." progress marker must terminate the table.
        assert all("speedup" in r for r in rows)

    def test_multiword_system_names_merge(self):
        sample = (
            "=== Fig. 10: overall speedup ===\n"
            "     algorithm  dataset   system   speedup\n"
            "            PR       UU  GraphDyns (Cache)   1.000\n"
            "            PR       UU  GraphDyns (SPM)   0.900\n"
        )
        rows = parse_tables(sample)["Fig. 10: overall speedup"]
        assert rows[0]["system"] == "GraphDyns (Cache)"
        assert rows[1]["system"] == "GraphDyns (SPM)"
        assert rows[1]["speedup"] == pytest.approx(0.9)


class TestHeadlines:
    def test_fig10_gm_found(self):
        tables = parse_tables(SAMPLE)
        numbers = headline_numbers(tables, SAMPLE)
        assert numbers["fig10_gm"] == pytest.approx(1.812)

    def test_fig10_max_excludes_gm(self):
        tables = parse_tables(SAMPLE)
        numbers = headline_numbers(tables, SAMPLE)
        assert numbers["fig10_max"] == pytest.approx(1.880)

    def test_percent_patterns(self):
        numbers = headline_numbers({}, SAMPLE)
        assert numbers["fig12_reduction"] == pytest.approx(0.454)
        assert numbers["fig14_saving"] == pytest.approx(0.406)
        assert numbers["fig19b_mean"] == pytest.approx(3.80)

    def test_missing_are_absent(self):
        numbers = headline_numbers({}, "nothing here")
        assert "fig12_reduction" not in numbers


class TestPerfRegressionGate:
    """tools/perf_report.py --check semantics (the CI gate)."""

    TRAJECTORY = {
        "workloads": {},
        "trajectory": [
            {"label": "seed", "mode": "seed-checkout",
             "times": {"a": 10.0, "b": 8.0}},
            {"label": "old-batched", "mode": "batched",
             "times": {"a": 2.0, "b": 1.0}},
            {"label": "scalar-later", "mode": "scalar",
             "times": {"a": 9.0}},
            {"label": "new-batched", "mode": "batched",
             "times": {"a": 1.0}},
        ],
    }

    def test_reference_is_latest_batched_point(self):
        refs, labels = reference_times(self.TRAJECTORY)
        assert refs == {"a": 1.0, "b": 1.0}
        assert labels == {"a": "new-batched", "b": "old-batched"}

    def test_within_ratio_passes(self):
        cells, ok = check_regressions(
            self.TRAJECTORY, {"a": 1.2, "b": 1.25}, ratio=1.3
        )
        assert ok
        assert {c["cell"]: c["status"] for c in cells} == {
            "a": "ok", "b": "ok",
        }

    def test_slowdown_fails(self):
        cells, ok = check_regressions(
            self.TRAJECTORY, {"a": 1.4, "b": 1.0}, ratio=1.3
        )
        assert not ok
        by_cell = {c["cell"]: c for c in cells}
        assert by_cell["a"]["status"] == "fail"
        assert by_cell["a"]["slowdown"] == pytest.approx(1.4)
        assert by_cell["a"]["reference_label"] == "new-batched"
        assert by_cell["b"]["status"] == "ok"

    def test_unrecorded_cell_is_no_baseline_not_failure(self):
        cells, ok = check_regressions(
            self.TRAJECTORY, {"brand-new": 99.0}, ratio=1.3
        )
        assert ok
        assert cells == [
            {"cell": "brand-new", "measured_s": 99.0,
             "status": "no-baseline"},
        ]

    def test_ooc_cells_use_the_common_tuple_shape(self):
        cells = ooc_cells("paper")
        assert any("KN28" in name for name, *_ in cells)
        for name, row, algorithm, dataset, iters, kwargs in cells:
            assert name.startswith("ooc/paper/")
            assert iters is None
            assert kwargs == {}

    def test_ooc_scale_shift_lands_in_the_dataset_label(self):
        labels = {name: ds for name, _, _, ds, *_ in ooc_cells("paper")}
        assert labels["ooc/paper/disk/Piccolo/PR/KN28s4"] == "KN28@s4"

    def test_ooc_is_its_own_suite(self):
        for conflict in (["--quick"], ["--profile", "mid"],
                         ["--scalar-baseline"], ["--workers", "2"]):
            with pytest.raises(SystemExit):
                perf_report_main(["--ooc", "mid", *conflict])

    def test_scalar_and_seed_points_are_not_references(self):
        refs, _ = reference_times(
            {"trajectory": [
                {"label": "seed", "mode": "seed-checkout", "times": {"a": 10}},
                {"label": "s", "mode": "scalar", "times": {"a": 9}},
            ]}
        )
        assert refs == {}
