"""Array-backed FIM-op stream: FimOpBatch + vectorized/streamed phase.

Three layers of equivalence, mirroring the batched-engine discipline of
``test_batched_equivalence.py``:

1. :class:`FimOpBatch` behaves exactly like the ``list[FimOp]`` it
   replaced (indexing, iteration, equality, slicing).
2. ``DRAMModel.phase`` over a batch is bit-identical -- every
   PhaseStats field, floats included -- to the pre-batch per-op scalar
   walk (reimplemented here as the oracle) and to ``phase`` over the
   equivalent plain list.
3. ``DRAMModel.open_phase`` (chunk-streamed evaluation) reproduces the
   one-shot ``phase`` call over the concatenated stream: bit-identical
   counters, episode counts, and scheduler-window decisions for any
   chunking; bit-identical floats for single-stream phases.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.collection_mshr import CollectionExtendedMSHR
from repro.core.memory_path import FineGrainedMemoryPath
from repro.core.piccolo_cache import PiccoloCache
from repro.dram.address import AddressMapper
from repro.dram.fim_batch import FimOp, FimOpBatch
from repro.dram.spec import DEVICES, DRAMConfig
from repro.dram.system import DRAMModel, PhaseStats
from repro.utils.units import ceil_div


def make_config(channels=2, ranks=2):
    return DRAMConfig(
        spec=DEVICES["DDR4_2400_x16"], channels=channels, ranks=ranks
    )


CONFIG = make_config()

# -- strategies --------------------------------------------------------------
fim_op_tuples = st.tuples(
    st.integers(0, CONFIG.channels - 1),          # channel
    st.integers(0, CONFIG.ranks - 1),             # rank
    st.integers(0, CONFIG.total_banks - 1),       # bank
    st.integers(0, 40),                           # row (small: long runs)
    st.integers(1, 8),                            # items
    st.booleans(),                                # is_scatter
    st.booleans(),                                # rank_level
)
op_streams = st.lists(fim_op_tuples, min_size=0, max_size=200)
chunk_seed = st.integers(min_value=0, max_value=2**31 - 1)


def to_ops(tuples):
    return [FimOp(*t) for t in tuples]


def to_batch(tuples):
    batch = FimOpBatch()
    for t in tuples:
        batch.append(*t)
    return batch


# ---------------------------------------------------------------------------
# 1. FimOpBatch as a sequence of FimOp
# ---------------------------------------------------------------------------
class TestFimOpBatch:
    def test_empty(self):
        batch = FimOpBatch()
        assert len(batch) == 0
        assert not batch
        assert batch == []
        assert batch.to_ops() == []
        assert batch.as_tuples() == ()

    def test_append_and_index(self):
        batch = FimOpBatch()
        batch.append(0, 1, 2, 3, 4, True, False)
        batch.append(1, 0, 5, 6, 7, False, True)
        assert len(batch) == 2
        assert batch[0] == FimOp(0, 1, 2, 3, 4, True, False)
        assert batch[-1] == FimOp(1, 0, 5, 6, 7, False, True)
        with pytest.raises(IndexError):
            batch[2]

    def test_iteration_and_eq_with_list(self):
        ops = [FimOp(0, 0, 3, 9, 8, False), FimOp(1, 1, 4, 2, 1, True, True)]
        batch = FimOpBatch.from_ops(ops)
        assert list(batch) == ops
        assert batch == ops
        assert batch != ops[:1]
        assert batch == FimOpBatch.from_ops(ops)

    def test_slice_returns_batch(self):
        ops = to_ops([(0, 0, i, i, 1, False, False) for i in range(10)])
        batch = FimOpBatch.from_ops(ops)
        tail = batch[3:]
        assert isinstance(tail, FimOpBatch)
        assert tail == ops[3:]

    def test_extend_merges_batches_and_lists(self):
        a = FimOpBatch.from_ops([FimOp(0, 0, 1, 1, 8, False)])
        b = FimOpBatch.from_ops([FimOp(1, 1, 2, 2, 4, True)])
        a.extend(b)
        a.extend([FimOp(0, 1, 3, 3, 2, False, True)])
        assert len(a) == 3
        assert a[1].is_scatter and a[2].rank_level

    def test_columns_shapes_and_dtypes(self):
        batch = to_batch([(0, 1, 2, 3, 4, True, False)] * 5)
        cols = batch.columns()
        assert len(cols) == 7
        assert all(c.shape == (5,) for c in cols)
        assert all(c.dtype == np.int64 for c in cols[:5])
        assert all(c.dtype == bool for c in cols[5:])

    def test_tail_columns_roundtrip(self):
        ops = to_ops([(0, 0, i % 4, i, 1 + i % 8, i % 2 == 0, False)
                      for i in range(20)])
        batch = FimOpBatch.from_ops(ops)
        rec = batch.tail_columns(12)
        replay = FimOpBatch()
        replay.extend_columns(rec)
        assert replay == ops[12:]

    def test_as_tuples_view(self):
        tuples = [(0, 1, 2, 3, 4, True, False), (1, 0, 9, 8, 7, False, True)]
        assert to_batch(tuples).as_tuples() == tuple(tuples)

    def test_clear(self):
        batch = to_batch([(0, 0, 0, 0, 1, False, False)])
        batch.clear()
        assert len(batch) == 0 and batch == []


# ---------------------------------------------------------------------------
# 2. Vectorized phase vs the per-op scalar walk (the oracle)
# ---------------------------------------------------------------------------
def reference_phase_fim(model: DRAMModel, ops: list[FimOp]) -> PhaseStats:
    """The pre-FimOpBatch per-op scalar walk, preserved verbatim as the
    oracle for the vectorized FIM evaluation."""
    spec = model.spec
    config = model.config
    stats = PhaseStats(_burst_bytes=spec.burst_bytes)
    bank_busy = np.zeros(config.total_banks, dtype=np.float64)
    bus_busy = np.zeros(config.channels, dtype=np.float64)
    rank_busy = np.zeros(config.channels * config.ranks, dtype=np.float64)
    if ops:
        fim_bank = np.fromiter(
            (op.bank for op in ops), dtype=np.int64, count=len(ops)
        )
        fim_row = np.fromiter(
            (op.row for op in ops), dtype=np.int64, count=len(ops)
        )
        cost = np.empty(len(ops), dtype=np.float64)
        for i, op in enumerate(ops):
            if op.rank_level:
                cost[i] = op.items * model._col_cost
                rank_busy[op.channel * config.ranks + op.rank] += (
                    spec.tRCD + op.items * model._col_cost + spec.tRP
                )
            else:
                cost[i] = model._fim_bank_cost
            off_b = config.fim_offset_bursts
            data_b = max(1, ceil_div(op.items * 8, spec.burst_bytes))
            bus_busy[op.channel] += (off_b + data_b) * spec.tBURST
            stats.fim_offset_bursts += off_b
            stats.write_bursts += off_b
            if op.is_scatter:
                stats.fim_scatters += 1
                stats.write_bursts += data_b
            else:
                stats.fim_gathers += 1
                stats.read_bursts += data_b
            stats.internal_words += op.items
        order = model._window_order(fim_bank, fim_row)
        if order is not None:
            fim_bank, fim_row, cost = (
                fim_bank[order], fim_row[order], cost[order]
            )
        model._accumulate_episodes(fim_bank, fim_row, cost, bank_busy, stats)
    stats.bus_busy_ns = float(bus_busy.sum())
    busiest = max(
        float(bank_busy.max(initial=0.0)),
        float(bus_busy.max(initial=0.0)),
        float(rank_busy.max(initial=0.0)),
    )
    if busiest > 0.0:
        busiest = max(busiest, model.latency_ns())
    stats.time_ns = busiest
    return stats


@settings(max_examples=60, deadline=None)
@given(tuples=op_streams)
def test_phase_batch_matches_scalar_walk_bitwise(tuples):
    model = DRAMModel(make_config())
    expected = reference_phase_fim(model, to_ops(tuples))
    got = model.phase(fim_ops=to_batch(tuples))
    assert vars(got) == vars(expected)


@settings(max_examples=40, deadline=None)
@given(tuples=op_streams)
def test_phase_list_and_batch_agree(tuples):
    model = DRAMModel(make_config())
    from_list = model.phase(fim_ops=to_ops(tuples))
    from_batch = model.phase(fim_ops=to_batch(tuples))
    assert vars(from_list) == vars(from_batch)


class TestSchedulerWindowBehaviour:
    """The windowed row-hit-first reorder decision must survive the
    vectorization and the chunk-streamed evaluation unchanged."""

    def interleaved(self, model, n=64):
        """Rows A/B alternating within windows: reorder halves episodes."""
        return [FimOp(0, 0, 0, i % 2, 8, False) for i in range(n)]

    def run_of_rows(self, model, n=64):
        """One long same-row run: reorder cannot help (arrival kept)."""
        return [FimOp(0, 0, 0, 0, 8, False) for i in range(n)]

    def test_reorder_reduces_episodes(self):
        model = DRAMModel(make_config())
        ops = self.interleaved(model)
        acts = model.phase(fim_ops=FimOpBatch.from_ops(ops)).acts
        arrival_acts = DRAMModel(
            make_config(), scheduler_window=1
        ).phase(fim_ops=FimOpBatch.from_ops(ops)).acts
        assert acts < arrival_acts  # the window reorder was accepted
        assert acts == len(ops) * 2 // model.scheduler_window

    def test_same_row_run_keeps_single_episode(self):
        model = DRAMModel(make_config())
        stats = model.phase(
            fim_ops=FimOpBatch.from_ops(self.run_of_rows(model))
        )
        assert stats.acts == 1

    @pytest.mark.parametrize("chunk", [1, 5, 31, 32, 33])
    def test_streamed_episode_counts_match(self, chunk):
        model = DRAMModel(make_config())
        for ops in (self.interleaved(model, 96), self.run_of_rows(model, 96)):
            batch = FimOpBatch.from_ops(ops)
            whole = model.phase(fim_ops=batch)
            acc = model.open_phase()
            for start in range(0, len(ops), chunk):
                acc.add(fim_ops=batch[start:start + chunk])
            assert vars(acc.close()) == vars(whole)


# ---------------------------------------------------------------------------
# 3. Chunk-streamed phase evaluation (PhaseAccumulator)
# ---------------------------------------------------------------------------
def split_spans(n, seed):
    rng = np.random.default_rng(seed)
    spans = []
    pos = 0
    while pos < n:
        step = int(rng.integers(1, 48))
        spans.append((pos, min(n, pos + step)))
        pos += step
    return spans


@settings(max_examples=40, deadline=None)
@given(tuples=op_streams, seed=chunk_seed)
def test_streamed_fim_phase_bitwise_identical(tuples, seed):
    model = DRAMModel(make_config())
    batch = to_batch(tuples)
    whole = model.phase(fim_ops=batch)
    acc = model.open_phase()
    for lo, hi in split_spans(len(tuples), seed):
        acc.add(fim_ops=batch[lo:hi])
    assert vars(acc.close()) == vars(whole)


@settings(max_examples=40, deadline=None)
@given(seed=chunk_seed, n=st.integers(0, 400))
def test_streamed_burst_phase_bitwise_identical(seed, n):
    model = DRAMModel(make_config())
    rng = np.random.default_rng(seed)
    addrs = (rng.integers(0, 1 << 20, n) * 64).astype(np.int64)
    writes = rng.random(n) < 0.4
    internal = rng.random(n) < 0.1
    whole = model.phase(
        addrs=addrs, is_write=writes, internal_mask=internal,
        loose_read_bursts=5, stream_read_bytes=1e5,
    )
    acc = model.open_phase()
    for lo, hi in split_spans(n, seed + 1):
        acc.add(
            addrs=addrs[lo:hi], is_write=writes[lo:hi],
            internal_mask=internal[lo:hi],
        )
    acc.add(loose_read_bursts=5)
    assert vars(acc.close(stream_read_bytes=1e5)) == vars(whole)


INT_FIELDS = (
    "acts", "read_bursts", "write_bursts", "fim_offset_bursts",
    "fim_gathers", "fim_scatters", "internal_words",
)


@settings(max_examples=30, deadline=None)
@given(tuples=op_streams, seed=chunk_seed, n=st.integers(1, 300))
def test_streamed_mixed_phase_counters_identical(tuples, seed, n):
    """Phases mixing bursts and FIM ops: integer counters and episode
    counts are bit-identical; busy-time floats may differ by ulps (the
    two streams accumulate into separate busy arrays)."""
    model = DRAMModel(make_config())
    rng = np.random.default_rng(seed)
    addrs = (rng.integers(0, 1 << 20, n) * 64).astype(np.int64)
    batch = to_batch(tuples)
    whole = model.phase(addrs=addrs, fim_ops=batch)
    acc = model.open_phase()
    fim_spans = split_spans(len(tuples), seed + 1)
    addr_spans = split_spans(n, seed + 2)
    for i in range(max(len(fim_spans), len(addr_spans))):
        kwargs = {}
        if i < len(addr_spans):
            lo, hi = addr_spans[i]
            kwargs["addrs"] = addrs[lo:hi]
        if i < len(fim_spans):
            lo, hi = fim_spans[i]
            kwargs["fim_ops"] = batch[lo:hi]
        acc.add(**kwargs)
    streamed = acc.close()
    for name in INT_FIELDS:
        assert getattr(streamed, name) == getattr(whole, name), name
    assert streamed.time_ns == pytest.approx(whole.time_ns, rel=1e-12)
    assert streamed.bus_busy_ns == pytest.approx(whole.bus_busy_ns, rel=1e-12)


def test_accumulator_rejects_use_after_close():
    model = DRAMModel(make_config())
    acc = model.open_phase()
    acc.close()
    with pytest.raises(RuntimeError):
        acc.add(loose_read_bursts=1)
    with pytest.raises(RuntimeError):
        acc.close()


# ---------------------------------------------------------------------------
# Producers: MSHR and memory path emit FimOpBatch end to end
# ---------------------------------------------------------------------------
class TestProducersEmitBatches:
    @pytest.fixture
    def mapper(self):
        return AddressMapper(
            DRAMConfig(spec=DEVICES["DDR4_2400_x16"], channels=1, ranks=1)
        )

    def test_add_batch_returns_batch(self, mapper):
        mshr = CollectionExtendedMSHR(mapper, num_entries=16, items_per_op=4)
        addrs = np.arange(16, dtype=np.int64) * 8
        ops = mshr.add_batch(addrs, np.zeros(16, dtype=bool))
        assert isinstance(ops, FimOpBatch)
        assert isinstance(mshr.flush(), FimOpBatch)

    def test_path_drain_returns_batch(self, mapper):
        path = FineGrainedMemoryPath(
            PiccoloCache(1024, ways=2, fg_tag_bits=4),
            CollectionExtendedMSHR(mapper, num_entries=16, items_per_op=8),
        )
        path.run(np.arange(64, dtype=np.int64) * 8, rmw=True)
        path.flush()
        ops, addrs, writes = path.drain()
        assert isinstance(ops, FimOpBatch)
        assert len(ops) > 0
        # a drained batch feeds phase() without conversion
        model = DRAMModel(make_config(channels=1, ranks=1))
        stats = model.phase(fim_ops=ops)
        assert stats.fim_gathers + stats.fim_scatters == len(ops)

    def test_path_streams_into_sink(self, mapper):
        """With a phase_sink attached, chunks drain immediately: the
        path holds no whole-tile FIM batch, and the accumulated phase
        equals the whole-tile evaluation."""
        model = DRAMModel(make_config(channels=1, ranks=1))

        def build():
            return FineGrainedMemoryPath(
                PiccoloCache(1024, ways=2, fg_tag_bits=4),
                CollectionExtendedMSHR(mapper, num_entries=16, items_per_op=8),
                chunk_size=64,
                replay_capacity=0,
            )

        rng = np.random.default_rng(11)
        stream = (rng.integers(0, 1 << 13, 2000) * 8).astype(np.int64)

        whole = build()
        whole.run(stream, rmw=True)
        ops, addrs, writes = whole.drain()
        expected = model.phase(
            addrs=addrs if addrs.size else None,
            is_write=writes if addrs.size else None,
            fim_ops=ops,
        )

        streamed = build()
        acc = model.open_phase()
        streamed.phase_sink = acc
        streamed.run(stream, rmw=True)
        streamed.phase_sink = None
        assert len(streamed.fim_ops) == 0  # everything drained per chunk
        tail_ops, tail_addrs, _ = streamed.drain()
        assert len(tail_ops) == 0 and tail_addrs.size == 0
        assert vars(acc.close()) == vars(expected)


# ---------------------------------------------------------------------------
# Across profiles: streamed vs whole-tile phase at system level
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("system", ["Piccolo", "NMP", "GraphDyns (Cache)"])
def test_system_streamed_phase_matches_whole(system):
    from repro.experiments.config import ExperimentScale
    from repro.experiments.runner import clear_result_cache, run_system

    results = {}
    for stream_phase in (False, True):
        clear_result_cache()
        scale = ExperimentScale(
            name=f"stream-{stream_phase}",
            chunk_size=256,
            stream_phase=stream_phase,
        )
        r = run_system(system, "PR", "TW", scale=scale, max_iterations=2)
        results[stream_phase] = (
            r.total_ns, r.memory_ns, r.compute_ns,
            vars(r.dram), r.cache_hits, r.cache_misses, r.mshr_ops,
        )
    clear_result_cache()
    assert results[True] == results[False]
