"""Unit tests for repro.utils."""

import math

import pytest

from repro.utils.stats import Counter, geometric_mean
from repro.utils.units import ceil_div, is_power_of_two, log2_exact


class TestGeometricMean:
    def test_single_value(self):
        assert geometric_mean([4.0]) == pytest.approx(4.0)

    def test_known_pair(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_invariant_to_order(self):
        values = [0.5, 2.0, 3.0, 7.5]
        assert geometric_mean(values) == pytest.approx(
            geometric_mean(list(reversed(values)))
        )

    def test_log_identity(self):
        values = [1.5, 2.5, 3.5]
        expected = math.exp(sum(math.log(v) for v in values) / 3)
        assert geometric_mean(values) == pytest.approx(expected)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestCounter:
    def test_add_and_get(self):
        c = Counter()
        c.add("x")
        c.add("x", 2.5)
        assert c.get("x") == pytest.approx(3.5)
        assert c.get("missing") == 0.0

    def test_merge(self):
        a = Counter(reads=2)
        b = Counter(reads=3, writes=1)
        a.merge(b)
        assert a.get("reads") == 5
        assert a.get("writes") == 1

    def test_as_dict_is_copy(self):
        c = Counter(x=1)
        d = c.as_dict()
        d["x"] = 99
        assert c.get("x") == 1


class TestUnits:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(4096)
        assert not is_power_of_two(0)
        assert not is_power_of_two(12)
        assert not is_power_of_two(-8)

    def test_log2_exact(self):
        assert log2_exact(1) == 0
        assert log2_exact(64) == 6
        with pytest.raises(ValueError):
            log2_exact(3)

    def test_ceil_div(self):
        assert ceil_div(0, 8) == 0
        assert ceil_div(1, 8) == 1
        assert ceil_div(8, 8) == 1
        assert ceil_div(9, 8) == 2
        with pytest.raises(ValueError):
            ceil_div(1, 0)
