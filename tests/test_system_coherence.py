"""Cross-system coherence: timing models must not change the work.

All six systems replay traces from the same functional engine, so for
a fixed (graph, algorithm, tile width) they must agree on everything
the *algorithm* determines -- iterations, edges processed, vertex
applies -- and differ only in how long the memory system takes.  The
monotonicity checks then pin the directions the paper's sensitivity
studies rely on (more ranks and more cache never hurt).
"""

import pytest

from repro.accel.systems import SYSTEM_ORDER, make_system
from repro.dram.spec import DEVICES, DRAMConfig
from repro.graph.datasets import load_dataset


@pytest.fixture(scope="module")
def graph():
    return load_dataset("UU")


@pytest.fixture(scope="module")
def results(graph):
    out = {}
    for name in SYSTEM_ORDER:
        system = make_system(name)
        out[name] = system.run(graph, "BFS", max_iterations=12)
    return out


class TestFunctionalAgreement:
    def test_iteration_counts_agree(self, results):
        counts = {r.iterations for r in results.values()}
        assert len(counts) == 1

    def test_edges_processed_agree(self, results):
        # Tiling splits the same edge set differently, but the total
        # traversed edge count is algorithm-determined.
        edges = {r.edges_processed for r in results.values()}
        assert len(edges) == 1

    def test_all_systems_positive_time(self, results):
        for name, result in results.items():
            assert result.total_ns > 0, name

    def test_cache_systems_memory_bound(self, results):
        # Sec. I: graph processing is memory-bound.  (The scratchpad
        # baselines are exempt on the sparse UU graph: perfect tiling
        # multiplies per-tile pipeline overheads -- exactly why they
        # underperform there, Sec. VII-C.)
        for name in ("GraphDyns (Cache)", "NMP", "PIM", "Piccolo"):
            result = results[name]
            assert result.memory_ns > result.compute_ns, name


class TestOrderings:
    def test_piccolo_beats_cache_baseline(self, results):
        assert (results["Piccolo"].total_ns
                < results["GraphDyns (Cache)"].total_ns)

    def test_piccolo_moves_fewer_offchip_bytes(self, results):
        piccolo = results["Piccolo"].dram
        baseline = results["GraphDyns (Cache)"].dram
        assert (piccolo.read_bytes + piccolo.write_bytes
                < baseline.read_bytes + baseline.write_bytes)

    def test_pim_has_internal_traffic(self, results):
        assert results["PIM"].dram.internal_words > 0

    def test_only_fim_systems_issue_gathers(self, results):
        for name, result in results.items():
            gathers = result.dram.fim_gathers + result.dram.fim_scatters
            if name in ("Piccolo", "NMP"):
                assert gathers > 0, name
            else:
                assert gathers == 0, name


class TestMonotonicity:
    @pytest.mark.parametrize("system_name", ["GraphDyns (Cache)", "Piccolo"])
    def test_more_ranks_never_hurt(self, graph, system_name):
        times = []
        for ranks in (1, 2, 4):
            config = DRAMConfig(spec=DEVICES["DDR4_2400_x16"],
                                channels=1, ranks=ranks)
            system = make_system(system_name, dram_config=config)
            times.append(system.run(graph, "PR", max_iterations=2).total_ns)
        assert times[0] >= times[1] * 0.98 >= times[2] * 0.96

    def test_larger_cache_never_hurts_piccolo(self, graph):
        times = []
        for size in (4096, 16384):
            system = make_system("Piccolo", onchip_bytes=size)
            times.append(system.run(graph, "PR", max_iterations=2).total_ns)
        assert times[1] <= times[0] * 1.02

    def test_two_channels_help(self, graph):
        times = []
        for channels in (1, 2):
            config = DRAMConfig(spec=DEVICES["DDR4_2400_x16"],
                                channels=channels, ranks=4)
            system = make_system("Piccolo", dram_config=config)
            times.append(system.run(graph, "PR", max_iterations=2).total_ns)
        assert times[1] < times[0]
