"""Per-command trace energy vs the aggregate phase energy model."""

import numpy as np
import pytest

from repro.dram.engine import DRAMEngine
from repro.dram.engine.workloads import (
    conventional_requests,
    fim_requests,
    strided_addresses,
)
from repro.dram.spec import default_config
from repro.energy.dram_energy import DRAMEnergyModel
from repro.energy.trace_energy import (
    compare_fim_vs_conventional,
    trace_energy,
)
from repro.dram.system import DRAMModel


@pytest.fixture(scope="module")
def config():
    return default_config()


def run_conventional(config, addrs, refresh=False):
    engine = DRAMEngine(config, refresh_enabled=refresh)
    requests, channels = conventional_requests(config, addrs)
    return engine.run(requests, channels)


def run_fim(config, addrs, refresh=False):
    engine = DRAMEngine(config, refresh_enabled=refresh)
    requests, channels = fim_requests(config, addrs)
    return engine.run(requests, channels)


class TestTraceEnergy:
    def test_reads_charge_array_and_io(self, config):
        addrs = np.arange(0, 64 * 100, 64, dtype=np.int64)
        result = run_conventional(config, addrs)
        energy = trace_energy(result)
        assert energy.dram_rd > 0
        assert energy.dram_io > 0
        # Pure reads: the only write-side energy is the ACT restore half.
        from repro.energy.dram_energy import ACT_NJ

        assert energy.dram_wr == pytest.approx(
            result.stats.acts * ACT_NJ * 0.5
        )

    def test_refresh_charges_others(self, config):
        engine = DRAMEngine(config, refresh_enabled=True)
        addrs = np.arange(0, 64 * 50, 64, dtype=np.int64)
        arrivals = np.linspace(0, 3 * engine.timing.tREFI, 50).astype(
            np.int64
        )
        requests, channels = engine.requests_from_addresses(
            addrs, arrivals=arrivals
        )
        result = engine.run(requests, channels)
        assert result.stats.refreshes > 0
        with_ref = trace_energy(result)
        without = trace_energy(run_conventional(config, addrs))
        assert with_ref.others > without.others

    def test_io_energy_proportional_to_bursts(self, config):
        small = trace_energy(run_conventional(
            config, np.arange(0, 64 * 50, 64, dtype=np.int64)))
        large = trace_energy(run_conventional(
            config, np.arange(0, 64 * 200, 64, dtype=np.int64)))
        assert large.dram_io == pytest.approx(4 * small.dram_io, rel=0.01)

    def test_fim_saves_io_energy(self, config):
        addrs = strided_addresses(config, 1 << 17, 8, single_row=True)
        ratios = compare_fim_vs_conventional(
            run_fim(config, addrs), run_conventional(config, addrs)
        )
        # 2-3 bursts per 8 words instead of 8: I/O drops to ~25-40%.
        assert 0.15 < ratios["io_ratio"] < 0.55
        assert ratios["total_ratio"] < 0.8

    def test_fim_still_pays_array_energy(self, config):
        addrs = strided_addresses(config, 1 << 16, 8, single_row=True)
        fim = trace_energy(run_fim(config, addrs))
        assert fim.dram_rd > 0  # internal column walk is not free

    def test_virtual_pre_act_free(self, config):
        addrs = strided_addresses(config, 1 << 14, 8, single_row=True)
        result = run_fim(config, addrs)
        virtual_acts = sum(
            1 for t in result.traces for c in t
            if c.kind.value == "ACT" and c.virtual
        )
        assert virtual_acts > 0
        energy = trace_energy(result)
        # Activation energy must reflect only the real ACTs.
        real_acts = result.stats.acts
        from repro.energy.dram_energy import ACT_NJ
        act_energy = energy.dram_rd  # reads: only ACT halves + buffers
        assert act_energy < (real_acts + virtual_acts) * ACT_NJ


class TestCrossModelAgreement:
    def test_same_workload_same_ballpark(self, config):
        """Trace energy and phase energy agree within 2x on identical
        conventional traffic (they share the per-event constants)."""
        addrs = np.arange(0, 64 * 500, 64, dtype=np.int64)
        result = run_conventional(config, addrs)
        from_trace = trace_energy(result)

        model = DRAMModel(config)
        phase = model.phase(addrs=addrs)
        from_phase = DRAMEnergyModel(config).energy(phase, phase.time_ns)
        ratio = from_trace.total / from_phase.total
        assert 0.5 < ratio < 2.0

    def test_fim_io_saving_agrees(self, config):
        """Both models must report the same I/O-saving story."""
        addrs = strided_addresses(config, 1 << 17, 8, single_row=True)
        trace_ratio = compare_fim_vs_conventional(
            run_fim(config, addrs), run_conventional(config, addrs)
        )["io_ratio"]

        model = DRAMModel(config)
        from repro.olap.queries import _gather_ops
        ops = _gather_ops(model, addrs)
        fim_phase = model.phase(fim_ops=ops)
        blocks = np.unique(addrs >> 6) << 6
        conv_phase = model.phase(addrs=blocks)
        energy_model = DRAMEnergyModel(config)
        phase_ratio = (
            energy_model.energy(fim_phase, fim_phase.time_ns).dram_io
            / energy_model.energy(conv_phase, conv_phase.time_ns).dram_io
        )
        assert trace_ratio == pytest.approx(phase_ratio, rel=0.4)
