"""Tests for address mapping: decode consistency and coverage."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.address import AddressMapper
from repro.dram.spec import DEVICES, DRAMConfig


@pytest.fixture
def mapper(ddr4_config):
    return AddressMapper(ddr4_config)


class TestDecode:
    def test_scalar_matches_vectorised(self, mapper):
        addrs = np.arange(0, 1 << 20, 8192, dtype=np.int64) + 8
        ch, ra, ba, ro, co = mapper.decode_many(addrs)
        spec = mapper.config.spec
        for i, addr in enumerate(addrs.tolist()):
            s_ch, s_ra, s_gb, s_ro, s_w = mapper.decode_scalar(addr)
            assert s_ch == ch[i]
            assert s_ra == ra[i]
            assert s_ro == ro[i]
            expected_gb = (s_ch * mapper.config.ranks + ra[i]) \
                * spec.banks_per_rank + ba[i]
            assert s_gb == expected_gb

    def test_consecutive_blocks_interleave_channels(self):
        config = DRAMConfig(spec=DEVICES["DDR4_2400_x16"], channels=2, ranks=1)
        m = AddressMapper(config)
        addrs = np.arange(4) * 64
        ch = m.channel_of_many(addrs)
        assert ch.tolist() == [0, 1, 0, 1]

    def test_row_locality_of_streams(self, mapper):
        # Bank-interleaved mapping: a stream keeps every bank inside one
        # row until the whole row stripe is consumed.
        cfg = mapper.config
        stripe_blocks = (
            cfg.channels * cfg.ranks * cfg.spec.banks_per_rank
            * (cfg.spec.row_bytes // 64)
        )
        addrs = np.arange(stripe_blocks) * 64
        bank, row = mapper.bank_key_many(addrs)
        for b in range(cfg.total_banks):
            assert np.unique(row[bank == b]).size == 1

    def test_consecutive_blocks_rotate_banks(self, mapper):
        nbanks = mapper.config.spec.banks_per_rank
        addrs = np.arange(nbanks) * 64
        bank, _ = mapper.bank_key_many(addrs)
        assert np.unique(bank).size == nbanks

    def test_word_in_row_range(self, mapper):
        addrs = np.arange(0, 1 << 16, 8, dtype=np.int64)
        words = mapper.word_in_row_many(addrs)
        assert words.min() >= 0
        assert words.max() < mapper.config.spec.row_words

    def test_decode_scalar_word_granularity(self, mapper):
        # Two addresses 8 B apart within one burst share everything but
        # the word offset.
        a = mapper.decode_scalar(1 << 14)
        b = mapper.decode_scalar((1 << 14) + 8)
        assert a[:4] == b[:4]
        assert b[4] == a[4] + 1


class TestBankKeys:
    def test_row_key_distinct_per_bank(self, mapper):
        # Same row index in different banks must give different keys.
        a = np.asarray([0], dtype=np.int64)
        b = np.asarray([64], dtype=np.int64)  # next bank, same row index
        assert mapper.row_key_many(a)[0] != mapper.row_key_many(b)[0]

    def test_global_bank_range(self, mapper):
        addrs = np.arange(0, 1 << 22, 64, dtype=np.int64)
        bank, _ = mapper.bank_key_many(addrs)
        assert bank.min() >= 0
        assert bank.max() < mapper.config.total_banks


@settings(max_examples=200, deadline=None)
@given(addr=st.integers(min_value=0, max_value=(1 << 34) - 8))
def test_scalar_decode_fields_in_range(addr):
    config = DRAMConfig(spec=DEVICES["DDR4_2400_x16"], channels=2, ranks=4)
    mapper = AddressMapper(config)
    ch, ra, gb, ro, word = mapper.decode_scalar(addr)
    assert 0 <= ch < config.channels
    assert 0 <= ra < config.ranks
    assert 0 <= gb < config.total_banks
    assert 0 <= ro < config.rows_per_bank
    assert 0 <= word < config.spec.row_words


@settings(max_examples=100, deadline=None)
@given(
    block=st.integers(min_value=0, max_value=(1 << 26) - 1),
    offset=st.integers(min_value=0, max_value=63),
)
def test_same_block_same_bank_row(block, offset):
    """All bytes of one burst land in the same (bank, row, column)."""
    config = DRAMConfig(spec=DEVICES["DDR4_2400_x16"], channels=2, ranks=2)
    mapper = AddressMapper(config)
    base = block * 64
    a = mapper.decode_scalar(base)
    b = mapper.decode_scalar(base + offset)
    assert a[:4] == b[:4]
