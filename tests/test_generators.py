"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph.generators import (
    assign_random_weights,
    community_graph,
    erdos_renyi,
    kronecker,
    rmat,
    shuffle_vertex_ids,
    watts_strogatz,
)


class TestErdosRenyi:
    def test_size_and_degree(self):
        g = erdos_renyi(1000, avg_degree=4.0, seed=1)
        assert g.num_vertices == 1000
        # dedupe removes a few duplicates; stay within 10 %
        assert g.average_degree == pytest.approx(4.0, rel=0.1)

    def test_deterministic(self):
        a = erdos_renyi(500, 3.0, seed=9)
        b = erdos_renyi(500, 3.0, seed=9)
        assert np.array_equal(a.indices, b.indices)

    def test_seed_changes_graph(self):
        a = erdos_renyi(500, 3.0, seed=1)
        b = erdos_renyi(500, 3.0, seed=2)
        assert not np.array_equal(a.indices, b.indices)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            erdos_renyi(0, 1.0)
        with pytest.raises(ValueError):
            erdos_renyi(10, -1.0)


class TestRMAT:
    def test_power_law_skew(self):
        g = rmat(2048, avg_degree=8.0, seed=3)
        degrees = np.sort(g.out_degrees())[::-1]
        # Heavy hitters: the top percentile vastly exceeds the mean.
        assert degrees[:20].mean() > 4 * degrees.mean()

    def test_uniform_probabilities_give_no_skew(self):
        g = rmat(2048, avg_degree=8.0, seed=3, a=0.25, b=0.25, c=0.25)
        degrees = np.sort(g.out_degrees())[::-1]
        assert degrees[:20].mean() < 4 * degrees.mean()

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            rmat(64, 2.0, a=0.9, b=0.2, c=0.2)

    def test_kronecker_is_power_of_two_sized(self):
        g = kronecker(10, avg_degree=4.0)
        assert g.num_vertices == 1024

    def test_kronecker_scale_bounds(self):
        with pytest.raises(ValueError):
            kronecker(0)
        with pytest.raises(ValueError):
            kronecker(31)


class TestRMATPaddingRemap:
    """Non-power-of-two sizes generate padding vertex ids that must be
    remapped *uniformly*.  The old modulo remap folded the whole padding
    range onto the low ids [0, 2**ceil - n), roughly doubling their
    expected degree."""

    def test_no_double_loading_of_low_ids(self):
        # n=1536 rounds up to 2048: under modulo, ids [0, 512) would
        # absorb all of [1536, 2048) and sit at ~2x the mean degree.
        # With uniform probabilities the generated ids are uniform over
        # [0, 2048), so any residual skew is pure remap artefact.
        n, fold = 1536, 512
        g = rmat(n, avg_degree=16.0, seed=11, a=0.25, b=0.25, c=0.25)
        degrees = g.out_degrees()
        low = degrees[:fold].mean()
        rest = degrees[fold:].mean()
        # modulo gave low/rest ~2.0; uniform remap stays near 1.0
        assert low / rest < 1.15, (low, rest)

    def test_remap_respects_vertex_range(self):
        for n in (100, 1000, 1536, 5126):
            g = rmat(n, avg_degree=4.0, seed=3)
            assert g.indices.max() < n
            assert g.num_vertices == n

    def test_remap_is_deterministic(self):
        a = rmat(1000, avg_degree=6.0, seed=9)
        b = rmat(1000, avg_degree=6.0, seed=9)
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.weights, b.weights)

    def test_power_of_two_sizes_have_no_padding(self):
        # Sanity: the remap path is a no-op for power-of-two sizes.
        g = rmat(1024, avg_degree=8.0, seed=3)
        assert g.num_vertices == 1024
        assert g.indices.max() < 1024


class TestWattsStrogatz:
    def test_degree_is_k(self):
        g = watts_strogatz(512, k=5, beta=0.0, seed=1)
        assert g.num_edges == 512 * 5
        assert np.all(g.out_degrees() == 5)

    def test_no_rewiring_is_ring_lattice(self):
        g = watts_strogatz(16, k=2, beta=0.0, seed=1)
        assert g.neighbors(0).tolist() == [1, 2]
        assert g.neighbors(15).tolist() == [0, 1]

    def test_rewiring_changes_structure(self):
        lattice = watts_strogatz(512, k=4, beta=0.0, seed=1)
        rewired = watts_strogatz(512, k=4, beta=0.9, seed=1)
        assert not np.array_equal(lattice.indices, rewired.indices)

    def test_no_power_law(self):
        g = watts_strogatz(2048, k=5, beta=0.1, seed=1)
        assert g.out_degrees().max() <= 6  # rewiring only moves dst

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            watts_strogatz(10, k=0)
        with pytest.raises(ValueError):
            watts_strogatz(10, k=10)


class TestCommunityGraph:
    def test_locality_of_destinations(self):
        g = community_graph(
            4096, avg_degree=8.0, num_communities=64, p_internal=0.9, seed=5
        )
        src, dst, _ = g.edge_array()
        community = 4096 // 64
        same = np.mean((src // community) == (dst // community))
        assert same > 0.6  # most edges stay inside the community

    def test_shuffle_destroys_locality(self):
        g = community_graph(
            4096, avg_degree=8.0, num_communities=64, p_internal=0.9, seed=5
        )
        shuffled = shuffle_vertex_ids(g, seed=6)
        src, dst, _ = shuffled.edge_array()
        community = 4096 // 64
        same = np.mean((src // community) == (dst // community))
        assert same < 0.1

    def test_shuffle_preserves_counts(self):
        g = community_graph(1024, 4.0, 16, seed=1)
        shuffled = shuffle_vertex_ids(g, seed=2)
        assert shuffled.num_edges == g.num_edges
        assert shuffled.num_vertices == g.num_vertices


class TestWeights:
    def test_range_matches_paper(self):
        g = erdos_renyi(512, 4.0, seed=1)
        g = assign_random_weights(g, 0, 255, seed=2)
        assert g.weights.min() >= 0
        assert g.weights.max() <= 255

    def test_deterministic(self):
        g = erdos_renyi(512, 4.0, seed=1)
        a = assign_random_weights(g, seed=3)
        b = assign_random_weights(g, seed=3)
        assert np.array_equal(a.weights, b.weights)
