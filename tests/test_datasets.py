"""Tests for the scaled dataset registry."""

import pytest

from repro.graph.datasets import DATASETS, REAL_WORLD, SYNTHETIC, load_dataset


class TestRegistry:
    def test_all_paper_datasets_present(self):
        for name in ("UU", "SW", "TW", "FS", "PP",
                     "WS26", "WS27", "KN25", "KN26", "KN27", "KN28"):
            assert name in DATASETS

    def test_real_world_ordering_matches_paper(self):
        assert REAL_WORLD == ("UU", "TW", "SW", "FS", "PP")

    def test_synthetic_ordering_matches_paper(self):
        assert SYNTHETIC == ("WS26", "WS27", "KN25", "KN26", "KN27", "KN28")

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("nope")

    def test_negative_shift_raises(self):
        with pytest.raises(ValueError):
            load_dataset("UU", scale_shift=-1)


class TestScaledCharacteristics:
    def test_average_degrees_preserved(self):
        # The stand-ins must preserve the paper's degree regime.
        expectations = {"UU": 1.6, "SW": 12.4, "TW": 35.7, "FS": 27.8, "PP": 14.5}
        for name, degree in expectations.items():
            g = load_dataset(name)
            # Dedupe and community redirection shave some edges.
            assert g.average_degree == pytest.approx(degree, rel=0.35), name

    def test_relative_sizes_preserved(self):
        # FS and PP are the biggest graphs, UU has the fewest edges.
        sizes = {name: load_dataset(name).num_edges for name in REAL_WORLD}
        assert sizes["UU"] == min(sizes.values())
        assert sizes["FS"] > sizes["SW"]
        assert sizes["PP"] > sizes["SW"]

    def test_kronecker_scaling_doubles(self):
        kn25 = load_dataset("KN25")
        kn26 = load_dataset("KN26")
        assert kn26.num_vertices == 2 * kn25.num_vertices

    def test_memoised(self):
        assert load_dataset("UU") is load_dataset("UU")

    def test_scale_shift_override(self):
        small = load_dataset("SW", scale_shift=14)
        default = load_dataset("SW")
        assert small.num_vertices < default.num_vertices

    def test_deterministic_across_calls(self):
        load_dataset.cache_clear()
        a = load_dataset("TW")
        load_dataset.cache_clear()
        b = load_dataset("TW")
        assert a.num_edges == b.num_edges
