"""Tests for the scaled dataset registry."""

import pytest

from repro.graph import datasets
from repro.graph.datasets import DATASETS, REAL_WORLD, SYNTHETIC, load_dataset


class TestRegistry:
    def test_all_paper_datasets_present(self):
        for name in ("UU", "SW", "TW", "FS", "PP",
                     "WS26", "WS27", "KN25", "KN26", "KN27", "KN28"):
            assert name in DATASETS

    def test_real_world_ordering_matches_paper(self):
        assert REAL_WORLD == ("UU", "TW", "SW", "FS", "PP")

    def test_synthetic_ordering_matches_paper(self):
        assert SYNTHETIC == ("WS26", "WS27", "KN25", "KN26", "KN27", "KN28")

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("nope")

    def test_negative_shift_raises(self):
        with pytest.raises(ValueError):
            load_dataset("UU", scale_shift=-1)


class TestScaledCharacteristics:
    def test_average_degrees_preserved(self):
        # The stand-ins must preserve the paper's degree regime.
        expectations = {"UU": 1.6, "SW": 12.4, "TW": 35.7, "FS": 27.8, "PP": 14.5}
        for name, degree in expectations.items():
            g = load_dataset(name)
            # Dedupe and community redirection shave some edges.
            assert g.average_degree == pytest.approx(degree, rel=0.35), name

    def test_relative_sizes_preserved(self):
        # FS and PP are the biggest graphs, UU has the fewest edges.
        sizes = {name: load_dataset(name).num_edges for name in REAL_WORLD}
        assert sizes["UU"] == min(sizes.values())
        assert sizes["FS"] > sizes["SW"]
        assert sizes["PP"] > sizes["SW"]

    def test_kronecker_scaling_doubles(self):
        kn25 = load_dataset("KN25")
        kn26 = load_dataset("KN26")
        assert kn26.num_vertices == 2 * kn25.num_vertices

    def test_memoised(self):
        assert load_dataset("UU") is load_dataset("UU")

    def test_scale_shift_override(self):
        small = load_dataset("SW", scale_shift=14)
        default = load_dataset("SW")
        assert small.num_vertices < default.num_vertices

    def test_deterministic_across_calls(self):
        load_dataset.cache_clear()
        a = load_dataset("TW")
        load_dataset.cache_clear()
        b = load_dataset("TW")
        assert a.num_edges == b.num_edges


class TestByteBudgetedCache:
    """The memo cache evicts by total edge-array bytes, not entry count
    (an lru_cache(32) pinned up to 32 full graphs for the process
    lifetime, which blows memory at mid/paper scale)."""

    @pytest.fixture
    def tight_budget(self):
        cache = datasets._CACHE
        saved = cache.budget_bytes
        load_dataset.cache_clear()
        yield cache
        cache.budget_bytes = saved
        load_dataset.cache_clear()

    def test_spec_default_and_explicit_shift_share_an_entry(self):
        load_dataset.cache_clear()
        spec_shift = DATASETS["UU"].scale_shift
        assert load_dataset("UU") is load_dataset("UU", spec_shift)
        assert load_dataset.cache_info().currsize == 1

    def test_evicts_least_recently_used_by_bytes(self, tight_budget):
        first = load_dataset("UU", 14)
        # budget: the first graph alone fits, two don't
        tight_budget.budget_bytes = int(
            tight_budget.graph_nbytes(first) * 1.5
        )
        second = load_dataset("SW", 14)
        assert load_dataset("SW", 14) is second  # newest stays
        assert load_dataset("UU", 14) is not first  # LRU was evicted

    def test_recency_protects_entries(self, tight_budget):
        first = load_dataset("UU", 14)
        load_dataset("SW", 14)
        # budget exactly holds the two resident graphs; adding a third
        # (small) one must evict the least recently used
        tight_budget.budget_bytes = tight_budget.total_bytes()
        assert load_dataset("UU", 14) is first  # touch: UU becomes MRU
        load_dataset("UU", 15)  # evicts SW (LRU), not the touched UU
        assert load_dataset("UU", 14) is first
        assert load_dataset.cache_info().currsize == 2

    def test_newest_entry_survives_an_over_budget_graph(self, tight_budget):
        tight_budget.budget_bytes = 1  # nothing "fits"
        graph = load_dataset("UU", 14)
        assert load_dataset("UU", 14) is graph  # still memoised
        assert load_dataset.cache_info().currsize == 1

    def test_cache_info_surface(self, tight_budget):
        info = load_dataset.cache_info()
        assert info.currsize == 0 and info.total_bytes == 0
        load_dataset("UU", 14)
        load_dataset("UU", 14)
        info = load_dataset.cache_info()
        assert info.misses == 1 and info.hits == 1
        assert info.currsize == 1
        assert info.total_bytes == tight_budget.total_bytes() > 0
        load_dataset.cache_clear()
        info = load_dataset.cache_info()
        assert info.hits == info.misses == info.currsize == 0


class TestResidentCostAccounting:
    """Memmap-backed graphs are charged at resident (~0) cost, not full
    nbytes: their pages live in the shared page cache, so evicting them
    frees nothing -- charging them at nbytes made the budget evict
    exactly the entries that were free to keep."""

    @pytest.fixture
    def tight_budget(self):
        cache = datasets._CACHE
        saved = cache.budget_bytes
        load_dataset.cache_clear()
        yield cache
        cache.budget_bytes = saved
        load_dataset.cache_clear()

    def _memmap_swap(self, name, shift, root):
        load_dataset(name, shift)
        datasets.materialize_memmap(name, shift, root)

    def test_materialize_swaps_cached_entry_to_mapped(
        self, tight_budget, tmp_path
    ):
        anon = load_dataset("UU", 14)
        assert tight_budget.graph_resident_nbytes(anon) > 0
        datasets.materialize_memmap("UU", 14, tmp_path)
        swapped = load_dataset("UU", 14)
        assert tight_budget.graph_resident_nbytes(swapped) == 0
        import numpy as np

        assert np.array_equal(anon.indices, swapped.indices)
        assert np.array_equal(anon.indptr, swapped.indptr)
        assert np.array_equal(anon.weights, swapped.weights)

    def test_mapped_entries_are_not_evicted_first(
        self, tight_budget, tmp_path
    ):
        self._memmap_swap("UU", 14, tmp_path)
        mapped = load_dataset("UU", 14)
        anon_a = load_dataset("SW", 14)
        # budget: one anonymous graph fits, two don't; the cheap mapped
        # entry (older than both) must NOT be the victim
        tight_budget.budget_bytes = int(
            tight_budget.graph_nbytes(anon_a) * 1.5
        )
        load_dataset("TW", 14)
        assert load_dataset("UU", 14) is mapped  # mapped entry survived
        assert load_dataset("SW", 14) is not anon_a  # resident LRU went

    def test_eviction_stops_when_only_mapped_entries_remain(
        self, tight_budget, tmp_path
    ):
        self._memmap_swap("UU", 14, tmp_path)
        self._memmap_swap("SW", 14, tmp_path)
        tight_budget.budget_bytes = 1
        load_dataset("UU", 15)  # over-budget newest + two mapped entries
        info = load_dataset.cache_info()
        assert info.currsize == 3  # evicting mapped entries frees nothing

    def test_cache_info_reports_resident_vs_mapped(
        self, tight_budget, tmp_path
    ):
        self._memmap_swap("UU", 14, tmp_path)
        anon = load_dataset("SW", 14)
        info = load_dataset.cache_info()
        assert info.resident_bytes == tight_budget.graph_nbytes(anon)
        assert info.mapped_bytes > 0
        assert info.total_bytes == info.resident_bytes + info.mapped_bytes
