"""End-to-end engine runs: bandwidth, latency, refresh, channels."""

import numpy as np
import pytest

from repro.dram.engine import DRAMEngine, check_engine_result
from repro.dram.engine.workloads import (
    conventional_requests,
    fim_requests,
    random_mix,
    strided_addresses,
)
from repro.dram.spec import DEVICES, DRAMConfig, default_config


@pytest.fixture(scope="module")
def config():
    return default_config()


def run_addresses(config, addrs, is_write=None, refresh=False):
    engine = DRAMEngine(config, refresh_enabled=refresh)
    requests, channels = conventional_requests(config, addrs, is_write)
    return engine.run(requests, channels)


class TestSequentialReads:
    def test_every_request_finishes(self, config):
        addrs = np.arange(0, 64 * 300, 64, dtype=np.int64)
        result = run_addresses(config, addrs)
        assert all(r.done for r in result.requests)

    def test_near_peak_bandwidth(self, config):
        addrs = np.arange(0, 64 * 2000, 64, dtype=np.int64)
        result = run_addresses(config, addrs)
        achieved = result.bandwidth_gbps(addrs.size * 64)
        peak = config.peak_bandwidth_gbps
        # Streams should reach well over half of peak on open rows.
        assert achieved > 0.5 * peak
        assert achieved <= peak + 1e-9

    def test_row_hits_dominate(self, config):
        addrs = np.arange(0, 64 * 1000, 64, dtype=np.int64)
        result = run_addresses(config, addrs)
        assert result.stats.acts < addrs.size * 0.1

    def test_trace_is_protocol_clean(self, config):
        addrs = np.arange(0, 64 * 500, 64, dtype=np.int64)
        result = run_addresses(config, addrs)
        assert check_engine_result(result) > addrs.size


class TestRandomTraffic:
    def test_random_reads_activate_often(self, config):
        addrs, _ = random_mix(config, 1000, seed=3, write_fraction=0.0)
        result = run_addresses(config, addrs)
        # Random rows rarely hit: expect close to one ACT per request.
        assert result.stats.acts > 0.5 * result.stats.finished_requests

    def test_random_mix_protocol_clean(self, config):
        addrs, is_write = random_mix(config, 1500, seed=4)
        result = run_addresses(config, addrs, is_write, refresh=True)
        assert check_engine_result(result) > 0

    def test_random_slower_than_sequential(self):
        # One rank (8 banks): activations cannot fully hide, so random
        # rows must cost clearly more than an open-row stream.
        config = DRAMConfig(spec=DEVICES["DDR4_2400_x16"], channels=1,
                            ranks=1)
        n = 800
        seq = np.arange(0, 64 * n, 64, dtype=np.int64)
        rand, _ = random_mix(config, n, seed=5, write_fraction=0.0)
        t_seq = run_addresses(config, seq).time_ns
        t_rand = run_addresses(config, rand).time_ns
        assert t_rand > 1.5 * t_seq

    def test_latency_floor(self, config):
        addrs, _ = random_mix(config, 200, seed=6, write_fraction=0.0)
        result = run_addresses(config, addrs)
        timing = result.timing
        floor = timing.tCL + timing.tBL
        for request in result.requests:
            assert request.latency >= floor


class TestRefresh:
    def test_refresh_cadence(self, config):
        # Stretch arrivals over ~5 tREFI per rank and count refreshes.
        engine = DRAMEngine(config, refresh_enabled=True)
        timing = engine.timing
        n = 400
        addrs = np.arange(0, 64 * n, 64, dtype=np.int64)
        arrivals = np.linspace(0, 5 * timing.tREFI, n).astype(np.int64)
        requests, channels = engine.requests_from_addresses(
            addrs, arrivals=arrivals
        )
        result = engine.run(requests, channels)
        # ~5 refreshes per rank over the horizon.
        expected = 5 * config.ranks
        assert expected * 0.5 <= result.stats.refreshes <= expected * 2

    def test_refresh_disabled(self, config):
        addrs = np.arange(0, 64 * 100, 64, dtype=np.int64)
        result = run_addresses(config, addrs, refresh=False)
        assert result.stats.refreshes == 0


class TestChannels:
    def test_two_channels_nearly_halve_time(self):
        base = default_config()
        dual = DRAMConfig(spec=DEVICES["DDR4_2400_x16"], channels=2,
                          ranks=4)
        addrs = np.arange(0, 64 * 2000, 64, dtype=np.int64)
        t1 = run_addresses(base, addrs).time_ns
        t2 = run_addresses(dual, addrs).time_ns
        assert t2 < 0.7 * t1

    def test_channel_routing(self):
        dual = DRAMConfig(spec=DEVICES["DDR4_2400_x16"], channels=2,
                          ranks=4)
        engine = DRAMEngine(dual)
        addrs = np.arange(0, 64 * 64, 64, dtype=np.int64)
        requests, channels = conventional_requests(dual, addrs)
        result = engine.run(requests, channels)
        assert len(result.traces) == 2
        assert all(len(trace) > 0 for trace in result.traces)


class TestFimRuns:
    def test_gathers_complete_and_check(self, config):
        addrs = strided_addresses(config, 1 << 17, 8, single_row=True)
        engine = DRAMEngine(config)
        requests, channels = fim_requests(config, addrs)
        result = engine.run(requests, channels)
        assert result.stats.gathers == len(requests)
        assert check_engine_result(result) > 0

    def test_scatters_complete_and_check(self, config):
        addrs = strided_addresses(config, 1 << 16, 8, single_row=True)
        engine = DRAMEngine(config)
        requests, channels = fim_requests(config, addrs, scatter=True)
        result = engine.run(requests, channels)
        assert result.stats.scatters == len(requests)
        assert check_engine_result(result) > 0

    def test_fim_beats_conventional_on_sparse_rows(self, config):
        addrs = strided_addresses(config, 1 << 17, 8, single_row=True)
        conv = run_addresses(config, addrs).time_ns
        engine = DRAMEngine(config)
        requests, channels = fim_requests(config, addrs)
        fim = engine.run(requests, channels).time_ns
        assert conv / fim > 2.5

    def test_fim_with_refresh_is_clean(self, config):
        addrs = strided_addresses(config, 1 << 16, 8, single_row=False)
        engine = DRAMEngine(config, refresh_enabled=True)
        requests, channels = fim_requests(config, addrs)
        result = engine.run(requests, channels)
        assert check_engine_result(result) > 0


class TestStatsAccounting:
    def test_burst_counts_match_requests(self, config):
        n = 300
        addrs = np.arange(0, 64 * n, 64, dtype=np.int64)
        is_write = np.zeros(n, dtype=bool)
        is_write[::3] = True
        result = run_addresses(config, addrs, is_write)
        assert result.stats.reads == int(np.count_nonzero(~is_write))
        assert result.stats.writes == int(np.count_nonzero(is_write))

    def test_mean_latency_positive(self, config):
        addrs = np.arange(0, 64 * 50, 64, dtype=np.int64)
        result = run_addresses(config, addrs)
        assert result.mean_latency_ns > 0

    def test_bus_utilisation_bounded(self, config):
        addrs = np.arange(0, 64 * 500, 64, dtype=np.int64)
        engine = DRAMEngine(config)
        requests, channels = conventional_requests(config, addrs)
        result = engine.run(requests, channels)
        util = result.stats.data_bus_clocks[0] / result.cycles
        assert 0.0 < util <= 1.0
