"""Out-of-core measurement cells (``perf_report --ooc``).

The suite definition must stay runnable (known datasets, valid
backings, unique names), the RSS sampler must actually see anonymous
allocations, and the spawned-child round trip must produce a complete
measurement payload.  The child runs a *toy*-scale cell here so the
spawn + sampler + JSON-handoff machinery is exercised end to end
without mid/paper cost; the real mid/paper cells run in the perf
harness (``tools/perf_report.py --ooc``), not tier-1.
"""

import numpy as np
import pytest

from repro.experiments.ooc import (
    OOC_CELLS,
    OocCell,
    _AnonPeakSampler,
    _read_rss_kb,
    run_ooc_cell,
)
from repro.graph.datasets import DATASETS


class TestSuiteDefinition:
    def test_cells_reference_known_datasets_and_backings(self):
        for profile, cells in OOC_CELLS.items():
            for cell in cells:
                assert cell.dataset in DATASETS
                assert cell.tile_backing in ("memory", "disk")
                assert cell.scale == profile
                assert cell.name.startswith(
                    f"ooc/{profile}/{cell.tile_backing}/"
                )

    def test_cell_names_unique(self):
        names = [c.name for cells in OOC_CELLS.values() for c in cells]
        assert len(names) == len(set(names))

    def test_each_profile_compares_both_backings(self):
        for cells in OOC_CELLS.values():
            assert {c.tile_backing for c in cells} == {"memory", "disk"}

    def test_paper_suite_has_the_100m_edge_disk_cell(self):
        # KN28 at scale_shift=4 is ~2^24 vertices x avg degree 10 --
        # the 100M+-edge configuration only the disk backing should run
        kn28 = [c for c in OOC_CELLS["paper"] if c.dataset == "KN28"]
        assert len(kn28) == 1
        assert kn28[0].scale_shift == 4
        assert kn28[0].tile_backing == "disk"


class TestRssSampling:
    def test_read_rss_returns_positive_kb(self):
        anon_kb, rss_kb = _read_rss_kb()
        assert anon_kb > 0
        assert rss_kb >= anon_kb  # VmRSS = anon + file-backed + shmem

    def test_sampler_sees_anon_allocation(self):
        with _AnonPeakSampler() as sampler:
            base_mb = sampler.reset_mb()
            blob = np.ones(25 << 20, dtype=np.int64)  # 200 MB, touched
            peak_mb = sampler.reset_mb()
        assert blob[0] == 1
        assert peak_mb >= base_mb + 150

    def test_reset_starts_a_fresh_window(self):
        with _AnonPeakSampler() as sampler:
            first = sampler.reset_mb()
            second = sampler.reset_mb()
        assert first > 0
        # the second window holds no 200 MB transient, so its peak must
        # be near the live process size, not the first window's max
        assert second <= first + 50


class TestSpawnedCell:
    def test_toy_cell_round_trip(self, tmp_path):
        cell = OocCell(
            "ooc/test/disk/Piccolo/PR/UU",
            "Piccolo", "PR", "UU", "toy", "disk",
        )
        payload = run_ooc_cell(cell, tmp_path)
        assert payload["cell"] == cell.name
        assert payload["tile_backing"] == "disk"
        assert payload["seconds"] > 0
        assert payload["rss_anon_peak_mb"] > 0
        assert payload["materialize_seconds"] >= 0
        assert payload["total_ns"] > 0
        # the child materialised the graph memmap and built its own
        # external-sort tile store under the per-cell directory
        assert list((tmp_path / "graphs").glob("UU-s*"))
        assert list(
            (tmp_path / "ooc_test_disk_Piccolo_PR_UU" / "tiles")
            .glob("tiles-*")
        )

    def test_child_failure_raises(self, tmp_path):
        bad = OocCell(
            "ooc/test/disk/Piccolo/PR/NOPE",
            "Piccolo", "PR", "NOPE", "toy", "disk",
        )
        with pytest.raises(RuntimeError, match="child failed"):
            run_ooc_cell(bad, tmp_path)
