"""Bank/rank timing state machines and the shared data bus."""

import pytest

from repro.dram.engine.commands import CommandType
from repro.dram.engine.state import BankState, DataBus, RankState
from repro.dram.engine.timing import timing_from_spec
from repro.dram.spec import DEVICES

ACT, PRE, RD, WR = (CommandType.ACT, CommandType.PRE,
                    CommandType.RD, CommandType.WR)


@pytest.fixture
def timing():
    return timing_from_spec(DEVICES["DDR4_2400_x16"])


@pytest.fixture
def rank(timing):
    return RankState(timing)


class TestBankWindows:
    def test_act_opens_row_and_sets_windows(self, rank, timing):
        rank.issue(ACT, 0, 100, row=7)
        bank = rank.banks[0]
        assert bank.open_row == 7
        assert bank.earliest(RD) == 100 + timing.tRCD
        assert bank.earliest(WR) == 100 + timing.tRCD
        assert bank.earliest(PRE) == 100 + timing.tRAS
        assert bank.earliest(ACT) == 100 + timing.tRC

    def test_pre_closes_and_blocks_act(self, rank, timing):
        rank.issue(ACT, 0, 0, row=1)
        cycle = rank.earliest(PRE, 0)
        rank.issue(PRE, 0, cycle)
        assert rank.banks[0].open_row is None
        assert rank.earliest(ACT, 0) >= cycle + timing.tRP

    def test_write_recovery_delays_pre(self, rank, timing):
        rank.issue(ACT, 0, 0, row=1)
        wr_cycle = rank.earliest(WR, 0)
        rank.issue(WR, 0, wr_cycle)
        data_end = wr_cycle + timing.tCWL + timing.tBL
        assert rank.earliest(PRE, 0) >= data_end + timing.tWR

    def test_explicit_data_end_extends_recovery(self, rank, timing):
        rank.issue(ACT, 0, 0, row=1)
        wr_cycle = rank.earliest(WR, 0)
        delayed_end = wr_cycle + timing.tCWL + timing.tBL + 50
        rank.issue(WR, 0, wr_cycle, data_end=delayed_end)
        assert rank.earliest(PRE, 0) >= delayed_end + timing.tWR

    def test_read_to_precharge(self, rank, timing):
        rank.issue(ACT, 0, 0, row=1)
        rd_cycle = rank.earliest(RD, 0)
        rank.issue(RD, 0, rd_cycle)
        assert rank.earliest(PRE, 0) >= rd_cycle + timing.tRTP


class TestRankWindows:
    def test_rrd_same_group_vs_cross_group(self, rank, timing):
        rank.issue(ACT, 0, 0, row=1)
        # Bank 1 shares group 0 with bank 0; bank 2 does not.
        assert rank.earliest(ACT, 1) >= timing.tRRD_L
        assert rank.earliest(ACT, 2) >= timing.tRRD_S
        assert rank.earliest(ACT, 2) <= rank.earliest(ACT, 1)

    def test_faw_blocks_fifth_activation(self, rank, timing):
        cycle = 0
        for bank in range(4):
            cycle = max(cycle, rank.earliest(ACT, bank))
            rank.issue(ACT, bank, cycle, row=0)
        fifth = rank.earliest(ACT, 4)
        first_act = rank._act_window[0]
        assert fifth >= first_act + timing.tFAW

    def test_ccd_between_column_commands(self, rank, timing):
        rank.issue(ACT, 0, 0, row=1)
        rank.issue(ACT, 2, rank.earliest(ACT, 2), row=1)
        first = rank.earliest(RD, 0)
        rank.issue(RD, 0, first)
        # Same group -> tCCD_L; different group -> tCCD_S.
        assert rank.earliest(RD, 0) >= first + timing.tCCD_L
        assert rank.earliest(RD, 2) >= first + timing.tCCD_S

    def test_write_to_read_turnaround(self, rank, timing):
        rank.issue(ACT, 0, 0, row=1)
        wr_cycle = rank.earliest(WR, 0)
        rank.issue(WR, 0, wr_cycle)
        data_end = wr_cycle + timing.tCWL + timing.tBL
        assert rank.earliest(RD, 0) >= data_end + timing.tWTR_L
        # Cross-group read only needs tWTR_S.
        rank.issue(ACT, 2, rank.earliest(ACT, 2), row=1)
        assert rank.earliest(RD, 2) >= data_end + timing.tWTR_S

    def test_refresh_blocks_everything(self, rank, timing):
        rank.issue(CommandType.REF, 0, 1000)
        assert rank.refresh_until == 1000 + timing.tRFC
        assert rank.earliest(ACT, 3) >= rank.refresh_until
        assert rank.next_refresh_due == timing.tREFI * 2

    def test_refresh_needs_banks_closed(self, rank, timing):
        rank.issue(ACT, 0, 0, row=1)
        # earliest_refresh waits for the bank's next_act window (i.e. a
        # full close/open cycle being possible), conservative per JEDEC.
        assert rank.earliest_refresh() >= timing.tREFI

    def test_all_banks_closed(self, rank):
        assert rank.all_banks_closed()
        rank.issue(ACT, 5, 0, row=3)
        assert not rank.all_banks_closed()
        rank.issue(PRE, 5, rank.earliest(PRE, 5))
        assert rank.all_banks_closed()


class TestDataBus:
    def test_reservation_advances(self, timing):
        bus = DataBus(timing)
        bus.reserve(0, 10, 4, is_read=True)
        assert bus.busy_until == 14
        assert bus.busy_clocks == 4

    def test_no_overlap_allowed(self, timing):
        bus = DataBus(timing)
        bus.reserve(0, 10, 4, is_read=True)
        with pytest.raises(ValueError, match="double-booked"):
            bus.reserve(0, 12, 4, is_read=True)

    def test_rank_switch_penalty(self, timing):
        bus = DataBus(timing)
        bus.reserve(0, 0, 4, is_read=True)
        start = bus.earliest_data_start(1, 4, is_read=True)
        assert start >= 4 + timing.tRTRS

    def test_same_rank_back_to_back(self, timing):
        bus = DataBus(timing)
        bus.reserve(0, 0, 4, is_read=True)
        assert bus.earliest_data_start(0, 4, is_read=True) == 4

    def test_direction_turnaround(self, timing):
        bus = DataBus(timing)
        bus.reserve(0, 0, 4, is_read=True)
        start = bus.earliest_data_start(0, 4, is_read=False)
        assert start >= 5
