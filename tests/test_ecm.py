"""Tests for the edge-centric engine: equivalence with the VCM results."""

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.algorithms.ecm import EdgeCentricEngine
from repro.algorithms.pagerank import reference_pagerank
from repro.algorithms.vcm import VertexCentricEngine


class TestEquivalence:
    def test_pagerank_matches_vcm(self, medium_power_law_graph):
        spec = make_algorithm("PR", medium_power_law_graph)
        ec = EdgeCentricEngine(spec, src_tile_width=128, dst_tile_width=200)
        for _ in range(5):
            ec.step()
        ref = reference_pagerank(medium_power_law_graph, iterations=5)
        np.testing.assert_allclose(ec.prop, ref, rtol=1e-9)

    def test_block_partition_covers_all_edges(self, medium_power_law_graph):
        spec = make_algorithm("PR", medium_power_law_graph)
        ec = EdgeCentricEngine(spec, 100, 100)
        trace = ec.step()
        assert trace.num_edges == medium_power_law_graph.num_edges

    def test_blocks_respect_ranges(self, medium_power_law_graph):
        spec = make_algorithm("PR", medium_power_law_graph)
        ec = EdgeCentricEngine(spec, 128, 256)
        trace = ec.step()
        for block in trace.blocks:
            assert block.edge_src.min() >= block.src_lo
            assert block.edge_src.max() < block.src_hi
            assert block.edge_dst.min() >= block.dst_lo
            assert block.edge_dst.max() < block.dst_hi

    def test_bfs_like_fixpoint_matches_vcm(self, small_random_graph):
        spec_vc = make_algorithm("CC", small_random_graph)
        vc = VertexCentricEngine(spec_vc)
        vc.run(200)
        spec_ec = make_algorithm("CC", small_random_graph)
        ec = EdgeCentricEngine(spec_ec, 64, 64)
        for _ in range(200):
            if ec.converged:
                break
            ec.step()
        assert np.array_equal(vc.prop, ec.prop)

    def test_convergence_flag(self, tiny_graph):
        spec = make_algorithm("CC", tiny_graph)
        ec = EdgeCentricEngine(spec, 3, 3)
        for _ in range(50):
            if ec.converged:
                break
            ec.step()
        assert ec.converged

    def test_invalid_widths(self, tiny_graph):
        spec = make_algorithm("PR", tiny_graph)
        with pytest.raises(ValueError):
            EdgeCentricEngine(spec, 0, 4)
        with pytest.raises(ValueError):
            EdgeCentricEngine(spec, 4, 0)

    def test_column_major_block_order(self, medium_power_law_graph):
        spec = make_algorithm("PR", medium_power_law_graph)
        ec = EdgeCentricEngine(spec, 128, 128)
        trace = ec.step()
        dst_tiles = [b.dst_tile for b in trace.blocks]
        assert dst_tiles == sorted(dst_tiles)
