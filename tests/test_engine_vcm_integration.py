"""Full-stack integration: VCM miss stream -> MSHR ops -> engine.

Drives real graph-iteration addresses through the Piccolo miss path
(Piccolo-cache + collection-extended MSHR), converts the resulting
scatter/gather operations into command-level engine requests, and
checks that (a) the engine replays them protocol-clean and (b) its
duration stays in the expected band of the phase model that the figure
sweeps use.  This is the deepest end-to-end slice of the reproduction:
algorithm -> cache -> MSHR -> DDR commands.
"""

import numpy as np
import pytest

from repro.accel.layout import MemoryLayout
from repro.algorithms import make_algorithm
from repro.algorithms.vcm import VertexCentricEngine
from repro.core.collection_mshr import CollectionExtendedMSHR
from repro.core.memory_path import FineGrainedMemoryPath
from repro.core.piccolo_cache import PiccoloCache
from repro.dram.engine import (
    DRAMEngine,
    Request,
    RequestType,
    check_engine_result,
)
from repro.dram.spec import default_config
from repro.dram.system import DRAMModel, FimOp
from repro.graph.datasets import load_dataset


@pytest.fixture(scope="module")
def fim_ops():
    """Scatter/gather ops from six BFS iterations on the UU stand-in."""
    config = default_config()
    model = DRAMModel(config)
    graph = load_dataset("UU")
    spec = make_algorithm("BFS", graph)
    engine = VertexCentricEngine(spec, tile_width=2048)
    cache = PiccoloCache(1024, ways=8)
    mshr = CollectionExtendedMSHR(
        model.mapper, num_entries=64,
        items_per_op=config.fim_items_per_op,
    )
    path = FineGrainedMemoryPath(cache, mshr)
    layout = MemoryLayout()
    for trace in engine.run_iter(6):
        for tile in trace.tiles:
            if tile.edge_dst.size:
                path.run(layout.vtemp_addrs(tile.edge_dst), rmw=True)
    path.flush()
    ops, _, _ = path.drain()
    return config, ops


def ops_to_requests(config, ops):
    banks_per_rank = config.spec.banks_per_rank
    requests, channels = [], []
    for i, op in enumerate(ops):
        local_bank = op.bank % banks_per_rank
        kind = RequestType.SCATTER if op.is_scatter else RequestType.GATHER
        requests.append(Request(
            kind=kind, rank=op.rank, bank=local_bank, row=op.row,
            offsets=tuple(range(op.items)), req_id=i,
        ))
        channels.append(op.channel)
    return requests, np.asarray(channels, dtype=np.int64)


class TestMissStreamOnEngine:
    def test_ops_produced(self, fim_ops):
        _, ops = fim_ops
        assert len(ops) > 16
        assert any(op.is_scatter for op in ops)
        assert any(not op.is_scatter for op in ops)

    def test_ops_row_confined(self, fim_ops):
        config, ops = fim_ops
        for op in ops:
            assert 1 <= op.items <= config.fim_items_per_op

    def test_engine_replay_protocol_clean(self, fim_ops):
        config, ops = fim_ops
        engine = DRAMEngine(config, refresh_enabled=True)
        requests, channels = ops_to_requests(config, ops)
        result = engine.run(requests, channels)
        assert result.stats.gathers + result.stats.scatters == len(ops)
        assert check_engine_result(result) > 0

    def test_engine_agrees_with_phase_model(self, fim_ops):
        config, ops = fim_ops
        engine = DRAMEngine(config, refresh_enabled=False)
        requests, channels = ops_to_requests(config, ops)
        engine_ns = engine.run(requests, channels).time_ns
        phase_ns = DRAMModel(config).phase(fim_ops=ops).time_ns
        assert 0.4 < engine_ns / phase_ns < 3.0
