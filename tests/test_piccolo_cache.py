"""Tests for Piccolo-cache: geometry (paper numbers), replacement
semantics (Fig. 6), way partitioning, and policies."""

import pytest

from repro.core.piccolo_cache import PiccoloCache


def make_cache(**kwargs):
    defaults = dict(size_bytes=4096, ways=4, fg_tag_bits=4)
    defaults.update(kwargs)
    return PiccoloCache(**defaults)


class TestPaperGeometry:
    """Sec. V-A's 4 MB / 8-way / 48-bit numbers."""

    def test_tag_bits_21(self):
        cache = PiccoloCache(4 * 1024 * 1024, ways=8, fg_tag_bits=8)
        assert cache.num_sets == 4096
        assert cache.tag_bits == 21

    def test_tag_overhead_2_05_percent(self):
        cache = PiccoloCache(4 * 1024 * 1024, ways=8, fg_tag_bits=8)
        assert cache.tag_overhead_fraction == pytest.approx(0.0205, abs=0.0003)

    def test_fg_tag_overhead_12_5_percent(self):
        cache = PiccoloCache(4 * 1024 * 1024, ways=8, fg_tag_bits=8)
        assert cache.fg_tag_overhead_fraction == pytest.approx(0.125)

    def test_window_is_32kb(self):
        cache = PiccoloCache(4 * 1024 * 1024, ways=8, fg_tag_bits=8)
        assert cache.window_bytes == 32 * 1024

    def test_beats_8b_line_tag_overhead(self):
        from repro.cache.fine8b import EightByteLineCache

        piccolo = PiccoloCache(4 * 1024 * 1024, ways=8, fg_tag_bits=8)
        fine = EightByteLineCache(4 * 1024 * 1024, ways=8)
        # 2.05 % + 12.5 % vs 45.3 %
        assert piccolo.tag_overhead_bits < 0.4 * fine.tag_overhead_bits


class TestBasicSemantics:
    def test_miss_then_hit(self):
        cache = make_cache()
        first = cache.access(0x1000, False)
        assert not first.hit
        assert first.fill_bytes == 8
        assert cache.access(0x1000, False).hit

    def test_adjacent_sectors_share_line(self):
        cache = make_cache()
        cache.access(0x1000, False)
        cache.access(0x1008, False)  # next fg-offset, same line
        assert cache.stats.misses == 2
        assert cache.access(0x1008, False).hit
        assert cache.access(0x1000, False).hit

    def test_fg_tag_aliases_conflict(self):
        """Words 128 B apart share a sector slot (same fg-offset,
        different fg-tag) once the tag's way quota is exhausted."""
        cache = make_cache(ways=2)
        cache.set_way_quota(2)
        base = 0x0
        conflicting = [base + i * 128 for i in range(4)]
        for addr in conflicting:
            cache.access(addr, False)
        # Only 2 ways exist for the tag: early aliases were displaced.
        hits = sum(cache.access(a, False).hit for a in conflicting)
        assert hits < 4

    def test_dirty_sector_writeback_address(self):
        cache = make_cache(ways=1)
        cache.set_way_quota(1)
        addr_a = 0x0
        addr_b = 0x0 + 128  # same slot, different fg-tag
        cache.access(addr_a, True)  # dirty
        result = cache.access(addr_b, False)
        assert not result.hit
        assert result.writebacks == [(addr_a, 8)]

    def test_clean_sector_no_writeback(self):
        cache = make_cache(ways=1)
        cache.set_way_quota(1)
        cache.access(0x0, False)  # clean
        result = cache.access(0x0 + 128, False)
        assert result.writebacks is None

    def test_flush_returns_dirty_sectors(self):
        cache = make_cache()
        cache.access(0x40, True)
        cache.access(0x48, True)
        cache.access(0x50, False)
        writebacks = cache.flush()
        assert sorted(wb[0] for wb in writebacks) == [0x40, 0x48]
        assert all(nbytes == 8 for _, nbytes in writebacks)

    def test_write_marks_only_its_sector(self):
        cache = make_cache()
        cache.access(0x100, True)
        cache.access(0x108, False)
        writebacks = cache.flush()
        assert [wb[0] for wb in writebacks] == [0x100]


class TestWayPartitioning:
    def test_quota_forces_line_eviction_of_other_tag(self):
        """Below quota, a fg-tag miss claims a whole new line instead of
        replacing a sector (Sec. V-B)."""
        cache = make_cache(ways=4)
        cache.set_way_quota(2)
        window = cache.window_bytes
        set_span = cache.num_sets * window
        tag_a0 = 0x0
        tag_a1 = 0x0 + 128       # same tag A, conflicting fg-tag
        cache.access(tag_a0, False)
        cache.access(tag_a1, False)
        # Tag A now holds 2 lines (its quota); a third alias replaces a
        # sector rather than claiming a third way.
        cache.access(0x0 + 256, False)
        lines_with_tag_a = sum(
            1 for line in cache._sets[0] if line.tag == 0
        )
        assert lines_with_tag_a == 2

    def test_equal_partition_quota(self):
        cache = make_cache(ways=8)
        cache.set_way_quota(4)
        assert cache.way_quota == 2

    def test_quota_validation(self):
        cache = make_cache()
        with pytest.raises(ValueError):
            cache.set_way_quota(0)

    def test_quota_minimum_one(self):
        cache = make_cache(ways=4)
        cache.set_way_quota(100)
        assert cache.way_quota == 1


class TestPolicies:
    def test_rrip_policy_runs(self):
        cache = make_cache(policy="rrip")
        for i in range(200):
            cache.access(i * 8, i % 3 == 0)
        assert cache.stats.accesses == 200

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            make_cache(policy="belady")

    def test_lru_prefers_recent(self):
        cache = make_cache(ways=2)
        cache.set_way_quota(2)  # 2 tags/set -> quota 1 way per tag
        a, b = 0x0, 0x0 + 128  # alias pair in one slot
        cache.access(a, False)
        cache.access(a, False)
        cache.access(b, False)  # displaces a's sector
        assert not cache.access(a, False).hit


class TestStatsConsistency:
    def test_requested_bytes_tracks_accesses(self):
        cache = make_cache()
        for i in range(50):
            cache.access(i * 8, False)
        assert cache.stats.requested_bytes == 400

    def test_fill_bytes_equals_8_per_miss(self):
        cache = make_cache()
        for i in range(50):
            cache.access(i * 64, False)
        assert cache.stats.fill_bytes == cache.stats.misses * 8

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            PiccoloCache(1000, ways=3)  # not a multiple
        with pytest.raises(ValueError):
            PiccoloCache(4096, fg_tag_bits=0)
