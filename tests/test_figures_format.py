"""Row-table rendering used by the benches and the CLI."""

from repro.experiments.figures import format_rows, print_rows


class TestFormatRows:
    def test_title_and_header(self):
        text = format_rows("Fig. X", [{"a": 1.0, "b": "hi"}])
        lines = text.splitlines()
        assert lines[1] == "=== Fig. X ==="  # after the leading blank
        assert "a" in lines[2] and "b" in lines[2]

    def test_floats_fixed_point(self):
        text = format_rows("t", [{"v": 1.23456}])
        assert "1.235" in text

    def test_non_floats_verbatim(self):
        text = format_rows("t", [{"system": "GraphDyns (Cache)"}])
        assert "GraphDyns (Cache)" in text

    def test_empty_rows(self):
        assert "(no rows)" in format_rows("t", [])

    def test_missing_keys_blank(self):
        text = format_rows("t", [{"a": 1.0, "b": 2.0}, {"a": 3.0}])
        assert text.splitlines()[-1].strip().startswith("3.000")

    def test_print_rows_goes_to_stdout(self, capsys):
        print_rows("t", [{"a": 1.0}])
        assert "=== t ===" in capsys.readouterr().out

    def test_one_line_per_row(self):
        rows = [{"x": float(i)} for i in range(5)]
        text = format_rows("t", rows)
        assert len(text.splitlines()) == 2 + 1 + 5  # blank+title+header+rows
