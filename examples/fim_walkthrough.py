#!/usr/bin/env python3
"""Walkthrough of the Piccolo-FIM mechanics (Sec. IV and VI).

Stages data into a functional DRAM bank, then performs a gather and a
scatter using *only standard DDR4 commands* via the virtual-row
translation, validating every command against the JEDEC timing checker --
the offline equivalent of the paper's FPGA emulation.

Run:  python examples/fim_walkthrough.py
"""

import numpy as np

from repro.core.fim import FimBank
from repro.core.fim_commands import (
    DDRCommand,
    VirtualRowController,
    VirtualRowMap,
    gather_sequence,
    scatter_sequence,
)
from repro.dram.spec import DEVICES
from repro.validate.protocol import DDR4ProtocolChecker


def main() -> None:
    spec = DEVICES["DDR4_2400_x16"]
    print(f"device: {spec.name}, row = {spec.row_bytes} B "
          f"({spec.row_words} words)")
    print(f"window check: 8 x tCCD_L = {8 * spec.tCCD:.2f} ns vs "
          f"tWR + tRP + tRCD = {spec.fim_internal_window:.2f} ns -> "
          f"{'fits' if spec.fim_window_ok() else 'DOES NOT FIT'}")

    # A bank whose row 2 holds the squares of the word index.
    bank = FimBank(spec, rows=4)
    bank.cells[2] = (np.arange(spec.row_words, dtype=np.uint64) ** 2)
    vmap = VirtualRowMap(physical_rows=4)
    controller = VirtualRowController(bank, vmap)
    checker = DDR4ProtocolChecker(spec, strict_ras=False)

    # Open the target row (plus the virtual row, from the host's view).
    for cmd in (DDRCommand(-200.0, "ACT", 0, row=2),):
        controller.handle(cmd)
    checker.check(DDRCommand(-200.0, "ACT", 0, row=vmap.row_y))

    offsets = [3, 17, 255, 1000, 512, 64, 9, 30]
    print(f"\ngather offsets {offsets} from row 2:")
    cmds = gather_sequence(spec, vmap, 0, offsets, start_ns=0.0)
    data = None
    for cmd in cmds:
        checker.check(cmd)  # must be standard + timing-legal
        out = controller.handle(cmd)
        payload = "" if cmd.data is None else f" data={cmd.data}"
        print(f"  t={cmd.time_ns:7.2f} ns  {cmd.kind:3s} "
              f"bank {cmd.bank} row {cmd.row}{payload}")
        if out is not None:
            data = out
    print(f"  -> gathered {data}")
    assert data == [o * o for o in offsets], "gather must be bit-exact"

    print("\nscatter {7, 8, 9} to offsets {40, 41, 42}:")
    # The gather left virtual row z "open" from the controller's view, so
    # the scatter stages its buffers through row z (Sec. VI: the two
    # virtual rows are interchangeable).
    cmds = scatter_sequence(
        spec, vmap, 0, [40, 41, 42], [7, 8, 9], start_ns=500.0,
        use_row_y=False,
    )
    for cmd in cmds:
        checker.check(cmd)
        controller.handle(cmd)
        print(f"  t={cmd.time_ns:7.2f} ns  {cmd.kind:3s}")
    assert [bank.read_word(o) for o in (40, 41, 42)] == [7, 8, 9]
    print(f"\nall {checker.commands_checked} commands were standard DDR4 "
          f"and timing-legal; data movement was bit-exact.")


if __name__ == "__main__":
    main()
