#!/usr/bin/env python3
"""Design-space exploration for a memory-system architect.

Sweeps the knobs the paper's sensitivity studies cover -- tile width
(Fig. 17), memory type (Fig. 15) and channel/rank topology (Fig. 16) --
and prints where Piccolo's sweet spots sit relative to the baseline.

Run:  python examples/design_space_exploration.py
"""

from repro.accel.systems import make_system
from repro.accel.tuner import tune_tile_scale
from repro.dram.spec import DEVICES, DRAMConfig
from repro.experiments.config import DEFAULT_SCALE
from repro.experiments.runner import run_system
from repro.graph.datasets import load_dataset


def sweep_tiles(dataset: str = "SW") -> None:
    graph = load_dataset(dataset)
    print(f"tile-width sweep on {dataset} (PageRank), cycles normalised "
          f"to each system's perfect tiling:")
    print(f"{'scale':>8s}{'GraphDyns':>14s}{'Piccolo':>14s}")
    results = {}
    for system, kwargs in (
        ("GraphDyns (Cache)", {}),
        ("Piccolo", {"mshr_entries": DEFAULT_SCALE.mshr_entries,
                     "fg_tag_bits": DEFAULT_SCALE.fg_tag_bits}),
    ):
        def factory(scale, _system=system, _kw=kwargs):
            return make_system(
                _system, onchip_bytes=DEFAULT_SCALE.piccolo_cache_bytes,
                tile_scale=scale, **_kw,
            )

        best, timings = tune_tile_scale(
            factory, graph, "PR", scales=(1, 2, 4, 8, 16)
        )
        results[system] = (best, timings)
    for scale in (1, 2, 4, 8, 16):
        row = [f"{scale:>8d}"]
        for system in ("GraphDyns (Cache)", "Piccolo"):
            _, timings = results[system]
            row.append(f"{timings[scale] / timings[1]:>14.2f}")
        print("".join(row))
    for system in ("GraphDyns (Cache)", "Piccolo"):
        print(f"  best scale for {system}: x{results[system][0]}")


def sweep_memory_types(dataset: str = "SW") -> None:
    print(f"\nmemory-type sweep on {dataset} (PageRank), Piccolo speedup:")
    for label, device in (
        ("DDR4 x16", "DDR4_2400_x16"), ("DDR4 x4", "DDR4_2400_x4"),
        ("LPDDR4", "LPDDR4_3200"), ("GDDR5", "GDDR5_6000"),
        ("HBM2", "HBM2_2000"),
    ):
        config = DRAMConfig(spec=DEVICES[device], channels=1, ranks=4)
        base = run_system("GraphDyns (Cache)", "PR", dataset,
                          dram_config=config)
        picc = run_system("Piccolo", "PR", dataset, dram_config=config)
        print(f"  {label:10s} {base.total_ns / picc.total_ns:5.2f}x "
              f"(peak {config.peak_bandwidth_gbps:5.1f} GB/s, "
              f"burst {config.spec.burst_bytes} B)")


def sweep_channels_ranks(dataset: str = "SW") -> None:
    print(f"\nchannel/rank sweep on {dataset} (PageRank), cycles in 1e6:")
    print(f"{'config':>10s}{'GraphDyns':>14s}{'Piccolo':>14s}")
    for channels in (1, 2):
        for ranks in (1, 2, 4):
            config = DRAMConfig(
                spec=DEVICES["DDR4_2400_x16"], channels=channels, ranks=ranks
            )
            base = run_system("GraphDyns (Cache)", "PR", dataset,
                              dram_config=config)
            picc = run_system("Piccolo", "PR", dataset, dram_config=config)
            print(f"  ch{channels} ra{ranks:>2d} {base.cycles / 1e6:>13.2f} "
                  f"{picc.cycles / 1e6:>13.2f}")


def main() -> None:
    sweep_tiles()
    sweep_memory_types()
    sweep_channels_ranks()


if __name__ == "__main__":
    main()
