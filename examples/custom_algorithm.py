#!/usr/bin/env python3
"""Plugging a new algorithm into the public API.

The paper evaluates five workloads, but the vertex-centric model of
Algorithm 1 is a general interface: any computation expressed as
``process`` (per edge), a commutative ``reduce`` monoid, and ``apply``
(per vertex) runs on every simulated system unchanged.

This example adds *single-source reachability-with-hop-budget* (a
bounded BFS variant none of the built-ins provide): a vertex's
property is the largest remaining hop budget with which it can be
reached; vertices reached with budget zero stop propagating.  The
custom spec then runs on both the baseline and Piccolo to show the
full toolchain -- functional results plus timing -- working on
user-defined operators.

Run:  python examples/custom_algorithm.py
"""

import numpy as np

from repro.accel.systems import make_system
from repro.algorithms.vcm import AlgorithmSpec, VertexCentricEngine
from repro.graph.datasets import load_dataset


def hop_budget_spec(graph, source: int = 0, budget: int = 4) -> AlgorithmSpec:
    """Reachability within ``budget`` hops of ``source``.

    ``Vprop[v]`` = the best remaining budget when reaching ``v``
    (-inf when unreached).  Each traversed edge spends one hop;
    ``reduce``/``apply`` keep the maximum remaining budget, and only
    vertices with budget left keep propagating (their property changes
    activate them, and process contributes -inf once exhausted).
    """
    n = graph.num_vertices

    def process(weights, src_prop, src_ids):
        remaining = src_prop - 1.0
        return np.where(remaining >= 0.0, remaining, -np.inf)

    def apply(prop_old, vtemp, vertex_ids):
        return np.maximum(prop_old, vtemp)

    init = np.full(n, -np.inf)
    init[source] = float(budget)
    return AlgorithmSpec(
        name=f"HOP{budget}",
        graph=graph,
        process=process,
        reduce_name="max",
        apply=apply,
        init_prop=init,
        init_active=np.asarray([source], dtype=np.int64),
    )


def main() -> None:
    graph = load_dataset("SW")
    spec = hop_budget_spec(graph, source=0, budget=4)

    # Functional check: the engine computes the exact fixpoint.
    engine = VertexCentricEngine(spec, tile_width=graph.num_vertices)
    for _ in engine.run_iter(max_iterations=16):
        pass
    reached = np.flatnonzero(engine.prop > -np.inf)
    print(f"{graph.name}: {reached.size} vertices within 4 hops of v0 "
          f"(of {graph.num_vertices})")

    # The same spec drives the timing models through the registry-free
    # path: systems accept a prebuilt spec via the algorithm name used
    # by make_algorithm, so here we reuse the run() plumbing manually.
    for system_name in ("GraphDyns (Cache)", "Piccolo"):
        system = make_system(system_name)
        result = system.run(graph, "BFS", max_iterations=16)
        print(f"{system_name:>18}: BFS reference run "
              f"{result.total_ns / 1e3:9.1f} us, "
              f"{result.dram.read_bursts + result.dram.write_bursts:8d} "
              f"bursts")

    # Hop-budget reachability through the timing path, by temporary
    # registration (the documented extension point).
    from repro import algorithms

    algorithms.ALGORITHMS["HOP4"] = (
        lambda g, **kw: hop_budget_spec(g, source=0, budget=4)
    )
    try:
        for system_name in ("GraphDyns (Cache)", "Piccolo"):
            system = make_system(system_name)
            result = system.run(graph, "HOP4", max_iterations=16)
            print(f"{system_name:>18}: HOP4 "
                  f"{result.total_ns / 1e3:9.1f} us, "
                  f"{result.iterations} iterations")
    finally:
        del algorithms.ALGORITHMS["HOP4"]


if __name__ == "__main__":
    main()
