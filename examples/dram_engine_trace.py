#!/usr/bin/env python3
"""Command-level walkthrough of one Piccolo-FIM gather.

Runs the cycle-accurate DRAM engine on a tiny workload -- an in-row
gather plus two reads of the same row -- and prints the resulting DDR
command trace with annotations, demonstrating:

- the Sec. VI virtual-row sequence (WR offsets, PRE, ACT, RD data)
  built from standard commands only,
- the ``tWR + tRP + tRCD`` window hiding the 8 x tCCD_L in-bank
  operation,
- the physically open row surviving the virtual PRE/ACT pair (the
  trailing read is a row hit -- no second real ACT),
- both protocol checkers accepting the trace.

Then it reproduces the Fig. 9 single-row speedup series on the engine.

Run:  python examples/dram_engine_trace.py
"""

from repro.dram.engine import (
    DRAMEngine,
    Request,
    RequestType,
    check_engine_result,
)
from repro.dram.engine.xval import microbench_speedups
from repro.dram.spec import default_config


def main() -> None:
    config = default_config()
    engine = DRAMEngine(config, refresh_enabled=False)
    timing = engine.timing
    window = timing.tWR + timing.tRP + timing.tRCD
    print(f"device: {timing.name}  (tCK = {timing.tck_ns:.3f} ns)")
    print(f"virtual-row window tWR+tRP+tRCD = {window} nCK "
          f"({timing.ns(window):.2f} ns) hides "
          f"8 x tCCD_L = {8 * timing.tCCD_L} nCK "
          f"({timing.ns(8 * timing.tCCD_L):.2f} ns)\n")

    requests = [
        Request(RequestType.READ, rank=0, bank=0, row=5, column=0,
                req_id=0),
        Request(RequestType.GATHER, rank=0, bank=0, row=5,
                offsets=(3, 97, 511, 640, 711, 800, 901, 1000), req_id=1),
        Request(RequestType.READ, rank=0, bank=0, row=5, column=9,
                req_id=2),
    ]
    result = engine.run(requests)

    print(f"{'cycle':>6}  {'ns':>8}  {'cmd':<4} {'virt':<5} "
          f"{'row':>5} {'col':>4}  note")
    notes = {
        ("ACT", False): "open target row 5 (real activation)",
        ("RD", False): "ordinary row-hit read",
        ("WR", True): "offsets into the offset buffer (data bus)",
        ("PRE", True): "virtual precharge -> translated to no-op",
        ("ACT", True): "virtual activate -> no-op, row 5 stays open",
        ("RD", True): "gathered words out of the data buffer",
    }
    for cmd in result.traces[0]:
        note = notes.get((cmd.kind.value, cmd.virtual), "")
        print(f"{cmd.cycle:>6}  {result.timing.ns(cmd.cycle):>8.2f}  "
              f"{cmd.kind.value:<4} {str(cmd.virtual):<5} "
              f"{cmd.row if cmd.row is not None else '-':>5} "
              f"{cmd.column if cmd.column is not None else '-':>4}  "
              f"{note}")

    real_acts = sum(
        1 for cmd in result.traces[0]
        if cmd.kind.value == "ACT" and not cmd.virtual
    )
    print(f"\nreal activations: {real_acts} "
          f"(the post-gather read row-hits the surviving row)")
    checked = check_engine_result(result)
    print(f"protocol check: {checked} commands clean\n")

    print("Fig. 9 single-row series on the engine "
          "(conventional vs FIM, per stride):")
    for row in microbench_speedups(config, 1 << 18, single_row=True):
        print(f"  stride {row['stride']:>2}: "
              f"conv {row['conv_ns'] / 1e3:8.1f} us   "
              f"fim {row['fim_ns'] / 1e3:8.1f} us   "
              f"speedup {row['speedup']:.2f}x")


if __name__ == "__main__":
    main()
