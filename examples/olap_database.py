#!/usr/bin/env python3
"""In-memory database scans on Piccolo (Sec. VIII-A / Fig. 19b).

Builds a row-store table, answers four OLAP-style select queries
functionally, and compares the memory time of the column scans on
conventional DDR4 vs Piccolo-FIM in-row gathers.

Run:  python examples/olap_database.py
"""

import numpy as np

from repro.olap.queries import OLAP_QUERIES, run_query
from repro.olap.table import Table


def main() -> None:
    table = Table(num_rows=1 << 15, num_fields=16, seed=42)
    print(f"table: {table.num_rows:,} rows x {table.num_fields} fields "
          f"({table.row_bytes} B rows, "
          f"{table.num_rows * table.row_bytes / 1e6:.1f} MB)")

    # Functional query: which rows match?
    threshold = int(np.quantile(table.data[:, 0], 0.10))
    selected = table.select(0, lambda col: col <= threshold)
    payload = table.data[selected, 1]
    print(f"\nSELECT c1 WHERE c0 <= {threshold}: {selected.size:,} rows, "
          f"sum(c1) = {payload.sum():,}")

    # Memory-system comparison per query shape.
    print(f"\n{'query':>6s}{'rows':>10s}{'stride':>8s}{'select.':>9s}"
          f"{'conventional':>14s}{'piccolo':>10s}{'speedup':>9s}")
    for query in OLAP_QUERIES:
        out = run_query(query, num_rows=1 << 15)
        print(f"{query.name:>6s}{1 << 15:>10,}{query.num_fields * 8:>7d}B"
              f"{query.selectivity:>9.0%}"
              f"{out['conventional_ns'] / 1e3:>12.1f}us"
              f"{out['piccolo_ns'] / 1e3:>8.1f}us"
              f"{out['speedup']:>8.2f}x")
    print("\npaper reports ~3.8x for OLAP-style queries (Fig. 19b)")


if __name__ == "__main__":
    main()
