#!/usr/bin/env python3
"""Quickstart: run PageRank through two accelerator systems.

Loads the Sina Weibo stand-in dataset, runs PageRank functionally, then
simulates the paper's reference baseline (GraphDyns with a conventional
cache) and Piccolo on the same workload, reporting speedup, traffic and
energy -- the essence of Fig. 10/12/14.

Run:  python examples/quickstart.py
"""

from repro.algorithms import make_algorithm
from repro.algorithms.vcm import VertexCentricEngine
from repro.energy.accel_energy import system_energy
from repro.experiments.config import DEFAULT_SCALE
from repro.experiments.runner import run_system
from repro.graph.datasets import load_dataset


def main() -> None:
    graph = load_dataset("SW")
    print(f"dataset: {graph.name}  |V|={graph.num_vertices:,}  "
          f"|E|={graph.num_edges:,}  avg degree={graph.average_degree:.1f}")

    # 1. Functional result: top-ranked vertices.
    engine = VertexCentricEngine(make_algorithm("PR", graph))
    engine.run(max_iterations=20)
    top = engine.prop.argsort()[-5:][::-1]
    print("\ntop-5 PageRank vertices:")
    for v in top:
        print(f"  vertex {v:6d}  rank {engine.prop[v]:.6f}")

    # 2. Architecture comparison: baseline vs Piccolo.
    base = run_system("GraphDyns (Cache)", "PR", "SW")
    picc = run_system("Piccolo", "PR", "SW")
    dram_config = DEFAULT_SCALE.dram()
    e_base = system_energy(base, dram_config)
    e_picc = system_energy(picc, dram_config, sequential_way_search=True)

    print(f"\n{'':24s}{'GraphDyns (Cache)':>20s}{'Piccolo':>14s}")
    print(f"{'cycles':24s}{base.cycles:>20,.0f}{picc.cycles:>14,.0f}")
    print(f"{'off-chip transactions':24s}"
          f"{base.dram.read_bursts + base.dram.write_bursts:>20,}"
          f"{picc.dram.read_bursts + picc.dram.write_bursts:>14,}")
    print(f"{'cache hit rate':24s}{base.cache_hit_rate:>20.1%}"
          f"{picc.cache_hit_rate:>14.1%}")
    print(f"{'useful traffic':24s}{base.useful_fraction:>20.1%}"
          f"{picc.useful_fraction:>14.1%}")
    print(f"{'energy (uJ)':24s}{e_base.total / 1e3:>20,.1f}"
          f"{e_picc.total / 1e3:>14,.1f}")
    print(f"\nPiccolo speedup: {base.total_ns / picc.total_ns:.2f}x "
          f"(paper GM: 1.62x)")
    print(f"energy saving:   {1 - e_picc.total / e_base.total:.1%} "
          f"(paper GM: 37.3 %)")


if __name__ == "__main__":
    main()
