#!/usr/bin/env python3
"""Social-network analysis: the paper's motivating workload class.

Runs the frontier/active-vertex algorithms (BFS, CC, SSSP, SSWP) on the
Twitter-like community graph and compares all six accelerator systems --
the active-vertex algorithms are exactly where the paper reports
Piccolo's largest wins (Sec. VII-C).

Run:  python examples/social_network_analysis.py
"""

import numpy as np

from repro.algorithms import make_algorithm
from repro.algorithms.vcm import VertexCentricEngine
from repro.experiments.runner import run_system
from repro.graph.datasets import load_dataset

SYSTEMS = (
    "Graphicionado", "GraphDyns (SPM)", "GraphDyns (Cache)",
    "NMP", "PIM", "Piccolo",
)


def analyse(graph) -> None:
    """Functional analysis: reachability, components, distances."""
    bfs = VertexCentricEngine(make_algorithm("BFS", graph, source=0))
    bfs.run(64)
    reached = np.isfinite(bfs.prop).sum()
    print(f"BFS from vertex 0 reaches {reached:,} of "
          f"{graph.num_vertices:,} vertices "
          f"(max depth {np.nanmax(np.where(np.isfinite(bfs.prop), bfs.prop, np.nan)):.0f})")

    cc = VertexCentricEngine(make_algorithm("CC", graph))
    cc.run(64)
    n_components = np.unique(cc.prop).size
    print(f"label propagation converged to {n_components:,} labels")

    sssp = VertexCentricEngine(make_algorithm("SSSP", graph, source=0))
    sssp.run(64)
    finite = sssp.prop[np.isfinite(sssp.prop)]
    print(f"SSSP: mean distance {finite.mean():.1f}, "
          f"max {finite.max():.0f} (weights 0..255)")


def compare_systems(dataset: str) -> None:
    print(f"\nspeedup over GraphDyns (Cache) on {dataset} "
          f"(active-vertex algorithms):")
    print(f"{'system':20s}" + "".join(f"{a:>8s}" for a in
                                      ("BFS", "CC", "SSSP", "SSWP")))
    base = {
        algo: run_system("GraphDyns (Cache)", algo, dataset)
        for algo in ("BFS", "CC", "SSSP", "SSWP")
    }
    for system in SYSTEMS:
        cells = []
        for algo in ("BFS", "CC", "SSSP", "SSWP"):
            result = (
                base[algo] if system == "GraphDyns (Cache)"
                else run_system(system, algo, dataset)
            )
            cells.append(base[algo].total_ns / result.total_ns)
        print(f"{system:20s}" + "".join(f"{c:>8.2f}" for c in cells))


def main() -> None:
    graph = load_dataset("TW")
    print(f"dataset: {graph.name} (Twitter-follower stand-in)  "
          f"|V|={graph.num_vertices:,} |E|={graph.num_edges:,}")
    analyse(graph)
    compare_systems("TW")


if __name__ == "__main__":
    main()
