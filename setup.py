"""Setuptools shim for legacy editable installs.

The sandboxed environment has setuptools but no ``wheel`` package, so
PEP 517 editable installs fail with ``invalid command 'bdist_wheel'``.
Install with::

    pip install -e . --no-build-isolation --no-use-pep517

All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
