#!/usr/bin/env python
"""Docs consistency gate: internal links resolve, CLI commands exist.

Documentation rots in two characteristic ways in this repo: a markdown
file links to a document that was renamed or never written (the
``DESIGN.md`` ghost survived several PRs), and a quickstart names a
``python -m repro <command>`` that the CLI no longer (or does not yet)
ship.  Both failure modes are mechanical to detect, so CI does:

- every relative markdown link ``[text](target)`` in the checked files
  must point at a file that exists (anchors are stripped; ``http(s)``,
  ``mailto`` and bare-anchor links are skipped);
- every ``python -m repro <word>`` mentioned in the checked files must
  be a registered subcommand of :func:`repro.cli.build_parser`.

Run it locally with::

    PYTHONPATH=src python tools/check_docs.py

Exit status 0 means clean; 1 prints one line per problem.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

#: files checked by default, relative to the repo root
DEFAULT_DOCS = (
    "README.md",
    "PERFORMANCE.md",
    "ROADMAP.md",
    "CHANGES.md",
    "docs/ARCHITECTURE.md",
    "docs/CACHE_ENGINES.md",
    "docs/INVARIANTS.md",
    "docs/SERVICE.md",
    "docs/EXPERIMENTS.md",
)

#: ``[text](target)`` -- markdown inline links (images share the syntax)
_LINK_RE = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)\)")

#: ``python -m repro <subcommand>`` mentions in prose or code fences
_CLI_RE = re.compile(r"python\s+-m\s+repro\s+([a-z][a-z0-9-]*)")

#: fenced code blocks -- links inside them are illustrative, not real
_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def _cli_subcommands() -> set[str]:
    """The registered ``repro`` subcommand names, straight from argparse."""
    from repro.cli import build_parser

    commands: set[str] = set()
    for action in build_parser()._actions:
        if isinstance(action, argparse._SubParsersAction):
            commands.update(action.choices)
    return commands


def _iter_links(text: str):
    """Yield link targets outside fenced code blocks."""
    prose = _FENCE_RE.sub("", text)
    for match in _LINK_RE.finditer(prose):
        yield match.group(1)


def check_files(paths: list[Path], repo_root: Path) -> list[str]:
    """Return a list of human-readable problems (empty when clean)."""
    problems: list[str] = []
    commands = _cli_subcommands()
    for path in paths:
        if not path.exists():
            problems.append(f"{path}: checked file does not exist")
            continue
        text = path.read_text()
        for target in _iter_links(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                rel = path.relative_to(repo_root)
                problems.append(f"{rel}: broken link -> {target}")
        for match in _CLI_RE.finditer(text):
            command = match.group(1)
            if command not in commands:
                rel = path.relative_to(repo_root)
                problems.append(
                    f"{rel}: documents 'python -m repro {command}' but the "
                    f"CLI has no such subcommand (has: {sorted(commands)})"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files", nargs="*",
        help="markdown files to check (default: the repo's doc set)",
    )
    args = parser.parse_args(argv)
    repo_root = Path(__file__).resolve().parent.parent
    if args.files:
        paths = [Path(name).resolve() for name in args.files]
    else:
        paths = [repo_root / name for name in DEFAULT_DOCS]
    problems = check_files(paths, repo_root)
    for problem in problems:
        print(problem)
    if problems:
        print(f"docs check: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(f"docs check: {len(paths)} file(s) clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
