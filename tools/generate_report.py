#!/usr/bin/env python3
"""Summarise a benchmark run into a compact reproduction report.

Parses the ``=== Fig. ... ===`` tables that the benches print (see
``benchmarks/conftest.py``) from a ``bench_output.txt`` produced by::

    pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

and emits a short markdown summary of the headline numbers next to the
paper's values.

Usage:  python tools/generate_report.py [bench_output.txt]
"""

from __future__ import annotations

import math
import re
import sys

PAPER_HEADLINES = {
    "fig10_gm": ("Fig. 10 GM speedup (Piccolo)", 1.62),
    "fig10_max": ("Fig. 10 max speedup (Piccolo)", 3.28),
    "fig12_reduction": ("Fig. 12 GM transaction reduction", 0.432),
    "fig14_saving": ("Fig. 14 GM energy saving", 0.373),
    "fig19b_mean": ("Fig. 19b mean OLAP speedup", 3.8),
    "fig20b_slowdown": ("Fig. 20b no-prefetch GM slowdown", 0.228),
}


def _parse_row(header: list[str], cells: list[str]) -> dict | None:
    """Map cells onto the header, merging multi-word text cells.

    Values like ``GraphDyns (Cache)`` split into several cells; the
    numeric columns sit at the end of the line, so overflow cells are
    folded into the last textual column.
    """
    if len(cells) < len(header):
        return None
    overflow = len(cells) - len(header)
    # Count trailing numeric cells; the overflow belongs to the last
    # non-numeric column before them.
    tail = 0
    for cell in reversed(cells):
        try:
            float(cell)
        except ValueError:
            break
        tail += 1
    text_cols = len(header) - tail
    if text_cols < 1 and overflow:
        return None
    merged = cells[: text_cols - 1]
    merged.append(" ".join(cells[text_cols - 1: text_cols + overflow]))
    merged.extend(cells[text_cols + overflow:])
    if len(merged) != len(header):
        return None
    row = {}
    for key, cell in zip(header, merged):
        try:
            row[key] = float(cell)
        except ValueError:
            row[key] = cell
    return row


def parse_tables(text: str) -> dict[str, list[dict]]:
    """Extract each printed table as a list of row dicts."""
    tables: dict[str, list[dict]] = {}
    blocks = re.split(r"^=== (.+) ===$", text, flags=re.MULTILINE)
    for i in range(1, len(blocks) - 1, 2):
        title, body = blocks[i], blocks[i + 1]
        lines = [ln for ln in body.splitlines() if ln.strip()]
        if not lines:
            continue
        header = lines[0].split()
        rows = []
        for line in lines[1:]:
            row = _parse_row(header, line.split())
            if row is None:
                break
            rows.append(row)
        tables[title] = rows
    return tables


def headline_numbers(tables: dict[str, list[dict]], text: str) -> dict[str, float]:
    out: dict[str, float] = {}
    fig10 = next(
        (rows for title, rows in tables.items() if title.startswith("Fig. 10")),
        None,
    )
    if fig10:
        gm = [r for r in fig10 if r.get("algorithm") == "GM"]
        piccolo_gm = [r for r in gm if r.get("system") == "Piccolo"]
        if piccolo_gm:
            out["fig10_gm"] = piccolo_gm[0]["speedup"]
        cells = [
            r["speedup"] for r in fig10
            if r.get("system") == "Piccolo" and r.get("algorithm") != "GM"
        ]
        if cells:
            out["fig10_max"] = max(cells)
    def _gm(values: list[float]) -> float | None:
        values = [v for v in values if v and v > 0]
        if not values:
            return None
        return math.exp(sum(math.log(v) for v in values) / len(values))

    def _table(prefix: str) -> list[dict]:
        return next((rows for title, rows in tables.items()
                     if title.startswith(prefix)), [])

    gm12 = _gm([r["total_norm"] for r in _table("Fig. 12")
                if r.get("system") == "Piccolo" and "total_norm" in r])
    if gm12 is not None:
        out["fig12_reduction"] = 1.0 - gm12
    gm14 = _gm([r["total_norm"] for r in _table("Fig. 14")
                if r.get("system") == "Piccolo" and "total_norm" in r])
    if gm14 is not None:
        out["fig14_saving"] = 1.0 - gm14
    olap = [r["speedup"] for r in _table("Fig. 19b") if "speedup" in r]
    if olap:
        out["fig19b_mean"] = sum(olap) / len(olap)
    gm20b = _gm([r["norm_perf_without"] for r in _table("Fig. 20b")
                 if "norm_perf_without" in r])
    if gm20b is not None:
        out["fig20b_slowdown"] = 1.0 - gm20b

    patterns = {
        "fig12_reduction": r"GM transaction reduction:\s+([\d.]+)\s*%",
        "fig14_saving": r"GM energy saving:\s+([\d.]+)\s*%",
        "fig19b_mean": r"mean OLAP speedup:\s+([\d.]+)x",
        "fig20b_slowdown": r"slowdown without prefetching:\s+([\d.]+)\s*%",
    }
    for key, pattern in patterns.items():
        if key in out:
            continue
        match = re.search(pattern, text)
        if match:
            value = float(match.group(1))
            out[key] = value / 100.0 if "%" in pattern else value
    return out


def main(path: str = "bench_output.txt") -> int:
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    tables = parse_tables(text)
    numbers = headline_numbers(tables, text)
    print("# Reproduction report\n")
    print(f"parsed {len(tables)} figure tables from {path}\n")
    print(f"| headline | paper | measured |")
    print(f"|---|---|---|")
    for key, (label, paper_value) in PAPER_HEADLINES.items():
        measured = numbers.get(key)
        shown = f"{measured:.3g}" if measured is not None else "(missing)"
        print(f"| {label} | {paper_value:g} | {shown} |")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"))
