#!/usr/bin/env python
"""Wall-clock regression harness for the memory-path hot loop.

Times representative Fig. 10 / Fig. 11 cells (the random-access
cache/MSHR path dominates all of them) and appends a point to the
``BENCH_hotpath.json`` trajectory at the repo root, so every PR can
*show* its speedup or regression against the recorded history instead
of asserting it.  The first trajectory point is the seed
implementation, measured from a pristine checkout; per-cell and per-row
(system) speedups are reported against it.

Usage::

    PYTHONPATH=src python tools/perf_report.py                # full grid
    PYTHONPATH=src python tools/perf_report.py --quick        # CI smoke
    PYTHONPATH=src python tools/perf_report.py --scalar-baseline
    PYTHONPATH=src python tools/perf_report.py --no-write

``--scalar-baseline`` times the seed-identical scalar fallback loop
(``repro.core.memory_path.BATCHED_DEFAULT = False``) instead of the
batched engine.  Per-cell baselines come from the *earliest*
scalar-mode trajectory point that timed the cell, so cells added after
the seed point (the Fig. 11 variant rows) get their own recorded
scalar baseline: record one with
``--scalar-baseline --only fig11/ --label scalar-fig11-variants``
before the first batched point that includes them.  A later scalar run
over already-baselined cells is recorded but does *not* replace their
baseline (the tool warns); to re-derive baselines on new hardware
without checking out the seed commit, record a full
``--scalar-baseline`` run into a fresh trajectory file
(``--json BENCH_hotpath.<host>.json``).

``--only PREFIX`` restricts the run to cells whose name starts with
``PREFIX`` (e.g. ``--only fig11/``).

``--engine-xval toy|mid|paper`` times the command-level DRAM engine's
cross-validation grid (``engine-xval/<profile>/<workload>``) instead of
the memory-path cells: each cell runs one workload through
:class:`repro.dram.engine.DRAMEngine` and records the wall-clock of the
engine run plus its engine/analytic duration ratio.  Combined with
``--scalar-baseline`` the same cells run on the scalar oracle
controller (``mode="scalar"``), recording the baseline the batched
points are compared against -- record the scalar point first, then
batched runs report ``speedup_vs_baseline`` automatically.  ``--check``
gates these cells against their latest batched point like any other.
The mid profile is the tier-1 CI smoke; paper runs nightly.

``--profile mid|paper`` times that scale profile's cells
(``scale/<profile>/...``) instead of the toy grid, recording the
mid/paper-scale trajectory: wall-clock per cell plus the process peak
RSS.  These cells have no scalar baseline (the seed could not run them
at all); their value is the recorded trend itself.  ``--chunk-size``
overrides the profile's memory-path tile chunking for the run.

``--ooc mid|paper`` times the out-of-core tile-backing cells
(``ooc/<profile>/<backing>/...``) instead of the memory-path grid: each
cell runs in a *spawned child process* (RSS high-water marks never
reset within a process) with the dataset materialised to a memmap and
the tile arrays built memory- or disk-backed into a fresh store, and
records wall-clock plus the child's peak *anonymous* RSS (file-backed
memmap pages are reclaimable, so they are excluded -- bounded anonymous
memory is the out-of-core claim).  The paper suite includes the
100M+-edge Kronecker cell (``KN28`` at ``scale_shift=4``) that only the
disk backing can run at bounded RSS.  ``--check`` / ``--max-rss-mb``
gate these cells like any other; the per-cell anonymous peaks feed the
RSS budget.  Single-shot timings (one child per cell); ``--repeats`` is
ignored.

``--service`` times the experiment service's cache-hit path
(``service/...`` cells) instead of the memory-path grid: an
in-process stdlib server (``repro.service``) is stood up on an
ephemeral localhost port, one miss is simulated to warm the
content-addressed store, and the recorded cell is the best observed
wall-clock of a repeated identical ``POST /experiments`` -- request
parse, digest canonicalization, cache lookup, and the full
``SystemResult`` record over the wire, no re-simulation.  ``--check``
gates it like any other cell (CI uses a wider ratio: localhost
latency on shared runners jitters more than simulation wall-clock).

``--check`` turns the run into a CI perf-regression *gate*: every timed
cell is compared against its most recent recorded batched-mode
trajectory point, and the process exits non-zero if any cell is slower
than ``--check-ratio`` (default 1.3x) times its recorded time.  No
trajectory point is written; a machine-readable verdict goes to
``--report-out`` (default ``perf_check_report.json`` next to the
trajectory) for upload as a workflow artifact.  Cells with no recorded
reference are reported as ``no-baseline`` and do not fail the gate.

``--max-seconds`` / ``--max-rss-mb`` are absolute budgets (nightly
paper-profile watchdog): exceed either and the run exits non-zero.

``--workers N`` shards the run across worker processes through the
parallel sweep orchestrator (shared memmapped graphs); with
``--resume-from DIR`` cells already checkpointed under ``DIR`` are
loaded instead of re-run (the sharded-nightly mode).  Checkpoint-loaded
cells are *excluded* from the recorded times -- a trajectory point only
ever contains real measurements.

``--parallel`` times the worker-scaling benchmark instead of the cell
grid: one fixed mid-profile Fig. 10 PR sweep (UU/SW x GraphDyns-Cache/
Piccolo/NMP, 6 cells) run end-to-end at each worker count in
``--worker-counts`` (default 1,2,4,8), recorded as trajectory cells
``parallel/mid-fig10pr/w{N}``.  ``--check`` gates these cells like any
other.

Workload notes: BFS runs to frontier exhaustion; PR runs 12 identical
power iterations (the figure harness caps PR at 3 purely for seed
wall-clock reasons -- the paper itself runs up to 40, so a deeper run is
the *representative* cost of the workload, and is exactly where the
batch-replay memo pays off).  The Piccolo (RRIP) cell stands in for the
Fig. 11 fine-grained design sweep.
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import sys
import time
from datetime import datetime, timezone

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_JSON = REPO_ROOT / "BENCH_hotpath.json"

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cache.variants import FIG11_VARIANTS  # noqa: E402
from repro.core import memory_path  # noqa: E402
from repro.core.piccolo_cache import PiccoloCache  # noqa: E402
from repro.experiments import parallel  # noqa: E402
from repro.dram.engine.xval import (  # noqa: E402
    ENGINE_XVAL_PROFILES,
    ENGINE_XVAL_WORKLOADS,
    run_engine_xval_cell,
)
from repro.experiments.ooc import OOC_CELLS, run_ooc_cell  # noqa: E402
from repro.experiments.runner import (  # noqa: E402
    CellSpec,
    clear_result_cache,
    run_system,
)


def _variant_cell(design):
    """A Fig. 11 design-sweep cell: the Piccolo system with the design's
    cache substituted (same substitution ``figures.figure_11`` makes)."""
    factory = FIG11_VARIANTS[design]
    return (
        f"fig11/{design}/PR/TW",
        design,
        "PR",
        "TW",
        12,
        {"_system": "Piccolo", "cache_factory": lambda size: factory(size)},
    )


#: (cell name, row/system, algorithm, dataset, max_iterations, kwargs)
FULL_CELLS = [
    ("fig10/Piccolo/BFS/TW", "Piccolo", "BFS", "TW", 40, {}),
    ("fig10/Piccolo/PR/TW", "Piccolo", "PR", "TW", 12, {}),
    ("fig10/GraphDyns-Cache/BFS/TW", "GraphDyns (Cache)", "BFS", "TW", 40, {}),
    ("fig10/GraphDyns-Cache/PR/TW", "GraphDyns (Cache)", "PR", "TW", 12, {}),
    ("fig10/NMP/BFS/TW", "NMP", "BFS", "TW", 40, {}),
    ("fig10/NMP/PR/TW", "NMP", "PR", "TW", 12, {}),
    (
        "fig11/Piccolo-RRIP/PR/TW",
        "Piccolo (RRIP)",
        "Piccolo",
        "PR",
        "TW",
        12,
    ),
] + [_variant_cell(design) for design in FIG11_VARIANTS]
# distinct names: quick cells run fewer iterations, so they must never
# be compared against the full-grid baseline entries
QUICK_CELLS = [
    ("quick/Piccolo/PR3/TW", "Piccolo", "PR", "TW", 3, {}),
    ("quick/GraphDyns-Cache/PR3/TW", "GraphDyns (Cache)", "PR", "TW", 3, {}),
]

#: scale-profile cells (``--profile``): the mid/paper trajectory.  The
#: ``_scale`` kwarg routes the profile into ``run_system``; iteration
#: caps come from the profile itself (PR x3).
PROFILE_CELLS = {
    "mid": [
        ("scale/mid/Piccolo/PR/SW", "Piccolo", "PR", "SW", None,
         {"_scale": "mid"}),
        ("scale/mid/GraphDyns-Cache/PR/SW", "GraphDyns (Cache)", "PR", "SW",
         None, {"_scale": "mid"}),
        ("scale/mid/Piccolo/PR/UU", "Piccolo", "PR", "UU", None,
         {"_scale": "mid"}),
    ],
    "paper": [
        ("scale/paper/Piccolo/PR/SW", "Piccolo", "PR", "SW", None,
         {"_scale": "paper"}),
        ("scale/paper/Piccolo/PR/UU", "Piccolo", "PR", "UU", None,
         {"_scale": "paper"}),
    ],
}

#: the ``--service`` cache-hit-latency suite: one warm toy cell behind
#: the stdlib service backend; the cell name pins the config below
SERVICE_CELLS = [
    ("service/hit-latency/toy-pr3", "service", "PR", "TW", 3, {}),
]
SERVICE_CONFIG = {
    "system": "Piccolo",
    "algorithm": "PR",
    "dataset": "TW",
    "profile": "toy",
    "max_iterations": 3,
}
#: identical POSTs timed per --repeats unit (best-of is recorded)
SERVICE_REQUESTS_PER_REPEAT = 30

#: the fixed ``--parallel`` worker-scaling sweep: the mid-profile
#: Fig. 10 PR grid over the two fastest real-world datasets
PARALLEL_SWEEP_SYSTEMS = ("GraphDyns (Cache)", "Piccolo", "NMP")
PARALLEL_SWEEP_DATASETS = ("UU", "SW")
PARALLEL_SWEEP_NAME = "parallel/mid-fig10pr"


def _normalise(cells):
    out = []
    for cell in cells:
        if len(cell) == 6 and isinstance(cell[5], dict):
            out.append(cell)
        else:  # fig11 RRIP row: (name, row, system, alg, ds, iters)
            name, row, system, alg, ds, iters = cell
            out.append(
                (
                    name,
                    row,
                    alg,
                    ds,
                    iters,
                    {
                        "_system": system,
                        "cache_factory": lambda size: PiccoloCache(
                            size, ways=8, fg_tag_bits=4, policy="rrip"
                        ),
                    },
                )
            )
    return out


def time_cell(system, algorithm, dataset, max_iterations, kwargs, repeats):
    best = math.inf
    extra = dict(kwargs)
    system = extra.pop("_system", system)
    scale = extra.pop("_scale", None)
    if scale is not None:
        extra["scale"] = scale
    for _ in range(repeats):
        clear_result_cache()
        start = time.perf_counter()
        run_system(
            system,
            algorithm,
            dataset,
            max_iterations=max_iterations,
            **extra,
        )
        best = min(best, time.perf_counter() - start)
    return best


def run_suite(cells, repeats):
    times = {}
    for name, row, algorithm, dataset, iters, kwargs in cells:
        times[name] = round(
            time_cell(row, algorithm, dataset, iters, kwargs, repeats), 4
        )
        print(f"  {name:38s} {times[name]:8.3f} s", flush=True)
    return times


def engine_xval_cells(profile):
    """The ``--engine-xval`` suite in the common cell-tuple shape."""
    return [
        (f"engine-xval/{profile}/{workload}", "dram-engine", workload,
         profile, None, {})
        for workload in ENGINE_XVAL_WORKLOADS
    ]


def run_engine_xval_suite(cells, mode, repeats):
    """Time the engine cross-validation grid on one controller mode.

    Returns (times, ratios): best-of-``repeats`` engine wall seconds and
    the engine/analytic duration ratio per cell (the cross-validation
    payload recorded alongside the timing).
    """
    times, ratios = {}, {}
    for name, _row, workload, profile, *_ in cells:
        best = math.inf
        for _ in range(repeats):
            result = run_engine_xval_cell(
                profile, workload, engine_mode=mode
            )
            best = min(best, result["seconds"])
        times[name] = round(best, 4)
        ratios[name] = round(result["ratio"], 4)
        print(f"  {name:38s} {times[name]:8.3f} s  "
              f"(xval ratio {ratios[name]:.3f})", flush=True)
    return times, ratios


def _cell_spec(row, algorithm, dataset, iters, kwargs):
    """Translate a suite cell tuple into a picklable CellSpec."""
    extra = dict(kwargs)
    system = extra.pop("_system", row)
    scale = extra.pop("_scale", "toy")
    return CellSpec(
        system=system,
        algorithm=algorithm,
        dataset=dataset,
        scale=scale,
        max_iterations=iters,
        chunk_size=extra.pop("chunk_size", None),
        cache_design=extra.pop("cache_design", None),
        system_kwargs=tuple(sorted(extra.items())),
    )


def run_suite_sharded(cells, workers, resume_from):
    """Run the suite through the parallel orchestrator.

    Returns (times, loaded): per-cell wall-clock for cells that actually
    ran (worker-reported, single-shot -- no best-of-repeats across
    processes) and the names of cells served from checkpoints, which are
    reported but kept out of the recorded times.
    """
    specs = [
        _cell_spec(row, alg, ds, iters, kw)
        for _, row, alg, ds, iters, kw in cells
    ]
    outcomes = parallel.run_cells(
        specs,
        workers=workers,
        resume=resume_from is not None,
        checkpoint_dir=resume_from,
    )
    times, loaded, rss = {}, [], {}
    for (name, *_), outcome in zip(cells, outcomes):
        if outcome.source == "checkpoint":
            loaded.append(name)
            print(f"  {name:38s} (from checkpoint)", flush=True)
        else:
            times[name] = round(outcome.seconds, 4)
            rss[name] = round(outcome.rss_mb, 1)
            print(f"  {name:38s} {times[name]:8.3f} s  "
                  f"[{outcome.source}]", flush=True)
    return times, loaded, rss


def ooc_cells(profile):
    """The ``--ooc`` suite in the common cell-tuple shape."""
    return [
        (
            cell.name,
            cell.system,
            cell.algorithm,
            cell.dataset if cell.scale_shift is None
            else f"{cell.dataset}@s{cell.scale_shift}",
            None,
            {},
        )
        for cell in OOC_CELLS[profile]
    ]


def run_ooc_suite(cells, profile):
    """Run the out-of-core cells, one spawned child each.

    Returns (times, rss, detail): per-cell run wall seconds, the child's
    peak anonymous RSS in MB (what ``--max-rss-mb`` gates), and the full
    per-cell measurement payloads (recorded in the trajectory point).
    """
    import tempfile

    lookup = {cell.name: cell for cell in OOC_CELLS[profile]}
    times, rss, detail = {}, {}, {}
    with tempfile.TemporaryDirectory(prefix="repro-ooc-") as root:
        for name, *_ in cells:
            payload = run_ooc_cell(lookup[name], root)
            times[name] = payload["seconds"]
            rss[name] = payload["rss_anon_peak_mb"]
            detail[name] = payload
            print(
                f"  {name:38s} {times[name]:8.3f} s  "
                f"anon peak {rss[name]:8.1f} MB  "
                f"(+{payload['materialize_seconds']:.1f}s materialize)",
                flush=True,
            )
    return times, rss, detail


def run_service_suite(repeats):
    """Time the experiment service's cache-hit path over localhost.

    Stands up the stdlib service backend on an ephemeral port, runs the
    fixed toy config once (the miss that warms the content-addressed
    store), then times ``repeats * SERVICE_REQUESTS_PER_REPEAT``
    identical POSTs -- every one must come back as a cache hit carrying
    the full result record.  Returns (times, detail): the best observed
    hit latency per cell plus the sample distribution.
    """
    import http.client
    import tempfile
    import threading

    from repro.service import ExperimentService, make_server

    times, detail = {}, {}
    (name, *_), = SERVICE_CELLS
    body = json.dumps(SERVICE_CONFIG)
    headers = {"Content-Type": "application/json"}
    with tempfile.TemporaryDirectory(prefix="repro-service-") as root:
        service = ExperimentService(root)
        server = make_server(service)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            conn = http.client.HTTPConnection(host, port, timeout=60)

            def post():
                conn.request("POST", "/experiments", body=body,
                             headers=headers)
                response = conn.getresponse()
                return response.status, json.loads(response.read())

            _status, payload = post()
            digest = payload["digest"]
            deadline = time.monotonic() + 300
            state = payload
            while state.get("status") not in ("done", "failed"):
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        f"service miss did not finish in time: {state}"
                    )
                time.sleep(0.05)
                conn.request("GET", f"/experiments/{digest}")
                state = json.loads(conn.getresponse().read())
            if state["status"] != "done":
                raise RuntimeError(f"service warm-up run failed: {state}")
            samples = []
            for _ in range(max(1, repeats) * SERVICE_REQUESTS_PER_REPEAT):
                start = time.perf_counter()
                status, payload = post()
                elapsed = time.perf_counter() - start
                if status != 200 or not payload.get("cached"):
                    raise RuntimeError(
                        f"expected a cache hit, got {status}: {payload}"
                    )
                samples.append(elapsed)
            conn.close()
        finally:
            server.shutdown()
            server.server_close()
            service.close()
    samples.sort()
    times[name] = round(samples[0], 6)
    detail[name] = {
        "requests": len(samples),
        "best_s": round(samples[0], 6),
        "median_s": round(samples[len(samples) // 2], 6),
        "p90_s": round(samples[int(len(samples) * 0.9)], 6),
        "miss_run_seconds": state.get("seconds"),
        "config": dict(SERVICE_CONFIG),
    }
    print(f"  {name:38s} {times[name]:8.6f} s  "
          f"(median {detail[name]['median_s']:.6f} s over "
          f"{len(samples)} hits; miss ran "
          f"{detail[name]['miss_run_seconds']} s)", flush=True)
    return times, detail


def time_parallel_sweep(worker_counts, repeats, graph_dir):
    """Wall-clock the fixed mid-profile sweep at each worker count."""
    specs = [
        CellSpec(system=system, algorithm="PR", dataset=dataset, scale="mid")
        for system in PARALLEL_SWEEP_SYSTEMS
        for dataset in PARALLEL_SWEEP_DATASETS
    ]
    times = {}
    rss = {}
    for workers in worker_counts:
        name = f"{PARALLEL_SWEEP_NAME}/w{workers}"
        best = math.inf
        for _ in range(repeats):
            clear_result_cache()
            start = time.perf_counter()
            outcomes = parallel.run_cells(
                specs, workers=workers, graph_dir=graph_dir
            )
            best = min(best, time.perf_counter() - start)
            rss[name] = parallel.sweep_rss_mb(outcomes)
        times[name] = round(best, 4)
        print(f"  {name:38s} {times[name]:8.3f} s  "
              f"(max worker RSS {rss[name]['max_worker_rss_mb']} MB)",
              flush=True)
    return times, rss


def row_totals(cells, times):
    rows: dict[str, float] = {}
    for name, row, *_ in cells:
        if name in times:
            rows[row] = rows.get(row, 0.0) + times[name]
    return rows


def load_trajectory(path):
    if path.exists():
        return json.loads(path.read_text())
    return {"workloads": {}, "trajectory": []}


#: trajectory modes that qualify as a speedup baseline: the pristine
#: seed checkout, or the seed-identical scalar fallback re-timed later
#: (how cells added after the seed point get a baseline)
BASELINE_MODES = ("seed-checkout", "scalar")


def baseline_times(report):
    """Per-cell baseline: the earliest scalar-mode point timing the cell."""
    times: dict[str, float] = {}
    labels: dict[str, str] = {}
    for point in report["trajectory"]:
        if point.get("mode") not in BASELINE_MODES:
            continue
        for name, seconds in point["times"].items():
            if name not in times:
                times[name] = seconds
                labels[name] = point["label"]
    return times, labels


def reference_times(report):
    """Per-cell regression reference: the *latest* batched-mode point
    that timed the cell (the trajectory the ``--check`` gate defends)."""
    times: dict[str, float] = {}
    labels: dict[str, str] = {}
    for point in report["trajectory"]:
        if point.get("mode") != "batched":
            continue
        for name, seconds in point["times"].items():
            times[name] = seconds
            labels[name] = point["label"]
    return times, labels


def check_regressions(report, times, ratio):
    """Compare measured ``times`` against the recorded trajectory.

    Returns (cell verdict list, ok).  A cell fails when measured time
    exceeds ``ratio`` x its reference; cells without a recorded batched
    reference are 'no-baseline' and do not fail the gate.
    """
    refs, labels = reference_times(report)
    cells = []
    ok = True
    for name, measured in sorted(times.items()):
        ref = refs.get(name)
        if ref is None or ref <= 0:
            cells.append(
                {"cell": name, "measured_s": measured, "status": "no-baseline"}
            )
            continue
        slowdown = measured / ref
        status = "ok" if slowdown <= ratio else "fail"
        if status == "fail":
            ok = False
        cells.append(
            {
                "cell": name,
                "measured_s": measured,
                "reference_s": ref,
                "reference_label": labels[name],
                "slowdown": round(slowdown, 3),
                "status": status,
            }
        )
    return cells, ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke subset")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--scalar-baseline",
        action="store_true",
        help="time the seed-identical scalar fallback instead",
    )
    parser.add_argument("--label", default=None)
    parser.add_argument("--json", type=pathlib.Path, default=DEFAULT_JSON)
    parser.add_argument(
        "--no-write", action="store_true", help="measure and print only"
    )
    parser.add_argument(
        "--only",
        default=None,
        metavar="PREFIXES",
        help="restrict to cells whose name starts with one of the "
        "comma-separated prefixes",
    )
    parser.add_argument(
        "--profile",
        default=None,
        choices=sorted(PROFILE_CELLS),
        help="time this scale profile's cells instead of the toy grid",
    )
    parser.add_argument(
        "--engine-xval",
        default=None,
        choices=sorted(ENGINE_XVAL_PROFILES),
        metavar="PROFILE",
        help="time the DRAM engine cross-validation grid at this scale "
        "profile instead of the memory-path cells (scalar oracle with "
        "--scalar-baseline)",
    )
    parser.add_argument(
        "--ooc",
        default=None,
        choices=sorted(OOC_CELLS),
        metavar="PROFILE",
        help="time the out-of-core tile-backing cells at this scale "
        "profile (memory- vs disk-backed builds in spawned children; "
        "per-cell peak anonymous RSS feeds --max-rss-mb)",
    )
    parser.add_argument(
        "--service",
        action="store_true",
        help="time the experiment service's cache-hit path "
        "(service/... cells) over an in-process localhost server "
        "instead of the memory-path grid",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="N",
        help="override the profile's memory-path tile chunking",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="perf-regression gate: fail on >--check-ratio slowdown vs "
        "the recorded trajectory (implies --no-write)",
    )
    parser.add_argument(
        "--check-ratio",
        type=float,
        default=1.3,
        metavar="R",
        help="max tolerated slowdown per cell in --check mode",
    )
    parser.add_argument(
        "--report-out",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="where to write the --check / budget verdict JSON "
        "(default: perf_check_report.json next to the trajectory)",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        metavar="S",
        help="absolute budget: fail if the summed best cell times exceed S",
    )
    parser.add_argument(
        "--max-rss-mb",
        type=float,
        default=None,
        metavar="MB",
        help="absolute budget: fail if process peak RSS exceeds MB",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="shard the cell grid across N worker processes (shared "
        "memmapped graphs; per-cell times come from the workers)",
    )
    parser.add_argument(
        "--resume-from",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="per-cell checkpoint directory: cells already recorded "
        "there are loaded, everything else runs and is checkpointed "
        "(sharded-nightly mode; implies a sharded run)",
    )
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="time the worker-scaling benchmark (the fixed mid-profile "
        "Fig. 10 PR sweep at each --worker-counts count) instead of "
        "the cell grid",
    )
    parser.add_argument(
        "--worker-counts",
        default="1,2,4,8",
        metavar="LIST",
        help="comma-separated worker counts for --parallel",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    if args.profile and args.scalar_baseline:
        parser.error("--profile cells have no scalar baseline to record")
    if args.check and args.scalar_baseline:
        parser.error("--check gates the batched trajectory, not scalar runs")
    if args.check_ratio <= 1.0:
        parser.error("--check-ratio must be > 1.0")
    sharded = args.workers is not None or args.resume_from is not None
    if args.scalar_baseline and (sharded or args.parallel):
        # spawn workers would not inherit the parent's BATCHED_DEFAULT
        # toggle and would silently time the batched engine
        parser.error("--scalar-baseline only runs in-process (no "
                     "--workers/--resume-from/--parallel)")
    if args.parallel and (args.profile or sharded):
        parser.error("--parallel is its own suite; it does not combine "
                     "with --profile/--workers/--resume-from")
    if args.engine_xval and (args.profile or args.parallel or sharded
                             or args.quick
                             or args.chunk_size is not None):
        parser.error("--engine-xval is its own suite; it does not combine "
                     "with --profile/--parallel/--workers/--resume-from/"
                     "--quick/--chunk-size")
    if args.ooc and (args.profile or args.parallel or sharded or args.quick
                     or args.engine_xval or args.scalar_baseline
                     or args.chunk_size is not None):
        parser.error("--ooc is its own suite; it does not combine with "
                     "--profile/--parallel/--workers/--resume-from/--quick/"
                     "--engine-xval/--scalar-baseline/--chunk-size")
    if args.service and (args.profile or args.parallel or sharded
                         or args.quick or args.engine_xval or args.ooc
                         or args.scalar_baseline
                         or args.chunk_size is not None):
        parser.error("--service is its own suite; it does not combine "
                     "with --profile/--parallel/--workers/--resume-from/"
                     "--quick/--engine-xval/--ooc/--scalar-baseline/"
                     "--chunk-size")
    try:
        worker_counts = [
            int(c) for c in args.worker_counts.split(",") if c
        ]
    except ValueError:
        parser.error(f"bad --worker-counts {args.worker_counts!r}")
    if args.parallel and (not worker_counts
                          or any(c < 1 for c in worker_counts)):
        parser.error("--worker-counts must be positive integers")

    if args.profile:
        cells = _normalise(PROFILE_CELLS[args.profile])
    elif args.engine_xval:
        cells = engine_xval_cells(args.engine_xval)
    elif args.ooc:
        cells = ooc_cells(args.ooc)
    elif args.service:
        cells = list(SERVICE_CELLS)
    elif args.parallel:
        cells = []
    else:
        cells = _normalise(QUICK_CELLS if args.quick else FULL_CELLS)
    if args.chunk_size is not None:
        cells = [
            (name, row, alg, ds, iters, {**kw, "chunk_size": args.chunk_size})
            for name, row, alg, ds, iters, kw in cells
        ]
    if args.only and not args.parallel:
        prefixes = tuple(p for p in args.only.split(",") if p)
        cells = [c for c in cells if c[0].startswith(prefixes)]
        if not cells:
            parser.error(f"--only {args.only!r} matches no cells")
    mode = "scalar" if args.scalar_baseline else "batched"
    if args.scalar_baseline and not args.engine_xval:
        # engine-xval routes the mode into DRAMEngine directly; the
        # memory-path toggle is the other suites' scalar switch
        memory_path.BATCHED_DEFAULT = False
    if args.check:
        args.no_write = True
    label = args.label or (
        "parallel" if args.parallel
        else f"{mode}-engine-xval-{args.engine_xval}" if args.engine_xval
        else f"ooc-{args.ooc}" if args.ooc
        else "service" if args.service
        else f"{mode}-{args.profile}" if args.profile else mode
    )

    loaded_cells: list[str] = []
    parallel_rss: dict[str, dict] = {}
    cell_rss: dict[str, float] = {}
    if args.parallel:
        print(f"perf_report: worker-scaling sweep, counts={worker_counts} "
              f"repeats={args.repeats}")
        import tempfile

        with tempfile.TemporaryDirectory(prefix="repro-graphs-") as gdir:
            times, parallel_rss = time_parallel_sweep(
                worker_counts, args.repeats, gdir
            )
    elif sharded:
        print(f"perf_report: mode={mode} workers={args.workers or 1} "
              f"cells={len(cells)} (sharded; single-shot timings)")
        times, loaded_cells, cell_rss = run_suite_sharded(
            cells, args.workers, args.resume_from
        )
    elif args.engine_xval:
        print(f"perf_report: mode={mode} engine-xval "
              f"profile={args.engine_xval} repeats={args.repeats} "
              f"cells={len(cells)}")
        times, xval_ratios = run_engine_xval_suite(
            cells, mode, args.repeats
        )
    elif args.ooc:
        print(f"perf_report: mode={mode} ooc profile={args.ooc} "
              f"cells={len(cells)} (spawned children; single-shot timings)")
        times, cell_rss, ooc_detail = run_ooc_suite(cells, args.ooc)
    elif args.service:
        print(f"perf_report: mode={mode} service cache-hit suite "
              f"({args.repeats * SERVICE_REQUESTS_PER_REPEAT} hit "
              f"requests over localhost)")
        times, service_detail = run_service_suite(args.repeats)
    else:
        print(f"perf_report: mode={mode} repeats={args.repeats} "
              f"cells={len(cells)}")
        times = run_suite(cells, args.repeats)
    import resource

    # ru_maxrss is the process high-water mark (KB on Linux): an upper
    # bound on what the chunked paths actually held.
    peak_rss_mb = round(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1
    )

    report = load_trajectory(args.json)
    base_times, base_labels = baseline_times(report)
    point = {
        "label": label,
        "mode": mode,
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "quick": bool(args.quick),
        "times": times,
    }
    if args.profile:
        point["profile"] = args.profile
        point["peak_rss_mb"] = peak_rss_mb
        print(f"peak RSS: {peak_rss_mb} MB")
    if args.chunk_size is not None:
        point["chunk_size"] = args.chunk_size
    if args.engine_xval:
        point["engine_xval_profile"] = args.engine_xval
        point["xval_ratios"] = xval_ratios
    if args.ooc:
        point["ooc_profile"] = args.ooc
        point["cell_rss_mb"] = cell_rss
        point["ooc_cells"] = ooc_detail
    if args.service:
        point["service_cells"] = service_detail
    if sharded:
        point["workers"] = args.workers or 1
        if cell_rss:
            point["cell_rss_mb"] = cell_rss
        if loaded_cells:
            print(f"{len(loaded_cells)} cell(s) served from checkpoints "
                  f"(kept out of the recorded times): "
                  + ", ".join(loaded_cells))
    if args.parallel:
        point["worker_counts"] = worker_counts
        point["parallel_rss"] = parallel_rss

    shared = [c for c in cells if c[0] in base_times and c[0] in times]
    if mode in BASELINE_MODES:
        # a baseline run records reference times, it does not compare
        if shared:
            print(
                "\nnote: earliest scalar point wins -- these cells keep "
                "their existing baselines: "
                + ", ".join(f"{name} ({base_labels[name]})" for name, *_ in shared)
            )
        shared = []
    if shared:
        point["speedup_vs_baseline"] = {
            name: round(base_times[name] / times[name], 3)
            for name, *_ in shared
        }
        rows_new = row_totals(shared, times)
        rows_base = row_totals(shared, base_times)
        point["row_speedup_vs_baseline"] = {
            row: round(rows_base[row] / rows_new[row], 3) for row in rows_new
        }
        labels = sorted({base_labels[name] for name, *_ in shared})
        print(f"\nvs baseline point(s) {labels}:")
        for name, speedup in point["speedup_vs_baseline"].items():
            print(f"  {name:38s} {speedup:7.2f}x")
        print("row totals:")
        for row, speedup in point["row_speedup_vs_baseline"].items():
            print(f"  {row:38s} {speedup:7.2f}x")
    elif not base_times:
        print("no baseline trajectory point yet; this run becomes it")
    elif mode not in BASELINE_MODES:
        print("no cells shared with a baseline point (quick mode?); "
              "skipping speedup comparison")

    if not args.no_write:
        for name, row, algorithm, dataset, iters, _ in cells:
            report["workloads"].setdefault(
                name,
                {
                    "row": row,
                    "algorithm": algorithm,
                    "dataset": dataset,
                    "max_iterations": iters,
                },
            )
        if args.parallel:
            for name in times:
                report["workloads"].setdefault(
                    name,
                    {
                        "row": "parallel-sweep",
                        "algorithm": "PR",
                        "dataset": "+".join(PARALLEL_SWEEP_DATASETS),
                        "max_iterations": None,
                    },
                )
        report["trajectory"].append(point)
        args.json.write_text(json.dumps(report, indent=1) + "\n")
        print(f"\nappended trajectory point {label!r} to {args.json}")

    # -- CI gates: trajectory regression check + absolute budgets --------
    gating = (
        args.check
        or args.max_seconds is not None
        or args.max_rss_mb is not None
    )
    if not gating:
        return 0
    total_best = round(sum(times.values()), 3)
    # workers are separate processes: the RSS budget must see their
    # high-water marks too, not just the parent's
    worker_peak = max(
        [*cell_rss.values()]
        + [r["max_worker_rss_mb"] for r in parallel_rss.values()],
        default=0.0,
    )
    gate_rss_mb = max(peak_rss_mb, worker_peak)
    verdict = {
        "mode": mode,
        "profile": args.profile,
        "quick": bool(args.quick),
        "timestamp": point["timestamp"],
        "times": times,
        "total_best_seconds": total_best,
        "peak_rss_mb": gate_rss_mb,
        "ok": True,
        "failures": [],
    }
    if args.check:
        cell_verdicts, cells_ok = check_regressions(
            report, times, args.check_ratio
        )
        verdict["check_ratio"] = args.check_ratio
        verdict["cells"] = cell_verdicts
        if not cells_ok:
            verdict["ok"] = False
            verdict["failures"].append("cell-regression")
        print(f"\nperf-regression gate (<= {args.check_ratio}x per cell):")
        for cell in cell_verdicts:
            slow = cell.get("slowdown")
            print(
                f"  {cell['cell']:38s} {cell['measured_s']:8.3f} s  "
                + (
                    f"{slow:5.2f}x vs {cell['reference_label']:24s} "
                    f"[{cell['status']}]"
                    if slow is not None
                    else "[no-baseline]"
                )
            )
    # Record the static-gate status alongside the perf verdict so
    # nightly artifacts carry it.  Informational here: the blocking
    # `lint` CI job owns pass/fail, and a lint hiccup must never sink
    # a perf measurement that already ran.
    try:
        from repro.lint import run_paths as _lint_run_paths

        _lint = _lint_run_paths(
            root=pathlib.Path(__file__).resolve().parent.parent
        )
        verdict["lint"] = {
            "ok": _lint.ok,
            "files_checked": _lint.files_checked,
            "counts_by_rule": _lint.counts_by_rule(),
        }
    except Exception as exc:
        verdict["lint"] = {"ok": None, "error": repr(exc)}
    if args.max_seconds is not None and total_best > args.max_seconds:
        verdict["ok"] = False
        verdict["failures"].append(
            f"wall-clock {total_best}s > budget {args.max_seconds}s"
        )
    if args.max_rss_mb is not None and gate_rss_mb > args.max_rss_mb:
        verdict["ok"] = False
        verdict["failures"].append(
            f"peak RSS {gate_rss_mb} MB > budget {args.max_rss_mb} MB"
        )
    report_out = args.report_out or (
        args.json.parent / "perf_check_report.json"
    )
    report_out.write_text(json.dumps(verdict, indent=1) + "\n")
    print(
        f"gate verdict: {'OK' if verdict['ok'] else 'FAIL'} "
        f"(total {total_best}s, peak RSS {gate_rss_mb} MB) -> {report_out}"
    )
    if not verdict["ok"]:
        for failure in verdict["failures"]:
            print(f"  FAIL: {failure}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
