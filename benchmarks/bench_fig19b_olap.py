"""Fig. 19b -- OLAP select queries (Qa-Qd).

Strided column scans of a row-store table on conventional vs Piccolo
memory.  Paper headline: ~3.8x speedup for OLAP-style queries.
"""

from repro.experiments.figures import figure_19b


def test_fig19b_olap(run_figure):
    rows = run_figure("Fig. 19b: OLAP query speedup", figure_19b)
    speedups = {r["query"]: r["speedup"] for r in rows}
    assert set(speedups) == {"Qa", "Qb", "Qc", "Qd"}
    mean = sum(speedups.values()) / 4
    print(f"\nmean OLAP speedup: {mean:.2f}x (paper: ~3.8x)")
    assert mean > 3.0
    for name, speedup in speedups.items():
        assert speedup > 2.5, name
