"""Mid-profile smoke: one scaled figure cell under a wall-clock budget.

The figure grid runs at toy scale everywhere else in CI; this smoke
runs a single Fig. 10 cell (PR on UU, baseline + Piccolo) at the
``mid`` profile -- 64 KB caches, 2^6-reduced graphs, chunked tile
streaming -- so a regression that only bites at scale (an O(tile)
allocation sneaking back in, a per-miss slowdown the toy working set
hides) is caught without paying paper-scale cost in CI.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_profile_smoke.py -q
"""

import time

from repro.experiments.config import get_profile
from repro.experiments.figures import figure_10
from repro.experiments.runner import clear_result_cache

#: generous CI budget; the cell takes ~25 s on the reference container
#: (see the ``scale/mid`` trajectory in BENCH_hotpath.json)
BUDGET_SECONDS = 240.0


def test_mid_profile_figure_cell_under_budget(capsys):
    scale = get_profile("mid")
    assert scale.chunk_size is not None  # mid must exercise chunking
    clear_result_cache()
    start = time.perf_counter()
    rows = figure_10(
        datasets=("UU",),
        algorithms=("PR",),
        systems=("GraphDyns (Cache)", "Piccolo"),
        scale=scale,
    )
    elapsed = time.perf_counter() - start
    with capsys.disabled():
        print(f"\nmid-profile smoke: Fig. 10 PR/UU cell in {elapsed:.1f}s "
              f"(budget {BUDGET_SECONDS:.0f}s)")
    clear_result_cache()
    assert elapsed < BUDGET_SECONDS, (
        f"mid-profile cell took {elapsed:.1f}s (budget {BUDGET_SECONDS}s)"
    )
    cell = {r["system"]: r["speedup"] for r in rows if r["algorithm"] == "PR"}
    assert cell["GraphDyns (Cache)"] == 1.0
    assert cell["Piccolo"] > 0.0
