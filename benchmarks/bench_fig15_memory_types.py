"""Fig. 15 -- memory-type sensitivity (SW dataset).

DDR4 x4/x8/x16, LPDDR4, GDDR5 and HBM.  Paper shape: Piccolo beats the
baseline on every type; narrower DDR4 devices gain less (more offset
bursts); 32 B-burst devices (LPDDR/GDDR/HBM) gain less (four items per
operation).
"""

from repro.experiments.figures import figure_15
from repro.utils.stats import geometric_mean


def test_fig15_memory_types(run_figure):
    rows = run_figure("Fig. 15: memory-type sensitivity (cycles)", figure_15)
    cell = {
        (r["algorithm"], r["memory"], r["system"]): r["cycles"] for r in rows
    }
    algos = sorted({r["algorithm"] for r in rows})
    speedup = {
        mem: geometric_mean(
            [cell[(a, mem, "GraphDyns (Cache)")] / cell[(a, mem, "Piccolo")]
             for a in algos]
        )
        for mem in ("DDR4x4", "DDR4x8", "DDR4x16", "LPDDR4", "GDDR5", "HBM")
    }
    print("\nGM speedup by memory type:", {k: round(v, 2) for k, v in speedup.items()})
    # Piccolo wins on the default x16 configuration.
    assert speedup["DDR4x16"] > 1.2
    # Narrower devices gain less than x16 (more offset-write bursts).
    assert speedup["DDR4x4"] < speedup["DDR4x16"]
    # 32 B-burst devices gain less than DDR4 x16.
    assert speedup["HBM"] < speedup["DDR4x16"]
