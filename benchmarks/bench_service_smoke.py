"""Experiment-service smoke: miss -> hit -> concurrent duplicates.

The service's contract properties (single-flight dedup, bit-identical
cached records, failure/retry, backend parity) are pinned at unit
level in ``tests/test_service.py``; this smoke drives the *real* stack
in CI -- a stdlib ``ThreadingHTTPServer`` on a localhost ephemeral
port, JSON over actual sockets, the background job pool, the on-disk
checkpoint store -- so a regression that only bites with real HTTP
(a route that stopped parsing, keep-alive breakage, a serialization
that drops a field, a deadlock between the handler threads and the job
pool) is caught under a wall-clock budget.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_service_smoke.py -q
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.experiments.runner import clear_result_cache
from repro.service import ExperimentService, make_server

#: generous CI budget for the whole drive (the toy cell simulates ~1 s)
BUDGET_SECONDS = 120.0

#: the smoke config: a fast toy cell
CONFIG = {
    "system": "Piccolo",
    "algorithm": "PR",
    "dataset": "UU",
    "profile": "toy",
    "max_iterations": 2,
}


@pytest.fixture()
def service_url(tmp_path):
    clear_result_cache()
    service = ExperimentService(tmp_path / "store", max_workers=2)
    server = make_server(service)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://{host}:{port}", service
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        clear_result_cache()


def _post(base, config):
    request = urllib.request.Request(
        f"{base}/experiments",
        data=json.dumps(config).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get(base, path):
    try:
        with urllib.request.urlopen(base + path, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _wait_done(base, digest, deadline):
    while True:
        status, payload = _get(base, f"/experiments/{digest}")
        assert status == 200, payload
        if payload["status"] in ("done", "failed"):
            return payload
        assert time.perf_counter() < deadline, (
            f"cell still {payload['status']} at budget"
        )
        time.sleep(0.05)


def test_service_miss_hit_and_concurrent_duplicates(service_url, capsys):
    base, service = service_url
    start = time.perf_counter()
    deadline = start + BUDGET_SECONDS

    # -- miss: enqueued, completes, record is served -------------------
    status, payload = _post(base, CONFIG)
    assert status == 202 and payload["status"] == "queued", payload
    digest = payload["digest"]
    done = _wait_done(base, digest, deadline)
    assert done["status"] == "done", done
    assert done["result"]["total_ns"] > 0

    # -- hit: same config, instant cached record, no re-run ------------
    status, hit = _post(base, CONFIG)
    assert status == 200 and hit["cached"], hit
    assert hit["result"] == done["result"]
    _status, stats = _get(base, "/cache/stats")
    assert stats["cache"]["misses"] == 1
    assert stats["store"]["records"] == 1

    # -- concurrent duplicates of a NEW config run the cell once -------
    other = dict(CONFIG, algorithm="BFS", max_iterations=None)
    other.pop("max_iterations")
    barrier = threading.Barrier(4)
    responses = []

    def fire():
        barrier.wait()
        responses.append(_post(base, other))

    threads = [threading.Thread(target=fire) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    digests = {payload["digest"] for _, payload in responses}
    assert len(digests) == 1, responses
    _wait_done(base, digests.pop(), deadline)
    _status, stats = _get(base, "/cache/stats")
    # however the 4 POSTs interleaved with the run, exactly one new job
    # was enqueued for the new digest (single-flight / cache)
    assert stats["cache"]["misses"] == 2, stats
    elapsed = time.perf_counter() - start
    with capsys.disabled():
        print(f"\nservice smoke: miss+hit+4 concurrent duplicates in "
              f"{elapsed:.1f}s (budget {BUDGET_SECONDS:.0f}s)")
    assert elapsed < BUDGET_SECONDS
