"""Fig. 18 -- synthetic graphs (PageRank).

Watts-Strogatz (no power law) and Kronecker scalability sweep.
Paper shape: Piccolo outperforms every baseline on the WS graphs and
scales consistently across KN25..KN28; PIM narrows slightly on larger
graphs but stays behind; GraphDyns (SPM) lacks scalability.
"""

from repro.experiments.figures import figure_18
from repro.utils.stats import geometric_mean


def test_fig18_synthetic(run_figure):
    rows = run_figure("Fig. 18: synthetic graphs (PR speedup)", figure_18)
    cell = {(r["dataset"], r["system"]): r["speedup"] for r in rows}
    datasets = sorted({r["dataset"] for r in rows})
    for dataset in datasets:
        for system in ("GraphDyns (SPM)", "NMP", "PIM"):
            assert cell[(dataset, "Piccolo")] >= cell[(dataset, system)], (
                dataset, system
            )
    # Piccolo wins on the non-power-law graphs too.
    assert cell[("WS26", "Piccolo")] > 1.0
    assert cell[("WS27", "Piccolo")] > 1.0
    # Kronecker scalability: the win persists at every scale.
    for kn in ("KN25", "KN26", "KN27", "KN28"):
        assert cell[(kn, "Piccolo")] > 1.0, kn
