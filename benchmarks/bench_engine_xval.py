"""Cross-validation bench: command-level engine vs analytic model.

Not a paper figure -- this regenerates the Fig. 9 microbenchmark series
on the command-level engine (full JEDEC constraint set, refresh, bus
arbitration) and reports, per stride, the FIM speedup measured by each
model.  The analytic model carries the figure sweeps; this bench is the
evidence that its shortcuts do not bend the headline ratios.
"""

from repro.dram.engine.xval import microbench_speedups
from repro.dram.spec import default_config


def figure_engine_xval():
    config = default_config()
    rows = []
    for single_row in (True, False):
        series = "single-row" if single_row else "multi-row"
        for row in microbench_speedups(config, 1 << 18,
                                       single_row=single_row):
            rows.append({
                "series": series,
                "stride": row["stride"],
                "engine_speedup": row["speedup"],
                "conv_vs_analytic": row["conv_ratio_vs_analytic"],
                "fim_vs_analytic": row["fim_ratio_vs_analytic"],
            })
    return rows


def test_engine_xval(run_figure):
    rows = run_figure("Engine cross-validation: Fig. 9 on the "
                      "command-level engine", figure_engine_xval)
    single = {r["stride"]: r for r in rows if r["series"] == "single-row"}
    # The FIM gain peaks near 4x at stride 8 on the engine too.
    assert single[8]["engine_speedup"] > 3.0
    # Engine/analytic duration ratios stay in a stable band.
    for row in rows:
        assert 0.4 < row["conv_vs_analytic"] < 3.0
        assert 0.4 < row["fim_vs_analytic"] < 3.0
