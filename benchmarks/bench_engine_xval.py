"""Cross-validation bench: command-level engine vs analytic model.

Not a paper figure -- this regenerates the Fig. 9 microbenchmark series
on the command-level engine (full JEDEC constraint set, refresh, bus
arbitration) and reports, per stride, the FIM speedup measured by each
model.  The analytic model carries the figure sweeps; this bench is the
evidence that its shortcuts do not bend the headline ratios.
"""

import time

from repro.dram.engine.xval import (
    ENGINE_XVAL_WORKLOADS,
    microbench_speedups,
    run_engine_xval_cell,
)
from repro.dram.spec import default_config


def figure_engine_xval():
    config = default_config()
    rows = []
    for single_row in (True, False):
        series = "single-row" if single_row else "multi-row"
        for row in microbench_speedups(config, 1 << 18,
                                       single_row=single_row):
            rows.append({
                "series": series,
                "stride": row["stride"],
                "engine_speedup": row["speedup"],
                "conv_vs_analytic": row["conv_ratio_vs_analytic"],
                "fim_vs_analytic": row["fim_ratio_vs_analytic"],
            })
    return rows


def test_engine_xval(run_figure):
    rows = run_figure("Engine cross-validation: Fig. 9 on the "
                      "command-level engine", figure_engine_xval)
    single = {r["stride"]: r for r in rows if r["series"] == "single-row"}
    # The FIM gain peaks near 4x at stride 8 on the engine too.
    assert single[8]["engine_speedup"] > 3.0
    # Engine/analytic duration ratios stay in a stable band.
    for row in rows:
        assert 0.4 < row["conv_vs_analytic"] < 3.0
        assert 0.4 < row["fim_vs_analytic"] < 3.0


def test_engine_xval_mid_profile_smoke():
    """Tier-1 smoke for the ``engine-xval/mid`` trajectory cells.

    The whole mid grid must fit a CI wall budget on the batched engine,
    every cell's engine/analytic ratio must sit in the stable band, and
    the headline cell must agree bit-for-bit with the scalar oracle
    (identical cycle count, command count and duration -- the cheap
    always-on shadow of the full differential suite).
    """
    start = time.perf_counter()
    results = {
        workload: run_engine_xval_cell("mid", workload)
        for workload in ENGINE_XVAL_WORKLOADS
    }
    elapsed = time.perf_counter() - start
    assert elapsed < 30.0, f"mid engine-xval grid took {elapsed:.1f}s"
    for workload, result in results.items():
        assert 0.4 < result["ratio"] < 3.0, (workload, result["ratio"])
        assert result["commands"] > 0
    scalar = run_engine_xval_cell("mid", "conv-hit", engine_mode="scalar")
    batched = results["conv-hit"]
    assert scalar["cycles"] == batched["cycles"]
    assert scalar["commands"] == batched["commands"]
    assert scalar["engine_ns"] == batched["engine_ns"]
