"""Fig. 9 -- FPGA-emulation microbenchmark.

Strided reads of 16 MB at strides {4, 8, 16, 32} words, single-row vs
multi-row layouts.  Paper shape: single-row speedup reaches the
theoretical 4x at stride 8; stride 4 gives ~2x (two elements share a
burst); multi-row speedups are lower due to activation time.
"""

from repro.experiments.figures import figure_9


def test_fig09_microbench(run_figure):
    rows = run_figure("Fig. 9: strided microbenchmark", figure_9)
    cell = {(r["layout"], r["stride"]): r["speedup"] for r in rows}
    assert cell[("single-row", 8)] > 3.8
    assert 1.8 < cell[("single-row", 4)] < 2.2
    for stride in (8, 16, 32):
        assert cell[("multi-row", stride)] < cell[("single-row", stride)]
        assert cell[("multi-row", stride)] > 1.5
