"""Benchmark harness conventions.

Every benchmark regenerates one figure/table of the paper's evaluation:
it runs the figure's experiment grid exactly once (``benchmark.pedantic``
with a single round -- these are simulations, not microbenchmarks) and
prints the same rows/series the paper reports.  EXPERIMENTS.md records
the paper-vs-measured comparison.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pathlib
import re

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def run_figure(benchmark, capsys):
    """Run a figure function once under pytest-benchmark and print it.

    The rendered table is printed through ``capsys.disabled()`` so it
    survives pytest's output capture, and is also written to
    ``benchmarks/results/<slug>.txt`` for later inspection.
    """

    def _run(title, figure_fn, *args, **kwargs):
        from repro.experiments.figures import format_rows

        rows = benchmark.pedantic(
            lambda: figure_fn(*args, **kwargs), rounds=1, iterations=1
        )
        text = format_rows(title, rows)
        with capsys.disabled():
            print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        slug = re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")
        (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")
        return rows

    return _run
