"""Benchmark harness conventions.

Every benchmark regenerates one figure/table of the paper's evaluation:
it runs the figure's experiment grid exactly once (``benchmark.pedantic``
with a single round -- these are simulations, not microbenchmarks) and
prints the same rows/series the paper reports.  EXPERIMENTS.md records
the paper-vs-measured comparison.

Run with::

    pytest benchmarks/ --benchmark-only

``--profile toy|mid|paper`` selects the experiment scale profile
(see ``repro.experiments.config.PROFILES``); figures that take a
``scale`` parameter run at that profile, and results files are suffixed
with the profile name so toy outputs are never overwritten by scaled
runs.
"""

import inspect
import pathlib
import re

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--profile",
        default="toy",
        choices=("toy", "mid", "paper"),
        help="experiment scale profile for the figure benchmarks",
    )


@pytest.fixture
def experiment_scale(request):
    """The selected scale profile (``--profile``, default toy)."""
    from repro.experiments.config import get_profile

    return get_profile(request.config.getoption("--profile", default="toy"))


@pytest.fixture
def run_figure(benchmark, capsys, experiment_scale):
    """Run a figure function once under pytest-benchmark and print it.

    The rendered table is printed through ``capsys.disabled()`` so it
    survives pytest's output capture, and is also written to
    ``benchmarks/results/<slug>.txt`` for later inspection.  When a
    non-toy ``--profile`` is selected, figures accepting a ``scale``
    parameter run at that profile and the results file gains a
    ``.<profile>`` suffix.
    """

    def _run(title, figure_fn, *args, **kwargs):
        from repro.experiments.figures import format_rows

        scaled = False
        if (
            "scale" not in kwargs
            and experiment_scale.name != "toy"
            and "scale" in inspect.signature(figure_fn).parameters
        ):
            kwargs["scale"] = experiment_scale
            scaled = True
        rows = benchmark.pedantic(
            lambda: figure_fn(*args, **kwargs), rounds=1, iterations=1
        )
        if scaled:
            title = f"{title} [{experiment_scale.name}]"
        text = format_rows(title, rows)
        with capsys.disabled():
            print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        slug = re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")
        (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")
        return rows

    return _run
