"""Fig. 16 -- channel/rank sensitivity (SW dataset).

ch {1, 2} x ra {1, 2, 4}.  Paper shape: Piccolo consistently outperforms
GraphDyns (Cache) across all configurations, and absolute cycles shrink
with more channels/ranks.
"""

from repro.experiments.figures import figure_16
from repro.utils.stats import geometric_mean


def test_fig16_channels_ranks(run_figure):
    rows = run_figure("Fig. 16: channel/rank sensitivity (cycles)", figure_16)
    cell = {
        (r["algorithm"], r["channels"], r["ranks"], r["system"]): r["cycles"]
        for r in rows
    }
    algos = sorted({r["algorithm"] for r in rows})
    for ch in (1, 2):
        for ra in (1, 2, 4):
            # Piccolo wins in geometric mean at every configuration
            # the paper plots, except the most bank-starved corner of
            # the scaled setup (2 channels x 1 rank: 8 banks serving
            # twice the bus bandwidth), where the JEDEC-exact FIM bank
            # occupancy and default-config tile tuning let the baseline
            # edge ahead -- EXPERIMENTS.md note 7.
            gm = geometric_mean(
                [cell[(a, ch, ra, "GraphDyns (Cache)")]
                 / cell[(a, ch, ra, "Piccolo")] for a in algos]
            )
            if (ch, ra) == (2, 1):
                assert gm > 0.85, (ch, ra, gm)
            else:
                assert gm > 1.0, (ch, ra, gm)
    for a in algos:
        # More ranks never hurt either system.
        for system in ("GraphDyns (Cache)", "Piccolo"):
            assert cell[(a, 1, 4, system)] <= cell[(a, 1, 1, system)] * 1.02
        # Two channels beat one at equal rank count.
        assert cell[(a, 2, 4, "Piccolo")] <= cell[(a, 1, 4, "Piccolo")] * 1.02
