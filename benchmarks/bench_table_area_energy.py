"""Sec. VII-F -- area and energy methodology numbers.

Reproduces the published component budgets: the 126-transistor FIM
internal controller (0.04 % die area), the 4.36 % total DRAM overhead,
the 6.34 -> 6.60 mm^2 accelerator area (+4.10 %), and the cache tag
overheads of Sec. V-A (45.31 % for the 8B-line cache vs 2.05 % + 12.50 %
for Piccolo-cache).
"""

from repro.cache.fine8b import EightByteLineCache
from repro.core.piccolo_cache import PiccoloCache
from repro.energy.area import (
    controller_area_fraction,
    controller_transistors,
    dram_fim_overhead,
    piccolo_area_increase,
)


def collect_area_rows():
    piccolo = PiccoloCache(4 * 1024 * 1024, ways=8, fg_tag_bits=8)
    fine = EightByteLineCache(4 * 1024 * 1024, ways=8)
    return [
        {"quantity": "FIM controller transistors",
         "measured": float(controller_transistors()), "paper": 126.0},
        {"quantity": "FIM controller die fraction",
         "measured": controller_area_fraction(), "paper": 0.0004},
        {"quantity": "DRAM die overhead",
         "measured": dram_fim_overhead(), "paper": 0.0436},
        {"quantity": "accelerator area increase",
         "measured": piccolo_area_increase(), "paper": 0.0410},
        {"quantity": "8B-line tag overhead",
         "measured": fine.tag_overhead_fraction, "paper": 0.4531},
        {"quantity": "Piccolo tag overhead",
         "measured": piccolo.tag_overhead_fraction, "paper": 0.0205},
        {"quantity": "Piccolo fg-tag overhead",
         "measured": piccolo.fg_tag_overhead_fraction, "paper": 0.1250},
    ]


def test_area_energy_table(run_figure):
    rows = run_figure("Sec. VII-F: area/overhead numbers", collect_area_rows)
    for row in rows:
        assert row["measured"] == __import__("pytest").approx(
            row["paper"], rel=0.05
        ), row["quantity"]
