"""Fig. 10 -- overall speedup of the six systems.

Five algorithms x five datasets, normalised to GraphDyns (Cache).
Paper headline: Piccolo GM 1.62x over GraphDyns (Cache), 1.68x over NMP,
2.83x over PIM, max speedup 3.28x.
"""

from repro.experiments.figures import figure_10


def test_fig10_overall(run_figure):
    rows = run_figure("Fig. 10: overall speedup", figure_10)
    gm = {
        r["system"]: r["speedup"] for r in rows if r["algorithm"] == "GM"
    }
    # Headline orderings of Sec. VII-C.
    assert gm["Piccolo"] > 1.0, "Piccolo must beat the baseline in GM"
    assert gm["Piccolo"] > gm["NMP"]
    assert gm["Piccolo"] > gm["PIM"]
    assert gm["PIM"] < 1.0, "PIM underperforms the cache baseline"
    # Piccolo wins at least a 1.3x GM and peaks well above it.
    assert gm["Piccolo"] > 1.3
    peak = max(
        r["speedup"] for r in rows
        if r["system"] == "Piccolo" and r["algorithm"] != "GM"
    )
    assert peak > 2.0
