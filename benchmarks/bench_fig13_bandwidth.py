"""Fig. 13 -- off-chip and internal DRAM bandwidth.

GraphDyns (Cache), PIM and Piccolo: off-chip GB/s plus the in-memory
(bank-internal) bandwidth of the PIM/FIM paths.  Paper shape: the
baseline uses the most off-chip bandwidth (65.5 % of peak); Piccolo uses
slightly less off-chip (60.3 %) while moving additional data internally;
PIM shows large internal bandwidth but low performance.
"""

from repro.experiments.figures import figure_13
from repro.utils.stats import geometric_mean


def test_fig13_bandwidth(run_figure):
    rows = run_figure("Fig. 13: bandwidth usage (GB/s)", figure_13)
    by_system = {}
    for r in rows:
        by_system.setdefault(r["system"], []).append(r)
    # Internal bandwidth exists only for PIM and Piccolo.
    assert all(r["internal_gbps"] == 0 for r in by_system["GraphDyns (Cache)"])
    assert any(r["internal_gbps"] > 0 for r in by_system["PIM"])
    assert any(r["internal_gbps"] > 0 for r in by_system["Piccolo"])
    # Nothing exceeds the 19.2 GB/s off-chip peak.
    for r in rows:
        assert r["offchip_gbps"] <= 19.2 + 1e-6
