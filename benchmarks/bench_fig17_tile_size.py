"""Fig. 17 -- tile-size sensitivity (SW dataset).

Scaling factors x1 (perfect tiling) through x16.  Paper shape: the
baseline prefers small tiles (perfect tiling best for PR); Piccolo
tolerates -- and prefers -- much larger tiles because the fine-grained
cache holds only useful data.
"""

from repro.experiments.figures import figure_17


def test_fig17_tile_size(run_figure):
    rows = run_figure("Fig. 17: tile-size sensitivity", figure_17)
    cell = {
        (r["algorithm"], r["scale"], r["system"]): r["norm_cycles"]
        for r in rows
    }
    algos = sorted({r["algorithm"] for r in rows})
    scales = sorted({r["scale"] for r in rows})
    for a in algos:
        base_best = min(cell[(a, s, "GraphDyns (Cache)")] for s in scales)
        base_best_scale = min(
            scales, key=lambda s: cell[(a, s, "GraphDyns (Cache)")]
        )
        picc_best_scale = min(
            scales, key=lambda s: cell[(a, s, "Piccolo")]
        )
        # Piccolo's sweet spot sits at a larger (or equal) scale factor.
        assert picc_best_scale >= base_best_scale, a
        # And Piccolo's best beats the baseline's best.
        assert min(cell[(a, s, "Piccolo")] for s in scales) < base_best, a
