"""Hot-path perf smoke: the batched memory path must beat the scalar loop.

A CI-sized companion to ``tools/perf_report.py`` (which records the full
trajectory in ``BENCH_hotpath.json``): runs the quick PR cells once in
both execution modes and asserts the batched engine delivers a real
speedup over the seed-identical scalar fallback.  The threshold is
deliberately conservative (CI machines are noisy); the recorded
trajectory is where the honest numbers live.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_perf_hotpath.py -q
"""

import time

import pytest

from repro.cache.variants import FIG11_VARIANTS
from repro.core import memory_path
from repro.experiments.runner import clear_result_cache, run_system

CELLS = [
    ("Piccolo", "PR", "TW", 3),
    ("GraphDyns (Cache)", "PR", "TW", 3),
]


def _time_cells(batched: bool) -> float:
    previous = memory_path.BATCHED_DEFAULT
    memory_path.BATCHED_DEFAULT = batched
    try:
        total = 0.0
        for system, algorithm, dataset, iters in CELLS:
            clear_result_cache()
            start = time.perf_counter()
            run_system(system, algorithm, dataset, max_iterations=iters)
            total += time.perf_counter() - start
        return total
    finally:
        memory_path.BATCHED_DEFAULT = previous


def test_batched_path_beats_scalar_fallback(capsys):
    run_system("Piccolo", "PR", "TW", max_iterations=1)  # warm dataset cache
    scalar = _time_cells(batched=False)
    batched = _time_cells(batched=True)
    with capsys.disabled():
        print(
            f"\nhotpath smoke: scalar {scalar:.2f}s, batched {batched:.2f}s, "
            f"speedup {scalar / batched:.2f}x"
        )
    # full-grid trajectory shows ~8-17x; require a safe margin in CI
    assert batched < scalar / 2.0, (
        f"batched path regressed: {batched:.2f}s vs scalar {scalar:.2f}s"
    )


def test_results_identical_across_modes():
    """Both modes must produce the same simulation, not just similar."""
    clear_result_cache()
    previous = memory_path.BATCHED_DEFAULT
    try:
        memory_path.BATCHED_DEFAULT = True
        fast = run_system("Piccolo", "PR", "TW", max_iterations=2)
        clear_result_cache()
        memory_path.BATCHED_DEFAULT = False
        slow = run_system("Piccolo", "PR", "TW", max_iterations=2)
    finally:
        memory_path.BATCHED_DEFAULT = previous
    clear_result_cache()
    assert fast.total_ns == slow.total_ns
    assert fast.cache_hits == slow.cache_hits
    assert fast.cache_misses == slow.cache_misses
    assert fast.dram.read_bursts == slow.dram.read_bursts
    assert fast.dram.write_bursts == slow.dram.write_bursts
    assert fast.mshr_ops == slow.mshr_ops


# ---------------------------------------------------------------------------
# Fig. 11 design-sweep smoke: every variant engine must stay equivalent
# to its scalar loop *and* faster than it (same substitution
# ``figures.figure_11`` makes: the Piccolo system with the design's
# cache swapped in).
# ---------------------------------------------------------------------------
def _run_variant(design, batched, iterations):
    previous = memory_path.BATCHED_DEFAULT
    memory_path.BATCHED_DEFAULT = batched
    factory = FIG11_VARIANTS[design]
    try:
        clear_result_cache()
        start = time.perf_counter()
        result = run_system(
            "Piccolo",
            "PR",
            "TW",
            max_iterations=iterations,
            cache_factory=lambda size: factory(size),
        )
        return result, time.perf_counter() - start
    finally:
        memory_path.BATCHED_DEFAULT = previous
        clear_result_cache()


@pytest.mark.parametrize("design", sorted(FIG11_VARIANTS))
def test_fig11_variant_identical_across_modes(design):
    """Per-variant equivalence guard at the whole-system level."""
    fast, _ = _run_variant(design, batched=True, iterations=2)
    slow, _ = _run_variant(design, batched=False, iterations=2)
    assert fast.total_ns == slow.total_ns
    assert fast.cache_hits == slow.cache_hits
    assert fast.cache_misses == slow.cache_misses
    assert fast.dram.read_bursts == slow.dram.read_bursts
    assert fast.dram.write_bursts == slow.dram.write_bursts
    assert fast.mshr_ops == slow.mshr_ops


def test_fig11_variants_batched_beats_scalar(capsys):
    """Summed over the design sweep, the batched engines must win."""
    run_system("Piccolo", "PR", "TW", max_iterations=1)  # warm dataset cache
    scalar = batched = 0.0
    for design in FIG11_VARIANTS:
        _, dt = _run_variant(design, batched=False, iterations=3)
        scalar += dt
        _, dt = _run_variant(design, batched=True, iterations=3)
        batched += dt
    with capsys.disabled():
        print(
            f"\nfig11 variant smoke: scalar {scalar:.2f}s, batched "
            f"{batched:.2f}s, speedup {scalar / batched:.2f}x"
        )
    # full-grid trajectory shows much more; require a safe margin in CI
    assert batched < scalar / 2.0, (
        f"variant batched path regressed: {batched:.2f}s vs {scalar:.2f}s"
    )
