"""Hot-path perf smoke: the batched memory path must beat the scalar loop.

A CI-sized companion to ``tools/perf_report.py`` (which records the full
trajectory in ``BENCH_hotpath.json``): runs the quick PR cells once in
both execution modes and asserts the batched engine delivers a real
speedup over the seed-identical scalar fallback.  The threshold is
deliberately conservative (CI machines are noisy); the recorded
trajectory is where the honest numbers live.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_perf_hotpath.py -q
"""

import time

from repro.core import memory_path
from repro.experiments.runner import clear_result_cache, run_system

CELLS = [
    ("Piccolo", "PR", "TW", 3),
    ("GraphDyns (Cache)", "PR", "TW", 3),
]


def _time_cells(batched: bool) -> float:
    previous = memory_path.BATCHED_DEFAULT
    memory_path.BATCHED_DEFAULT = batched
    try:
        total = 0.0
        for system, algorithm, dataset, iters in CELLS:
            clear_result_cache()
            start = time.perf_counter()
            run_system(system, algorithm, dataset, max_iterations=iters)
            total += time.perf_counter() - start
        return total
    finally:
        memory_path.BATCHED_DEFAULT = previous


def test_batched_path_beats_scalar_fallback(capsys):
    run_system("Piccolo", "PR", "TW", max_iterations=1)  # warm dataset cache
    scalar = _time_cells(batched=False)
    batched = _time_cells(batched=True)
    with capsys.disabled():
        print(
            f"\nhotpath smoke: scalar {scalar:.2f}s, batched {batched:.2f}s, "
            f"speedup {scalar / batched:.2f}x"
        )
    # full-grid trajectory shows ~8-17x; require a safe margin in CI
    assert batched < scalar / 2.0, (
        f"batched path regressed: {batched:.2f}s vs scalar {scalar:.2f}s"
    )


def test_results_identical_across_modes():
    """Both modes must produce the same simulation, not just similar."""
    clear_result_cache()
    previous = memory_path.BATCHED_DEFAULT
    try:
        memory_path.BATCHED_DEFAULT = True
        fast = run_system("Piccolo", "PR", "TW", max_iterations=2)
        clear_result_cache()
        memory_path.BATCHED_DEFAULT = False
        slow = run_system("Piccolo", "PR", "TW", max_iterations=2)
    finally:
        memory_path.BATCHED_DEFAULT = previous
    clear_result_cache()
    assert fast.total_ns == slow.total_ns
    assert fast.cache_hits == slow.cache_hits
    assert fast.cache_misses == slow.cache_misses
    assert fast.dram.read_bursts == slow.dram.read_bursts
    assert fast.dram.write_bursts == slow.dram.write_bursts
    assert fast.mshr_ops == slow.mshr_ops
