"""Out-of-core smoke: a disk-backed mid-profile figure cell under budget.

The tier-1 grid runs disk-backed tiles only on toy-sized graphs; this
smoke builds a *mid*-profile tile store with the bucketed external sort
(one scatter pass into per-tile-row spill buckets, per-bucket sorts,
memmapped ``.npy`` tiles) and runs a Fig. 10 cell against it, so a
regression that only bites at scale -- a spill pass gone quadratic, an
attach that silently rebuilds, a memmap view materialising -- is caught
in CI without paying paper-scale cost.  The result must be bit-identical
to the in-memory build (the tilestore differential suite pins the tile
arrays; this pins the end-to-end simulation outputs at mid scale).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_ooc_smoke.py -q
"""

import dataclasses
import time

from repro.experiments.config import get_profile
from repro.experiments.runner import clear_result_cache, run_system

#: generous CI budget; the disk-backed cell takes ~15 s on the
#: reference container (see the ``ooc/mid`` trajectory cells in
#: BENCH_hotpath.json)
BUDGET_SECONDS = 300.0


def test_mid_profile_disk_backed_cell_under_budget(tmp_path, capsys):
    mid = get_profile("mid")
    disk = dataclasses.replace(
        mid, tile_backing="disk", tile_store_root=str(tmp_path)
    )
    clear_result_cache()
    start = time.perf_counter()
    disk_result = run_system("Piccolo", "PR", "UU", scale=disk)
    elapsed = time.perf_counter() - start
    # the external-sort store was actually built where we pointed it
    assert list(tmp_path.glob("tiles-*"))
    # backings share cell digests by design, so the memo must be
    # dropped to force a real in-memory comparison run
    clear_result_cache()
    mem_result = run_system("Piccolo", "PR", "UU", scale=mid)
    with capsys.disabled():
        print(f"\nooc smoke: disk-backed Fig. 10 PR/UU mid cell in "
              f"{elapsed:.1f}s (budget {BUDGET_SECONDS:.0f}s)")
    clear_result_cache()
    assert elapsed < BUDGET_SECONDS, (
        f"disk-backed mid cell took {elapsed:.1f}s "
        f"(budget {BUDGET_SECONDS}s)"
    )
    assert disk_result.to_record() == mem_result.to_record()
