"""Fig. 20b -- prefetching disabled (Sec. VIII-B).

Piccolo with the topology prefetcher limited to a small outstanding
window.  Paper headline: 22.8 % slowdown in geometric mean without
prefetching.
"""

from repro.experiments.figures import figure_20b
from repro.utils.stats import geometric_mean


def test_fig20b_prefetch(run_figure):
    rows = run_figure("Fig. 20b: prefetching disabled", figure_20b)
    slowdowns = [1.0 / r["norm_perf_without"] for r in rows]
    gm_slowdown = geometric_mean(slowdowns) - 1.0
    print(f"\nGM slowdown without prefetching: {gm_slowdown:.1%} "
          f"(paper: 22.8 %)")
    for r in rows:
        assert r["norm_perf_without"] <= 1.0 + 1e-9, r["dataset"]
    assert gm_slowdown > 0.05
