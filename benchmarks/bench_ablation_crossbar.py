"""Ablation: crossbar/updater contention model (Sec. II-B).

Not a paper figure.  The paper's pipeline sketch routes processed edges
through a crossbar to per-PE updaters; the figure sweeps assume the
conflict-free crossbar of the flat model.  This ablation runs PageRank
with the destination-distribution contention model enabled and reports
the compute-side inflation and the end-to-end effect: power-law
stand-ins (hot in-degree vertices) inflate compute, uniform
small-world graphs barely move, and because graph processing is
memory-bound (Sec. I) the end-to-end change stays small -- evidence
the flat model does not distort the paper's conclusions.
"""

from repro.accel.pipeline import PipelineConfig
from repro.accel.systems import make_system
from repro.graph.datasets import load_dataset


def figure_crossbar_ablation():
    rows = []
    for dataset in ("SW", "FS", "WS26"):
        graph = load_dataset(dataset)
        results = {}
        for label, pipeline in (
            ("flat", PipelineConfig()),
            ("crossbar", PipelineConfig(crossbar_model=True)),
        ):
            system = make_system("Piccolo", pipeline=pipeline)
            results[label] = system.run(graph, "PR", max_iterations=3)
        flat, xbar = results["flat"], results["crossbar"]
        rows.append({
            "dataset": dataset,
            "compute_inflation": (xbar.compute_ns / flat.compute_ns
                                  if flat.compute_ns else 1.0),
            "total_inflation": (xbar.total_ns / flat.total_ns
                                if flat.total_ns else 1.0),
        })
    return rows


def test_crossbar_ablation(run_figure):
    rows = run_figure("Ablation: crossbar contention model",
                      figure_crossbar_ablation)
    by_dataset = {r["dataset"]: r for r in rows}
    # Contention can only add compute time.
    for row in rows:
        assert row["compute_inflation"] >= 0.999
        assert row["total_inflation"] >= 0.999
    # Power-law stand-ins suffer more updater contention than the
    # uniform small-world graph.
    assert (by_dataset["FS"]["compute_inflation"]
            >= by_dataset["WS26"]["compute_inflation"] - 0.01)
    # Memory-boundedness keeps the end-to-end effect modest.
    for row in rows:
        assert row["total_inflation"] < 1.6
