"""Parallel sweep smoke: a 2-worker mid-profile sweep under a budget.

The parallel orchestrator's correctness properties (bit-identical
results, kill-and-resume, one graph copy) are pinned at toy scale in
``tests/test_parallel.py``; this smoke exercises the same machinery at
the ``mid`` profile in CI -- spawn workers, memmapped graph sharing,
per-cell checkpoints -- so a regression that only bites with real
worker processes and non-trivial graphs (a spec that stopped pickling,
a memmap attach that silently regenerates, a checkpoint that no longer
round-trips) is caught under a wall-clock budget.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel_smoke.py -q
"""

import time

from repro.experiments import parallel
from repro.experiments.runner import CellSpec, clear_result_cache

#: generous CI budget; the sweep takes ~30 s serial on the reference
#: container (see the ``parallel/`` trajectory in BENCH_hotpath.json)
BUDGET_SECONDS = 300.0

#: the smoke sweep: the mid-profile Fig. 10 PR cells on the smallest
#: real-world dataset, baseline + Piccolo
SPECS = [
    CellSpec(system=system, algorithm="PR", dataset="UU", scale="mid")
    for system in ("GraphDyns (Cache)", "Piccolo")
]


def test_two_worker_mid_sweep_under_budget(tmp_path, capsys):
    clear_result_cache()
    start = time.perf_counter()
    outcomes = parallel.run_cells(
        SPECS, workers=2, checkpoint_dir=tmp_path / "ck"
    )
    elapsed = time.perf_counter() - start
    with capsys.disabled():
        print(f"\nparallel smoke: 2-worker mid Fig. 10 PR/UU sweep in "
              f"{elapsed:.1f}s (budget {BUDGET_SECONDS:.0f}s)")
    clear_result_cache()
    assert elapsed < BUDGET_SECONDS, (
        f"2-worker mid sweep took {elapsed:.1f}s (budget {BUDGET_SECONDS}s)"
    )
    # every cell ran in a worker and was checkpointed
    assert [o.source for o in outcomes] == ["worker", "worker"]
    assert all(o.result.total_ns > 0 for o in outcomes)
    store = parallel.SweepCheckpointStore(tmp_path / "ck")
    assert len(store) == len(SPECS)
    # a resumed sweep serves every cell from the checkpoints
    resumed = parallel.run_cells(
        SPECS, workers=2, resume=True, checkpoint_dir=tmp_path / "ck"
    )
    assert [o.source for o in resumed] == ["checkpoint", "checkpoint"]
    assert [o.result for o in resumed] == [o.result for o in outcomes]
