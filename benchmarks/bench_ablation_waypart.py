"""Ablation -- way partitioning in Piccolo-cache (Sec. V-B).

Without partitioning, a fg-tag miss with a matching line always replaces
a sector, so "any data covered by a single tag will occupy only up to
one way of the cache" (the naive LRU failure mode the paper describes).
Equal way partitioning pre-allocates ways across the tile's tags.  This
ablation measures that design choice directly.
"""

from repro.experiments.runner import run_system
from repro.utils.stats import geometric_mean


def collect_rows():
    rows = []
    for dataset in ("TW", "SW", "FS"):
        for algorithm in ("PR", "BFS"):
            equal = run_system(
                "Piccolo", algorithm, dataset, way_partition="equal"
            )
            naive = run_system(
                "Piccolo", algorithm, dataset, way_partition="naive"
            )
            rows.append(
                {
                    "dataset": dataset,
                    "algorithm": algorithm,
                    "equal_ns": equal.total_ns,
                    "naive_ns": naive.total_ns,
                    "partition_gain": naive.total_ns / equal.total_ns,
                }
            )
    return rows


def test_ablation_way_partitioning(run_figure):
    rows = run_figure("Ablation: equal way partitioning", collect_rows)
    gm = geometric_mean([r["partition_gain"] for r in rows])
    print(f"\nGM gain of equal partitioning over naive (quota-1): {gm:.3f}x")
    # Partitioning must never lose materially, and help overall.
    assert gm > 0.98
    assert all(r["partition_gain"] > 0.9 for r in rows)
