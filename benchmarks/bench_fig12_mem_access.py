"""Fig. 12 -- normalised off-chip memory access breakdown.

RD/WR transaction counts of Piccolo normalised to GraphDyns (Cache).
Paper headline: 43.2 % fewer transactions in geometric mean.
"""

from repro.experiments.figures import figure_12
from repro.utils.stats import geometric_mean


def test_fig12_mem_access(run_figure):
    rows = run_figure("Fig. 12: normalised memory accesses", figure_12)
    piccolo_totals = [
        r["total_norm"] for r in rows if r["system"] == "Piccolo"
    ]
    gm_reduction = 1.0 - geometric_mean(piccolo_totals)
    print(f"\nPiccolo GM transaction reduction: {gm_reduction:.1%} "
          f"(paper: 43.2 %)")
    assert gm_reduction > 0.25, "Piccolo must cut transactions substantially"
    # Every baseline row normalises to exactly 1.0 by construction.
    for r in rows:
        if r["system"] == "GraphDyns (Cache)":
            assert abs(r["total_norm"] - 1.0) < 1e-9
