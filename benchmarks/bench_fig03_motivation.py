"""Fig. 3 -- motivational experiment.

BFS on the TW/SW/FS stand-ins under non-tiling and perfect tiling:
useful vs unuseful off-chip traffic and RD/WR transaction counts.
Paper shape: non-tiling wastes most fetched bytes (>90 % unuseful at full
scale); perfect tiling is nearly all-useful but pays repeated topology
reads.
"""

from repro.experiments.figures import figure_3


def test_fig03_motivation(run_figure):
    rows = run_figure("Fig. 3: useful vs unuseful traffic (BFS)", figure_3)
    by_key = {(r["dataset"], r["mode"]): r for r in rows}
    # Non-tiling must waste far more of its traffic than perfect tiling.
    for dataset in ("TW", "SW", "FS"):
        non = by_key[(dataset, "Non-Tiling")]
        perfect = by_key[(dataset, "Perfect Tiling")]
        assert non["unuseful_pct"] > perfect["unuseful_pct"] + 20
        assert perfect["cache_hit_rate"] > 0.9
