"""Fig. 14 -- energy consumption breakdown.

Per-component energy (Acc / Cache / DRAM RD / DRAM WR / DRAM I/O /
Others) of Piccolo normalised to GraphDyns (Cache).  Paper headline:
37.3 % less energy in geometric mean, driven by the DRAM I/O reduction;
up to 59.7 % on the best workload.
"""

from repro.experiments.figures import figure_14
from repro.utils.stats import geometric_mean


def test_fig14_energy(run_figure):
    rows = run_figure("Fig. 14: normalised energy breakdown", figure_14)
    piccolo = [r for r in rows if r["system"] == "Piccolo"]
    gm_saving = 1.0 - geometric_mean([r["total_norm"] for r in piccolo])
    best_saving = 1.0 - min(r["total_norm"] for r in piccolo)
    print(f"\nPiccolo GM energy saving: {gm_saving:.1%} (paper: 37.3 %); "
          f"best: {best_saving:.1%} (paper: 59.7 %)")
    assert gm_saving > 0.15
    assert best_saving > 0.30
    # DRAM I/O must be the dominant DRAM term for the baseline.
    for r in rows:
        if r["system"] == "GraphDyns (Cache)":
            assert r["DRAM I/O"] >= r["DRAM RD"] - 1e-9
