"""Ablation -- locality-monitor fallback (Sec. VIII-A).

For regular (sequential) access patterns, FIM wastes bandwidth on offset
bursts; the paper suggests a locality monitor that falls back to normal
bursts.  This ablation runs a sequential sweep and a random sweep through
the fine-grained path with and without the monitor.
"""

import numpy as np

from repro.core.collection_mshr import CollectionExtendedMSHR
from repro.core.memory_path import FineGrainedMemoryPath, LocalityMonitor
from repro.core.piccolo_cache import PiccoloCache
from repro.dram.spec import default_config
from repro.dram.system import DRAMModel


def run_path(addrs, monitor):
    config = default_config()
    model = DRAMModel(config)
    cache = PiccoloCache(4096, ways=8, fg_tag_bits=4)
    mshr = CollectionExtendedMSHR(model.mapper, num_entries=64)
    path = FineGrainedMemoryPath(cache, mshr, locality_monitor=monitor)
    path.run(addrs, rmw=False)
    path.flush()
    ops, bypass_addrs, bypass_writes = path.drain()
    phase = model.phase(
        addrs=bypass_addrs if bypass_addrs.size else None,
        is_write=bypass_writes if bypass_addrs.size else None,
        fim_ops=ops,
    )
    return phase


def collect_rows():
    rng = np.random.default_rng(0)
    sequential = (np.arange(64 * 1024, dtype=np.int64) * 8)
    random = (rng.integers(0, 1 << 22, 64 * 1024) * 8).astype(np.int64)
    rows = []
    for name, addrs in (("sequential", sequential), ("random", random)):
        plain = run_path(addrs, monitor=None)
        monitored = run_path(addrs, monitor=LocalityMonitor())
        rows.append(
            {
                "pattern": name,
                "plain_ns": plain.time_ns,
                "monitored_ns": monitored.time_ns,
                "monitor_gain": plain.time_ns / monitored.time_ns,
            }
        )
    return rows


def test_ablation_locality_monitor(run_figure):
    rows = run_figure("Ablation: locality-monitor fallback", collect_rows)
    by_pattern = {r["pattern"]: r for r in rows}
    # Sequential traffic benefits from the fallback (offset bursts saved).
    assert by_pattern["sequential"]["monitor_gain"] > 1.0
    # Random traffic must not regress materially under the monitor.
    assert by_pattern["random"]["monitor_gain"] > 0.9
