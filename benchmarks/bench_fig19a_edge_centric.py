"""Fig. 19a -- edge-centric vs vertex-centric (PageRank).

VC/EC x conventional/Piccolo, normalised to the VC conventional system.
Paper shape: Piccolo speeds up both processing models (except EC on the
ultra-sparse UU, where VC Piccolo is the best configuration).

Known scale deviation: at 2^12-reduced graph sizes the EC grid's
source-tile reload term (~ P x |V|) is proportionally smaller than at
paper scale, so EC Piccolo does not always beat EC conventional here;
see EXPERIMENTS.md.
"""

from repro.experiments.figures import figure_19a


def test_fig19a_edge_centric(run_figure):
    rows = run_figure("Fig. 19a: edge-centric vs vertex-centric", figure_19a)
    cell = {(r["dataset"], r["system"]): r["speedup"] for r in rows}
    datasets = sorted({r["dataset"] for r in rows})
    for dataset in datasets:
        # VC Piccolo beats VC conventional everywhere.
        assert cell[(dataset, "VC Piccolo")] > 1.0, dataset
    # On UU the best configuration is VC Piccolo (paper's observation).
    uu_best = max(
        ("VC Conven.", "VC Piccolo", "EC Conven.", "EC Piccolo"),
        key=lambda s: cell[("UU", s)],
    )
    assert uu_best == "VC Piccolo"
