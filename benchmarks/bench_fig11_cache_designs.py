"""Fig. 11 -- fine-grained cache designs on top of Piccolo-FIM.

Sectored, amoeba, scrabble, graphfire, Piccolo (LRU/RRIP) and the
8B-line ideal, normalised to the conventional-cache baseline system.
Paper shape: sectored is worst (can be below the conventional baseline);
8B-line is the ideal; Piccolo (LRU) lands within ~4 % of 8B-line; RRIP
adds only a marginal change.
"""

from repro.experiments.figures import figure_11
from repro.utils.stats import geometric_mean


def test_fig11_cache_designs(run_figure):
    rows = run_figure("Fig. 11: cache designs on Piccolo-FIM", figure_11)
    gm = {r["design"]: r["speedup"] for r in rows if r["algorithm"] == "GM"}
    assert gm["8B-Line"] >= gm["Sectored"], "8B-line must beat sectored"
    assert gm["Piccolo (LRU)"] >= gm["Sectored"]
    assert gm["Piccolo (LRU)"] >= gm["Amoeba"]
    # Piccolo tracks the 8B-line ideal closely (paper: within 3.9 %).
    assert gm["Piccolo (LRU)"] > 0.85 * gm["8B-Line"]
    # RRIP is at most a marginal change (paper: not worth the overhead).
    assert abs(gm["Piccolo (RRIP)"] - gm["Piccolo (LRU)"]) < 0.35 * gm["Piccolo (LRU)"]
