"""Fig. 20a -- enhanced FIM designs for other memory types (Sec. VIII-B).

DDR4 x4 with 11-bit column offsets (fewer offset-write bursts) and HBM
with a long-burst mode (eight offsets in one burst).  Paper headline:
+17.9 % (x4) and +20.3 % (HBM) over plain Piccolo in geometric mean.
"""

from repro.experiments.figures import figure_20a
from repro.utils.stats import geometric_mean


def test_fig20a_enhanced(run_figure):
    rows = run_figure("Fig. 20a: enhanced designs", figure_20a)
    algos = sorted({r["algorithm"] for r in rows})
    cell = {
        (r["algorithm"], r["memory"], r["system"]): r["speedup"] for r in rows
    }
    for memory in ("x4", "HBM"):
        plain = geometric_mean([cell[(a, memory, "Piccolo")] for a in algos])
        enhanced = geometric_mean(
            [cell[(a, memory, "Piccolo enhanced")] for a in algos]
        )
        gain = enhanced / plain - 1.0
        print(f"\n{memory}: enhanced gain {gain:+.1%} "
              f"(paper: +17.9 % x4 / +20.3 % HBM)")
        assert enhanced >= plain, memory
