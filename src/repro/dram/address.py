"""Physical address mapping: byte address -> (channel, rank, bank, row, col).

The default interleave, from LSB to MSB above the burst offset, is

    [ row | column | rank | bank | channel ]

i.e. consecutive 64 B blocks round-robin across channels, then banks,
then ranks (maximising bank-level parallelism for both streams and
random traffic), and only then walk the columns of each bank's open row
(streams still enjoy open-row hits: each bank sees ascending columns of
one row until a whole row stripe is consumed).  A destination tile of
W bytes therefore spreads across min(banks, W / burst) banks while
occupying only ceil(W / (banks * row_bytes)) rows per bank -- exactly the
structure graph tiling and the collection-extended MSHR exploit.

The bank index is additionally XOR-hashed with the low row bits
(permutation-based interleaving, standard in high-performance memory
controllers) so power-of-two strides -- e.g. OLAP column scans over
128 B rows -- do not alias onto a subset of banks.

All decode helpers are vectorised over NumPy arrays; the hot paths hand
whole miss streams through at once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dram.spec import DRAMConfig
from repro.utils.units import log2_exact


@dataclass(frozen=True)
class DecodedAddress:
    """A single decoded address (scalar convenience wrapper)."""

    channel: int
    rank: int
    bank: int
    row: int
    column: int
    word_in_row: int


class AddressMapper:
    """Bit-sliced address decoding for a :class:`DRAMConfig`."""

    def __init__(self, config: DRAMConfig) -> None:
        spec = config.spec
        self.config = config
        self.burst_shift = log2_exact(spec.burst_bytes)
        self.channel_bits = log2_exact(config.channels)
        self.column_bits = log2_exact(spec.row_bytes // spec.burst_bytes)
        self.bank_bits = log2_exact(spec.banks_per_rank)
        self.rank_bits = log2_exact(config.ranks)
        self.row_bits = log2_exact(config.rows_per_bank)
        self._word_shift = 3  # 8-byte FIM word granularity

    # ------------------------------------------------------------------
    def decode_many(
        self, addrs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised decode: returns (channel, rank, bank, row, column)."""
        addrs = np.asarray(addrs, dtype=np.int64)
        block = addrs >> self.burst_shift
        channel = block & (self.config.channels - 1)
        x = block >> self.channel_bits
        bank = x & (self.config.spec.banks_per_rank - 1)
        x >>= self.bank_bits
        rank = x & (self.config.ranks - 1)
        x >>= self.rank_bits
        column = x & ((1 << self.column_bits) - 1)
        x >>= self.column_bits
        row = x & (self.config.rows_per_bank - 1)
        # Permutation-based interleaving: spread power-of-two strides.
        bank = bank ^ (row & (self.config.spec.banks_per_rank - 1)) \
            ^ (column & (self.config.spec.banks_per_rank - 1))
        return channel, rank, bank, row, column

    def decode(self, addr: int) -> DecodedAddress:
        """Scalar decode with the in-row word index (FIM offset space)."""
        ch, ra, ba, ro, co = self.decode_many(np.asarray([addr]))
        word = int(co[0]) * (self.config.spec.burst_bytes // 8) + (
            (addr >> self._word_shift)
            & ((self.config.spec.burst_bytes // 8) - 1)
        )
        return DecodedAddress(
            channel=int(ch[0]),
            rank=int(ra[0]),
            bank=int(ba[0]),
            row=int(ro[0]),
            column=int(co[0]),
            word_in_row=word,
        )

    # ------------------------------------------------------------------
    def bank_key_many(self, addrs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised (global bank id, row id) for episode grouping.

        The global bank id enumerates every bank in the system:
        ``((channel * ranks) + rank) * banks_per_rank + bank``.
        """
        channel, rank, bank, row, _ = self.decode_many(addrs)
        spec = self.config.spec
        global_bank = (channel * self.config.ranks + rank) * spec.banks_per_rank + bank
        return global_bank, row

    def row_key_many(self, addrs: np.ndarray) -> np.ndarray:
        """Vectorised unique (bank, row) key -- the FIM grouping domain."""
        global_bank, row = self.bank_key_many(addrs)
        return row * self.config.total_banks + global_bank

    def word_in_row_many(self, addrs: np.ndarray) -> np.ndarray:
        """Vectorised in-row 8-byte word index (the FIM offset payload)."""
        addrs = np.asarray(addrs, dtype=np.int64)
        _, _, _, _, column = self.decode_many(addrs)
        words_per_burst = self.config.spec.burst_bytes // 8
        return column * words_per_burst + (
            (addrs >> self._word_shift) & (words_per_burst - 1)
        )

    def decode_fim_many(
        self, addrs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised :meth:`decode_scalar`: one pass for a whole event
        stream.

        Returns ``(channel, rank, global_bank, row, row_key, word)``
        arrays -- everything the collection-extended MSHR's batch path
        needs, matching the scalar decode bit for bit.
        """
        addrs = np.asarray(addrs, dtype=np.int64)
        channel, rank, bank, row, column = self.decode_many(addrs)
        spec = self.config.spec
        global_bank = (
            channel * self.config.ranks + rank
        ) * spec.banks_per_rank + bank
        row_key = row * self.config.total_banks + global_bank
        words_per_burst = spec.burst_bytes >> 3
        word = column * words_per_burst + (
            (addrs >> self._word_shift) & (words_per_burst - 1)
        )
        return channel, rank, global_bank, row, row_key, word

    def channel_of_many(self, addrs: np.ndarray) -> np.ndarray:
        """Vectorised channel index."""
        addrs = np.asarray(addrs, dtype=np.int64)
        return (addrs >> self.burst_shift) & (self.config.channels - 1)

    # ------------------------------------------------------------------
    # Scalar fast path (pure-int; the per-miss hot loop of the MSHR)
    # ------------------------------------------------------------------
    def decode_scalar(self, addr: int) -> tuple[int, int, int, int, int]:
        """Decode one address without NumPy.

        Returns ``(channel, rank, global_bank, row, word_in_row)`` where
        ``global_bank`` enumerates every bank in the system and
        ``word_in_row`` is the 8-byte FIM offset within the row.
        """
        cfg = self.config
        spec = cfg.spec
        block = addr >> self.burst_shift
        channel = block & (cfg.channels - 1)
        x = block >> self.channel_bits
        bank = x & (spec.banks_per_rank - 1)
        x >>= self.bank_bits
        rank = x & (cfg.ranks - 1)
        x >>= self.rank_bits
        column = x & ((1 << self.column_bits) - 1)
        x >>= self.column_bits
        row = x & (cfg.rows_per_bank - 1)
        bank = bank ^ (row & (spec.banks_per_rank - 1)) \
            ^ (column & (spec.banks_per_rank - 1))
        global_bank = (channel * cfg.ranks + rank) * spec.banks_per_rank + bank
        words_per_burst = spec.burst_bytes >> 3
        word = column * words_per_burst + ((addr >> 3) & (words_per_burst - 1))
        return channel, rank, global_bank, row, word
