"""DRAM device specifications and timing parameters (Sec. II-C, VII-G).

Timing values follow the JEDEC grades the paper evaluates: DDR4-2400R
(x4/x8/x16), LPDDR4, GDDR5 and HBM.  Only the parameters the episode
model consumes are carried; all are in nanoseconds.

The FIM-related geometry (items per scatter/gather, offset-burst counts)
is derived from the device width exactly as Sec. IV-B describes: offsets
are 16-bit words duplicated across all chips of a rank, so a rank built
from narrower devices needs more offset-write bursts (Fig. 15), and
32 B-burst devices move four items per operation instead of eight.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.units import KIB, ceil_div, log2_exact

#: Data-bus width of a rank in bytes (64-bit channel for DDR-family).
RANK_BUS_BYTES = 8


@dataclass(frozen=True)
class DeviceSpec:
    """Timing and geometry of one memory device grade.

    Attributes:
        name: grade name, e.g. ``"DDR4_2400_x16"``.
        family: ``"DDR4" | "LPDDR4" | "GDDR5" | "HBM"``.
        device_width_bits: data pins per chip (x4/x8/x16; 128 for HBM).
        burst_bytes: bytes moved by one fixed-length burst (64 for DDR4,
            32 for LPDDR4/GDDR5/HBM -- Sec. VII-G).
        data_rate_gtps: transfer rate in GT/s.
        bus_bytes: rank data-bus width in bytes.
        banks_per_rank: banks addressable per rank.
        row_bytes: bytes in one (rank-wide) DRAM row.
        tRCD/tRP/tRAS/tWR/tCCD/tCL: JEDEC core timings in ns.
    """

    name: str
    family: str
    device_width_bits: int
    burst_bytes: int
    data_rate_gtps: float
    bus_bytes: int
    banks_per_rank: int
    row_bytes: int
    tRCD: float
    tRP: float
    tRAS: float
    tWR: float
    tCCD: float
    tCL: float

    # ------------------------------------------------------------------
    @property
    def chips_per_rank(self) -> int:
        return max(1, (self.bus_bytes * 8) // self.device_width_bits)

    @property
    def tBURST(self) -> float:
        """Data-bus occupancy of one burst in ns."""
        return self.burst_bytes / (self.bus_bytes * self.data_rate_gtps)

    @property
    def tRC(self) -> float:
        """Minimum same-bank ACT-to-ACT interval."""
        return self.tRAS + self.tRP

    @property
    def row_words(self) -> int:
        """8-byte words per row (the FIM offset address space)."""
        return self.row_bytes // 8

    @property
    def peak_bandwidth_gbps(self) -> float:
        """Peak per-channel bandwidth in GB/s."""
        return self.bus_bytes * self.data_rate_gtps

    # ------------------------------------------------------------------
    # Piccolo-FIM geometry (Sec. IV-B, Sec. VIII-B)
    # ------------------------------------------------------------------
    @property
    def fim_items_per_op(self) -> int:
        """8-byte items moved by one scatter/gather (8 for 64 B bursts,
        4 for 32 B bursts)."""
        return max(1, self.burst_bytes // 8)

    def fim_offset_bursts(self, offset_bits: int = 16) -> int:
        """Bursts needed to broadcast the offsets to every chip.

        Offsets are duplicated across all chips of the rank (Sec. IV-B):
        total bits = items x offset_bits x chips.
        """
        if offset_bits <= 0:
            raise ValueError("offset_bits must be positive")
        total_bits = self.fim_items_per_op * offset_bits * self.chips_per_rank
        return ceil_div(total_bits, self.burst_bytes * 8)

    @property
    def fim_data_bursts(self) -> int:
        """Bursts to move the gathered/scattered items themselves."""
        return ceil_div(self.fim_items_per_op * 8, self.burst_bytes)

    @property
    def fim_internal_window(self) -> float:
        """The tWR + tRP + tRCD window that hides the in-bank operation
        (Sec. VI); must cover items x tCCD."""
        return self.tWR + self.tRP + self.tRCD

    def fim_window_ok(self) -> bool:
        """Whether the internal scatter/gather fits the virtual-row window
        without stretching tWR (Sec. VI adjusts tWR otherwise)."""
        return self.fim_items_per_op * self.tCCD <= self.fim_internal_window

    def validate(self) -> None:
        """Sanity-check geometry; raises ``ValueError`` on nonsense specs."""
        log2_exact(self.burst_bytes)
        log2_exact(self.row_bytes)
        log2_exact(self.banks_per_rank)
        if self.row_bytes < self.burst_bytes:
            raise ValueError("row must hold at least one burst")
        for field_name in ("tRCD", "tRP", "tRAS", "tWR", "tCCD", "tCL"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")


def _ddr4(width: int, banks: int) -> DeviceSpec:
    # DDR4-2400R, 1.2 V: tCK = 0.833 ns, CL17, tRCD = tRP = 16 nCK,
    # tRAS = 32 ns, tWR = 15 ns, tCCD_L = 6 nCK (Sec. VI/VII-A).
    tck = 1 / 1.2
    return DeviceSpec(
        name=f"DDR4_2400_x{width}",
        family="DDR4",
        device_width_bits=width,
        burst_bytes=64,
        data_rate_gtps=2.4,
        bus_bytes=RANK_BUS_BYTES,
        banks_per_rank=banks,
        row_bytes=8 * KIB,
        tRCD=16 * tck,
        tRP=16 * tck,
        tRAS=32.0,
        tWR=15.0,
        tCCD=6 * tck,
        tCL=17 * tck,
    )


DEVICES: dict[str, DeviceSpec] = {
    "DDR4_2400_x16": _ddr4(16, 8),
    "DDR4_2400_x8": _ddr4(8, 16),
    "DDR4_2400_x4": _ddr4(4, 16),
    "LPDDR4_3200": DeviceSpec(
        name="LPDDR4_3200",
        family="LPDDR4",
        device_width_bits=16,
        burst_bytes=32,
        data_rate_gtps=3.2,
        bus_bytes=RANK_BUS_BYTES,
        banks_per_rank=8,
        row_bytes=4 * KIB,
        tRCD=18.0,
        tRP=18.0,
        tRAS=42.0,
        tWR=18.0,
        tCCD=5.0,
        tCL=18.0,
    ),
    "GDDR5_6000": DeviceSpec(
        name="GDDR5_6000",
        family="GDDR5",
        device_width_bits=32,
        burst_bytes=32,
        data_rate_gtps=6.0,
        bus_bytes=RANK_BUS_BYTES,
        banks_per_rank=16,
        row_bytes=2 * KIB,
        tRCD=14.0,
        tRP=14.0,
        tRAS=28.0,
        tWR=15.0,
        tCCD=3.0,
        tCL=15.0,
    ),
    "HBM2_2000": DeviceSpec(
        name="HBM2_2000",
        family="HBM",
        device_width_bits=128,
        burst_bytes=32,
        data_rate_gtps=2.0,
        bus_bytes=16,
        banks_per_rank=16,
        row_bytes=2 * KIB,
        tRCD=14.0,
        tRP=14.0,
        tRAS=33.0,
        tWR=15.0,
        tCCD=2.0,
        tCL=14.0,
    ),
}


@dataclass(frozen=True)
class DRAMConfig:
    """A full memory system: device grade x channels x ranks.

    The paper's default is one channel of four-rank DDR4-2400R x16
    (Sec. VII-A); Fig. 16 sweeps channels/ranks.

    Attributes:
        offset_bits: FIM column-offset width; 16 by default, 11 for the
            enhanced narrow-device design of Sec. VIII-B.
        long_burst_fim: enhanced 32 B-burst design (Sec. VIII-B): the chip
            supports a double-length burst so one operation moves eight
            items.
        rows_per_bank: storage depth; only affects address decoding range.
    """

    spec: DeviceSpec
    channels: int = 1
    ranks: int = 4
    offset_bits: int = 16
    long_burst_fim: bool = False
    rows_per_bank: int = 1 << 16

    def __post_init__(self) -> None:
        self.spec.validate()
        log2_exact(self.channels)
        log2_exact(self.ranks)
        log2_exact(self.rows_per_bank)
        if not 1 <= self.offset_bits <= 16:
            raise ValueError("offset_bits must be in [1, 16]")

    @property
    def total_banks(self) -> int:
        return self.channels * self.ranks * self.spec.banks_per_rank

    @property
    def capacity_bytes(self) -> int:
        return self.total_banks * self.rows_per_bank * self.spec.row_bytes

    @property
    def peak_bandwidth_gbps(self) -> float:
        return self.channels * self.spec.peak_bandwidth_gbps

    # Derived FIM geometry under this config's design options -----------
    @property
    def fim_items_per_op(self) -> int:
        if self.long_burst_fim:
            return 8
        return self.spec.fim_items_per_op

    @property
    def fim_offset_bursts(self) -> int:
        if self.long_burst_fim:
            # One double-length burst carries all eight offsets.
            total_bits = 8 * self.offset_bits * self.spec.chips_per_rank
            return max(1, ceil_div(total_bits, 2 * self.spec.burst_bytes * 8))
        total_bits = (
            self.spec.fim_items_per_op * self.offset_bits * self.spec.chips_per_rank
        )
        return ceil_div(total_bits, self.spec.burst_bytes * 8)

    @property
    def fim_data_bursts(self) -> int:
        if self.long_burst_fim:
            return ceil_div(8 * 8, self.spec.burst_bytes)
        return self.spec.fim_data_bursts


def default_config(**overrides) -> DRAMConfig:
    """The paper's default memory system (Sec. VII-A)."""
    base = DRAMConfig(spec=DEVICES["DDR4_2400_x16"], channels=1, ranks=4)
    return replace(base, **overrides) if overrides else base
