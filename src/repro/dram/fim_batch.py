"""Array-backed FIM-operation stream (structure-of-arrays ``FimOpBatch``).

The collection-extended MSHR emits one scatter/gather operation per
filled (or evicted) row collection.  At paper scale a single tile
produces millions of them, and a ``list[FimOp]`` of frozen dataclasses
costs ~200 B per operation in Python-object overhead -- the dominant
term of peak RSS before this module existed.  :class:`FimOpBatch`
stores the same stream as seven parallel NumPy columns
(``channel``/``rank``/``bank``/``row``/``items``/``is_scatter``/
``rank_level``, ~26 B per operation) and hands them to the DRAM phase
evaluator as contiguous arrays, so the scheduling math in
:mod:`repro.dram.system` vectorises instead of walking Python objects.

The batch is a cheap *builder* as well as a view: scalar appends land
in staging lists, array extends keep sealed column chunks, and
:meth:`columns` consolidates lazily.  For ergonomics (and the existing
test-suite idiom) a batch still behaves like a sequence of
:class:`FimOp`: indexing returns a ``FimOp``, iteration yields them,
and ``==`` compares against plain lists of ops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

#: column order of every array-tuple view (``columns()``, memo records)
FIM_COLUMNS = (
    "channel",
    "rank",
    "bank",
    "row",
    "items",
    "is_scatter",
    "rank_level",
)

_INT_COLS = 5  # leading int64 columns; the last two are bool


@dataclass(frozen=True)
class FimOp:
    """One in-memory scatter/gather (Piccolo) or rank-level gather (NMP).

    Attributes:
        channel/rank/bank: location (bank is the *global* bank id).
        row: target DRAM row (the operation never leaves it).
        items: 8-byte words moved (partially-filled MSHR evictions issue
            fewer than the maximum).
        is_scatter: scatter (write) vs gather (read).
        rank_level: True for the NMP baseline, which performs the internal
            accesses over the rank's shared data path instead of in-bank.
    """

    channel: int
    rank: int
    bank: int
    row: int
    items: int
    is_scatter: bool
    rank_level: bool = False


def _empty_columns() -> tuple[np.ndarray, ...]:
    return tuple(
        np.empty(0, dtype=np.int64 if i < _INT_COLS else bool)
        for i in range(len(FIM_COLUMNS))
    )


class FimOpBatch:
    """Append-only structure-of-arrays stream of FIM operations."""

    __slots__ = ("_chunks", "_staging")

    def __init__(self, columns: tuple[np.ndarray, ...] | None = None) -> None:
        #: sealed column chunks, each a 7-tuple of parallel arrays
        self._chunks: list[tuple[np.ndarray, ...]] = []
        #: scalar-append staging area, one Python list per column
        self._staging: tuple[list, ...] = tuple([] for _ in FIM_COLUMNS)
        if columns is not None:
            self.extend_columns(columns)

    # -- construction ---------------------------------------------------
    @classmethod
    def from_ops(cls, ops: Iterable[FimOp]) -> "FimOpBatch":
        batch = cls()
        batch.extend(ops)
        return batch

    def append(
        self,
        channel: int,
        rank: int,
        bank: int,
        row: int,
        items: int,
        is_scatter: bool,
        rank_level: bool = False,
    ) -> None:
        st = self._staging
        st[0].append(channel)
        st[1].append(rank)
        st[2].append(bank)
        st[3].append(row)
        st[4].append(items)
        st[5].append(is_scatter)
        st[6].append(rank_level)

    def append_op(self, op: FimOp) -> None:
        self.append(
            op.channel, op.rank, op.bank, op.row,
            op.items, op.is_scatter, op.rank_level,
        )

    def extend(self, ops: "FimOpBatch | Iterable[FimOp]") -> None:
        """Append another batch (chunk merge, no copies) or FimOps."""
        if isinstance(ops, FimOpBatch):
            ops._seal()
            self._seal()
            self._chunks.extend(ops._chunks)
            return
        for op in ops:
            self.append_op(op)

    def extend_columns(self, columns: tuple[np.ndarray, ...]) -> None:
        """Append a sealed column tuple (e.g. a replay-memo record)."""
        if columns[0].size == 0:
            return
        self._seal()
        self._chunks.append(tuple(columns))

    # -- consolidation --------------------------------------------------
    def _seal(self) -> None:
        st = self._staging
        if not st[0]:
            return
        self._chunks.append(
            tuple(
                np.asarray(col, dtype=np.int64 if i < _INT_COLS else bool)
                for i, col in enumerate(st)
            )
        )
        self._staging = tuple([] for _ in FIM_COLUMNS)

    def columns(self) -> tuple[np.ndarray, ...]:
        """The consolidated (channel, rank, bank, row, items, is_scatter,
        rank_level) arrays; cached as the single remaining chunk."""
        self._seal()
        if not self._chunks:
            return _empty_columns()
        if len(self._chunks) > 1:
            merged = tuple(
                np.concatenate([chunk[i] for chunk in self._chunks])
                for i in range(len(FIM_COLUMNS))
            )
            self._chunks = [merged]
        return self._chunks[0]

    def tail_columns(self, start: int) -> tuple[np.ndarray, ...]:
        """Copy of rows ``[start:]`` as a column tuple (memo records)."""
        cols = self.columns()
        return tuple(col[start:].copy() for col in cols)

    def as_tuples(self) -> tuple[tuple, ...]:
        """Plain-tuple view of every row (canonical digest/compare form)."""
        cols = self.columns()
        return tuple(
            zip(*(col.tolist() for col in cols))
        ) if cols[0].size else ()

    def to_ops(self) -> list[FimOp]:
        cols = self.columns()
        return [
            FimOp(*row)
            for row in zip(*(col.tolist() for col in cols))
        ]

    def clear(self) -> None:
        self._chunks = []
        self._staging = tuple([] for _ in FIM_COLUMNS)

    # -- sequence behaviour ---------------------------------------------
    def __len__(self) -> int:
        return sum(chunk[0].size for chunk in self._chunks) + len(
            self._staging[0]
        )

    def __bool__(self) -> bool:
        return len(self) > 0

    def __iter__(self) -> Iterator[FimOp]:
        return iter(self.to_ops())

    def __getitem__(self, index):
        if isinstance(index, slice):
            cols = self.columns()
            return FimOpBatch(tuple(col[index].copy() for col in cols))
        cols = self.columns()
        n = cols[0].size
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("FimOpBatch index out of range")
        return FimOp(
            int(cols[0][index]),
            int(cols[1][index]),
            int(cols[2][index]),
            int(cols[3][index]),
            int(cols[4][index]),
            bool(cols[5][index]),
            bool(cols[6][index]),
        )

    def __eq__(self, other) -> bool:
        if isinstance(other, FimOpBatch):
            a, b = self.columns(), other.columns()
            if a[0].size != b[0].size:
                return False
            return all(np.array_equal(x, y) for x, y in zip(a, b))
        if isinstance(other, (list, tuple)):
            if len(other) != len(self):
                return False
            return self.to_ops() == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"FimOpBatch(n={len(self)})"

    @property
    def nbytes(self) -> int:
        """Bytes held by sealed column chunks (RSS accounting aid)."""
        return sum(
            col.nbytes for chunk in self._chunks for col in chunk
        )


__all__ = ["FimOp", "FimOpBatch", "FIM_COLUMNS"]
