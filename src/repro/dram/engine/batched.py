"""Vectorized event-driven channel controller (the batched engine).

This is a bit-exact re-implementation of
:class:`~repro.dram.engine.controller.ChannelController` on NumPy
columns, following the ``FimOpBatch`` structure-of-arrays template:
per-bank timing state lives in flat ``int64`` arrays indexed by the
global bank id ``rank * banks_per_rank + bank``, request queues are
preallocated column blocks, and the FR-FCFS queue scan -- the scalar
engine's measured hot spot -- evaluates every queued request's earliest
legal cycle and data-bus slot in a handful of array operations instead
of a per-request Python loop.

The decision procedure is the scalar controller's, term for term: the
same candidate priorities (refresh, in-flight FIM step, FIM start, row
hit by earliest data slot, preparation by earliest cycle), the same
tie-breaks (queue age, rank order, program insertion order) and the
same state-update rules as :class:`~repro.dram.engine.state.RankState`
and :class:`~repro.dram.engine.state.DataBus`.  The scalar engine stays
untouched as the oracle; ``tests/test_engine_batched_equivalence.py``
pins command streams, per-bank counters and total cycles bit-identical.

Instead of recomputing every JEDEC window term per scan, the scheduler
maintains *floor caches* incrementally.  All cross-bank constraint
terms are monotone in issue order (commands execute at non-decreasing
cycles and every scalar update is a ``max``), so each issued command
folds its constraints into

* ``_floor`` -- one flat array holding, per command class, the combined
  rank/group/refresh/tFAW floor: ACT floors per (rank, group) at base
  ``0``, PRE floors per rank at base ``_P`` (the refresh wall), RD and
  WR column floors per (rank, group) at bases ``_RDB`` / ``_WRB``.  A
  queued request's earliest cycle is then just
  ``max(bank_term, _floor[findex], now)``.
* ``_prep_term`` / ``_prep_findex`` -- per bank, the precharge/activate
  preparation term and its ``_floor`` index, refreshed whenever the
  bank's ``next_act`` / ``next_pre`` change.
* ``_bus_floor_rd`` / ``_bus_floor_wr`` -- per rank, the earliest
  data-bus start (occupancy, tRTRS rank switch, direction turnaround),
  rebuilt on each reservation.
* per-program slots (``_pp_*``) -- the current FIM step's bank term and
  floor index, reloaded when the step advances or a refresh clamps the
  rank, so the program scan is a single gather-max-argmin.

The driver loop (:meth:`repro.dram.engine.engine.DRAMEngine` in batched
mode) additionally fast-forwards over the scalar walk's cycle-by-cycle
creep: between two state changes the candidate set is provably constant
except where a refresh deadline (``now >= next_refresh_due``) is
crossed, so the clock jumps straight to the chosen command's cycle, to
the next admissible arrival, or to the first refresh crossing --
whichever the scalar walk would visit first.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.dram.engine.commands import (
    COMMAND_CODES,
    CommandColumns,
    CommandType,
    EngineStats,
    Request,
    RequestType,
)
from repro.dram.engine.controller import (
    WRITE_HI,
    WRITE_LO,
    _FimProgram,
    _FimStep,
    _NEVER,
)
from repro.dram.engine.timing import TimingTable

_ACT = COMMAND_CODES[CommandType.ACT]
_PRE = COMMAND_CODES[CommandType.PRE]
_RD = COMMAND_CODES[CommandType.RD]
_WR = COMMAND_CODES[CommandType.WR]
_REF = COMMAND_CODES[CommandType.REF]

_QCOLS = ("gkey", "rank", "bank", "rg", "row", "arrival", "frd", "fwr")


class _QueueColumns:
    """One request queue as parallel columns plus the Request objects."""

    gkey: np.ndarray
    rank: np.ndarray
    bank: np.ndarray
    rg: np.ndarray
    row: np.ndarray
    arrival: np.ndarray
    frd: np.ndarray
    fwr: np.ndarray
    requests: list[Request]

    __slots__ = _QCOLS + ("requests",)

    def __init__(self, capacity: int) -> None:
        for name in _QCOLS:
            setattr(self, name, np.zeros(capacity, dtype=np.int64))
        self.requests: list[Request] = []

    @property
    def n(self) -> int:
        return len(self.requests)

    def append(self, request: Request, gkey: int, rg: int,
               frd: int, fwr: int) -> None:
        i = len(self.requests)
        self.gkey[i] = gkey
        self.rank[i] = request.rank
        self.bank[i] = request.bank
        self.rg[i] = rg
        self.row[i] = request.row
        self.arrival[i] = request.arrival
        self.frd[i] = frd
        self.fwr[i] = fwr
        self.requests.append(request)

    def pop(self, index: int) -> Request:
        n = len(self.requests)
        if index < n - 1:
            for name in _QCOLS:
                col = getattr(self, name)
                col[index:n - 1] = col[index + 1:n]
        return self.requests.pop(index)


class BatchedChannelController:
    """One channel's scheduler on columnar state.

    Drive with :meth:`next_action` / :meth:`execute`; the split (the
    scalar controller fuses both in ``step``) is what lets the engine
    loop fast-forward past idle stretches without rescanning.
    """

    def __init__(
        self,
        timing: TimingTable,
        ranks: int,
        channel: int = 0,
        queue_depth: int = 32,
        fim_items: int = 8,
        fim_offset_bursts: int = 1,
        fim_data_bursts: int = 1,
        refresh_enabled: bool = True,
    ) -> None:
        self.timing = timing
        self.channel = channel
        self.queue_depth = queue_depth
        self.fim_items = fim_items
        self.fim_offset_bursts = fim_offset_bursts
        self.fim_data_bursts = fim_data_bursts
        self.refresh_enabled = refresh_enabled
        self.n_ranks = ranks
        bpr = timing.banks_per_rank
        groups = timing.bank_groups
        self._bpr = bpr
        self._bpg = timing.banks_per_group
        self._groups = groups
        n_banks = ranks * bpr
        self._n_banks = n_banks
        # Per-bank timing state (open_row: -1 = precharged).
        self._open_row = np.full(n_banks, -1, dtype=np.int64)
        self._next_act = np.zeros(n_banks, dtype=np.int64)
        self._next_pre = np.zeros(n_banks, dtype=np.int64)
        self._next_rd = np.zeros(n_banks, dtype=np.int64)
        self._next_wr = np.zeros(n_banks, dtype=np.int64)
        # Physically open row across FIM virtual sequences; mirrors the
        # scalar dict's three states: unset / None (-1) / row.
        self._phys_set = np.zeros(n_banks, dtype=bool)
        self._phys_row = np.full(n_banks, -1, dtype=np.int64)
        self._prog_active = np.zeros(n_banks, dtype=bool)
        # Combined class floors: [ACT per rg | PRE per rank | RD per rg
        # | WR per rg].  Zero-init is exact: refresh_until starts at 0
        # and dominates every _PAST-seeded window term.
        n_rg = ranks * groups
        self._P = n_rg
        self._RDB = n_rg + ranks
        self._WRB = 2 * n_rg + ranks
        self._floor = np.zeros(3 * n_rg + ranks, dtype=np.int64)
        self._act_sl = [slice(r * groups, (r + 1) * groups)
                        for r in range(ranks)]
        self._rd_sl = [slice(self._RDB + r * groups,
                             self._RDB + (r + 1) * groups)
                       for r in range(ranks)]
        self._wr_sl = [slice(self._WRB + r * groups,
                             self._WRB + (r + 1) * groups)
                       for r in range(ranks)]
        self._bank_rank_l = [g // bpr for g in range(n_banks)]
        self._bank_rg_l = [(g // bpr) * groups + (g % bpr) // self._bpg
                           for g in range(n_banks)]
        # Preparation candidates per bank: closed banks activate
        # (term=next_act, floor=ACT class), open banks precharge
        # (term=next_pre, floor=PRE class).  All banks start closed.
        self._prep_term = np.zeros(n_banks, dtype=np.int64)
        self._prep_findex = np.array(self._bank_rg_l, dtype=np.int64)
        # Refresh bookkeeping (rank-major 2D views share the buffers).
        self._refresh_until = np.zeros(ranks, dtype=np.int64)
        self._next_refresh_due = np.full(ranks, timing.tREFI,
                                         dtype=np.int64)
        self._min_due = timing.tREFI
        self._rank_idx = np.arange(ranks, dtype=np.int64)
        self._open_2d = self._open_row.reshape(ranks, bpr)
        self._prog_2d = self._prog_active.reshape(ranks, bpr)
        self._next_pre_2d = self._next_pre.reshape(ranks, bpr)
        self._next_act_2d = self._next_act.reshape(ranks, bpr)
        # tFAW: circular 4-slot ACT window per rank (plain Python).
        self._faw_win = [[0, 0, 0, 0] for _ in range(ranks)]
        self._faw_pos = [0] * ranks
        self._faw_len = [0] * ranks
        # Shared data bus (scalar state; one transfer at a time) plus
        # the per-rank earliest-start floors it implies.
        self._bus_busy_until = 0
        self._bus_last_rank = -1
        self._bus_last_dir_read = True
        self.bus_busy_clocks = 0
        self._bus_floor_rd = np.zeros(ranks, dtype=np.int64)
        self._bus_floor_wr = np.ones(ranks, dtype=np.int64)
        # Queues and in-flight FIM programs.  Program slots stay in
        # insertion order (retirement shifts the tail down) so a plain
        # argmin over cached step terms reproduces the scalar dict
        # walk's oldest-first tie-break.
        self._read = _QueueColumns(queue_depth)
        self._write = _QueueColumns(queue_depth)
        self._fim = _QueueColumns(queue_depth)
        self._programs: dict[int, _FimProgram] = {}
        self._prog_slot: dict[int, int] = {}
        self._pp_g = np.zeros(n_banks, dtype=np.int64)
        self._pp_term = np.zeros(n_banks, dtype=np.int64)
        self._pp_findex = np.zeros(n_banks, dtype=np.int64)
        self._pp_n = 0
        self._step_templates: dict[tuple, list[_FimStep]] = {}
        # The startable-FIM scan result is stable until the FIM queue
        # or the program set changes.
        self._fim_scan: tuple[int, int] | None = None
        self._fim_scan_dirty = True
        self._write_mode = False
        self._wm_hi = max(1, int(queue_depth * WRITE_HI))
        self._wm_lo = max(0, int(queue_depth * WRITE_LO))
        self._iota = np.arange(queue_depth, dtype=np.int64)
        self._first_scratch = np.zeros(n_banks + 1, dtype=np.int64)
        self._trace_rows: list[tuple] = []
        self.stats = EngineStats()
        self.finished: list[Request] = []

    # ------------------------------------------------------------------
    # Queue admission
    # ------------------------------------------------------------------
    def enqueue(self, request: Request) -> None:
        """Admit one request (caller respects :meth:`can_accept`)."""
        gkey = request.rank * self._bpr + request.bank
        rg = request.rank * self._groups + request.bank // self._bpg
        frd = self._RDB + rg
        fwr = self._WRB + rg
        if request.kind is RequestType.READ:
            self._read.append(request, gkey, rg, frd, fwr)
        elif request.kind is RequestType.WRITE:
            self._write.append(request, gkey, rg, frd, fwr)
        else:
            self._fim.append(request, gkey, rg, frd, fwr)
            self._fim_scan_dirty = True

    def can_accept(self, kind: RequestType) -> bool:
        """Whether the queue for ``kind`` has room."""
        if kind is RequestType.READ:
            return self._read.n < self.queue_depth
        if kind is RequestType.WRITE:
            return self._write.n < self.queue_depth
        return self._fim.n < self.queue_depth

    @property
    def pending(self) -> int:
        """Outstanding work: queued requests plus in-flight programs."""
        return (self._read.n + self._write.n + self._fim.n
                + len(self._programs))

    # ------------------------------------------------------------------
    # Scheduling: pick the scalar controller's winning candidate
    # ------------------------------------------------------------------
    def next_action(self, now: int) -> tuple[int, object | None]:
        """The candidate the scalar ``step(now)`` would execute.

        Returns ``(cycle, action)``; ``action is None`` means no
        candidate exists and ``cycle`` is the idle deadline (the next
        refresh due, or ``_NEVER``).
        """
        best_cycle = _NEVER
        best_prio = 9
        best_action: object | None = None

        if self.refresh_enabled and now >= self._min_due:
            got = self._best_refresh(now)
            if got is not None:
                best_cycle, best_prio, best_action = got[0], 0, got[1]

        if self._programs:
            cycle, g = self._best_program(now)
            if (cycle, 1) < (best_cycle, best_prio):
                best_cycle, best_prio, best_action = cycle, 1, ("fim", g)

        startable = self._next_startable_fim()
        if startable is not None:
            fim_index, arrival = startable
            cycle = now if now > arrival else arrival
            if (cycle, 2) < (best_cycle, best_prio):
                best_cycle, best_prio, best_action = \
                    cycle, 2, ("fim_start", fim_index)

        # With both regular queues empty the write-mode hysteresis is a
        # no-op and there is no regular candidate: skip the whole path.
        if self._read.requests or self._write.requests:
            self._update_write_mode()
            preferred = self._write if self._write_mode else self._read
            other = self._read if self._write_mode else self._write
            got = self._best_regular(preferred, now)
            if got is not None:
                cycle, action = got
                if (cycle, 3) < (best_cycle, best_prio):
                    best_cycle, best_prio, best_action = cycle, 3, action
            else:
                got = self._best_regular(other, now)
                if got is not None:
                    cycle, action = got
                    if (cycle, 4) < (best_cycle, best_prio):
                        best_cycle, best_prio, best_action = \
                            cycle, 4, action

        if best_action is None:
            due = self._min_due if self.refresh_enabled else _NEVER
            return due, None
        return best_cycle, best_action

    def next_refresh_crossing(self, now: int, cycle: int) -> int | None:
        """First refresh deadline in ``(now, cycle]``, if any.

        Crossing one changes the scalar walk's candidate set (the
        ``now >= next_refresh_due`` trigger is the only now-dependent
        condition between state changes), so the driver must rescan
        there instead of jumping straight to ``cycle``.
        """
        if not self.refresh_enabled or self._min_due > cycle:
            return None
        due = self._next_refresh_due
        mask = (due > now) & (due <= cycle)
        if not mask.any():
            return None
        return int(due[mask].min())

    # ------------------------------------------------------------------
    def _update_write_mode(self) -> None:
        if self._write_mode:
            if self._write.n <= self._wm_lo and self._read.n:
                self._write_mode = False
        else:
            if (self._write.n >= self._wm_hi
                    or (not self._read.n and self._write.n)):
                self._write_mode = True

    def _next_startable_fim(self) -> tuple[int, int] | None:
        """Oldest queued FIM request whose bank has no active program.

        Returns ``(queue_index, arrival)``; cached between calls, since
        the answer only moves when the FIM queue or program set does.
        """
        if not self._fim_scan_dirty:
            return self._fim_scan
        self._fim_scan_dirty = False
        n = self._fim.n
        got = None
        if n:
            if not self._programs:
                got = (0, int(self._fim.arrival[0]))
            else:
                free = ~self._prog_active[self._fim.gkey[:n]]
                if free.any():
                    i = int(np.argmax(free))
                    got = (i, int(self._fim.arrival[i]))
        self._fim_scan = got
        return got

    # ------------------------------------------------------------------
    # Regular read/write service (the vectorized FR-FCFS scan)
    # ------------------------------------------------------------------
    def _best_regular(self, q: _QueueColumns,
                      now: int) -> tuple[int, object] | None:
        n = q.n
        if n == 0:
            return None
        key = q.gkey[:n]
        if self._programs:
            valid = ~self._prog_active[key]
            if not valid.any():
                return None
        else:
            valid = None
        hit = self._open_row[key] == q.row[:n]
        if valid is not None:
            hit &= valid
        F = self._floor

        best_col: tuple[int, int, int] | None = None
        if hit.any():
            if q is self._read:
                base = self._next_rd[key]
                fidx = q.frd[:n]
                lead = self.timing.tCL
                busfloor = self._bus_floor_rd
            else:
                base = self._next_wr[key]
                fidx = q.fwr[:n]
                lead = self.timing.tCWL
                busfloor = self._bus_floor_wr
            cyc = np.maximum(base, F[fidx])
            np.maximum(cyc, now, out=cyc)
            # Rank hits by their earliest data-bus slot (DataBus rules:
            # occupancy, rank switch tRTRS, direction turnaround).
            data = cyc + lead
            if self.n_ranks == 1:
                np.maximum(data, busfloor.item(0), out=data)
            else:
                np.maximum(data, busfloor[q.rank[:n]], out=data)
            data_m = np.where(hit, data, _NEVER)
            dmin = int(data_m.min())
            tie = np.where(data_m == dmin, cyc, _NEVER)
            cmin = int(tie.min())
            ci = int(np.argmax(tie == cmin))
            if cmin <= now:
                # The hit issues immediately; preparations are clamped
                # to now too and only win on strictly-earlier cycles,
                # so none can -- skip the prep scan entirely.
                return cmin, ("column", q, ci)
            best_col = (dmin, cmin, ci)

        # Preparation candidates: the first queued request of each
        # program-free bank whose head request is not a row hit.
        idx = self._iota[:n]
        if valid is not None:
            k2 = np.where(valid, key, self._n_banks)
        else:
            k2 = key
        scratch = self._first_scratch
        scratch[k2[::-1]] = idx[::-1]
        pmask = (scratch[k2] == idx) & ~hit
        if valid is not None:
            pmask &= valid
        best_prep: tuple[int, int] | None = None
        if pmask.any():
            pterm = np.maximum(self._prep_term[key],
                               F[self._prep_findex[key]])
            np.maximum(pterm, now, out=pterm)
            pm = np.where(pmask, pterm, _NEVER)
            pmin = int(pm.min())
            best_prep = (pmin, int(np.argmax(pm == pmin)))

        if best_col is None and best_prep is None:
            return None
        if best_col is not None and (best_prep is None
                                     or best_prep[0] >= best_col[1]):
            return best_col[1], ("column", q, best_col[2])
        cycle, index = best_prep
        tag = "act" if int(self._open_row[int(key[index])]) == -1 else "pre"
        return cycle, (tag, q, index)

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------
    def _best_refresh(self, now: int) -> tuple[int, object] | None:
        """Best refresh-path candidate across all due ranks.

        Per rank: precharge the first open program-free bank, or the
        REF itself once every bank is closed; a rank whose remaining
        open banks are all program-owned contributes nothing (the
        scalar "noop" -- a finite prio-1 program candidate then exists
        and always outranks it).  Rank order breaks cycle ties, as in
        the scalar loop.
        """
        open2 = self._open_2d != -1
        closable = open2 & ~self._prog_2d
        has_closable = closable.any(axis=1)
        has_open = open2.any(axis=1)
        first_b = np.argmax(closable, axis=1)
        pre_c = np.maximum(self._next_pre_2d[self._rank_idx, first_b],
                           self._refresh_until)
        np.maximum(pre_c, now, out=pre_c)
        due = self._next_refresh_due
        ref_c = np.maximum(self._refresh_until, due)
        np.maximum(ref_c, self._next_act_2d.max(axis=1), out=ref_c)
        np.maximum(ref_c, now, out=ref_c)
        cyc = np.where(has_closable, pre_c,
                       np.where(has_open, _NEVER, ref_c))
        cyc = np.where(due <= now, cyc, _NEVER)
        m = int(cyc.min())
        if m >= _NEVER:
            return None
        r = int(np.argmin(cyc))
        if has_closable[r]:
            return m, ("pre_for_ref", r, int(first_b[r]))
        return m, ("refresh", r)

    # ------------------------------------------------------------------
    # FIM sequencing
    # ------------------------------------------------------------------
    def _best_program(self, now: int) -> tuple[int, int]:
        """Earliest in-flight FIM step; insertion order breaks ties."""
        F = self._floor
        K = self._pp_n
        if K == 1:
            e = self._pp_term.item(0)
            f = F.item(self._pp_findex.item(0))
            if f > e:
                e = f
            if now > e:
                e = now
            return e, self._pp_g.item(0)
        e = np.maximum(self._pp_term[:K], F[self._pp_findex[:K]])
        np.maximum(e, now, out=e)
        # argmin returns the first minimum: the oldest program.
        slot = int(np.argmin(e))
        return int(e[slot]), self._pp_g.item(slot)

    def _load_program_step(self, g: int, program: _FimProgram) -> None:
        """Cache the current step's bank term and class-floor index.

        Valid until the step issues: the bank is program-owned, so only
        this program's own commands and a rank REF (which reloads every
        same-rank slot) can move its terms; ``offsets_ready`` is final
        before any window-bound step becomes current.
        """
        step = program.current
        kind = step.kind
        if kind is CommandType.ACT:
            term = int(self._next_act[g])
            findex = self._bank_rg_l[g]
        elif kind is CommandType.PRE:
            term = int(self._next_pre[g])
            findex = self._P + self._bank_rank_l[g]
        elif kind is CommandType.RD:
            term = int(self._next_rd[g])
            findex = self._RDB + self._bank_rg_l[g]
        else:
            term = int(self._next_wr[g])
            findex = self._WRB + self._bank_rg_l[g]
        if step.window_bound and program.offsets_ready >= 0:
            bound = (program.offsets_ready
                     + self.fim_items * self.timing.tCCD_L)
            if bound > term:
                term = bound
        slot = self._prog_slot[g]
        self._pp_term[slot] = term
        self._pp_findex[slot] = findex

    def _fim_steps(self, needs_prefix: bool, was_open: bool,
                   scatter: bool) -> list[_FimStep]:
        """Shared, immutable step list for one FIM sequence shape."""
        key = (needs_prefix, was_open, scatter)
        cached = self._step_templates.get(key)
        if cached is not None:
            return cached
        steps: list[_FimStep] = []
        if needs_prefix:
            if was_open:
                steps.append(_FimStep(CommandType.PRE, virtual=False))
            steps.append(_FimStep(CommandType.ACT, virtual=False))
        for _ in range(self.fim_offset_bursts):
            steps.append(_FimStep(CommandType.WR, virtual=True, bursts=1,
                                  column=0))
        if scatter:
            for _ in range(self.fim_data_bursts):
                steps.append(_FimStep(CommandType.WR, virtual=True,
                                      bursts=1, column=8))
        steps.append(_FimStep(CommandType.PRE, virtual=True))
        steps.append(_FimStep(CommandType.ACT, virtual=True))
        if scatter:
            steps.append(_FimStep(CommandType.WR, virtual=True, bursts=1,
                                  column=0, window_bound=True))
        else:
            for _ in range(self.fim_data_bursts):
                steps.append(_FimStep(CommandType.RD, virtual=True,
                                      bursts=1, column=8,
                                      window_bound=True))
        self._step_templates[key] = steps
        return steps

    def _start_fim(self, index: int) -> None:
        request = self._fim.pop(index)
        self._fim_scan_dirty = True
        g = request.rank * self._bpr + request.bank
        open_row = int(self._open_row[g])
        physical = int(self._phys_row[g]) if self._phys_set[g] else open_row
        # Mirrors the scalar _start_fim decomposition (Sec. VI): -1
        # encodes the scalar's None for "no physically open row".
        steps = self._fim_steps(physical != request.row, open_row != -1,
                                request.kind is RequestType.SCATTER)
        program = _FimProgram(request=request, steps=steps)
        self._programs[g] = program
        self._prog_active[g] = True
        slot = self._pp_n
        self._prog_slot[g] = slot
        self._pp_g[slot] = g
        self._pp_n = slot + 1
        self._load_program_step(g, program)

    def _finish_program(self, g: int, request: Request) -> None:
        """Retire a program: free the bank and compact the slot table."""
        del self._programs[g]
        self._prog_active[g] = False
        self._fim_scan_dirty = True
        # The chip no-ops the virtual PRE/ACT: the physical row
        # survives the sequence.
        row = self._phys_row[g] if self._phys_set[g] else request.row
        self._open_row[g] = row
        if row == -1:
            self._prep_term[g] = self._next_act[g]
            self._prep_findex[g] = self._bank_rg_l[g]
        else:
            self._prep_term[g] = self._next_pre[g]
            self._prep_findex[g] = self._P + self._bank_rank_l[g]
        slot = self._prog_slot.pop(g)
        last = self._pp_n - 1
        if slot != last:
            # Shift the tail down to preserve insertion order.
            for arr in (self._pp_g, self._pp_term, self._pp_findex):
                arr[slot:last] = arr[slot + 1:last + 1]
            # repro-lint: disable=RL006 -- slot-index fixup over the pending
            # program map, bounded by the FIM program-slot cap, not requests
            for key in self._prog_slot:
                if self._prog_slot[key] > slot:
                    self._prog_slot[key] -= 1
        self._pp_n = last

    # ------------------------------------------------------------------
    # Command execution
    # ------------------------------------------------------------------
    def execute(self, action: Any, cycle: int) -> None:
        tag = action[0]
        if tag == "column":
            _, q, index = action
            self._issue_column(q.pop(index), cycle)
            return
        if tag == "fim":
            self._issue_fim_step(action[1], cycle)
            return
        if tag == "act":
            _, q, index = action
            request = q.requests[index]
            g = int(q.gkey[index])
            rg = int(q.rg[index])
            self._issue_act(g, request.rank, rg, cycle, request.row)
            self._phys_set[g] = True
            self._phys_row[g] = request.row
            self._record(cycle, _ACT, request.rank, request.bank,
                         request.row, -1, request.req_id, 0, 0, 0)
            self.stats.acts += 1
            return
        if tag in ("pre", "pre_for_ref"):
            if tag == "pre":
                _, q, index = action
                rank = int(q.rank[index])
                bank = int(q.bank[index])
                g = int(q.gkey[index])
            else:
                _, rank, bank = action
                g = rank * self._bpr + bank
            self._issue_pre(g, cycle)
            self._phys_set[g] = True
            self._phys_row[g] = -1
            self._record(cycle, _PRE, rank, bank, -1, -1, -1, 0, 0, 0)
            self.stats.pres += 1
            return
        if tag == "fim_start":
            self._start_fim(action[1])
            return
        if tag == "refresh":
            rank = action[1]
            self._issue_ref(rank, cycle)
            self._record(cycle, _REF, rank, 0, -1, -1, -1, 0, 0, 0)
            self.stats.refreshes += 1
            return
        raise ValueError(f"unknown action {tag!r}")

    def _issue_column(self, request: Request, cycle: int) -> None:
        t = self.timing
        is_read = request.kind is RequestType.READ
        lead = t.tCL if is_read else t.tCWL
        start = self._bus_earliest(request.rank, cycle + lead, is_read)
        self._bus_reserve(request.rank, start, t.tBL, is_read)
        g = request.rank * self._bpr + request.bank
        rg = self._bank_rg_l[g]
        if is_read:
            self._issue_rd(g, request.rank, rg, cycle, start + t.tBL)
        else:
            self._issue_wr(g, request.rank, rg, cycle, start + t.tBL)
        if request.issue_cycle < 0:
            request.issue_cycle = cycle
        request.finish_cycle = start + t.tBL
        self.finished.append(request)
        self.stats.reads += is_read
        self.stats.writes += not is_read
        self.stats.total_latency += request.latency
        self.stats.finished_requests += 1
        self._record(cycle, _RD if is_read else _WR, request.rank,
                     request.bank, request.row, request.column,
                     request.req_id, 0, t.tBL, start)

    def _issue_fim_step(self, g: int, cycle: int) -> None:
        program = self._programs[g]
        request = program.request
        step = program.current
        t = self.timing
        rank = self._bank_rank_l[g]
        bank = g - rank * self._bpr
        rg = self._bank_rg_l[g]
        is_act = step.kind is CommandType.ACT
        row = request.row if is_act else -1
        if request.issue_cycle < 0:
            request.issue_cycle = cycle
        data_start = 0
        data_end = None
        if step.bursts:
            is_read = step.kind is CommandType.RD
            lead = t.tCL if is_read else t.tCWL
            data_start = self._bus_earliest(rank, cycle + lead, is_read)
            self._bus_reserve(rank, data_start, t.tBL * step.bursts,
                              is_read)
            data_end = data_start + t.tBL * step.bursts
            self.stats.reads += is_read
            self.stats.writes += not is_read
        if is_act:
            self._issue_act(g, rank, rg, cycle, request.row)
        elif step.kind is CommandType.PRE:
            self._issue_pre(g, cycle)
        elif step.kind is CommandType.RD:
            self._issue_rd(g, rank, rg, cycle, data_end)
        else:
            self._issue_wr(g, rank, rg, cycle, data_end)
        if (step.virtual and step.kind is CommandType.WR and step.bursts
                and not step.window_bound):
            program.offsets_ready = max(
                program.offsets_ready, data_start + t.tBL * step.bursts
            )
        if not step.virtual:
            if is_act:
                self._phys_set[g] = True
                self._phys_row[g] = request.row
                self.stats.acts += 1
            elif step.kind is CommandType.PRE:
                self._phys_set[g] = True
                self._phys_row[g] = -1
                self.stats.pres += 1
        # The scalar trace drops a zero FIM column to None ("or None").
        column = step.column if step.column else -1
        self._record(cycle, COMMAND_CODES[step.kind], rank, bank, row,
                     column, request.req_id, int(step.virtual),
                     t.tBL * step.bursts, data_start)
        program.next_step += 1
        if program.finished:
            self._finish_program(g, request)
            end = data_start + t.tBL * step.bursts if step.bursts else cycle
            request.finish_cycle = end
            self.finished.append(request)
            if request.kind is RequestType.GATHER:
                self.stats.gathers += 1
            else:
                self.stats.scatters += 1
            self.stats.total_latency += request.latency
            self.stats.finished_requests += 1
        else:
            self._load_program_step(g, program)

    # ------------------------------------------------------------------
    # State updates (mirror RankState.issue / DataBus, folding each
    # command's cross-bank constraints into the class floors)
    # ------------------------------------------------------------------
    def _issue_act(self, g: int, rank: int, rg: int, cycle: int,
                   row: int) -> None:
        t = self.timing
        self._open_row[g] = row
        self._next_act[g] = cycle + t.tRC
        self._next_pre[g] = cycle + t.tRAS
        self._next_rd[g] = cycle + t.tRCD
        self._next_wr[g] = cycle + t.tRCD
        self._prep_term[g] = cycle + t.tRAS
        self._prep_findex[g] = self._P + rank
        win = self._faw_win[rank]
        pos = self._faw_pos[rank]
        win[pos] = cycle
        pos = (pos + 1) & 3
        self._faw_pos[rank] = pos
        if self._faw_len[rank] < 4:
            self._faw_len[rank] += 1
        v = cycle + t.tRRD_S
        if self._faw_len[rank] == 4:
            faw = win[pos] + t.tFAW
            if faw > v:
                v = faw
        F = self._floor
        sl = self._act_sl[rank]
        np.maximum(F[sl], v, out=F[sl])
        w = cycle + t.tRRD_L
        if w > F[rg]:
            F[rg] = w

    def _issue_pre(self, g: int, cycle: int) -> None:
        self._open_row[g] = -1
        floor = cycle + self.timing.tRP
        if floor > self._next_act[g]:
            self._next_act[g] = floor
        self._prep_term[g] = self._next_act[g]
        self._prep_findex[g] = self._bank_rg_l[g]

    def _issue_rd(self, g: int, rank: int, rg: int, cycle: int,
                  data_end: int | None) -> None:
        t = self.timing
        if data_end is None:
            data_end = cycle + t.tCL + t.tBL
        F = self._floor
        v = cycle + t.tCCD_S
        sl = self._rd_sl[rank]
        np.maximum(F[sl], v, out=F[sl])
        w = cycle + t.tCCD_L
        i = self._RDB + rg
        if w > F[i]:
            F[i] = w
        sl = self._wr_sl[rank]
        vw = data_end + 1
        np.maximum(F[sl], vw if vw > v else v, out=F[sl])
        i = self._WRB + rg
        if w > F[i]:
            F[i] = w
        floor = cycle + t.tRTP
        if floor > self._next_pre[g]:
            self._next_pre[g] = floor
        self._prep_term[g] = self._next_pre[g]

    def _issue_wr(self, g: int, rank: int, rg: int, cycle: int,
                  data_end: int | None) -> None:
        t = self.timing
        if data_end is None:
            data_end = cycle + t.tCWL + t.tBL
        F = self._floor
        v = cycle + t.tCCD_S
        w = cycle + t.tCCD_L
        sl = self._rd_sl[rank]
        vr = data_end + t.tWTR_S
        np.maximum(F[sl], vr if vr > v else v, out=F[sl])
        i = self._RDB + rg
        wr = data_end + t.tWTR_L
        if wr < w:
            wr = w
        if wr > F[i]:
            F[i] = wr
        sl = self._wr_sl[rank]
        np.maximum(F[sl], v, out=F[sl])
        i = self._WRB + rg
        if w > F[i]:
            F[i] = w
        floor = data_end + t.tWR
        if floor > self._next_pre[g]:
            self._next_pre[g] = floor
        self._prep_term[g] = self._next_pre[g]

    def _issue_ref(self, rank: int, cycle: int) -> None:
        t = self.timing
        until = cycle + t.tRFC
        self._refresh_until[rank] = until
        self._next_refresh_due[rank] += t.tREFI
        self._min_due = int(self._next_refresh_due.min())
        sl = slice(rank * self._bpr, (rank + 1) * self._bpr)
        np.maximum(self._next_act[sl], until, out=self._next_act[sl])
        # Every bank of the rank is closed at REF, so each prep term is
        # its next_act -- clamp them in lockstep.
        np.maximum(self._prep_term[sl], until, out=self._prep_term[sl])
        F = self._floor
        for s in (self._act_sl[rank], self._rd_sl[rank],
                  self._wr_sl[rank]):
            np.maximum(F[s], until, out=F[s])
        i = self._P + rank
        if until > F[i]:
            F[i] = until
        # Same-rank program steps cached a pre-REF next_act: reload.
        # repro-lint: disable=RL006 -- bounded by the FIM program-slot cap
        for slot in range(self._pp_n):
            g = self._pp_g.item(slot)
            if self._bank_rank_l[g] == rank:
                self._load_program_step(g, self._programs[g])

    def _bus_earliest(self, rank: int, want: int, is_read: bool) -> int:
        floors = self._bus_floor_rd if is_read else self._bus_floor_wr
        floor = int(floors[rank])
        return want if want > floor else floor

    def _bus_reserve(self, rank: int, start: int, clocks: int,
                     is_read: bool) -> None:
        if start < self._bus_busy_until:
            raise ValueError("data bus double-booked")
        busy = start + clocks
        self._bus_busy_until = busy
        self.bus_busy_clocks += clocks
        self._bus_last_rank = rank
        self._bus_last_dir_read = is_read
        # Rebuild the per-rank start floors: occupancy, tRTRS on a rank
        # switch, one-clock direction turnaround.
        pen_rd = 0 if is_read else 1
        pen_wr = 1 - pen_rd
        frd = self._bus_floor_rd
        fwr = self._bus_floor_wr
        if self.n_ranks == 1:
            frd[0] = busy + pen_rd
            fwr[0] = busy + pen_wr
            return
        trtrs = self.timing.tRTRS
        frd.fill(busy + (trtrs if trtrs > pen_rd else pen_rd))
        frd[rank] = busy + pen_rd
        fwr.fill(busy + (trtrs if trtrs > pen_wr else pen_wr))
        fwr[rank] = busy + pen_wr

    # ------------------------------------------------------------------
    def _record(self, cycle: int, kind: int, rank: int, bank: int,
                row: int, column: int, req_id: int, virtual: int,
                data_clocks: int, data_start: int) -> None:
        self._trace_rows.append((cycle, kind, rank, bank, row, column,
                                 req_id, virtual, data_clocks, data_start))

    def trace_columns(self) -> CommandColumns:
        """Seal the recorded command stream into columns."""
        return CommandColumns.from_lists(self._trace_rows)
