"""Command and request vocabulary of the command-level engine.

A *request* is what the accelerator's miss path hands the memory
controller: a burst-granularity read or write, or a Piccolo-FIM
gather/scatter macro-operation (Sec. IV).  A *command* is one slot on
the DDR command bus: ACT, PRE, RD, WR or REF.  The controller decomposes
each request into commands, subject to the timing table.

FIM requests expand into the Sec. VI virtual-row sequence of standard
commands; the ``virtual`` flag marks the PRE/ACT/RD/WR slots that the
in-DRAM internal controller translates to buffer operations or no-ops,
which is bookkeeping for the trace (the *bus* sees only standard
commands, as the FPGA validation requires).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class CommandType(enum.Enum):
    """One slot on the DDR command bus."""

    ACT = "ACT"
    PRE = "PRE"
    RD = "RD"
    WR = "WR"
    REF = "REF"


#: stable integer codes for columnar (structure-of-arrays) traces
COMMAND_CODES: dict[CommandType, int] = {
    CommandType.ACT: 0,
    CommandType.PRE: 1,
    CommandType.RD: 2,
    CommandType.WR: 3,
    CommandType.REF: 4,
}
COMMAND_FROM_CODE: tuple[CommandType, ...] = (
    CommandType.ACT, CommandType.PRE, CommandType.RD, CommandType.WR,
    CommandType.REF,
)


class RequestType(enum.Enum):
    """What the host asked for."""

    READ = "READ"
    WRITE = "WRITE"
    GATHER = "GATHER"
    SCATTER = "SCATTER"

    @property
    def is_fim(self) -> bool:
        """Whether this is a scatter/gather macro-request."""
        return self in (RequestType.GATHER, RequestType.SCATTER)


@dataclass
class Request:
    """One memory request presented to a channel controller.

    Attributes:
        kind: request type.
        rank/bank/row: target location (bank is rank-local).
        column: column of the burst (ignored for FIM requests).
        offsets: in-row word offsets for GATHER/SCATTER.
        arrival: cycle at which the request enters the queue.
        req_id: stable id for result correlation.
        issue_cycle: first command cycle (set by the controller).
        finish_cycle: cycle at which data transfer completes.
    """

    kind: RequestType
    rank: int
    bank: int
    row: int
    column: int = 0
    offsets: tuple[int, ...] = ()
    arrival: int = 0
    req_id: int = -1
    issue_cycle: int = -1
    finish_cycle: int = -1

    def __post_init__(self) -> None:
        if self.kind.is_fim and not self.offsets:
            raise ValueError(f"{self.kind.value} request needs offsets")

    @property
    def done(self) -> bool:
        """Whether the request's data transfer has completed."""
        return self.finish_cycle >= 0

    @property
    def latency(self) -> int:
        """Queue-entry-to-data latency in cycles (request must be done)."""
        if not self.done:
            raise ValueError("request not finished")
        return self.finish_cycle - self.arrival


@dataclass(frozen=True)
class Command:
    """One issued command, as recorded in the trace."""

    cycle: int
    kind: CommandType
    rank: int
    bank: int
    row: int | None = None
    column: int | None = None
    #: the request this command serves (-1 for refresh)
    req_id: int = -1
    #: part of a FIM virtual-row sequence (chip translates it)
    virtual: bool = False
    #: data-bus beats this command initiates (RD/WR only), in clocks
    data_clocks: int = 0
    #: first clock of the data transfer (RD: cycle + tCL, WR: + tCWL)
    data_start: int = 0

    @property
    def data_end(self) -> int:
        """Last data-bus clock of this command's transfer."""
        return self.data_start + self.data_clocks


@dataclass
class EngineStats:
    """Aggregate activity counters of one engine run."""

    cycles: int = 0
    acts: int = 0
    pres: int = 0
    reads: int = 0
    writes: int = 0
    refreshes: int = 0
    gathers: int = 0
    scatters: int = 0
    #: data-bus busy clocks per channel index
    data_bus_clocks: dict[int, int] = field(default_factory=dict)
    #: sum of request latencies (for mean latency)
    total_latency: int = 0
    finished_requests: int = 0

    @property
    def mean_latency(self) -> float:
        """Mean request latency in clocks."""
        if not self.finished_requests:
            return 0.0
        return self.total_latency / self.finished_requests

    def bus_utilisation(self, channel: int) -> float:
        """Fraction of cycles the channel's data bus carried beats."""
        if not self.cycles:
            return 0.0
        return self.data_bus_clocks.get(channel, 0) / self.cycles


class CommandColumns:
    """One channel's command trace as NumPy columns (SoA).

    The batched engine records every issued command into plain-int
    columns (the :class:`~repro.dram.fim_batch.FimOpBatch` layout) and
    seals them here; row episodes, per-bank activity and bus occupancy
    then close with ``bincount``/``reduceat`` segment math instead of a
    per-command Python walk.  ``row`` and ``column`` use ``-1`` for the
    scalar trace's ``None`` (PRE/REF carry no row; ACT/PRE carry no
    column), so :meth:`to_commands` round-trips bit-identically to the
    scalar :class:`Command` stream.
    """

    _FIELDS = ("cycle", "kind", "rank", "bank", "row", "column",
               "req_id", "virtual", "data_clocks", "data_start")

    # columns installed by __init__'s setattr walk over _FIELDS
    cycle: np.ndarray
    kind: np.ndarray
    rank: np.ndarray
    bank: np.ndarray
    row: np.ndarray
    column: np.ndarray
    req_id: np.ndarray
    virtual: np.ndarray
    data_clocks: np.ndarray
    data_start: np.ndarray

    def __init__(self, **columns: np.ndarray) -> None:
        n = None
        for name in self._FIELDS:
            col = np.asarray(columns.get(name, ()), dtype=np.int64)
            if n is None:
                n = col.size
            elif col.size != n:
                raise ValueError(f"column {name!r} length mismatch")
            setattr(self, name, col)

    # ------------------------------------------------------------------
    @classmethod
    def from_lists(cls, rows: list[tuple]) -> "CommandColumns":
        """Seal the batched controller's append-only row tuples."""
        if not rows:
            return cls()
        cols = np.array(rows, dtype=np.int64).T
        return cls(**dict(zip(cls._FIELDS, cols)))

    @classmethod
    def from_commands(cls, commands: list[Command]) -> "CommandColumns":
        """Columnar view of a scalar :class:`Command` trace."""
        rows = [
            (c.cycle, COMMAND_CODES[c.kind], c.rank, c.bank,
             -1 if c.row is None else c.row,
             -1 if c.column is None else c.column,
             c.req_id, int(c.virtual), c.data_clocks, c.data_start)
            for c in commands
        ]
        return cls.from_lists(rows)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.cycle.size

    def to_commands(self) -> list[Command]:
        """Materialise the scalar :class:`Command` objects."""
        out: list[Command] = []
        for (cyc, kind, rank, bank, row, column, req_id, virtual,
             clocks, start) in zip(*(getattr(self, f).tolist()
                                     for f in self._FIELDS)):
            out.append(Command(
                cycle=cyc, kind=COMMAND_FROM_CODE[kind], rank=rank,
                bank=bank, row=None if row < 0 else row,
                column=None if column < 0 else column, req_id=req_id,
                virtual=bool(virtual), data_clocks=clocks,
                data_start=start,
            ))
        return out

    # ------------------------------------------------------------------
    def per_bank_counts(self, ranks: int,
                        banks_per_rank: int) -> np.ndarray:
        """Command counts as a ``(ranks*banks_per_rank, 5)`` array.

        Row ``rank*banks_per_rank + bank``, column ``COMMAND_CODES``
        order -- one ``bincount`` instead of a per-command dict walk.
        REF targets a whole rank and is tallied under its bank-0 row,
        matching the scalar trace's bookkeeping.
        """
        n_banks = ranks * banks_per_rank
        flat = (self.rank * banks_per_rank + self.bank) * 5 + self.kind
        counts = np.bincount(flat, minlength=n_banks * 5)
        return counts.reshape(n_banks, 5)

    def row_episode_lengths(self) -> np.ndarray:
        """Column commands per activation, closed with segment math.

        Commands are regrouped per (rank, bank) with a stable sort (the
        trace is already time-ordered, so order within a bank survives);
        each non-virtual ACT opens an episode and ``reduceat`` over the
        episode boundaries counts the RD/WR commands it serves.
        """
        if not len(self):
            return np.zeros(0, dtype=np.int64)
        gbank = self.rank * (self.bank.max() + 1 if self.bank.size else 1)
        gbank = gbank + self.bank
        order = np.argsort(gbank, kind="stable")
        kind = self.kind[order]
        virtual = self.virtual[order]
        is_act = (kind == COMMAND_CODES[CommandType.ACT]) & (virtual == 0)
        starts = np.flatnonzero(is_act)
        if not starts.size:
            return np.zeros(0, dtype=np.int64)
        is_col = ((kind == COMMAND_CODES[CommandType.RD])
                  | (kind == COMMAND_CODES[CommandType.WR])).astype(np.int64)
        # Episodes end at the next ACT in the same bank (or the bank's
        # last command); a cumulative sum difference closes each run.
        csum = np.concatenate(([0], np.cumsum(is_col)))
        bank_bounds = np.flatnonzero(np.diff(gbank[order]) != 0) + 1
        ends = np.concatenate((starts[1:], [len(self)]))
        # Clip each episode at its bank boundary.
        if bank_bounds.size:
            nxt = np.searchsorted(bank_bounds, starts, side="right")
            limit = np.concatenate((bank_bounds, [len(self)]))[nxt]
            ends = np.minimum(ends, limit)
        return csum[ends] - csum[starts]

    def bus_busy_clocks(self) -> int:
        """Total data-bus clocks the trace occupies."""
        return int(self.data_clocks.sum())
