"""Command and request vocabulary of the command-level engine.

A *request* is what the accelerator's miss path hands the memory
controller: a burst-granularity read or write, or a Piccolo-FIM
gather/scatter macro-operation (Sec. IV).  A *command* is one slot on
the DDR command bus: ACT, PRE, RD, WR or REF.  The controller decomposes
each request into commands, subject to the timing table.

FIM requests expand into the Sec. VI virtual-row sequence of standard
commands; the ``virtual`` flag marks the PRE/ACT/RD/WR slots that the
in-DRAM internal controller translates to buffer operations or no-ops,
which is bookkeeping for the trace (the *bus* sees only standard
commands, as the FPGA validation requires).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class CommandType(enum.Enum):
    """One slot on the DDR command bus."""

    ACT = "ACT"
    PRE = "PRE"
    RD = "RD"
    WR = "WR"
    REF = "REF"


class RequestType(enum.Enum):
    """What the host asked for."""

    READ = "READ"
    WRITE = "WRITE"
    GATHER = "GATHER"
    SCATTER = "SCATTER"

    @property
    def is_fim(self) -> bool:
        """Whether this is a scatter/gather macro-request."""
        return self in (RequestType.GATHER, RequestType.SCATTER)


@dataclass
class Request:
    """One memory request presented to a channel controller.

    Attributes:
        kind: request type.
        rank/bank/row: target location (bank is rank-local).
        column: column of the burst (ignored for FIM requests).
        offsets: in-row word offsets for GATHER/SCATTER.
        arrival: cycle at which the request enters the queue.
        req_id: stable id for result correlation.
        issue_cycle: first command cycle (set by the controller).
        finish_cycle: cycle at which data transfer completes.
    """

    kind: RequestType
    rank: int
    bank: int
    row: int
    column: int = 0
    offsets: tuple[int, ...] = ()
    arrival: int = 0
    req_id: int = -1
    issue_cycle: int = -1
    finish_cycle: int = -1

    def __post_init__(self) -> None:
        if self.kind.is_fim and not self.offsets:
            raise ValueError(f"{self.kind.value} request needs offsets")

    @property
    def done(self) -> bool:
        """Whether the request's data transfer has completed."""
        return self.finish_cycle >= 0

    @property
    def latency(self) -> int:
        """Queue-entry-to-data latency in cycles (request must be done)."""
        if not self.done:
            raise ValueError("request not finished")
        return self.finish_cycle - self.arrival


@dataclass(frozen=True)
class Command:
    """One issued command, as recorded in the trace."""

    cycle: int
    kind: CommandType
    rank: int
    bank: int
    row: int | None = None
    column: int | None = None
    #: the request this command serves (-1 for refresh)
    req_id: int = -1
    #: part of a FIM virtual-row sequence (chip translates it)
    virtual: bool = False
    #: data-bus beats this command initiates (RD/WR only), in clocks
    data_clocks: int = 0
    #: first clock of the data transfer (RD: cycle + tCL, WR: + tCWL)
    data_start: int = 0

    @property
    def data_end(self) -> int:
        """Last data-bus clock of this command's transfer."""
        return self.data_start + self.data_clocks


@dataclass
class EngineStats:
    """Aggregate activity counters of one engine run."""

    cycles: int = 0
    acts: int = 0
    pres: int = 0
    reads: int = 0
    writes: int = 0
    refreshes: int = 0
    gathers: int = 0
    scatters: int = 0
    #: data-bus busy clocks per channel index
    data_bus_clocks: dict[int, int] = field(default_factory=dict)
    #: sum of request latencies (for mean latency)
    total_latency: int = 0
    finished_requests: int = 0

    @property
    def mean_latency(self) -> float:
        """Mean request latency in clocks."""
        if not self.finished_requests:
            return 0.0
        return self.total_latency / self.finished_requests

    def bus_utilisation(self, channel: int) -> float:
        """Fraction of cycles the channel's data bus carried beats."""
        if not self.cycles:
            return 0.0
        return self.data_bus_clocks.get(channel, 0) / self.cycles
