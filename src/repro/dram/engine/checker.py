"""Extended command-trace checker for the command-level engine.

:mod:`repro.validate.protocol` checks the per-bank core constraints
(tRCD/tRP/tRAS/tCCD/tWR) on short hand-built sequences.  This module
re-checks *entire engine traces* and adds the cross-bank and cross-rank
rules a real DDR4 bus must obey:

- tRRD_S / tRRD_L between ACTs of one rank (bank-group aware),
- tFAW: at most four ACTs per rank in any tFAW window,
- tCCD_S / tCCD_L between column commands of one rank,
- tWTR_S / tWTR_L write-to-read turnaround,
- tRTP read-to-precharge,
- tRFC after REF, and every-bank-precharged before REF,
- data-bus occupancy: transfers on one channel must not overlap,
- command-bus occupancy: one command slot per clock.

The checker is deliberately an *independent* reimplementation of the
rules (it shares no scheduling code with the controller), so an engine
bug cannot hide itself.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.dram.engine.commands import Command, CommandType
from repro.dram.engine.timing import TimingTable

_PAST = -(1 << 60)


class EngineProtocolViolation(AssertionError):
    """A timing/state rule broken by an engine trace."""


@dataclass
class _BankCheck:
    open_row: int | None = None
    last_act: int = _PAST
    last_pre_eff: int = _PAST   # effective precharge completion anchor
    last_rd: int = _PAST
    last_wr_data_end: int = _PAST


@dataclass
class _RankCheck:
    acts: deque = field(default_factory=lambda: deque(maxlen=4))
    last_act_all: int = _PAST
    last_act_group: dict[int, int] = field(default_factory=dict)
    last_col_all: int = _PAST
    last_col_group: dict[int, int] = field(default_factory=dict)
    last_wr_end_all: int = _PAST
    last_wr_end_group: dict[int, int] = field(default_factory=dict)
    refresh_until: int = 0


class TraceChecker:
    """Validate one channel's command trace against a timing table."""

    def __init__(self, timing: TimingTable, ranks: int) -> None:
        self.timing = timing
        self.banks: dict[tuple[int, int], _BankCheck] = {}
        self.ranks: dict[int, _RankCheck] = {r: _RankCheck()
                                             for r in range(ranks)}
        self.last_cmd_cycle = _PAST
        self.data_busy_until = _PAST
        self.commands_checked = 0

    # ------------------------------------------------------------------
    def _fail(self, cmd: Command, message: str) -> None:
        raise EngineProtocolViolation(
            f"@{cmd.cycle} {cmd.kind.value} r{cmd.rank} b{cmd.bank}: "
            f"{message}"
        )

    def _bank(self, cmd: Command) -> _BankCheck:
        return self.banks.setdefault((cmd.rank, cmd.bank), _BankCheck())

    # ------------------------------------------------------------------
    def check_trace(self, trace: list[Command]) -> None:
        """Validate a whole command trace in order."""
        for cmd in trace:
            self.check(cmd)

    def check(self, cmd: Command) -> None:
        """Validate one command against every rule; raises on breach."""
        t = self.timing
        if cmd.cycle < self.last_cmd_cycle:
            self._fail(cmd, "trace not time-ordered")
        if cmd.cycle == self.last_cmd_cycle and self.commands_checked:
            self._fail(cmd, "two commands in one bus slot")
        self.last_cmd_cycle = cmd.cycle

        rank = self.ranks[cmd.rank]
        bank = self._bank(cmd)
        group = cmd.bank // t.banks_per_group

        if cmd.cycle < rank.refresh_until and cmd.kind is not CommandType.REF:
            self._fail(cmd, "command during tRFC")

        handler = {
            CommandType.ACT: self._check_act,
            CommandType.PRE: self._check_pre,
            CommandType.RD: self._check_col,
            CommandType.WR: self._check_col,
            CommandType.REF: self._check_ref,
        }[cmd.kind]
        handler(cmd, rank, bank, group)
        self.commands_checked += 1

    # ------------------------------------------------------------------
    def _check_act(self, cmd: Command, rank: _RankCheck,
                   bank: _BankCheck, group: int) -> None:
        t = self.timing
        if bank.open_row is not None and not cmd.virtual:
            self._fail(cmd, f"bank already open at row {bank.open_row}")
        if cmd.cycle < bank.last_pre_eff + t.tRP:
            self._fail(cmd, "tRP violated")
        if cmd.cycle < bank.last_act + t.tRC:
            self._fail(cmd, "tRC violated")
        if cmd.cycle < rank.last_act_all + t.tRRD_S:
            self._fail(cmd, "tRRD_S violated")
        if cmd.cycle < rank.last_act_group.get(group, _PAST) + t.tRRD_L:
            self._fail(cmd, "tRRD_L violated")
        if len(rank.acts) == 4 and cmd.cycle < rank.acts[0] + t.tFAW:
            self._fail(cmd, "tFAW violated")
        bank.open_row = cmd.row
        bank.last_act = cmd.cycle
        rank.acts.append(cmd.cycle)
        rank.last_act_all = cmd.cycle
        rank.last_act_group[group] = cmd.cycle

    def _check_pre(self, cmd: Command, rank: _RankCheck,
                   bank: _BankCheck, group: int) -> None:
        t = self.timing
        if cmd.cycle < bank.last_act + t.tRAS:
            self._fail(cmd, "tRAS violated")
        if cmd.cycle < bank.last_rd + t.tRTP:
            self._fail(cmd, "tRTP violated")
        if cmd.cycle < bank.last_wr_data_end + t.tWR:
            self._fail(cmd, "tWR violated")
        bank.open_row = None
        bank.last_pre_eff = cmd.cycle

    def _check_col(self, cmd: Command, rank: _RankCheck,
                   bank: _BankCheck, group: int) -> None:
        t = self.timing
        is_read = cmd.kind is CommandType.RD
        if bank.open_row is None and not cmd.virtual:
            self._fail(cmd, "column command with no open row")
        if cmd.cycle < bank.last_act + t.tRCD:
            self._fail(cmd, "tRCD violated")
        if cmd.cycle < rank.last_col_all + t.tCCD_S:
            self._fail(cmd, "tCCD_S violated")
        if cmd.cycle < rank.last_col_group.get(group, _PAST) + t.tCCD_L:
            self._fail(cmd, "tCCD_L violated")
        if is_read:
            if cmd.cycle < rank.last_wr_end_all + t.tWTR_S:
                self._fail(cmd, "tWTR_S violated")
            if cmd.cycle < (rank.last_wr_end_group.get(group, _PAST)
                            + t.tWTR_L):
                self._fail(cmd, "tWTR_L violated")
        rank.last_col_all = cmd.cycle
        rank.last_col_group[group] = cmd.cycle
        if cmd.data_clocks:
            if cmd.data_start < self.data_busy_until:
                self._fail(cmd, "data bus overlap")
            expected = cmd.cycle + (t.tCL if is_read else t.tCWL)
            if cmd.data_start < expected:
                self._fail(cmd, "data before CAS latency elapsed")
            self.data_busy_until = cmd.data_end
        if is_read:
            bank.last_rd = cmd.cycle
        else:
            data_end = cmd.data_end if cmd.data_clocks else (
                cmd.cycle + t.tCWL + t.tBL
            )
            bank.last_wr_data_end = data_end
            rank.last_wr_end_all = max(rank.last_wr_end_all, data_end)
            rank.last_wr_end_group[group] = max(
                rank.last_wr_end_group.get(group, _PAST), data_end
            )

    def _check_ref(self, cmd: Command, rank: _RankCheck,
                   bank: _BankCheck, group: int) -> None:
        for (rank_id, _), state in self.banks.items():
            if rank_id == cmd.rank and state.open_row is not None:
                self._fail(cmd, "REF with a bank open")
        rank.refresh_until = cmd.cycle + self.timing.tRFC


def check_engine_result(result: Any) -> int:
    """Validate every channel trace of an :class:`EngineResult`.

    Returns the number of commands checked; raises
    :class:`EngineProtocolViolation` on the first broken rule.
    """
    total = 0
    for trace in result.traces:
        checker = TraceChecker(result.timing, ranks=_ranks_in(trace))
        checker.check_trace(trace)
        total += checker.commands_checked
    return total


def _ranks_in(trace: list[Command]) -> int:
    return max((cmd.rank for cmd in trace), default=0) + 1
