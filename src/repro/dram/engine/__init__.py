"""Command-level DRAM engine (the Ramulator-equivalent substrate).

The package replays every DDR command on an integer clock with the full
JEDEC constraint set -- bank groups, tFAW/tRRD, write-to-read
turnarounds, refresh -- plus Piccolo's virtual-row FIM sequences, and
ships an independent trace checker and a cross-validation harness
against the fast analytic model used by the figure sweeps.

Typical use::

    from repro.dram.engine import DRAMEngine, check_engine_result
    from repro.dram.engine.workloads import conventional_requests
    from repro.dram.spec import default_config

    config = default_config()
    engine = DRAMEngine(config)
    requests, channels = conventional_requests(config, addrs)
    result = engine.run(requests, channels)
    check_engine_result(result)        # raises on any protocol breach
    print(result.time_ns, result.stats.acts)
"""

from repro.dram.engine.batched import BatchedChannelController
from repro.dram.engine.checker import (
    EngineProtocolViolation,
    TraceChecker,
    check_engine_result,
)
from repro.dram.engine.commands import (
    Command,
    CommandColumns,
    CommandType,
    EngineStats,
    Request,
    RequestType,
)
from repro.dram.engine.controller import ChannelController
from repro.dram.engine.engine import ENGINE_MODES, DRAMEngine, EngineResult
from repro.dram.engine.timing import TimingTable, timing_from_spec

__all__ = [
    "BatchedChannelController",
    "ChannelController",
    "Command",
    "CommandColumns",
    "CommandType",
    "DRAMEngine",
    "ENGINE_MODES",
    "EngineProtocolViolation",
    "EngineResult",
    "EngineStats",
    "Request",
    "RequestType",
    "TimingTable",
    "TraceChecker",
    "check_engine_result",
    "timing_from_spec",
]
