"""Per-bank and per-rank timing state machines.

Each bank tracks its open row and the earliest cycle at which each
command type may legally issue; each rank adds the cross-bank
constraints (tRRD, tFAW, bank-group-aware tCCD/tWTR, refresh).  The
controller consults ``earliest(...)`` before issuing and calls
``issue(...)`` afterwards, which rolls the affected windows forward --
the same structure Ramulator uses.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.dram.engine.commands import CommandType
from repro.dram.engine.timing import TimingTable

#: effectively "never constrained yet"
_PAST = -(1 << 60)


@dataclass
class BankState:
    """Timing state of one bank."""

    open_row: int | None = None
    next_act: int = 0
    next_pre: int = 0
    next_rd: int = 0
    next_wr: int = 0
    #: cycle of the last ACT (to honour tRAS on PRE)
    last_act: int = _PAST

    def earliest(self, kind: CommandType) -> int:
        """Earliest legal issue cycle for ``kind`` on this bank."""
        if kind is CommandType.ACT:
            return self.next_act
        if kind is CommandType.PRE:
            return self.next_pre
        if kind is CommandType.RD:
            return self.next_rd
        if kind is CommandType.WR:
            return self.next_wr
        raise ValueError(f"bank-level command expected, got {kind}")


class RankState:
    """Timing state of one rank: banks plus cross-bank windows."""

    def __init__(self, timing: TimingTable) -> None:
        self.timing = timing
        self.banks = [BankState() for _ in range(timing.banks_per_rank)]
        #: last ACT cycle anywhere in the rank, per bank group
        self._last_act_group = [_PAST] * timing.bank_groups
        self._last_act_rank = _PAST
        #: issue cycles of recent ACTs for the tFAW sliding window
        self._act_window: deque[int] = deque(maxlen=4)
        #: last column command cycle, per group and rank-wide
        self._last_col_group = [_PAST] * timing.bank_groups
        self._last_col_rank = _PAST
        #: end of the last write data burst, per group and rank-wide
        self._last_wr_end_group = [_PAST] * timing.bank_groups
        self._last_wr_end_rank = _PAST
        #: end of the last read data burst (for write-after-read turnaround)
        self._last_rd_end_rank = _PAST
        #: rank blocked until this cycle by refresh
        self.refresh_until = 0
        self.next_refresh_due = timing.tREFI

    # ------------------------------------------------------------------
    def group_of(self, bank: int) -> int:
        """Bank-group index of a rank-local bank id."""
        return bank // self.timing.banks_per_group

    def all_banks_closed(self) -> bool:
        """Whether every bank of the rank is precharged."""
        return all(b.open_row is None for b in self.banks)

    # ------------------------------------------------------------------
    def earliest(self, kind: CommandType, bank: int) -> int:
        """Earliest legal issue cycle for ``kind`` on ``bank``."""
        t = self.timing
        state = self.banks[bank]
        bound = max(state.earliest(kind), self.refresh_until)
        if kind is CommandType.ACT:
            group = self.group_of(bank)
            bound = max(
                bound,
                self._last_act_rank + t.tRRD_S,
                self._last_act_group[group] + t.tRRD_L,
            )
            if len(self._act_window) == 4:
                bound = max(bound, self._act_window[0] + t.tFAW)
        elif kind in (CommandType.RD, CommandType.WR):
            group = self.group_of(bank)
            bound = max(
                bound,
                self._last_col_rank + t.tCCD_S,
                self._last_col_group[group] + t.tCCD_L,
            )
            if kind is CommandType.RD:
                # Write-to-read turnaround from the end of write data.
                bound = max(
                    bound,
                    self._last_wr_end_rank + t.tWTR_S,
                    self._last_wr_end_group[group] + t.tWTR_L,
                )
            else:
                # Read-to-write: data-bus direction turnaround; the bus
                # model enforces occupancy, this adds the switch gap.
                bound = max(bound, self._last_rd_end_rank + 1)
        return bound

    def earliest_refresh(self) -> int:
        """Refresh needs every bank precharged and all tRP elapsed."""
        bound = max(self.refresh_until, self.next_refresh_due)
        for bank in self.banks:
            bound = max(bound, bank.next_act)
        return bound

    # ------------------------------------------------------------------
    def issue(self, kind: CommandType, bank: int, cycle: int,
              row: int | None = None, data_end: int | None = None) -> None:
        """Record an issued command and roll the timing windows.

        ``data_end`` is the actual last data-bus clock of a RD/WR (which
        bus contention may push past the nominal CAS-latency position);
        recovery windows (tWR, tWTR, turnarounds) anchor on it.
        """
        t = self.timing
        state = self.banks[bank]
        group = self.group_of(bank)
        if kind is CommandType.ACT:
            state.open_row = row
            state.last_act = cycle
            state.next_act = cycle + t.tRC
            state.next_pre = cycle + t.tRAS
            state.next_rd = cycle + t.tRCD
            state.next_wr = cycle + t.tRCD
            self._last_act_rank = cycle
            self._last_act_group[group] = cycle
            self._act_window.append(cycle)
        elif kind is CommandType.PRE:
            state.open_row = None
            state.next_act = max(state.next_act, cycle + t.tRP)
        elif kind is CommandType.RD:
            self._last_col_rank = cycle
            self._last_col_group[group] = cycle
            if data_end is None:
                data_end = cycle + t.tCL + t.tBL
            self._last_rd_end_rank = max(self._last_rd_end_rank, data_end)
            # RD -> PRE needs tRTP.
            state.next_pre = max(state.next_pre, cycle + t.tRTP)
        elif kind is CommandType.WR:
            self._last_col_rank = cycle
            self._last_col_group[group] = cycle
            if data_end is None:
                data_end = cycle + t.tCWL + t.tBL
            self._last_wr_end_rank = max(self._last_wr_end_rank, data_end)
            self._last_wr_end_group[group] = max(
                self._last_wr_end_group[group], data_end
            )
            # Write recovery: data end -> PRE.
            state.next_pre = max(state.next_pre, data_end + t.tWR)
        elif kind is CommandType.REF:
            self.refresh_until = cycle + t.tRFC
            self.next_refresh_due += t.tREFI
            for b in self.banks:
                b.next_act = max(b.next_act, self.refresh_until)
        else:
            raise ValueError(f"unhandled command {kind}")


@dataclass
class DataBus:
    """Shared per-channel data bus: one transfer at a time.

    Tracks the cycle up to which the bus is reserved and which rank last
    drove it (a rank switch costs tRTRS).
    """

    timing: TimingTable
    busy_until: int = 0
    last_rank: int = -1
    busy_clocks: int = 0
    _last_dir_read: bool = True

    def earliest_data_start(self, rank: int, cycle_data_start: int,
                            is_read: bool) -> int:
        """Earliest start for a transfer wanting to begin at the given
        cycle, honouring occupancy and rank/direction switches."""
        start = max(cycle_data_start, self.busy_until)
        if self.last_rank >= 0 and rank != self.last_rank:
            start = max(start, self.busy_until + self.timing.tRTRS)
        if self._last_dir_read != is_read:
            start = max(start, self.busy_until + 1)
        return start

    def reserve(self, rank: int, start: int, clocks: int,
                is_read: bool) -> None:
        """Book the bus for one transfer starting at ``start``."""
        if start < self.busy_until:
            raise ValueError("data bus double-booked")
        self.busy_until = start + clocks
        self.busy_clocks += clocks
        self.last_rank = rank
        self._last_dir_read = is_read
