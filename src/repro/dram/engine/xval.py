"""Cross-validation of the two DRAM models.

The figure sweeps run on the fast analytic phase evaluator
(:class:`repro.dram.system.DRAMModel`); the command-level engine exists
to show that the analytic shortcuts (row episodes, bus occupancy,
FIM window accounting) do not distort the quantities the paper's
conclusions rest on.  This module runs identical workloads through both
and reports the ratio of predicted durations plus the engine-side
command counts.

Agreement is expected to be loose -- the engine serialises the command
bus and pays CAS latencies the throughput model hides -- but *stable*:
the ratio must stay within a band across strides, and the FIM-vs-
conventional speedup (the quantity Fig. 9 reports) must agree much more
tightly, because model constants cancel in the ratio.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.dram.engine.engine import DRAMEngine
from repro.dram.engine.workloads import (
    conventional_requests,
    fim_requests,
    random_mix,
    strided_addresses,
)
from repro.dram.spec import DRAMConfig, default_config
from repro.dram.system import DRAMModel, FimOp


@dataclass(frozen=True)
class XValPoint:
    """One workload compared across models."""

    label: str
    engine_ns: float
    analytic_ns: float
    engine_commands: int

    @property
    def ratio(self) -> float:
        """engine / analytic duration (1.0 = perfect agreement)."""
        if self.analytic_ns == 0:
            raise ValueError(
                f"cross-validation point {self.label!r} has zero analytic "
                "duration; the ratio is undefined (empty workload?)"
            )
        return self.engine_ns / self.analytic_ns


def _analytic_conventional_ns(
    config: DRAMConfig,
    addrs: np.ndarray,
    is_write: np.ndarray | None,
) -> float:
    """Analytic phase duration for a burst-request stream."""
    analytic = DRAMModel(config)
    burst = config.spec.burst_bytes
    blocks = (np.asarray(addrs, dtype=np.int64) // burst) * burst
    keep = np.ones(blocks.size, dtype=bool)
    keep[1:] = blocks[1:] != blocks[:-1]
    phase = analytic.phase(
        addrs=blocks[keep],
        is_write=None if is_write is None
        else np.asarray(is_write, dtype=bool)[keep],
    )
    return phase.time_ns


def _analytic_fim_ns(
    config: DRAMConfig,
    requests: list,
    channels: np.ndarray,
    scatter: bool,
) -> float:
    """Analytic phase duration for a FIM request stream."""
    analytic = DRAMModel(config)
    ops = [
        FimOp(
            channel=int(channels[i]), rank=request.rank, bank=_global_bank(
                config, int(channels[i]), request.rank, request.bank
            ),
            row=request.row, items=len(request.offsets),
            is_scatter=scatter,
        )
        for i, request in enumerate(requests)
    ]
    return analytic.phase(fim_ops=ops).time_ns


def compare_conventional(
    config: DRAMConfig,
    addrs: np.ndarray,
    is_write: np.ndarray | None = None,
    label: str = "conventional",
    refresh: bool = False,
    engine_mode: str = "batched",
) -> XValPoint:
    """Run burst requests through both models."""
    engine = DRAMEngine(config, refresh_enabled=refresh, mode=engine_mode)
    requests, channels = conventional_requests(config, addrs, is_write)
    result = engine.run(requests, channels)
    analytic_ns = _analytic_conventional_ns(config, addrs, is_write)
    n_cmds = sum(len(t) for t in result.traces)
    return XValPoint(label, result.time_ns, analytic_ns, n_cmds)


def compare_fim(
    config: DRAMConfig,
    addrs: np.ndarray,
    scatter: bool = False,
    label: str = "fim",
    refresh: bool = False,
    engine_mode: str = "batched",
) -> XValPoint:
    """Run row-grouped FIM operations through both models."""
    engine = DRAMEngine(config, refresh_enabled=refresh, mode=engine_mode)
    requests, channels = fim_requests(config, addrs, scatter=scatter)
    result = engine.run(requests, channels)
    analytic_ns = _analytic_fim_ns(config, requests, channels, scatter)
    n_cmds = sum(len(t) for t in result.traces)
    return XValPoint(label, result.time_ns, analytic_ns, n_cmds)


#: engine-xval trajectory scales: bytes swept by the strided workloads
#: and request count for the random ones.  ``mid`` is sized for the
#: tier-1 CI smoke; ``paper`` runs nightly.
ENGINE_XVAL_PROFILES: dict[str, dict[str, int]] = {
    "toy": {"total_bytes": 1 << 15, "random_requests": 400},
    "mid": {"total_bytes": 1 << 17, "random_requests": 1600},
    "paper": {"total_bytes": 1 << 19, "random_requests": 6400},
}

#: the per-profile workload grid (trajectory cell leaf names)
ENGINE_XVAL_WORKLOADS = ("conv-hit", "conv-miss", "fim-gather", "mix")


def engine_xval_workload(
    config: DRAMConfig,
    profile: str,
    workload: str,
    engine: DRAMEngine,
) -> tuple[list, np.ndarray, dict]:
    """Build one engine-xval cell's request stream.

    Returns ``(requests, channels, analytic_inputs)`` where the last
    carries what :func:`run_engine_xval_cell` needs to price the same
    work on the analytic model.
    """
    if profile not in ENGINE_XVAL_PROFILES:
        raise ValueError(f"unknown engine-xval profile {profile!r}")
    scale = ENGINE_XVAL_PROFILES[profile]
    if workload == "conv-hit":
        # Streaming bursts: long row episodes, the scalar walk's
        # worst case (it rescans the full queue per command).
        addrs = strided_addresses(config, scale["total_bytes"], 8, False)
        requests, channels = conventional_requests(config, addrs)
        return requests, channels, {"kind": "conv", "addrs": addrs,
                                    "is_write": None}
    if workload == "conv-miss":
        # Random single-burst reads: row misses dominate, exercising
        # the preparation (PRE/ACT) scheduling path.
        addrs, _ = random_mix(config, scale["random_requests"], seed=101,
                              write_fraction=0.0)
        requests, channels = conventional_requests(config, addrs)
        return requests, channels, {"kind": "conv", "addrs": addrs,
                                    "is_write": None}
    if workload == "fim-gather":
        # Row-grouped FIM gathers: the Piccolo virtual-row sequences.
        addrs = strided_addresses(config, scale["total_bytes"], 2, False)
        requests, channels = fim_requests(config, addrs)
        return requests, channels, {"kind": "fim", "requests": requests,
                                    "channels": channels,
                                    "scatter": False}
    if workload == "mix":
        # Adversarial fuzz cell: random reads+writes drive the write-
        # drain hysteresis and bus turnarounds; recorded honestly even
        # though the batched win is smallest here.
        addrs, is_write = random_mix(config, scale["random_requests"],
                                     seed=202, write_fraction=0.3)
        requests, channels = engine.requests_from_addresses(addrs, is_write)
        return requests, channels, {"kind": "conv", "addrs": addrs,
                                    "is_write": is_write}
    raise ValueError(f"unknown engine-xval workload {workload!r}")


def run_engine_xval_cell(
    profile: str,
    workload: str,
    engine_mode: str = "batched",
    config: DRAMConfig | None = None,
) -> dict:
    """Time one engine-xval trajectory cell and cross-validate it.

    Returns the measured wall seconds of the engine run plus the
    engine/analytic duration ratio, command count and cycle count --
    the payload ``tools/perf_report.py --engine-xval`` records.
    """
    if config is None:
        config = default_config()
    engine = DRAMEngine(config, refresh_enabled=True, mode=engine_mode)
    requests, channels, analytic = engine_xval_workload(
        config, profile, workload, engine
    )
    start = time.perf_counter()
    result = engine.run(requests, channels)
    seconds = time.perf_counter() - start
    if analytic["kind"] == "fim":
        analytic_ns = _analytic_fim_ns(
            config, analytic["requests"], analytic["channels"],
            analytic["scatter"],
        )
    else:
        analytic_ns = _analytic_conventional_ns(
            config, analytic["addrs"], analytic["is_write"]
        )
    point = XValPoint(
        f"engine-xval/{profile}/{workload}", result.time_ns, analytic_ns,
        sum(len(t) for t in result.traces),
    )
    return {
        "cell": point.label,
        "seconds": seconds,
        "cycles": result.cycles,
        "commands": point.engine_commands,
        "engine_ns": point.engine_ns,
        "analytic_ns": point.analytic_ns,
        "ratio": point.ratio,
    }


def microbench_speedups(
    config: DRAMConfig,
    total_bytes: int,
    strides: tuple[int, ...] = (4, 8, 16, 32),
    single_row: bool = True,
) -> list[dict]:
    """Fig. 9 on the command-level engine: FIM speedup per stride.

    Returns one row per stride with engine-measured conventional and
    FIM durations and their ratio (the paper's speedup series).
    """
    rows: list[dict] = []
    for stride in strides:
        addrs = strided_addresses(config, total_bytes, stride, single_row)
        conventional = compare_conventional(
            config, addrs, label=f"stride{stride}-conv"
        )
        fim = compare_fim(config, addrs, label=f"stride{stride}-fim")
        rows.append({
            "stride": stride,
            "conv_ns": conventional.engine_ns,
            "fim_ns": fim.engine_ns,
            "speedup": (conventional.engine_ns / fim.engine_ns
                        if fim.engine_ns else float("inf")),
            "conv_ratio_vs_analytic": conventional.ratio,
            "fim_ratio_vs_analytic": fim.ratio,
        })
    return rows


def _global_bank(config: DRAMConfig, channel: int, rank: int,
                 bank: int) -> int:
    per_rank = config.spec.banks_per_rank
    return (channel * config.ranks + rank) * per_rank + bank
