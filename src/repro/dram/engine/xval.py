"""Cross-validation of the two DRAM models.

The figure sweeps run on the fast analytic phase evaluator
(:class:`repro.dram.system.DRAMModel`); the command-level engine exists
to show that the analytic shortcuts (row episodes, bus occupancy,
FIM window accounting) do not distort the quantities the paper's
conclusions rest on.  This module runs identical workloads through both
and reports the ratio of predicted durations plus the engine-side
command counts.

Agreement is expected to be loose -- the engine serialises the command
bus and pays CAS latencies the throughput model hides -- but *stable*:
the ratio must stay within a band across strides, and the FIM-vs-
conventional speedup (the quantity Fig. 9 reports) must agree much more
tightly, because model constants cancel in the ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dram.engine.engine import DRAMEngine
from repro.dram.engine.workloads import (
    conventional_requests,
    fim_requests,
    strided_addresses,
)
from repro.dram.spec import DRAMConfig
from repro.dram.system import DRAMModel, FimOp


@dataclass(frozen=True)
class XValPoint:
    """One workload compared across models."""

    label: str
    engine_ns: float
    analytic_ns: float
    engine_commands: int

    @property
    def ratio(self) -> float:
        """engine / analytic duration (1.0 = perfect agreement)."""
        if self.analytic_ns == 0:
            return float("inf")
        return self.engine_ns / self.analytic_ns


def compare_conventional(
    config: DRAMConfig,
    addrs: np.ndarray,
    is_write: np.ndarray | None = None,
    label: str = "conventional",
    refresh: bool = False,
) -> XValPoint:
    """Run burst requests through both models."""
    engine = DRAMEngine(config, refresh_enabled=refresh)
    requests, channels = conventional_requests(config, addrs, is_write)
    result = engine.run(requests, channels)
    analytic = DRAMModel(config)
    burst = config.spec.burst_bytes
    blocks = (np.asarray(addrs, dtype=np.int64) // burst) * burst
    keep = np.ones(blocks.size, dtype=bool)
    keep[1:] = blocks[1:] != blocks[:-1]
    phase = analytic.phase(
        addrs=blocks[keep],
        is_write=None if is_write is None
        else np.asarray(is_write, dtype=bool)[keep],
    )
    n_cmds = sum(len(t) for t in result.traces)
    return XValPoint(label, result.time_ns, phase.time_ns, n_cmds)


def compare_fim(
    config: DRAMConfig,
    addrs: np.ndarray,
    scatter: bool = False,
    label: str = "fim",
    refresh: bool = False,
) -> XValPoint:
    """Run row-grouped FIM operations through both models."""
    engine = DRAMEngine(config, refresh_enabled=refresh)
    requests, channels = fim_requests(config, addrs, scatter=scatter)
    result = engine.run(requests, channels)
    analytic = DRAMModel(config)
    ops = [
        FimOp(
            channel=int(channels[i]), rank=request.rank, bank=_global_bank(
                config, int(channels[i]), request.rank, request.bank
            ),
            row=request.row, items=len(request.offsets),
            is_scatter=scatter,
        )
        for i, request in enumerate(requests)
    ]
    phase = analytic.phase(fim_ops=ops)
    n_cmds = sum(len(t) for t in result.traces)
    return XValPoint(label, result.time_ns, phase.time_ns, n_cmds)


def microbench_speedups(
    config: DRAMConfig,
    total_bytes: int,
    strides: tuple[int, ...] = (4, 8, 16, 32),
    single_row: bool = True,
) -> list[dict]:
    """Fig. 9 on the command-level engine: FIM speedup per stride.

    Returns one row per stride with engine-measured conventional and
    FIM durations and their ratio (the paper's speedup series).
    """
    rows = []
    for stride in strides:
        addrs = strided_addresses(config, total_bytes, stride, single_row)
        conventional = compare_conventional(
            config, addrs, label=f"stride{stride}-conv"
        )
        fim = compare_fim(config, addrs, label=f"stride{stride}-fim")
        rows.append({
            "stride": stride,
            "conv_ns": conventional.engine_ns,
            "fim_ns": fim.engine_ns,
            "speedup": (conventional.engine_ns / fim.engine_ns
                        if fim.engine_ns else float("inf")),
            "conv_ratio_vs_analytic": conventional.ratio,
            "fim_ratio_vs_analytic": fim.ratio,
        })
    return rows


def _global_bank(config: DRAMConfig, channel: int, rank: int,
                 bank: int) -> int:
    per_rank = config.spec.banks_per_rank
    return (channel * config.ranks + rank) * per_rank + bank
