"""Multi-channel command-level engine: request streams in, cycles out.

Channels have independent command/address/data buses (Sec. II-C), so
each channel controller simulates independently with event-skipping:
the clock jumps straight to the next cycle at which any command can
issue.  The run finishes when every request has completed; total time is
the slowest channel's finish cycle.

Two interchangeable controller implementations back :class:`DRAMEngine`:
the original per-command scalar walk (``mode="scalar"``, kept as the
bit-exactness oracle) and the vectorized columnar engine
(``mode="batched"``, the default) from
:mod:`repro.dram.engine.batched`, which also fast-forwards the clock
over stretches where the scalar walk would creep cycle by cycle.  Both
produce bit-identical traces, stats and cycle counts.

This engine is the high-fidelity counterpart of the fast phase
evaluator in :mod:`repro.dram.system`; `repro.dram.engine.xval`
cross-validates the two on shared workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dram.address import AddressMapper
from repro.dram.engine.batched import BatchedChannelController
from repro.dram.engine.commands import (
    Command,
    CommandColumns,
    EngineStats,
    Request,
    RequestType,
)
from repro.dram.engine.controller import ChannelController
from repro.dram.engine.timing import TimingTable, timing_from_spec
from repro.dram.spec import DRAMConfig

#: safety valve: one channel may not run longer than this many cycles
MAX_CYCLES = 1 << 34

#: controller implementations selectable on DRAMEngine
ENGINE_MODES = ("batched", "scalar")


@dataclass
class EngineResult:
    """Outcome of one engine run."""

    timing: TimingTable
    cycles: int
    stats: EngineStats
    requests: list[Request]
    #: per-channel command traces (sorted by cycle within a channel)
    traces: list[list[Command]] = field(default_factory=list)
    #: per-channel columnar traces (batched runs; None for scalar runs)
    trace_columns: list[CommandColumns] | None = None

    @property
    def time_ns(self) -> float:
        """Run duration in nanoseconds."""
        return self.timing.ns(self.cycles)

    @property
    def mean_latency_ns(self) -> float:
        """Mean request latency in nanoseconds."""
        return self.timing.ns(self.stats.mean_latency)

    def bandwidth_gbps(self, bytes_moved: float) -> float:
        """Achieved bandwidth for a caller-supplied byte count."""
        if self.cycles == 0:
            return 0.0
        return bytes_moved / self.time_ns


class DRAMEngine:
    """Command-level simulation of one :class:`DRAMConfig` system."""

    def __init__(
        self,
        config: DRAMConfig,
        queue_depth: int = 32,
        refresh_enabled: bool = True,
        mode: str = "batched",
    ) -> None:
        if mode not in ENGINE_MODES:
            raise ValueError(
                f"mode must be one of {ENGINE_MODES}, got {mode!r}"
            )
        self.config = config
        self.timing = timing_from_spec(config.spec)
        self.mapper = AddressMapper(config)
        self.queue_depth = queue_depth
        self.refresh_enabled = refresh_enabled
        self.mode = mode

    # ------------------------------------------------------------------
    def requests_from_addresses(
        self,
        addrs: np.ndarray,
        is_write: np.ndarray | None = None,
        arrivals: np.ndarray | None = None,
    ) -> tuple[list[Request], np.ndarray]:
        """Decode byte addresses into requests plus their channel route."""
        addrs = np.asarray(addrs, dtype=np.int64)
        if is_write is None:
            is_write = np.zeros(addrs.size, dtype=bool)
        if arrivals is None:
            arrivals = np.zeros(addrs.size, dtype=np.int64)
        channel, rank, bank, row, column = self.mapper.decode_many(addrs)
        requests: list[Request] = []
        for i in range(addrs.size):
            kind = RequestType.WRITE if is_write[i] else RequestType.READ
            requests.append(Request(
                kind=kind,
                rank=int(rank[i]),
                bank=int(bank[i]),
                row=int(row[i]),
                column=int(column[i]),
                arrival=int(arrivals[i]),
                req_id=i,
            ))
        return requests, channel

    # ------------------------------------------------------------------
    def run(
        self,
        requests: list[Request],
        channels: np.ndarray | None = None,
    ) -> EngineResult:
        """Simulate to completion.

        Args:
            requests: the request list (arrival cycles respected).
            channels: per-request channel index; defaults to channel 0.
        """
        n_channels = self.config.channels
        batched = self.mode == "batched"
        cls = BatchedChannelController if batched else ChannelController
        controllers = [
            cls(
                self.timing,
                ranks=self.config.ranks,
                channel=c,
                queue_depth=self.queue_depth,
                fim_items=self.config.fim_items_per_op,
                fim_offset_bursts=self.config.fim_offset_bursts,
                fim_data_bursts=self.config.fim_data_bursts,
                refresh_enabled=self.refresh_enabled,
            )
            for c in range(n_channels)
        ]
        per_channel: list[list[Request]] = [[] for _ in range(n_channels)]
        for i, request in enumerate(requests):
            channel = int(channels[i]) if channels is not None else 0
            per_channel[channel].append(request)

        finish = 0
        stats = EngineStats()
        for controller, queue in zip(controllers, per_channel):
            if batched:
                last = self._run_channel_batched(controller, queue)
            else:
                last = self._run_channel(controller, queue)
            finish = max(finish, last)
            self._merge_stats(stats, controller.stats)
            stats.data_bus_clocks[controller.channel] = (
                controller.bus_busy_clocks if batched
                else controller.bus.busy_clocks
            )
        stats.cycles = finish
        if batched:
            columns = [c.trace_columns() for c in controllers]
            traces = [cols.to_commands() for cols in columns]
        else:
            columns = None
            traces = [c.trace for c in controllers]
        return EngineResult(
            timing=self.timing,
            cycles=finish,
            stats=stats,
            requests=requests,
            traces=traces,
            trace_columns=columns,
        )

    # ------------------------------------------------------------------
    def _run_channel(self, controller: ChannelController,
                     queue: list[Request]) -> int:
        """Feed one channel's requests through its controller."""
        queue = sorted(queue, key=lambda r: r.arrival)
        next_new = 0
        now = 0
        finish = 0
        while next_new < len(queue) or controller.pending:
            while (next_new < len(queue)
                    and queue[next_new].arrival <= now
                    and controller.can_accept(queue[next_new].kind)):
                controller.enqueue(queue[next_new])
                next_new += 1
            next_cycle, issued = controller.step(now)
            if issued:
                now = next_cycle
            else:
                # Idle: jump to the next request arrival or ready cycle.
                jump = next_cycle
                if next_new < len(queue):
                    jump = min(jump, max(now + 1, queue[next_new].arrival))
                if jump <= now:
                    jump = now + 1
                now = jump
            if now > MAX_CYCLES:
                raise RuntimeError("engine exceeded cycle budget")
        for request in controller.finished:
            finish = max(finish, request.finish_cycle)
        return finish

    # ------------------------------------------------------------------
    def _run_channel_batched(self, controller: BatchedChannelController,
                             queue: list[Request]) -> int:
        """Batched-mode channel driver with event fast-forwarding.

        Visits exactly the decision points of the scalar walk that can
        change its choice: between two state changes the candidate set
        is constant except at refresh-deadline crossings, so when the
        chosen command lies in the future the clock jumps straight to
        it -- unless an arrival the scalar walk would stop at, or a
        refresh deadline it would creep onto, comes first.
        """
        queue = sorted(queue, key=lambda r: r.arrival)
        n_queue = len(queue)
        next_new = 0
        now = 0
        finish = 0
        while next_new < n_queue or controller.pending:
            while (next_new < n_queue
                    and queue[next_new].arrival <= now
                    and controller.can_accept(queue[next_new].kind)):
                controller.enqueue(queue[next_new])
                next_new += 1
            while True:
                cycle, action = controller.next_action(now)
                if action is None:
                    # Idle: jump to the next arrival or refresh deadline.
                    jump = cycle
                    if next_new < n_queue:
                        jump = min(jump,
                                   max(now + 1, queue[next_new].arrival))
                    if jump <= now:
                        jump = now + 1
                    now = jump
                    break
                if cycle > now:
                    arrival = (queue[next_new].arrival
                               if next_new < n_queue else None)
                    if arrival is not None and arrival <= now:
                        if controller.can_accept(queue[next_new].kind):
                            # A fim_start freed queue room mid-scan: the
                            # scalar walk admits the waiting head at its
                            # very next step.
                            now = now + 1
                            break
                        # A capacity-blocked head: the scalar walk creeps
                        # cycle by cycle, so a refresh deadline inside
                        # the jump is seen exactly when it falls due.
                        crossing = controller.next_refresh_crossing(
                            now, cycle)
                        if crossing is not None:
                            now = crossing
                            break
                    elif arrival is not None and arrival <= cycle:
                        # The scalar walk stops at the arrival, admits,
                        # and rescans there.
                        now = arrival
                        break
                    else:
                        # Single jump to the command cycle; a refresh
                        # deadline crossed on the way joins the
                        # candidate set there, so rescan at the target.
                        if controller.next_refresh_crossing(
                                now, cycle) is not None:
                            now = cycle
                            break
                controller.execute(action, cycle)
                if action[0] == "fim_start":
                    # Starting a program consumes no command-bus slot;
                    # the scalar step recurses at the same cycle with
                    # no admission in between.
                    now = cycle
                    continue
                now = cycle + 1
                break
            if now > MAX_CYCLES:
                raise RuntimeError("engine exceeded cycle budget")
        for request in controller.finished:
            finish = max(finish, request.finish_cycle)
        return finish

    @staticmethod
    def _merge_stats(total: EngineStats, part: EngineStats) -> None:
        total.acts += part.acts
        total.pres += part.pres
        total.reads += part.reads
        total.writes += part.writes
        total.refreshes += part.refreshes
        total.gathers += part.gathers
        total.scatters += part.scatters
        total.total_latency += part.total_latency
        total.finished_requests += part.finished_requests
