"""Per-channel memory controller: FR-FCFS over banks plus FIM sequencing.

The controller owns one channel: its rank/bank timing state, its shared
data bus, and three request queues (reads, writes, FIM operations).  On
every scheduling step it issues at most one command -- the command bus
carries one slot per clock -- chosen by a First-Ready, First-Come
First-Served policy:

1. an overdue refresh (banks are closed first),
2. the next step of an in-flight FIM virtual-row sequence,
3. a row-hit column command for the oldest matching request,
4. the preparation command (PRE/ACT) for the oldest request.

Writes are buffered and drained in batches between high/low watermarks,
the standard technique to amortise bus turnarounds.  Piccolo-FIM
requests expand into the Sec. VI standard-command sequence::

    gather:   [ACT x]  WR(off)          PRE   ACT   RD(data)
    scatter:  [ACT x]  WR(off) WR(data) PRE   ACT   WR(trigger)

where the PRE/ACT pair targets the virtual rows (translated to no-ops
inside the chip, so the physically open row x survives the sequence)
and supplies the ``tWR + tRP + tRCD`` window that hides the in-bank
column accesses.  The engine additionally enforces the Sec. VI
feasibility bound: the final column command may not issue before
``items x tCCD_L`` after the offsets arrive, which models the "slightly
adjusted tWR" of slower grades.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.dram.engine.commands import (
    Command,
    CommandType,
    EngineStats,
    Request,
    RequestType,
)
from repro.dram.engine.state import DataBus, RankState
from repro.dram.engine.timing import TimingTable

#: write-drain watermarks as fractions of the write queue capacity
WRITE_HI = 0.75
WRITE_LO = 0.25

#: an unreachable future cycle
_NEVER = 1 << 60


@dataclass
class _FimStep:
    """One command of an in-flight FIM sequence."""

    kind: CommandType
    virtual: bool
    #: data-bus bursts this step transfers (0 for ACT/PRE)
    bursts: int = 0
    #: column driven on the bus (offset vs data buffer region)
    column: int = 0
    #: must wait for the in-bank operation window (Sec. VI bound)
    window_bound: bool = False


@dataclass
class _FimProgram:
    """Decomposed FIM request plus its progress."""

    request: Request
    steps: list[_FimStep]
    next_step: int = 0
    #: cycle the offset-buffer write data completes (window anchor)
    offsets_ready: int = -1

    @property
    def current(self) -> _FimStep:
        """The next step awaiting issue."""
        return self.steps[self.next_step]

    @property
    def finished(self) -> bool:
        """Whether every step has issued."""
        return self.next_step >= len(self.steps)


class ChannelController:
    """One channel's scheduler; drive with :meth:`step`."""

    def __init__(
        self,
        timing: TimingTable,
        ranks: int,
        channel: int = 0,
        queue_depth: int = 32,
        fim_items: int = 8,
        fim_offset_bursts: int = 1,
        fim_data_bursts: int = 1,
        refresh_enabled: bool = True,
    ) -> None:
        self.timing = timing
        self.channel = channel
        self.queue_depth = queue_depth
        self.fim_items = fim_items
        self.fim_offset_bursts = fim_offset_bursts
        self.fim_data_bursts = fim_data_bursts
        self.refresh_enabled = refresh_enabled
        self.ranks = [RankState(timing) for _ in range(ranks)]
        self.bus = DataBus(timing)
        self.read_q: list[Request] = []
        self.write_q: list[Request] = []
        self.fim_q: list[Request] = []
        #: at most one in-flight FIM program per bank
        self._programs: dict[tuple[int, int], _FimProgram] = {}
        #: physically open row per (rank, bank) across virtual sequences
        self._physical_row: dict[tuple[int, int], int | None] = {}
        self._write_mode = False
        self.trace: list[Command] = []
        self.stats = EngineStats()
        self.finished: list[Request] = []

    # ------------------------------------------------------------------
    # Queue admission
    # ------------------------------------------------------------------
    def enqueue(self, request: Request) -> None:
        """Admit one request (caller respects queue_depth via
        :meth:`can_accept`)."""
        if request.kind is RequestType.READ:
            self.read_q.append(request)
        elif request.kind is RequestType.WRITE:
            self.write_q.append(request)
        else:
            self.fim_q.append(request)

    def can_accept(self, kind: RequestType) -> bool:
        """Whether the queue for ``kind`` has room."""
        queue = {
            RequestType.READ: self.read_q,
            RequestType.WRITE: self.write_q,
        }.get(kind, self.fim_q)
        return len(queue) < self.queue_depth

    @property
    def pending(self) -> int:
        """Outstanding work: queued requests plus in-flight programs."""
        return (
            len(self.read_q) + len(self.write_q) + len(self.fim_q)
            + len(self._programs)
        )

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def step(self, now: int) -> tuple[int, bool]:
        """Issue at most one command at or after ``now``.

        Returns ``(next_cycle, issued)``: the cycle at which the
        controller next wants control, and whether a command issued.
        With an empty system ``next_cycle`` is a refresh deadline or
        ``_NEVER``.
        """
        candidates: list[tuple[int, int, object]] = []  # (cycle, prio, action)

        if self.refresh_enabled:
            for rank_id, rank in enumerate(self.ranks):
                if now >= rank.next_refresh_due:
                    cycle, action = self._refresh_action(rank_id, now)
                    candidates.append((cycle, 0, action))

        for key, program in self._programs.items():
            cycle = self._fim_step_earliest(key, program, now)
            candidates.append((cycle, 1, ("fim", key)))

        fim_index = self._next_startable_fim()
        if fim_index is not None:
            request = self.fim_q[fim_index]
            candidates.append((max(now, request.arrival), 2,
                               ("fim_start", fim_index)))

        self._update_write_mode()
        queue = self.write_q if self._write_mode else self.read_q
        other = self.read_q if self._write_mode else self.write_q
        for source in (queue, other):
            action = self._best_regular(source, now)
            if action is not None:
                cycle, act = action
                # Non-preferred direction only when preferred is empty.
                prio = 3 if source is queue else 4
                candidates.append((cycle, prio, act))
            if source is queue and action is not None:
                break

        if not candidates:
            due = min(
                (r.next_refresh_due for r in self.ranks), default=_NEVER
            ) if self.refresh_enabled else _NEVER
            return due, False

        candidates.sort(key=lambda c: (c[0], c[1]))
        cycle, _, action = candidates[0]
        if cycle > now:
            return cycle, False
        self._execute(action, cycle)
        if action[0] == "fim_start":
            # Starting a program consumes no command-bus slot; schedule
            # again in the same cycle.
            return self.step(now)
        return cycle + 1, True

    # ------------------------------------------------------------------
    def _update_write_mode(self) -> None:
        hi = max(1, int(self.queue_depth * WRITE_HI))
        lo = max(0, int(self.queue_depth * WRITE_LO))
        if self._write_mode:
            if len(self.write_q) <= lo and self.read_q:
                self._write_mode = False
        else:
            if len(self.write_q) >= hi or (not self.read_q and self.write_q):
                self._write_mode = True

    def _next_startable_fim(self) -> int | None:
        """Oldest queued FIM request whose bank has no active program."""
        seen: set[tuple[int, int]] = set()
        for index, request in enumerate(self.fim_q):
            key = (request.rank, request.bank)
            if key in self._programs or key in seen:
                seen.add(key)
                continue
            return index
        return None

    # ------------------------------------------------------------------
    # Regular read/write service
    # ------------------------------------------------------------------
    def _best_regular(self, queue: list[Request],
                      now: int) -> tuple[int, object] | None:
        """First-Ready FCFS over the whole queue.

        Every queued request contributes its next needed command (column
        for a row hit, ACT for a closed bank, PRE for a conflict) with
        its earliest legal cycle; the scheduler picks the earliest-ready
        command, preferring row hits and then age on ties.  Scanning the
        whole queue is what lets preparation commands of different banks
        overlap -- the essence of bank-level parallelism.
        """
        if not queue:
            return None
        timing = self.timing
        best_col: tuple[int, int, int, object] | None = None
        best_prep: tuple[int, int, object] | None = None
        touched_banks: set[tuple[int, int]] = set()
        for index, request in enumerate(queue):
            key = (request.rank, request.bank)
            if key in self._programs:
                continue  # bank busy with a FIM sequence
            rank = self.ranks[request.rank]
            bank = rank.banks[request.bank]
            if bank.open_row == request.row:
                is_read = request.kind is not RequestType.WRITE
                kind = CommandType.RD if is_read else CommandType.WR
                cycle = max(now, request.arrival,
                            rank.earliest(kind, request.bank))
                # Rank the hit by when its data could actually move:
                # this batches same-rank transfers (avoiding tRTRS) and
                # is what a bus-aware controller optimises for.
                lead = timing.tCL if is_read else timing.tCWL
                data = self.bus.earliest_data_start(request.rank,
                                                    cycle + lead, is_read)
                candidate = (data, cycle, index,
                             ("column", queue, index))
                if best_col is None or candidate[:3] < best_col[:3]:
                    best_col = candidate
            elif key in touched_banks:
                # An older request already owns this bank's next
                # preparation command; do not reorder behind it.
                continue
            elif bank.open_row is None:
                cycle = max(now, request.arrival,
                            rank.earliest(CommandType.ACT, request.bank))
                if best_prep is None or (cycle, index) < best_prep[:2]:
                    best_prep = (cycle, index, ("act", queue, index))
            else:
                cycle = max(now, request.arrival,
                            rank.earliest(CommandType.PRE, request.bank))
                if best_prep is None or (cycle, index) < best_prep[:2]:
                    best_prep = (cycle, index, ("pre", queue, index))
            touched_banks.add(key)
        if best_col is None and best_prep is None:
            return None
        if best_col is None:
            return best_prep[0], best_prep[2]
        if best_prep is None or best_prep[0] >= best_col[1]:
            return best_col[1], best_col[3]
        # A preparation command fits in an earlier command-bus slot
        # without delaying the chosen column command.
        return best_prep[0], best_prep[2]

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------
    def _refresh_action(self, rank_id: int, now: int) -> tuple[int, object]:
        rank = self.ranks[rank_id]
        for bank_id, bank in enumerate(rank.banks):
            if bank.open_row is not None and (rank_id, bank_id) not in self._programs:
                cycle = max(now, rank.earliest(CommandType.PRE, bank_id))
                return cycle, ("pre_for_ref", rank_id, bank_id)
        if not rank.all_banks_closed():
            # Remaining open banks belong to FIM programs; wait for them.
            return _NEVER, ("noop",)
        return max(now, rank.earliest_refresh()), ("refresh", rank_id)

    # ------------------------------------------------------------------
    # FIM sequencing
    # ------------------------------------------------------------------
    def _start_fim(self, index: int) -> None:
        request = self.fim_q.pop(index)
        key = (request.rank, request.bank)
        rank = self.ranks[request.rank]
        bank = rank.banks[request.bank]
        steps: list[_FimStep] = []
        physical = self._physical_row.get(key, bank.open_row)
        if physical != request.row:
            if bank.open_row is not None:
                steps.append(_FimStep(CommandType.PRE, virtual=False))
            steps.append(_FimStep(CommandType.ACT, virtual=False))
        for burst in range(self.fim_offset_bursts):
            steps.append(_FimStep(CommandType.WR, virtual=True, bursts=1,
                                  column=0))
        if request.kind is RequestType.SCATTER:
            for burst in range(self.fim_data_bursts):
                steps.append(_FimStep(CommandType.WR, virtual=True,
                                      bursts=1, column=8))
        steps.append(_FimStep(CommandType.PRE, virtual=True))
        steps.append(_FimStep(CommandType.ACT, virtual=True))
        if request.kind is RequestType.GATHER:
            for burst in range(self.fim_data_bursts):
                steps.append(_FimStep(CommandType.RD, virtual=True,
                                      bursts=1, column=8,
                                      window_bound=True))
        else:
            # Dummy trigger write keeping the activation cadence.
            steps.append(_FimStep(CommandType.WR, virtual=True, bursts=1,
                                  column=0, window_bound=True))
        self._programs[key] = _FimProgram(request=request, steps=steps)

    def _fim_step_earliest(self, key: tuple[int, int],
                           program: _FimProgram, now: int) -> int:
        rank_id, bank_id = key
        rank = self.ranks[rank_id]
        step = program.current
        cycle = max(now, rank.earliest(step.kind, bank_id))
        if step.window_bound and program.offsets_ready >= 0:
            # Sec. VI feasibility: the internal scatter/gather needs
            # items x tCCD_L after the buffer payload lands.
            window = self.fim_items * self.timing.tCCD_L
            cycle = max(cycle, program.offsets_ready + window)
        return cycle

    # ------------------------------------------------------------------
    # Command execution
    # ------------------------------------------------------------------
    def _execute(self, action: Any, cycle: int) -> None:
        tag = action[0]
        if tag == "fim_start":
            self._start_fim(action[1])
            return
        if tag == "refresh":
            rank_id = action[1]
            self.ranks[rank_id].issue(CommandType.REF, 0, cycle)
            self._record(Command(cycle, CommandType.REF, rank_id, 0))
            self.stats.refreshes += 1
            return
        if tag in ("pre", "pre_for_ref"):
            if tag == "pre":
                _, queue, index = action
                request = queue[index]
                rank_id, bank_id = request.rank, request.bank
            else:
                _, rank_id, bank_id = action
            self.ranks[rank_id].issue(CommandType.PRE, bank_id, cycle)
            self._physical_row[(rank_id, bank_id)] = None
            self._record(Command(cycle, CommandType.PRE, rank_id, bank_id))
            self.stats.pres += 1
            return
        if tag == "act":
            _, queue, index = action
            request = queue[index]
            rank = self.ranks[request.rank]
            rank.issue(CommandType.ACT, request.bank, cycle, row=request.row)
            self._physical_row[(request.rank, request.bank)] = request.row
            self._record(Command(cycle, CommandType.ACT, request.rank,
                                 request.bank, row=request.row,
                                 req_id=request.req_id))
            self.stats.acts += 1
            return
        if tag == "column":
            _, queue, index = action
            request = queue.pop(index)
            self._issue_column(request, cycle)
            return
        if tag == "fim":
            self._issue_fim_step(action[1], cycle)
            return
        raise ValueError(f"unknown action {tag!r}")

    def _issue_column(self, request: Request, cycle: int) -> None:
        timing = self.timing
        rank = self.ranks[request.rank]
        is_read = request.kind is RequestType.READ
        kind = CommandType.RD if is_read else CommandType.WR
        lead = timing.tCL if is_read else timing.tCWL
        start = self.bus.earliest_data_start(request.rank, cycle + lead,
                                             is_read)
        self.bus.reserve(request.rank, start, timing.tBL, is_read)
        rank.issue(kind, request.bank, cycle, data_end=start + timing.tBL)
        if request.issue_cycle < 0:
            request.issue_cycle = cycle
        request.finish_cycle = start + timing.tBL
        self.finished.append(request)
        self.stats.reads += is_read
        self.stats.writes += not is_read
        self.stats.total_latency += request.latency
        self.stats.finished_requests += 1
        self._record(Command(cycle, kind, request.rank, request.bank,
                             row=request.row, column=request.column,
                             req_id=request.req_id, data_clocks=timing.tBL,
                             data_start=start))

    def _issue_fim_step(self, key: tuple[int, int], cycle: int) -> None:
        program = self._programs[key]
        request = program.request
        step = program.current
        rank_id, bank_id = key
        rank = self.ranks[rank_id]
        timing = self.timing
        row = request.row if step.kind is CommandType.ACT else None
        if request.issue_cycle < 0:
            request.issue_cycle = cycle
        data_start = 0
        data_end = None
        if step.bursts:
            is_read = step.kind is CommandType.RD
            lead = timing.tCL if is_read else timing.tCWL
            data_start = self.bus.earliest_data_start(rank_id, cycle + lead,
                                                      is_read)
            self.bus.reserve(rank_id, data_start, timing.tBL * step.bursts,
                             is_read)
            data_end = data_start + timing.tBL * step.bursts
            self.stats.reads += is_read
            self.stats.writes += not is_read
        rank.issue(step.kind, bank_id, cycle, row=row, data_end=data_end)
        if (step.virtual and step.kind is CommandType.WR and step.bursts
                and not step.window_bound):
            # Window anchor: the in-bank operation may start only after
            # the last buffer payload (offsets, then scatter data) lands.
            program.offsets_ready = max(
                program.offsets_ready, data_start + timing.tBL * step.bursts
            )
        if not step.virtual:
            if step.kind is CommandType.ACT:
                self._physical_row[key] = request.row
                self.stats.acts += 1
            elif step.kind is CommandType.PRE:
                self._physical_row[key] = None
                self.stats.pres += 1
        self._record(Command(cycle, step.kind, rank_id, bank_id,
                             row=row, column=step.column or None,
                             req_id=request.req_id, virtual=step.virtual,
                             data_clocks=timing.tBL * step.bursts,
                             data_start=data_start))
        program.next_step += 1
        if program.finished:
            del self._programs[key]
            # The chip no-ops the virtual PRE/ACT: the physical row
            # survives, and the controller may row-hit it afterwards.
            bank = rank.banks[bank_id]
            bank.open_row = self._physical_row.get(key, request.row)
            end = data_start + timing.tBL * step.bursts if step.bursts \
                else cycle
            request.finish_cycle = end
            self.finished.append(request)
            if request.kind is RequestType.GATHER:
                self.stats.gathers += 1
            else:
                self.stats.scatters += 1
            self.stats.total_latency += request.latency
            self.stats.finished_requests += 1

    # ------------------------------------------------------------------
    def _record(self, command: Command) -> None:
        self.trace.append(command)
