"""Integer-cycle JEDEC timing tables for the command-level engine.

The fast phase evaluator (:mod:`repro.dram.system`) works in nanoseconds
and only needs the handful of parameters that dominate throughput.  The
command-level engine replays *every* command on a clock, so it carries
the full constraint set in integer nCK units, the way a real controller
(and Ramulator, the paper's substrate) does:

===========  =============================================================
parameter    constraint
===========  =============================================================
tRCD         ACT -> first RD/WR to the same bank
tRP          PRE -> next ACT to the same bank
tRAS         ACT -> PRE to the same bank
tRC          ACT -> next ACT to the same bank (tRAS + tRP)
tCL / tCWL   RD / WR command -> first data beat
tBL          data-bus beats of one burst, in clocks
tCCD_S/L     RD/WR -> RD/WR, different / same bank group
tRRD_S/L     ACT -> ACT, different / same bank group
tFAW         window in which at most four ACTs may issue per rank
tWR          end of write data -> PRE (write recovery)
tWTR_S/L     end of write data -> RD command, different / same bank group
tRTP         RD command -> PRE
tREFI        average interval between refresh commands
tRFC         refresh cycle time (rank blocked)
tRTRS        rank-to-rank data-bus switch penalty
===========  =============================================================

Values follow the same grades as :mod:`repro.dram.spec` (DDR4-2400R,
LPDDR4-3200, GDDR5-6000, HBM2) with datasheet-typical constants for the
parameters the coarse spec does not carry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dram.spec import DeviceSpec


def _nck(time_ns: float, tck_ns: float) -> int:
    """Round a nanosecond constraint up to whole clocks (JEDEC rounding)."""
    return max(0, math.ceil(time_ns / tck_ns - 1e-9))


@dataclass(frozen=True)
class TimingTable:
    """All timing constraints of one device grade, in integer clocks.

    Attributes:
        tck_ns: command-clock period (data toggles at twice this rate).
        bank_groups: bank groups per rank (1 disables the _S/_L split).
        banks_per_group: banks inside one group.
    """

    name: str
    tck_ns: float
    bank_groups: int
    banks_per_group: int
    tRCD: int
    tRP: int
    tRAS: int
    tCL: int
    tCWL: int
    tBL: int
    tCCD_S: int
    tCCD_L: int
    tRRD_S: int
    tRRD_L: int
    tFAW: int
    tWR: int
    tWTR_S: int
    tWTR_L: int
    tRTP: int
    tREFI: int
    tRFC: int
    tRTRS: int = 2

    # ------------------------------------------------------------------
    @property
    def tRC(self) -> int:
        """Same-bank ACT-to-ACT interval (tRAS + tRP)."""
        return self.tRAS + self.tRP

    @property
    def banks_per_rank(self) -> int:
        """Total banks per rank across all bank groups."""
        return self.bank_groups * self.banks_per_group

    def same_group(self, bank_a: int, bank_b: int) -> bool:
        """Whether two bank ids of one rank share a bank group."""
        return bank_a // self.banks_per_group == bank_b // self.banks_per_group

    def ccd(self, same_group: bool) -> int:
        """Column-to-column gap for the given bank-group relation."""
        return self.tCCD_L if same_group else self.tCCD_S

    def rrd(self, same_group: bool) -> int:
        """ACT-to-ACT gap for the given bank-group relation."""
        return self.tRRD_L if same_group else self.tRRD_S

    def wtr(self, same_group: bool) -> int:
        """Write-to-read turnaround for the given group relation."""
        return self.tWTR_L if same_group else self.tWTR_S

    def ns(self, cycles: int | float) -> float:
        """Convert clocks to nanoseconds."""
        return cycles * self.tck_ns

    def cycles(self, time_ns: float) -> int:
        """Convert nanoseconds to whole clocks, rounding up."""
        return _nck(time_ns, self.tck_ns)

    def validate(self) -> None:
        """Check internal consistency; raises ``ValueError``."""
        if self.tck_ns <= 0:
            raise ValueError("tck_ns must be positive")
        if self.bank_groups < 1 or self.banks_per_group < 1:
            raise ValueError("bank organisation must be positive")
        if self.tCCD_S > self.tCCD_L:
            raise ValueError("tCCD_S must not exceed tCCD_L")
        if self.tRRD_S > self.tRRD_L:
            raise ValueError("tRRD_S must not exceed tRRD_L")
        if self.tRAS < self.tRCD:
            raise ValueError("tRAS must cover tRCD")
        if self.tFAW < self.tRRD_S:
            raise ValueError("tFAW must cover at least one tRRD_S")
        for name in ("tRCD", "tRP", "tCL", "tCWL", "tBL", "tREFI", "tRFC"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


# ---------------------------------------------------------------------------
# Per-family datasheet constants for parameters the coarse DeviceSpec
# does not carry (ns unless marked nCK).
# ---------------------------------------------------------------------------
_FAMILY_EXTRAS = {
    # tRRD_S, tRRD_L, tFAW, tWTR_S, tWTR_L, tRTP (ns); groups
    "DDR4": dict(tRRD_S=3.3, tRRD_L=4.9, tFAW=21.0, tWTR_S=2.5,
                 tWTR_L=7.5, tRTP=7.5, tREFI=7800.0, tRFC=350.0,
                 bank_groups=4),
    "LPDDR4": dict(tRRD_S=7.5, tRRD_L=7.5, tFAW=30.0, tWTR_S=10.0,
                   tWTR_L=10.0, tRTP=7.5, tREFI=3900.0, tRFC=280.0,
                   bank_groups=1),
    "GDDR5": dict(tRRD_S=5.0, tRRD_L=5.0, tFAW=23.0, tWTR_S=5.0,
                  tWTR_L=7.5, tRTP=2.0, tREFI=1900.0, tRFC=110.0,
                  bank_groups=4),
    "HBM": dict(tRRD_S=2.0, tRRD_L=4.0, tFAW=16.0, tWTR_S=2.5,
                tWTR_L=7.5, tRTP=7.5, tREFI=3900.0, tRFC=260.0,
                bank_groups=4),
}


def timing_from_spec(spec: DeviceSpec) -> TimingTable:
    """Derive the full integer-cycle table for one device grade.

    Core timings come from the :class:`DeviceSpec` (the same numbers the
    phase evaluator uses, so both models agree on the dominant terms);
    the remaining constraints use datasheet-typical family constants.
    """
    extras = _FAMILY_EXTRAS.get(spec.family)
    if extras is None:
        raise ValueError(f"no engine timing data for family {spec.family!r}")
    tck = 2.0 / spec.data_rate_gtps
    bank_groups = min(extras["bank_groups"], spec.banks_per_rank)
    banks_per_group = spec.banks_per_rank // bank_groups
    beats = spec.burst_bytes // spec.bus_bytes
    tccd_l = _nck(spec.tCCD, tck)
    table = TimingTable(
        name=spec.name,
        tck_ns=tck,
        bank_groups=bank_groups,
        banks_per_group=banks_per_group,
        tRCD=_nck(spec.tRCD, tck),
        tRP=_nck(spec.tRP, tck),
        tRAS=_nck(spec.tRAS, tck),
        tCL=_nck(spec.tCL, tck),
        tCWL=max(1, _nck(spec.tCL, tck) - 2),
        tBL=max(1, beats // 2),
        # tCCD_S is the back-to-back burst floor (= tBL, e.g. 4 nCK for
        # DDR4 BL8); tCCD_L is the same-bank-group gap from the spec.
        tCCD_S=min(max(1, beats // 2), tccd_l),
        tCCD_L=tccd_l,
        tRRD_S=_nck(extras["tRRD_S"], tck),
        tRRD_L=_nck(extras["tRRD_L"], tck),
        tFAW=_nck(extras["tFAW"], tck),
        tWR=_nck(spec.tWR, tck),
        tWTR_S=_nck(extras["tWTR_S"], tck),
        tWTR_L=_nck(extras["tWTR_L"], tck),
        tRTP=_nck(extras["tRTP"], tck),
        tREFI=_nck(extras["tREFI"], tck),
        tRFC=_nck(extras["tRFC"], tck),
    )
    table.validate()
    return table
