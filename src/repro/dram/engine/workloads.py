"""Request-stream builders for engine validation and microbenchmarks.

These generate the same access patterns the paper's FPGA microbenchmark
uses (Fig. 9: strided reads of a fixed footprint, data either packed in
one row per bank or spread over many rows) plus random mixes for fuzz
testing, in both conventional (per-burst READ/WRITE) and Piccolo-FIM
(row-grouped GATHER/SCATTER) forms.
"""

from __future__ import annotations

import numpy as np

from repro.dram.address import AddressMapper
from repro.dram.engine.commands import Request, RequestType
from repro.dram.spec import DRAMConfig


def strided_addresses(
    config: DRAMConfig,
    total_bytes: int,
    stride_words: int,
    single_row: bool,
) -> np.ndarray:
    """Byte addresses of a Fig. 9-style strided read sweep.

    Every ``stride_words``-th 8-byte word is touched, reading
    ``total_bytes / stride`` of payload.  With ``single_row`` the walk
    wraps within the first row-stripe (one row per bank after
    interleaving) so every access is a row hit; otherwise the walk is
    spread over at least eight rows per bank so activations matter.
    """
    if stride_words < 1:
        raise ValueError("stride must be >= 1")
    n_words = max(1, total_bytes // (8 * stride_words))
    word_index = np.arange(n_words, dtype=np.int64) * stride_words
    stripe_words = (config.total_banks * config.spec.row_bytes) // 8
    if single_row:
        # Wrap inside one row-stripe across all banks: the footprint of
        # one open row per bank.
        word_index %= stripe_words
    else:
        # Spread the walk over >= 8 rows per bank regardless of the
        # requested footprint, so the series exercises activations.
        min_words = 8 * stripe_words
        span = max(1, n_words)
        scale = max(1, -(-min_words // span))  # ceil
        word_index = (word_index * scale) % (8 * stripe_words * scale)
    return word_index * 8


def conventional_requests(
    config: DRAMConfig,
    addrs: np.ndarray,
    is_write: np.ndarray | None = None,
) -> tuple[list[Request], np.ndarray]:
    """Burst-granularity requests touching the bursts covering ``addrs``.

    Consecutive duplicate bursts are collapsed (the cache/prefetcher
    would), matching the conventional baseline of the microbenchmark.
    """
    addrs = np.asarray(addrs, dtype=np.int64)
    burst = config.spec.burst_bytes
    blocks = (addrs // burst) * burst
    keep = np.ones(blocks.size, dtype=bool)
    keep[1:] = blocks[1:] != blocks[:-1]
    blocks = blocks[keep]
    if is_write is not None:
        is_write = np.asarray(is_write, dtype=bool)[keep]
    mapper = AddressMapper(config)
    channel, rank, bank, row, column = mapper.decode_many(blocks)
    requests: list[Request] = []
    for i in range(blocks.size):
        kind = (RequestType.WRITE if is_write is not None and is_write[i]
                else RequestType.READ)
        requests.append(Request(
            kind=kind, rank=int(rank[i]), bank=int(bank[i]),
            row=int(row[i]), column=int(column[i]), req_id=i,
        ))
    return requests, channel


def fim_requests(
    config: DRAMConfig,
    addrs: np.ndarray,
    scatter: bool = False,
) -> tuple[list[Request], np.ndarray]:
    """Row-grouped FIM operations covering the words of ``addrs``.

    Words are bucketed by (channel, rank, bank, row) in stream order and
    emitted as GATHER/SCATTER requests of up to ``fim_items_per_op``
    offsets -- what the collection-extended MSHR would produce.
    """
    addrs = np.asarray(addrs, dtype=np.int64)
    mapper = AddressMapper(config)
    channel, rank, bank, row, _ = mapper.decode_many(addrs)
    words = mapper.word_in_row_many(addrs)
    items = config.fim_items_per_op
    kind = RequestType.SCATTER if scatter else RequestType.GATHER
    pending: dict[tuple[int, int, int, int], list[int]] = {}
    requests: list[Request] = []
    channels: list[int] = []

    def _flush(key: tuple[int, int, int, int]) -> None:
        offsets = pending.pop(key)
        ch, ra, ba, ro = key
        requests.append(Request(
            kind=kind, rank=ra, bank=ba, row=ro,
            offsets=tuple(offsets), req_id=len(requests),
        ))
        channels.append(ch)

    for i in range(addrs.size):
        key = (int(channel[i]), int(rank[i]), int(bank[i]), int(row[i]))
        bucket = pending.setdefault(key, [])
        bucket.append(int(words[i]))
        if len(bucket) == items:
            _flush(key)
    for key in list(pending):
        _flush(key)
    return requests, np.asarray(channels, dtype=np.int64)


def random_mix(
    config: DRAMConfig,
    n_requests: int,
    seed: int,
    write_fraction: float = 0.3,
    footprint_bytes: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Random (addrs, is_write) pair over a bounded footprint."""
    rng = np.random.default_rng(seed)
    if footprint_bytes is None:
        footprint_bytes = min(config.capacity_bytes, 1 << 26)
    n_words = footprint_bytes // 8
    addrs = rng.integers(0, n_words, size=n_requests, dtype=np.int64) * 8
    is_write = rng.random(n_requests) < write_fraction
    return addrs, is_write
