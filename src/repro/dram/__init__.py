"""DRAM substrate: device specs, address mapping, command-level timing.

The model is an event/episode-driven *throughput* model at DRAM-command
granularity (see docs/ARCHITECTURE.md): per-bank row-episode service times honour
tRCD/tRP/tRAS/tCCD/tWR, the shared data bus is charged per burst, and a
phase's memory time is the binding resource (slowest bank vs. busiest
channel bus).  This reproduces the quantities Piccolo's evaluation is
about -- transaction counts, bank/bus occupancy, activation counts --
without per-cycle simulation.
"""

from repro.dram.spec import DeviceSpec, DEVICES, DRAMConfig
from repro.dram.address import AddressMapper
from repro.dram.fim_batch import FimOp, FimOpBatch
from repro.dram.system import DRAMModel, PhaseAccumulator, PhaseStats

__all__ = [
    "DeviceSpec",
    "DEVICES",
    "DRAMConfig",
    "AddressMapper",
    "DRAMModel",
    "PhaseAccumulator",
    "PhaseStats",
    "FimOp",
    "FimOpBatch",
]
