"""Out-of-core measurement cells: tile-backing RSS/wall-clock probes.

``tools/perf_report.py --ooc mid|paper`` runs each cell here in a
*spawned child process* and records two phases:

1. **materialize** -- generate the dataset stand-in and write it to a
   memmap directory (:func:`repro.graph.datasets.materialize_memmap`),
   then attach the memmapped copy so the anonymous generation arrays
   are dropped.  This phase is identical for both backings; its cost is
   reported (``materialize_seconds`` / ``materialize_rss_anon_mb``) but
   kept out of the cell's recorded time.
2. **run** -- the actual (system, algorithm, dataset) cell, timed, with
   the tile arrays built ``memory``- or ``disk``-backed into a fresh
   store.  This is where the two backings diverge: the in-memory build
   holds a global argsort plus fully resident tiles, the disk build
   holds one scatter chunk / one bucket at a time and pages tiles from
   the memmapped store on demand.

Peak memory is sampled as **anonymous RSS** (``RssAnon`` in
``/proc/self/status``): memmap-backed graph and tile pages are
file-backed and reclaimable by the kernel under pressure, so they are
deliberately excluded -- bounding *anonymous* memory is exactly the
out-of-core claim.  ``ru_maxrss`` (which counts file-backed pages too)
is recorded alongside for context.

Child isolation matters because RSS high-water marks never reset within
a process: timing both backings in one process would let the in-memory
build's peak mask the disk build's.  The child writes its measurement
as JSON to a handoff file; the parent never shares allocator state with
the measured run.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import pathlib
import threading
import time

from repro.experiments.config import get_profile

#: sampling interval for the RSS watcher thread.  Coarse enough to be
#: free next to a multi-second simulation, fine enough that edge-array
#: sized transients (which live for whole sort/scatter passes) cannot
#: slip between samples.
SAMPLE_SECONDS = 0.02


@dataclasses.dataclass(frozen=True)
class OocCell:
    """One spawned-child measurement: a grid cell at a fixed backing."""

    name: str
    system: str
    algorithm: str
    dataset: str
    scale: str
    tile_backing: str
    #: dataset reduction override; None takes the profile's shift.  The
    #: paper-suite KN28 cell uses shift 4 (~2^24 vertices, ~167M edges)
    #: to cross the 100M-edge line the toy/paper profiles never reach.
    scale_shift: int | None = None


#: The recorded trajectory cells.  ``mid`` is the cheap pair (also the
#: shape the tier-1 ooc smoke exercises); ``paper`` adds the 100M+-edge
#: disk-only Kronecker cell -- its in-memory counterpart is exactly the
#: configuration the disk backing exists to avoid, so it is not run.
OOC_CELLS: dict[str, list[OocCell]] = {
    "mid": [
        OocCell("ooc/mid/memory/Piccolo/PR/SW",
                "Piccolo", "PR", "SW", "mid", "memory"),
        OocCell("ooc/mid/disk/Piccolo/PR/SW",
                "Piccolo", "PR", "SW", "mid", "disk"),
    ],
    "paper": [
        OocCell("ooc/paper/memory/Piccolo/PR/SW",
                "Piccolo", "PR", "SW", "paper", "memory"),
        OocCell("ooc/paper/disk/Piccolo/PR/SW",
                "Piccolo", "PR", "SW", "paper", "disk"),
        OocCell("ooc/paper/disk/Piccolo/PR/KN28s4",
                "Piccolo", "PR", "KN28", "paper", "disk", scale_shift=4),
    ],
}


def _read_rss_kb() -> tuple[int, int]:
    """(RssAnon, VmRSS) in kB from ``/proc/self/status``.

    RssAnon needs Linux >= 4.5; where absent, anon falls back to VmRSS
    (the gate then over-counts file-backed pages -- conservative).
    """
    anon = rss = 0
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("RssAnon:"):
                    anon = int(line.split()[1])
                elif line.startswith("VmRSS:"):
                    rss = int(line.split()[1])
    except OSError:  # pragma: no cover - non-/proc platform
        pass
    return (anon or rss, rss)


class _AnonPeakSampler:
    """Background thread tracking the peak anonymous RSS since reset."""

    def __init__(self) -> None:
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._peak_kb = 0
        self._thread = threading.Thread(target=self._loop, daemon=True)

    def _sample(self) -> None:
        anon_kb, _ = _read_rss_kb()
        with self._lock:
            self._peak_kb = max(self._peak_kb, anon_kb)

    def _loop(self) -> None:
        while not self._stop.wait(SAMPLE_SECONDS):
            self._sample()

    def __enter__(self) -> "_AnonPeakSampler":
        self._sample()
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join()

    def reset_mb(self) -> float:
        """Return the peak so far (MB) and start a fresh window."""
        self._sample()
        with self._lock:
            peak = self._peak_kb
            self._peak_kb = 0
        return round(peak / 1024, 1)


def _child_main(cell: OocCell, root: str, out_path: str) -> None:
    """Measure one cell (runs inside the spawned child)."""
    import resource

    from repro.experiments.runner import clear_result_cache, run_system
    from repro.graph import datasets

    root_dir = pathlib.Path(root)
    scale = get_profile(cell.scale)
    shift = (cell.scale_shift if cell.scale_shift is not None
             else scale.scale_shift)
    # a fresh per-cell store: the point is to time the *build*, not a
    # warm attach (the attach path is what the sweep tests cover)
    tiles_dir = root_dir / cell.name.replace("/", "_") / "tiles"
    tiles_dir.mkdir(parents=True, exist_ok=True)
    scale = dataclasses.replace(
        scale,
        tile_backing=cell.tile_backing,
        tile_store_root=str(tiles_dir),
    )

    with _AnonPeakSampler() as sampler:
        mat_start = time.perf_counter()
        path = datasets.materialize_memmap(
            cell.dataset, shift, root_dir / "graphs"
        )
        datasets.attach_memmap(cell.dataset, shift, path)
        materialize_seconds = time.perf_counter() - mat_start
        materialize_peak_mb = sampler.reset_mb()

        clear_result_cache()
        run_start = time.perf_counter()
        result = run_system(
            cell.system,
            cell.algorithm,
            cell.dataset,
            scale=scale,
            scale_shift=shift,
        )
        seconds = time.perf_counter() - run_start
        run_peak_mb = sampler.reset_mb()

    payload = {
        "cell": cell.name,
        "tile_backing": cell.tile_backing,
        "dataset": cell.dataset,
        "scale_shift": shift,
        "num_edges": datasets.load_dataset(cell.dataset, shift).num_edges,
        "seconds": round(seconds, 4),
        "rss_anon_peak_mb": run_peak_mb,
        "materialize_seconds": round(materialize_seconds, 4),
        "materialize_rss_anon_mb": materialize_peak_mb,
        "ru_maxrss_mb": round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1
        ),
        "total_ns": result.total_ns,
    }
    tmp = pathlib.Path(out_path + ".tmp")
    tmp.write_text(json.dumps(payload))
    tmp.replace(out_path)


def run_ooc_cell(cell: OocCell, root) -> dict:
    """Run one cell in a spawned child; return its measurement payload.

    The shared ``root`` holds the materialised graph memmaps (reused
    across cells of one suite run) and each cell's private tile store.
    """
    root_dir = pathlib.Path(root)
    root_dir.mkdir(parents=True, exist_ok=True)
    out_path = root_dir / (cell.name.replace("/", "_") + ".json")
    ctx = multiprocessing.get_context("spawn")
    proc = ctx.Process(
        target=_child_main, args=(cell, str(root_dir), str(out_path))
    )
    proc.start()
    proc.join()
    if proc.exitcode != 0 or not out_path.exists():
        raise RuntimeError(
            f"ooc cell {cell.name} child failed (exit code {proc.exitcode})"
        )
    return json.loads(out_path.read_text())


__all__ = ["OOC_CELLS", "OocCell", "run_ooc_cell"]
