"""Experiment-request adapter: JSON config -> canonical resolved cell.

The experiment service (:mod:`repro.service`) accepts plain-JSON
configs over HTTP; :func:`resolve_request` is the single place those
configs become :class:`~repro.experiments.runner.CellSpec` values and
pick up their canonical digest.  The adapter is deliberately strict --
unknown keys, wrong types, and unregistered names are
:class:`RequestError`\\ s (HTTP 400s), never silent defaults -- because
the digest is the cache key: a request that "almost" names a cell must
not silently collide with (or miss) the cell the caller meant.

Every accepted request is digestable by construction: the JSON surface
can only express primitive knobs (no ``cache_factory`` callables, the
one thing that makes a :class:`CellSpec` undigestable), so the service
can always content-address the result.  Fig. 11 cache variants enter
through the picklable ``cache_design`` registry spelling instead.

Dataset seeds are not a request knob: every dataset in the registry is
a *seeded, deterministic* stand-in (see ``repro/graph/datasets.py``),
so ``(dataset, scale_shift)`` fully pins the graph and the seed is part
of the dataset's identity, not the request's.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from repro.experiments.runner import CellSpec, ResolvedCell, resolve_cell


class RequestError(ValueError):
    """An experiment config that cannot name a cell (HTTP 400)."""


#: request key -> (accepted types, human-readable description).
#: bool is checked before int everywhere below because bool is an int
#: subclass and a JSON ``true`` must not pass as an iteration count.
REQUEST_FIELDS: dict[str, tuple[tuple[type, ...], str]] = {
    "system": ((str,), "accelerator system name (required)"),
    "algorithm": ((str,), "vertex algorithm, e.g. PR / BFS (required)"),
    "dataset": ((str,), "dataset registry key, e.g. TW (required)"),
    "profile": ((str,), "scale profile name (default: toy)"),
    "cache_design": ((str,), "Fig. 11 fine-grained cache variant"),
    "max_iterations": ((int,), "iteration cap override"),
    "scale_shift": ((int,), "dataset 2**shift reduction override"),
    "chunk_size": ((int,), "memory-path tile-chunking override"),
    "tile_scale": ((int,), "tile-width multiple override"),
    "tile_backing": ((str,), 'tile backing: "memory" or "disk"'),
}

_REQUIRED = ("system", "algorithm", "dataset")
_POSITIVE = ("max_iterations", "chunk_size", "tile_scale")


def _check_registries(payload: Mapping[str, Any]) -> None:
    """Eager name validation so bad requests 400 instead of 500."""
    from repro.accel.systems import SYSTEMS
    from repro.cache.variants import FIG11_DESIGNS
    from repro.experiments.config import PROFILES
    from repro.graph.datasets import DATASETS

    system = payload["system"]
    if system not in SYSTEMS:
        raise RequestError(
            f"unknown system {system!r}; available: {sorted(SYSTEMS)}"
        )
    dataset = payload["dataset"]
    if dataset not in DATASETS:
        raise RequestError(
            f"unknown dataset {dataset!r}; available: {sorted(DATASETS)}"
        )
    profile = payload.get("profile", "toy")
    if profile not in PROFILES:
        raise RequestError(
            f"unknown profile {profile!r}; available: {sorted(PROFILES)}"
        )
    design = payload.get("cache_design")
    if design is not None and design not in FIG11_DESIGNS:
        raise RequestError(
            f"unknown cache_design {design!r}; "
            f"available: {list(FIG11_DESIGNS)}"
        )
    backing = payload.get("tile_backing")
    if backing is not None and backing not in ("memory", "disk"):
        raise RequestError(
            f"unknown tile_backing {backing!r}; "
            f"available: ['memory', 'disk']"
        )


def resolve_request(payload: object) -> ResolvedCell:
    """Validate a JSON experiment config and resolve it to a cell.

    Raises :class:`RequestError` with a self-describing message for any
    malformed config.  The returned cell always carries a canonical
    digest (the service's cache key).
    """
    if not isinstance(payload, Mapping):
        raise RequestError(
            "experiment config must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    unknown = sorted(set(payload) - set(REQUEST_FIELDS))
    if unknown:
        raise RequestError(
            f"unknown config key(s) {unknown}; "
            f"accepted: {sorted(REQUEST_FIELDS)}"
        )
    missing = [key for key in _REQUIRED if key not in payload]
    if missing:
        raise RequestError(f"missing required config key(s) {missing}")
    for key, (types, description) in REQUEST_FIELDS.items():
        if key not in payload:
            continue
        value = payload[key]
        if isinstance(value, bool) or not isinstance(value, types):
            expected = "/".join(t.__name__ for t in types)
            raise RequestError(
                f"config key {key!r} must be {expected} "
                f"({description}), got {value!r}"
            )
    for key in _POSITIVE:
        if key in payload and payload[key] < 1:
            raise RequestError(
                f"config key {key!r} must be >= 1, got {payload[key]!r}"
            )
    if "scale_shift" in payload and payload["scale_shift"] < 0:
        raise RequestError(
            f"config key 'scale_shift' must be >= 0, "
            f"got {payload['scale_shift']!r}"
        )
    _check_registries(payload)
    spec = CellSpec(
        system=payload["system"],
        algorithm=payload["algorithm"],
        dataset=payload["dataset"],
        scale=payload.get("profile", "toy"),
        max_iterations=payload.get("max_iterations"),
        scale_shift=payload.get("scale_shift"),
        chunk_size=payload.get("chunk_size"),
        cache_design=payload.get("cache_design"),
        tile_scale=payload.get("tile_scale"),
        tile_backing=payload.get("tile_backing"),
    )
    cell = resolve_cell(spec)
    # Unreachable through the JSON surface (no callables can enter),
    # but the service's cache contract depends on it, so assert loudly.
    if cell.digest is None:
        raise RequestError("config does not canonicalize to a cell digest")
    return cell


def describe_cell(cell: ResolvedCell) -> dict:
    """JSON-safe identity summary of a resolved cell (status payloads)."""
    return {
        "system": cell.system,
        "algorithm": cell.algorithm,
        "dataset": cell.dataset,
        "shift": cell.shift,
        "max_iterations": cell.max_iterations,
        "scale": (
            cell.spec.scale if isinstance(cell.spec.scale, str)
            else cell.spec.scale.name
        ),
        "cache_design": cell.spec.cache_design,
    }


__all__ = [
    "REQUEST_FIELDS",
    "RequestError",
    "describe_cell",
    "resolve_request",
]
