"""Scaled experiment configuration (see DESIGN.md, "Scaling discipline").

The paper's datasets are ~2^12 larger than the stand-ins, so every
capacity-like parameter scales by the same factor to keep the
dimensionless ratios (cache bytes / vertex bytes, MSHR entries / cache
lines, tile width / cache capacity) in the paper's regime:

================  ===============  ==================
quantity          paper            here (scaled 2^12)
================  ===============  ==================
on-chip cache     4 MB             1 KB
baseline SPM      4.5 MB           1.125 KB
MSHR row entries  4096             64
fg-tag bits       8 (32 KB window) 4 (2 KB window)
DRAM timing/row   DDR4-2400R       unchanged
================  ===============  ==================

The cache scale preserves the paper's *tile-count* regime: perfect
tiling slices TW into ~80 tiles, SW into ~41, PP into ~217 -- within a
few percent of the paper's t = dataset-bytes / 4 MB for every dataset,
so the locality-vs-repetition trade-off sits where the paper's does.

DRAM device parameters are *not* scaled: rows are still 8 KB and bursts
64 B, so the fine-grained-access economics FIM exploits are identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.spec import DRAMConfig, default_config


@dataclass(frozen=True)
class ExperimentScale:
    """Capacity and iteration-cap knobs shared by every figure."""

    piccolo_cache_bytes: int = 1024
    baseline_cache_bytes: int = 1024
    spm_bytes: int = 1152  # the paper gives SPM baselines 4.5 MB vs 4 MB
    cache_ways: int = 8
    fg_tag_bits: int = 4
    mshr_entries: int = 64
    #: per-algorithm iteration caps (PR iterations are identical in cost,
    #: so a short run preserves every ratio; the paper caps at 40)
    max_iterations: dict = field(
        default_factory=lambda: {"PR": 3, "BFS": 40, "CC": 12, "SSSP": 12, "SSWP": 12}
    )
    #: default tile scales (multiples of the perfect width) per system;
    #: chosen by tuner sweeps (see EXPERIMENTS.md) to avoid re-tuning in
    #: every benchmark run
    tile_scales: dict = field(
        default_factory=lambda: {
            "Graphicionado": 1,
            "GraphDyns (SPM)": 1,
            "GraphDyns (Cache)": 1,
            "NMP": 4,
            "PIM": 1,
            "Piccolo": 4,
        }
    )

    def iterations_for(self, algorithm: str) -> int:
        return self.max_iterations.get(algorithm, 40)

    def dram(self, **overrides) -> DRAMConfig:
        return default_config(**overrides)


DEFAULT_SCALE = ExperimentScale()
