"""Scaled experiment configuration (see docs/EXPERIMENTS.md).

Scale is a first-class, selectable dimension: every capacity-like knob
lives in an :class:`ExperimentScale`, and three named profiles span the
regimes the reproduction runs in (:data:`PROFILES`):

``toy``
    The historical defaults: the paper's datasets are ~2^12 larger than
    the stand-ins, so every capacity-like parameter scales by the same
    factor to keep the dimensionless ratios (cache bytes / vertex bytes,
    MSHR entries / cache lines, tile width / cache capacity) in the
    paper's regime.  Every figure benchmark and the tier-1 suite run at
    this scale; its outputs are bit-identical to the pre-profile
    implementation.
``mid``
    A ~2^6 reduction: 64 KB caches, 512-entry MSHR rows, 6 fg-tag bits,
    hundred-thousand-edge graphs.  Large enough that chunked tile
    streaming and the replay-memo budget matter, small enough for a CI
    smoke under a wall-clock budget.
``paper``
    The paper's actual on-chip regime: 4 MB caches, 4.5 MB SPM
    baselines, 4096 MSHR row entries, 8 fg-tag bits (32 KB windows),
    million-edge graphs (``scale_shift=5``).  Runnable on one machine
    because the memory path streams each tile in bounded chunks
    (``chunk_size``) instead of materialising whole-tile event arrays.

Knob table (dataset ``scale_shift`` of ``None`` keeps each dataset
spec's default, which is the 2^12 toy reduction):

================  ===============  =========  =========  ==========
quantity          paper            toy        mid        paper prof.
================  ===============  =========  =========  ==========
on-chip cache     4 MB             1 KB       64 KB      4 MB
baseline SPM      4.5 MB           1.125 KB   72 KB      4.5 MB
MSHR row entries  4096             64         512        4096
fg-tag bits       8 (32 KB window) 4 (2 KB)   6 (8 KB)   8 (32 KB)
graph reduction   --               2^12       2^6        2^5
tile chunk size   --               whole tile 32768      65536
replay capacity   --               256        256        0 (off)
DRAM timing/row   DDR4-2400R       unchanged  unchanged  unchanged
================  ===============  =========  =========  ==========

The toy cache scale preserves the paper's *tile-count* regime: perfect
tiling slices TW into ~80 tiles, SW into ~41, PP into ~217 -- within a
few percent of the paper's t = dataset-bytes / 4 MB for every dataset,
so the locality-vs-repetition trade-off sits where the paper's does.
The paper profile reaches the same tile counts from the other end
(full-size caches over million-edge graphs).

DRAM device parameters are *not* scaled in any profile: rows are always
8 KB and bursts 64 B, so the fine-grained-access economics FIM exploits
are identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.dram.spec import DRAMConfig, default_config


def _default_iterations() -> dict:
    return {"PR": 3, "BFS": 40, "CC": 12, "SSSP": 12, "SSWP": 12}


def _default_tile_scales() -> dict:
    return {
        "Graphicionado": 1,
        "GraphDyns (SPM)": 1,
        "GraphDyns (Cache)": 1,
        "NMP": 4,
        "PIM": 1,
        "Piccolo": 4,
    }


@dataclass(frozen=True)
class ExperimentScale:
    """Capacity and iteration-cap knobs shared by every figure."""

    #: profile name (``toy`` / ``mid`` / ``paper`` for the registry
    #: entries; custom instances may use any label)
    name: str = "toy"
    piccolo_cache_bytes: int = 1024
    baseline_cache_bytes: int = 1024
    spm_bytes: int = 1152  # the paper gives SPM baselines 4.5 MB vs 4 MB
    cache_ways: int = 8
    fg_tag_bits: int = 4
    mshr_entries: int = 64
    #: dataset size reduction (2**shift); None keeps each dataset spec's
    #: default (the 2^12 toy reduction)
    scale_shift: int | None = None
    #: memory-path tile chunking: each tile's address stream is
    #: processed in bounded chunks of this many accesses so per-batch
    #: temporaries and replay-memo records stay O(chunk) instead of
    #: O(tile); None streams whole tiles (the toy default)
    chunk_size: int | None = None
    #: replay-memo capacity per memory path; None keeps the module
    #: default (256), 0 disables the memo entirely
    replay_capacity: int | None = None
    #: chunk-streamed DRAM-phase evaluation: drain each processed memory-
    #: path chunk straight into a PhaseAccumulator so per-tile request
    #: streams (FIM-op batches, burst arrays) stay O(chunk); None = auto
    #: (on whenever ``chunk_size`` is finite), False forces whole-tile
    #: phase calls, True forces streaming
    stream_phase: bool | None = None
    #: where :class:`~repro.graph.partition.TiledCSR` keeps its sorted
    #: tile arrays: ``"memory"`` (global in-RAM argsort, tiles resident
    #: for the run) or ``"disk"`` (bucketed external sort into a
    #: memmapped tile store, O(chunk) build RSS, tiles paged on demand).
    #: Results are bit-identical either way, so the knob is *not* part
    #: of a cell's canonical digest.
    tile_backing: str = "memory"
    #: tile-store directory for ``tile_backing="disk"``; None uses
    #: :func:`repro.graph.tilestore.default_root` (REPRO_TILE_STORE env
    #: var, then a per-process temp dir)
    tile_store_root: str | None = None
    #: external-sort scatter-chunk size in edges (bounds the build's
    #: transient RSS); None uses the tilestore default
    tile_bucket_edges: int | None = None
    #: per-algorithm iteration caps (PR iterations are identical in cost,
    #: so a short run preserves every ratio; the paper caps at 40)
    max_iterations: dict = field(default_factory=_default_iterations)
    #: default tile scales (multiples of the perfect width) per system;
    #: chosen by tuner sweeps (see docs/EXPERIMENTS.md) to avoid re-tuning in
    #: every benchmark run
    tile_scales: dict = field(default_factory=_default_tile_scales)

    def iterations_for(self, algorithm: str) -> int:
        return self.max_iterations.get(algorithm, 40)

    def dram(self, **overrides) -> DRAMConfig:
        return default_config(**overrides)

    def describe(self) -> dict:
        """Flat knob dict (CLI ``profiles`` listing, docs)."""
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name not in ("max_iterations", "tile_scales")
        }


#: The named profiles.  ``toy`` must stay exactly the dataclass
#: defaults so unprofiled callers and ``--profile toy`` are
#: bit-identical.
PROFILES: dict[str, ExperimentScale] = {
    "toy": ExperimentScale(),
    "mid": ExperimentScale(
        name="mid",
        piccolo_cache_bytes=64 * 1024,
        baseline_cache_bytes=64 * 1024,
        spm_bytes=72 * 1024,
        fg_tag_bits=6,
        mshr_entries=512,
        scale_shift=6,
        chunk_size=1 << 15,
    ),
    "paper": ExperimentScale(
        name="paper",
        piccolo_cache_bytes=4 * 1024 * 1024,
        baseline_cache_bytes=4 * 1024 * 1024,
        spm_bytes=4_718_592,  # 4.5 MB
        fg_tag_bits=8,
        mshr_entries=4096,
        scale_shift=5,
        chunk_size=1 << 16,
        # A 4 MB cache snapshot is megabytes, and a paper tile spans
        # ~100 chunks, so the memo would thrash its capacity without
        # ever replaying; disable it instead of holding the memory.
        replay_capacity=0,
    ),
}

DEFAULT_SCALE = PROFILES["toy"]


def get_profile(scale: ExperimentScale | str) -> ExperimentScale:
    """Resolve a profile name (or pass an explicit scale through)."""
    if isinstance(scale, ExperimentScale):
        return scale
    try:
        return PROFILES[scale]
    except KeyError:
        raise KeyError(
            f"unknown scale profile {scale!r}; available: {sorted(PROFILES)}"
        ) from None
