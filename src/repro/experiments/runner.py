"""Run orchestration: build a system, run a workload, tabulate speedups.

A grid cell is described by a :class:`CellSpec` -- a pure, picklable
value object -- and resolved into concrete system kwargs by
:func:`resolve_cell`.  The split exists for the process-pool sweep
runner (:mod:`repro.experiments.parallel`): workers receive specs, not
module state, and every cell has one canonical digest
(:attr:`ResolvedCell.digest`) that keys *both* the in-process result
memo and the on-disk sweep checkpoints, so the two caches can never
disagree about what a cell is.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass

from repro.accel.base import SystemResult
from repro.accel.pipeline import PipelineConfig
from repro.accel.systems import SYSTEMS, SYSTEM_ORDER, make_system
from repro.dram.spec import DRAMConfig
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale, get_profile
from repro.experiments.tuning import tile_scale_for
from repro.graph.datasets import load_dataset, resolve_shift
from repro.utils.stats import geometric_mean

_SPM_SYSTEMS = ("Graphicionado", "GraphDyns (SPM)")

#: make_system kwargs excluded from the canonical cell digest.
#: ``cache_factory`` is excluded because ``cache_design`` already names
#: it canonically; the tile-store knobs are excluded because disk-backed
#: tiles are bit-identical to in-memory ones (pinned by the tilestore
#: differential suite), so backing is an execution detail -- memo hits
#: and sweep checkpoints are deliberately shared across backings.
_NON_SEMANTIC_KEYS = (
    "cache_factory",
    "tile_backing",
    "tile_store_root",
    "tile_bucket_edges",
)

#: bound on the completed-run memo.  Results are a few hundred bytes of
#: scalars each, but an unbounded dict pinned every run of a long figure
#: session forever; 256 comfortably holds the largest single figure
#: sweep (Fig. 11: 200 cells) while staying a bound.
RESULT_CACHE_MAXSIZE = 256


class _ResultCache:
    """LRU memo of completed runs, keyed by canonical cell digest.

    The figure benches share many grid cells (results are deterministic,
    so reuse is sound); the bound keeps a long session from pinning
    every result forever.
    """

    def __init__(self, maxsize: int = RESULT_CACHE_MAXSIZE) -> None:
        self.maxsize = maxsize
        self._entries: OrderedDict[str, SystemResult] = OrderedDict()

    def get(self, digest: str) -> SystemResult | None:
        result = self._entries.get(digest)
        if result is not None:
            self._entries.move_to_end(digest)
        return result

    def put(self, digest: str, result: SystemResult) -> None:
        self._entries[digest] = result
        self._entries.move_to_end(digest)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries


_RESULT_CACHE = _ResultCache()


def clear_result_cache() -> None:
    """Drop memoised runs (tests use this to force fresh simulations)."""
    _RESULT_CACHE.clear()


def install_result(digest: str, result: SystemResult) -> None:
    """Seed the result memo with an externally produced run.

    The parallel sweep runner installs worker/checkpoint results here so
    the figures' serial loops afterwards hit the memo instead of
    re-simulating.
    """
    _RESULT_CACHE.put(digest, result)


def cached_result(digest: str) -> SystemResult | None:
    """Memoised result for a cell digest, or None on a miss.

    Public read side of the memo: the experiment service probes it
    before touching the on-disk checkpoint store or enqueuing a run.
    """
    return _RESULT_CACHE.get(digest)


# ---------------------------------------------------------------------------
# Cell specification and resolution
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CellSpec:
    """One (system, algorithm, dataset) cell of the evaluation grid.

    Pure data: every field is a value (profiles may be passed by name),
    so a spec pickles cleanly to pool workers.  ``cache_design`` selects
    a Fig. 11 fine-grained cache by registry name
    (:data:`repro.cache.variants.FIG11_DESIGNS`) -- the picklable
    alternative to passing a ``cache_factory`` callable through
    ``system_kwargs``.
    """

    system: str
    algorithm: str
    dataset: str
    scale: ExperimentScale | str = "toy"
    dram_config: DRAMConfig | None = None
    pipeline: PipelineConfig | None = None
    tile_scale: int | None = None
    max_iterations: int | None = None
    scale_shift: int | None = None
    chunk_size: int | None = None
    cache_design: str | None = None
    #: tile-array backing override (``"memory"``/``"disk"``); None takes
    #: the profile's ``tile_backing``.  Not part of the cell digest:
    #: results are bit-identical across backings by construction, so
    #: memo/checkpoint entries are shared between them.
    tile_backing: str | None = None
    #: extra ``make_system`` overrides as sorted ``(key, value)`` pairs;
    #: non-primitive values (e.g. cache factories) are allowed but make
    #: the cell undigestable (uncacheable, uncheckpointable)
    system_kwargs: tuple = ()


@dataclass
class ResolvedCell:
    """A spec resolved against its profile: ready-to-run kwargs plus the
    canonical digest.  Not picklable in general (``make_kwargs`` may
    hold a cache factory); workers re-resolve from the spec."""

    spec: CellSpec
    system: str
    algorithm: str
    dataset: str
    #: actual dataset reduction (profile/spec default already applied)
    shift: int
    max_iterations: int
    make_kwargs: dict
    #: canonical cell digest (32 hex chars), or None when the cell holds
    #: non-canonical overrides and cannot be keyed
    digest: str | None


def _canonical_token(value) -> str | None:
    """Deterministic text form of a digestable value, or None.

    Frozen config dataclasses are digestable through their field reprs;
    arbitrary callables/objects are not (their reprs carry addresses).
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        # repro-lint: disable=RL001 -- primitive reprs are canonical (float
        # repr is shortest-roundtrip, stable across CPython >= 3.1)
        return repr(value)
    if isinstance(value, (DRAMConfig, PipelineConfig)):
        # repro-lint: disable=RL001 -- frozen dataclasses repr their fields
        # in declaration order; fields are primitives (checked above rule)
        return repr(value)
    if isinstance(value, tuple):
        tokens = [_canonical_token(item) for item in value]
        if any(t is None for t in tokens):
            return None
        return "(" + ",".join(tokens) + ")"
    return None


def _digest_parts(parts: list[bytes]) -> str:
    """blake2b-16 over ordered parts -- the replay-memo canonicalization
    (:meth:`repro.core.memory_path.BatchReplayMemo.key`) applied to
    cell identity."""
    h = hashlib.blake2b(digest_size=16)
    for part in parts:
        h.update(part)
        h.update(b"\x00")
    return h.hexdigest()


def resolve_cell(spec: CellSpec) -> ResolvedCell:
    """Resolve a :class:`CellSpec` against its scale profile.

    This is the kwarg assembly that used to live inline in
    :func:`run_system`: capacities and iteration caps come from the
    profile, the toy tuning table supplies tuned tile scales, and
    per-spec overrides win over profile values.  The resolved cell
    carries everything a worker needs -- no module-global state.
    """
    scale = get_profile(spec.scale)
    if spec.system not in SYSTEMS:
        raise KeyError(
            f"unknown system {spec.system!r}; available: {sorted(SYSTEMS)}"
        )
    shift = (
        spec.scale_shift if spec.scale_shift is not None else scale.scale_shift
    )
    shift = resolve_shift(spec.dataset, shift)
    onchip = (
        scale.spm_bytes if spec.system in _SPM_SYSTEMS
        else scale.piccolo_cache_bytes if spec.system == "Piccolo"
        else scale.baseline_cache_bytes
    )
    # The offline tuning table was swept at toy scale; other profiles
    # fall back to the per-system defaults until swept.
    tuned = (
        tile_scale_for(spec.system, spec.algorithm, spec.dataset)
        if scale.name == "toy" else None
    )
    chunk = spec.chunk_size if spec.chunk_size is not None else scale.chunk_size
    kwargs: dict = dict(
        dram_config=spec.dram_config,
        pipeline=spec.pipeline,
        onchip_bytes=onchip,
        tile_scale=(
            spec.tile_scale if spec.tile_scale is not None
            else tuned or scale.tile_scales.get(spec.system, 1)
        ),
        chunk_size=chunk,
        replay_capacity=scale.replay_capacity,
        stream_phase=scale.stream_phase,
        tile_backing=(
            spec.tile_backing if spec.tile_backing is not None
            else scale.tile_backing
        ),
        tile_store_root=scale.tile_store_root,
        tile_bucket_edges=scale.tile_bucket_edges,
    )
    if spec.system in ("Piccolo", "NMP"):
        kwargs["mshr_entries"] = scale.mshr_entries
        kwargs["fg_tag_bits"] = scale.fg_tag_bits
        kwargs["cache_ways"] = scale.cache_ways
    elif spec.system == "GraphDyns (Cache)":
        kwargs["cache_ways"] = scale.cache_ways
    kwargs.update(dict(spec.system_kwargs))
    if spec.cache_design is not None:
        from repro.cache.variants import fig11_cache_factory

        kwargs["cache_factory"] = fig11_cache_factory(
            spec.cache_design,
            ways=scale.cache_ways,
            fg_tag_bits=scale.fg_tag_bits,
        )
    iters = (
        spec.max_iterations if spec.max_iterations is not None
        else scale.iterations_for(spec.algorithm)
    )

    # -- canonical digest over the *resolved* cell ----------------------
    digest_items: list[tuple[str, object]] = [
        ("system", spec.system),
        ("algorithm", spec.algorithm),
        ("dataset", spec.dataset),
        ("shift", shift),
        ("iterations", iters),
        ("cache_design", spec.cache_design),
    ]
    digest_items += sorted(
        (k, v) for k, v in kwargs.items() if k not in _NON_SEMANTIC_KEYS
    )
    # A user-supplied cache_factory (not via cache_design) is part of the
    # cell's identity but has no canonical form: the cell is undigestable.
    digestable = spec.cache_design is not None or "cache_factory" not in kwargs
    digest: str | None = None
    if digestable:
        parts: list[bytes] = [b"cell-v1"]
        for key, value in digest_items:
            token = _canonical_token(value)
            if token is None:
                parts = []
                break
            parts.append(f"{key}={token}".encode())
        if parts:
            digest = _digest_parts(parts)
    return ResolvedCell(
        spec=spec,
        system=spec.system,
        algorithm=spec.algorithm,
        dataset=spec.dataset,
        shift=shift,
        max_iterations=iters,
        make_kwargs=kwargs,
        digest=digest,
    )


def run_resolved(cell: ResolvedCell) -> SystemResult:
    """Run one resolved cell (through the bounded result memo)."""
    if cell.digest is not None:
        hit = _RESULT_CACHE.get(cell.digest)
        if hit is not None:
            return hit
    graph = load_dataset(cell.dataset, cell.shift)
    accel = make_system(cell.system, **cell.make_kwargs)
    result = accel.run(
        graph, cell.algorithm, max_iterations=cell.max_iterations
    )
    if cell.digest is not None:
        _RESULT_CACHE.put(cell.digest, result)
    return result


def run_system(
    system: str,
    algorithm: str,
    dataset: str,
    scale: ExperimentScale | str = DEFAULT_SCALE,
    dram_config: DRAMConfig | None = None,
    pipeline: PipelineConfig | None = None,
    tile_scale: int | None = None,
    max_iterations: int | None = None,
    scale_shift: int | None = None,
    chunk_size: int | None = None,
    cache_design: str | None = None,
    tile_backing: str | None = None,
    **system_kwargs,
) -> SystemResult:
    """Run one (system, algorithm, dataset) cell of the evaluation grid.

    ``scale`` selects the experiment profile, either as an
    :class:`ExperimentScale` or by name (``"toy"`` / ``"mid"`` /
    ``"paper"``); ``scale_shift`` and ``chunk_size`` override the
    profile's dataset reduction and memory-path chunking per call.
    ``cache_design`` substitutes a Fig. 11 fine-grained cache by
    registry name (see :class:`CellSpec`); ``tile_backing`` overrides
    the profile's tile-array backing (``"memory"``/``"disk"``, results
    bit-identical either way).
    """
    spec = CellSpec(
        system=system,
        algorithm=algorithm,
        dataset=dataset,
        scale=scale,
        dram_config=dram_config,
        pipeline=pipeline,
        tile_scale=tile_scale,
        max_iterations=max_iterations,
        scale_shift=scale_shift,
        chunk_size=chunk_size,
        cache_design=cache_design,
        tile_backing=tile_backing,
        system_kwargs=tuple(sorted(system_kwargs.items())),
    )
    return run_resolved(resolve_cell(spec))


def speedup_table(
    results: dict[tuple[str, str, str], SystemResult],
    baseline: str = "GraphDyns (Cache)",
) -> dict[tuple[str, str, str], float]:
    """Normalise ``results[(system, algo, dataset)].total_ns`` to the
    baseline system's time on the same (algo, dataset)."""
    table: dict[tuple[str, str, str], float] = {}
    for (system, algo, data), result in results.items():
        base = results.get((baseline, algo, data))
        if base is None:
            raise KeyError(f"missing baseline run for ({algo}, {data})")
        if base.total_ns == 0:
            raise ValueError(
                f"baseline {baseline!r} run for ({algo}, {data}) has "
                f"total_ns == 0; speedups cannot be normalised to an "
                f"empty run"
            )
        if result.total_ns == 0:
            raise ValueError(
                f"run ({system}, {algo}, {data}) has total_ns == 0; "
                f"its speedup over the baseline is undefined"
            )
        table[(system, algo, data)] = base.total_ns / result.total_ns
    return table


def geomean_speedups(
    table: dict[tuple[str, str, str], float]
) -> dict[str, float]:
    """Per-system geometric mean across every (algo, dataset) cell."""
    by_system: dict[str, list[float]] = {}
    for (system, _, _), speedup in table.items():
        by_system.setdefault(system, []).append(speedup)
    return {s: geometric_mean(v) for s, v in by_system.items()}


__all__ = [
    "CellSpec",
    "cached_result",
    "ResolvedCell",
    "resolve_cell",
    "run_resolved",
    "run_system",
    "speedup_table",
    "geomean_speedups",
    "SYSTEM_ORDER",
]
