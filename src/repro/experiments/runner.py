"""Run orchestration: build a system, run a workload, tabulate speedups."""

from __future__ import annotations

from repro.accel.base import SystemResult
from repro.accel.pipeline import PipelineConfig
from repro.accel.systems import SYSTEMS, SYSTEM_ORDER, make_system
from repro.dram.spec import DRAMConfig
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale, get_profile
from repro.experiments.tuning import tile_scale_for
from repro.graph.datasets import load_dataset
from repro.utils.stats import geometric_mean

_SPM_SYSTEMS = ("Graphicionado", "GraphDyns (SPM)")

#: memo of completed runs -- the figure benches share many grid cells
#: (results are deterministic, so reuse is sound)
_RESULT_CACHE: dict[tuple, SystemResult] = {}


def clear_result_cache() -> None:
    """Drop memoised runs (tests use this to force fresh simulations)."""
    _RESULT_CACHE.clear()


def run_system(
    system: str,
    algorithm: str,
    dataset: str,
    scale: ExperimentScale | str = DEFAULT_SCALE,
    dram_config: DRAMConfig | None = None,
    pipeline: PipelineConfig | None = None,
    tile_scale: int | None = None,
    max_iterations: int | None = None,
    scale_shift: int | None = None,
    chunk_size: int | None = None,
    **system_kwargs,
) -> SystemResult:
    """Run one (system, algorithm, dataset) cell of the evaluation grid.

    ``scale`` selects the experiment profile, either as an
    :class:`ExperimentScale` or by name (``"toy"`` / ``"mid"`` /
    ``"paper"``); ``scale_shift`` and ``chunk_size`` override the
    profile's dataset reduction and memory-path chunking per call.
    """
    scale = get_profile(scale)
    if system not in SYSTEMS:
        raise KeyError(f"unknown system {system!r}; available: {sorted(SYSTEMS)}")
    shift = scale_shift if scale_shift is not None else scale.scale_shift
    graph = load_dataset(dataset, shift)
    onchip = (
        scale.spm_bytes if system in _SPM_SYSTEMS
        else scale.piccolo_cache_bytes if system == "Piccolo"
        else scale.baseline_cache_bytes
    )
    # The offline tuning table was swept at toy scale; other profiles
    # fall back to the per-system defaults until swept.
    tuned = (
        tile_scale_for(system, algorithm, dataset)
        if scale.name == "toy" else None
    )
    chunk = chunk_size if chunk_size is not None else scale.chunk_size
    kwargs: dict = dict(
        dram_config=dram_config,
        pipeline=pipeline,
        onchip_bytes=onchip,
        tile_scale=(
            tile_scale if tile_scale is not None
            else tuned or scale.tile_scales.get(system, 1)
        ),
        chunk_size=chunk,
        replay_capacity=scale.replay_capacity,
        stream_phase=scale.stream_phase,
    )
    if system in ("Piccolo", "NMP"):
        kwargs["mshr_entries"] = scale.mshr_entries
        kwargs["fg_tag_bits"] = scale.fg_tag_bits
        kwargs["cache_ways"] = scale.cache_ways
    elif system == "GraphDyns (Cache)":
        kwargs["cache_ways"] = scale.cache_ways
    kwargs.update(system_kwargs)
    iters = (
        max_iterations if max_iterations is not None
        else scale.iterations_for(algorithm)
    )
    try:
        cache_key = (
            system, algorithm, dataset, dram_config, pipeline,
            kwargs["tile_scale"], iters, shift, chunk,
            scale.replay_capacity, scale.stream_phase, scale.cache_ways,
            scale.piccolo_cache_bytes, scale.baseline_cache_bytes,
            scale.spm_bytes, scale.mshr_entries, scale.fg_tag_bits,
            tuple(sorted(system_kwargs.items())),
        )
        hash(cache_key)
    except TypeError:
        cache_key = None  # unhashable overrides (e.g. cache factories)
    if cache_key is not None and cache_key in _RESULT_CACHE:
        return _RESULT_CACHE[cache_key]
    accel = make_system(system, **kwargs)
    result = accel.run(graph, algorithm, max_iterations=iters)
    if cache_key is not None:
        _RESULT_CACHE[cache_key] = result
    return result


def speedup_table(
    results: dict[tuple[str, str, str], SystemResult],
    baseline: str = "GraphDyns (Cache)",
) -> dict[tuple[str, str, str], float]:
    """Normalise ``results[(system, algo, dataset)].total_ns`` to the
    baseline system's time on the same (algo, dataset)."""
    table: dict[tuple[str, str, str], float] = {}
    for (system, algo, data), result in results.items():
        base = results.get((baseline, algo, data))
        if base is None:
            raise KeyError(f"missing baseline run for ({algo}, {data})")
        table[(system, algo, data)] = base.total_ns / result.total_ns
    return table


def geomean_speedups(
    table: dict[tuple[str, str, str], float]
) -> dict[str, float]:
    """Per-system geometric mean across every (algo, dataset) cell."""
    by_system: dict[str, list[float]] = {}
    for (system, _, _), speedup in table.items():
        by_system.setdefault(system, []).append(speedup)
    return {s: geometric_mean(v) for s, v in by_system.items()}


__all__ = [
    "run_system",
    "speedup_table",
    "geomean_speedups",
    "SYSTEM_ORDER",
]
