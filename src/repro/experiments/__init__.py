"""Experiment harness: named configurations and figure runners."""

from repro.experiments.config import ExperimentScale, DEFAULT_SCALE
from repro.experiments.runner import run_system, speedup_table

__all__ = ["ExperimentScale", "DEFAULT_SCALE", "run_system", "speedup_table"]
