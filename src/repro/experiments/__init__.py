"""Experiment harness: named configurations and figure runners."""

from repro.experiments.config import (
    DEFAULT_SCALE,
    ExperimentScale,
    PROFILES,
    get_profile,
)
from repro.experiments.runner import run_system, speedup_table

__all__ = [
    "ExperimentScale",
    "DEFAULT_SCALE",
    "PROFILES",
    "get_profile",
    "run_system",
    "speedup_table",
]
