"""Process-pool sweep orchestrator with shared graphs and checkpoints.

Every figure sweep is an embarrassingly parallel grid over
(system, algorithm, dataset) cells; :func:`run_cells` shards a list of
:class:`~repro.experiments.runner.CellSpec` across worker processes and
gives each sweep three properties the serial loop lacks:

**One graph copy per machine.**  The parent materialises each distinct
(dataset, shift) once as a memmap directory
(:func:`repro.graph.datasets.materialize_memmap`); spawn workers attach
the same files read-only (:func:`repro.graph.datasets.attach_memmap`),
so the edge arrays live once in the page cache no matter how many
workers simulate against them.  Workers run with the no-generation
guard set: a cell whose dataset the parent did not materialise fails
loudly instead of silently regenerating a million-edge RMAT graph per
worker.

**Resumable per-cell checkpoints.**  With a ``checkpoint_dir``, every
completed cell is written as a JSON + ``.npz`` record keyed by the
cell's canonical digest (the same digest that keys the in-process
result memo, so the two caches cannot disagree).  Records are committed
atomically (tmp file + rename, JSON last), so a sweep killed mid-cell
leaves only whole records behind; ``resume=True`` loads finished cells
instead of re-running them, which is also how repeated sweeps skip
work they already did.

**Bit-identical results.**  Workers run exactly
:func:`repro.experiments.runner.run_resolved` on exactly the resolved
spec; simulations are deterministic, so a parallel sweep's counters and
timings equal the serial sweep's bit-for-bit (pinned by
``tests/test_parallel.py``).

Cells whose spec cannot be pickled or digested (a ``cache_factory``
callable in ``system_kwargs``) fall back to serial execution in the
parent -- they still complete, they just cannot be sharded or
checkpointed.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pathlib
import pickle
import resource
import shutil
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from datetime import datetime, timezone

import numpy as np

from repro.accel.base import SystemResult
from repro.experiments import runner
from repro.experiments.runner import CellSpec, ResolvedCell, resolve_cell
from repro.graph import datasets

#: checkpoint record layout version
CHECKPOINT_FORMAT = 1

#: default checkpoint root used by the CLI's ``--resume``
DEFAULT_CHECKPOINT_DIR = ".repro_checkpoints"


@dataclass
class CellOutcome:
    """One completed cell: its result plus how it was obtained."""

    spec: CellSpec
    digest: str | None
    result: SystemResult
    #: wall-clock of the simulation itself (0.0 for checkpoint loads)
    seconds: float
    #: peak RSS of the process that ran the cell, in MB (cumulative
    #: process high-water mark, not a per-cell delta)
    rss_mb: float
    #: "run" (parent, serial), "worker" (pool), or "checkpoint" (loaded)
    source: str


class SweepCheckpointStore:
    """Digest-keyed per-cell checkpoint records on disk.

    A record is two files: ``<digest>.npz`` (the numeric counters as
    arrays, written first) and ``<digest>.json`` (cell identity, exact
    result record, timing -- written last, so its presence marks a
    complete record).  Both are committed via tmp-file + ``os.replace``;
    a SIGKILL mid-write can never leave a record that loads.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = pathlib.Path(root)
        # Fail here, loudly, rather than deep inside an npz read/write
        # later: a root that collides with an existing file or sits
        # under an unwritable/defunct parent is a caller mistake the
        # error message should name.
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except FileExistsError as exc:
            raise ValueError(
                f"checkpoint directory {self.root} collides with an "
                f"existing non-directory file"
            ) from exc
        except NotADirectoryError as exc:
            raise ValueError(
                f"checkpoint directory {self.root} has a non-directory "
                f"ancestor; choose a path whose parents are directories"
            ) from exc
        except PermissionError as exc:
            raise ValueError(
                f"checkpoint directory {self.root} is not creatable: "
                f"permission denied ({exc})"
            ) from exc
        if not os.access(self.root, os.W_OK | os.X_OK):
            raise ValueError(
                f"checkpoint directory {self.root} is not writable; "
                f"records could not be committed there"
            )

    def json_path(self, digest: str) -> pathlib.Path:
        return self.root / f"{digest}.json"

    def npz_path(self, digest: str) -> pathlib.Path:
        return self.root / f"{digest}.npz"

    def digests(self) -> list[str]:
        return sorted(p.stem for p in self.root.glob("*.json"))

    def __len__(self) -> int:
        return len(list(self.root.glob("*.json")))

    def has(self, digest: str) -> bool:
        return self.json_path(digest).is_file() and self.npz_path(digest).is_file()

    def save(
        self,
        cell: ResolvedCell,
        result: SystemResult,
        seconds: float,
        rss_mb: float,
    ) -> None:
        if cell.digest is None:
            raise ValueError("cannot checkpoint an undigestable cell")
        record = {
            "format": CHECKPOINT_FORMAT,
            "digest": cell.digest,
            "cell": {
                "system": cell.system,
                "algorithm": cell.algorithm,
                "dataset": cell.dataset,
                "shift": cell.shift,
                "max_iterations": cell.max_iterations,
            },
            "timing": {
                "seconds": seconds,
                "rss_mb": rss_mb,
                "completed_at": datetime.now(timezone.utc).isoformat(
                    timespec="seconds"
                ),
            },
            "result": result.to_record(),
        }
        flat = dict(record["result"])
        dram = flat.pop("dram", {})
        arrays = {
            k: np.asarray(v)
            for k, v in flat.items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        }
        arrays.update(
            {f"dram__{k}": np.asarray(v) for k, v in dram.items()}
        )
        if not self.root.is_dir():
            raise ValueError(
                f"checkpoint directory {self.root} disappeared after the "
                f"store was opened; records cannot be committed"
            )
        npz_tmp = self.npz_path(cell.digest).with_suffix(
            f".npz.tmp.{os.getpid()}"
        )
        json_tmp = self.json_path(cell.digest).with_suffix(
            f".json.tmp.{os.getpid()}"
        )
        try:
            with open(npz_tmp, "wb") as handle:
                np.savez(handle, **arrays)
            os.replace(npz_tmp, self.npz_path(cell.digest))
            json_tmp.write_text(json.dumps(record, indent=1) + "\n")
            os.replace(json_tmp, self.json_path(cell.digest))
        except BaseException:
            npz_tmp.unlink(missing_ok=True)
            json_tmp.unlink(missing_ok=True)
            raise

    def load(self, digest: str) -> tuple[SystemResult, dict] | None:
        """(result, record) for a complete record, else None.

        Corrupt or partial records (a crash between the two writes, a
        truncated file) read as missing -- the cell simply re-runs.
        """
        json_path = self.json_path(digest)
        if not json_path.is_file() or not self.npz_path(digest).is_file():
            return None
        try:
            record = json.loads(json_path.read_text())
            if record.get("format") != CHECKPOINT_FORMAT:
                return None
            result = SystemResult.from_record(record["result"])
        except (OSError, ValueError, KeyError, TypeError):
            return None
        return result, record


# ---------------------------------------------------------------------------
# Pool worker entry points (module-level: spawn workers import this module)
# ---------------------------------------------------------------------------
def _worker_init(manifest: dict, tile_root=None) -> None:
    """Attach every materialised graph and forbid worker-side generation.

    ``tile_root`` points every worker's disk-backed tile builds at one
    shared store directory, so a (graph, tile_width) store is built by
    the first worker that needs it (first-writer-wins) and *attached*
    by the rest -- the tile analogue of the shared memmapped graphs.
    """
    for (name, shift), path in manifest.items():
        datasets.attach_memmap(name, shift, path)
    datasets.set_require_attached(True)
    if tile_root is not None:
        from repro.graph import tilestore

        tilestore.set_default_root(tile_root)


def _worker_run(spec: CellSpec):
    cell = resolve_cell(spec)
    start = time.perf_counter()
    result = runner.run_resolved(cell)
    seconds = time.perf_counter() - start
    rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    return cell.digest, result, seconds, rss_mb


def _self_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


# ---------------------------------------------------------------------------
# Orchestration
# ---------------------------------------------------------------------------
def run_cells(
    specs,
    *,
    workers: int | None = None,
    resume: bool = False,
    checkpoint_dir: str | os.PathLike | None = None,
    graph_dir: str | os.PathLike | None = None,
    progress=None,
) -> list[CellOutcome]:
    """Run a sweep of cells, optionally sharded across worker processes.

    Args:
        specs: iterable of :class:`CellSpec` (duplicates by digest run
            once and share an outcome).
        workers: process count; ``None``/0/1 runs serially in-process
            (still checkpointing when a ``checkpoint_dir`` is given).
        resume: load digest-matching records from ``checkpoint_dir``
            instead of re-running their cells.
        checkpoint_dir: where per-cell records live; required for
            ``resume``.
        graph_dir: where memmapped graphs are materialised for workers
            (default: ``<checkpoint_dir>/graphs``, or a temporary
            directory removed after the sweep when no checkpoint dir is
            given).
        progress: optional ``callable(CellOutcome)`` invoked as each
            cell completes, in completion order.

    Returns one :class:`CellOutcome` per input spec, in input order.
    Every completed result is also installed into the runner's result
    memo, so serial figure loops after a sweep hit the memo.
    """
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires a checkpoint_dir")
    specs = list(specs)
    cells = [resolve_cell(spec) for spec in specs]
    store = (
        SweepCheckpointStore(checkpoint_dir)
        if checkpoint_dir is not None else None
    )

    outcomes: dict[int, CellOutcome] = {}
    first_by_digest: dict[str, int] = {}
    duplicate_of: dict[int, int] = {}
    pending: list[tuple[int, ResolvedCell]] = []
    for index, cell in enumerate(cells):
        if cell.digest is not None:
            first = first_by_digest.setdefault(cell.digest, index)
            if first != index:
                duplicate_of[index] = first
                continue
            if store is not None and resume:
                loaded = store.load(cell.digest)
                if loaded is not None:
                    result, record = loaded
                    outcomes[index] = CellOutcome(
                        spec=cell.spec,
                        digest=cell.digest,
                        result=result,
                        seconds=0.0,
                        rss_mb=0.0,
                        source="checkpoint",
                    )
                    runner.install_result(cell.digest, result)
                    if progress is not None:
                        progress(outcomes[index])
                    continue
        pending.append((index, cell))

    n_workers = int(workers or 0)
    pool_cells: list[tuple[int, ResolvedCell]] = []
    local_cells: list[tuple[int, ResolvedCell]] = []
    if n_workers > 1 and len(pending) > 1:
        for index, cell in pending:
            if _picklable(cell.spec):
                pool_cells.append((index, cell))
            else:
                local_cells.append((index, cell))
    else:
        local_cells = pending

    if pool_cells:
        _run_pool(
            pool_cells, n_workers, store, graph_dir, checkpoint_dir,
            outcomes, progress,
        )

    for index, cell in local_cells:
        start = time.perf_counter()
        result = runner.run_resolved(cell)
        seconds = time.perf_counter() - start
        outcome = CellOutcome(
            spec=cell.spec,
            digest=cell.digest,
            result=result,
            seconds=seconds,
            rss_mb=_self_rss_mb(),
            source="run",
        )
        if store is not None and cell.digest is not None:
            store.save(cell, result, seconds, outcome.rss_mb)
        outcomes[index] = outcome
        if progress is not None:
            progress(outcome)

    for index, first in duplicate_of.items():
        outcomes[index] = outcomes[first]
    return [outcomes[index] for index in range(len(cells))]


def _picklable(spec: CellSpec) -> bool:
    try:
        pickle.dumps(spec)
    except Exception:
        return False
    return True


def _run_pool(
    pool_cells, n_workers, store, graph_dir, checkpoint_dir, outcomes, progress
) -> None:
    if graph_dir is not None:
        graph_root, temporary = pathlib.Path(graph_dir), False
    elif checkpoint_dir is not None:
        graph_root, temporary = pathlib.Path(checkpoint_dir) / "graphs", False
    else:
        graph_root, temporary = (
            pathlib.Path(tempfile.mkdtemp(prefix="repro-graphs-")), True
        )
    try:
        manifest = {}
        for dataset, shift in sorted(
            {(c.dataset, c.shift) for _, c in pool_cells}
        ):
            manifest[(dataset, shift)] = str(
                datasets.materialize_memmap(dataset, shift, graph_root)
            )
        context = multiprocessing.get_context("spawn")
        max_workers = min(n_workers, len(pool_cells))
        with ProcessPoolExecutor(
            max_workers=max_workers,
            mp_context=context,
            initializer=_worker_init,
            initargs=(manifest, str(graph_root / "tiles")),
        ) as executor:
            futures = {
                executor.submit(_worker_run, cell.spec): (index, cell)
                for index, cell in pool_cells
            }
            for future in as_completed(futures):
                index, cell = futures[future]
                digest, result, seconds, rss_mb = future.result()
                outcome = CellOutcome(
                    spec=cell.spec,
                    digest=digest,
                    result=result,
                    seconds=seconds,
                    rss_mb=rss_mb,
                    source="worker",
                )
                if store is not None and digest is not None:
                    store.save(cell, result, seconds, rss_mb)
                if digest is not None:
                    runner.install_result(digest, result)
                outcomes[index] = outcome
                if progress is not None:
                    progress(outcome)
    finally:
        if temporary:
            shutil.rmtree(graph_root, ignore_errors=True)


def sweep_rss_mb(outcomes: list[CellOutcome]) -> dict[str, float]:
    """Peak-RSS summary of a sweep: the parent's own high-water mark and
    the largest worker high-water mark (0.0 for serial sweeps)."""
    worker = [o.rss_mb for o in outcomes if o.source == "worker"]
    return {
        "parent_rss_mb": round(_self_rss_mb(), 1),
        "max_worker_rss_mb": round(max(worker), 1) if worker else 0.0,
    }


__all__ = [
    "CellOutcome",
    "DEFAULT_CHECKPOINT_DIR",
    "SweepCheckpointStore",
    "run_cells",
    "sweep_rss_mb",
]
