"""Tile-width tuning results (Sec. VII-A's exhaustive search).

The paper tunes every baseline's tile width by exhaustive search.  Doing
that inside every benchmark run would multiply their cost by the sweep
size, so the search is performed offline by
``tools/generate_tuning_table.py`` (which sweeps power-of-two multiples
of the perfect tile width with :func:`repro.accel.tuner.tune_tile_scale`)
and the winners are baked into ``tuning_table.py``.  ``tile_scale_for``
falls back to the per-system defaults in
:class:`~repro.experiments.config.ExperimentScale` for unswept cells.
"""

from __future__ import annotations

try:
    from repro.experiments.tuning_table import TUNED_TILE_SCALES
except ImportError:  # table not generated yet
    TUNED_TILE_SCALES: dict[tuple[str, str, str], int] = {}


def tile_scale_for(system: str, algorithm: str, dataset: str) -> int | None:
    """Best-known tile scale for a grid cell, or None if never swept."""
    return TUNED_TILE_SCALES.get((system, algorithm, dataset))
