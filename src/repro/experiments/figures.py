"""One runner per evaluation figure/table of the paper.

Each ``figure_*`` function regenerates the corresponding figure's data as
a list of row dicts (the benchmark harness prints them).  All runners are
deterministic; dataset sizes and capacities come from
:class:`~repro.experiments.config.ExperimentScale`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.accel.edge_centric import ECConventionalSystem, ECPiccoloSystem
from repro.accel.pipeline import PipelineConfig
from repro.accel.systems import SYSTEM_ORDER, make_system
from repro.algorithms import ALGORITHM_ORDER
from repro.cache.variants import FIG11_DESIGNS, fig11_cache_factory
from repro.dram.spec import DEVICES, DRAMConfig
from repro.energy.accel_energy import system_energy
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.runner import CellSpec, run_system
from repro.graph.datasets import REAL_WORLD, SYNTHETIC, load_dataset
from repro.olap.queries import query_speedups
from repro.utils.stats import geometric_mean
from repro.validate import microbench

BASELINE = "GraphDyns (Cache)"


def _sweep(
    specs: list[CellSpec],
    *,
    workers: int | None,
    resume: bool,
    checkpoint_dir=None,
) -> None:
    """Pre-run a figure's grid through the parallel sweep orchestrator.

    Every figure keeps its serial row-building loop (the plotting order
    and derived columns live there); this helper runs the same cells
    first -- sharded across workers and/or restored from checkpoints --
    and installs the results into the runner memo, so the serial loop
    becomes pure memo lookups.  Results are bit-identical either way
    because workers run exactly the same resolved cells.
    """
    if not specs:
        return
    if (workers or 0) <= 1 and not resume and checkpoint_dir is None:
        return
    from repro.experiments import parallel

    if resume and checkpoint_dir is None:
        checkpoint_dir = parallel.DEFAULT_CHECKPOINT_DIR
    parallel.run_cells(
        specs, workers=workers, resume=resume, checkpoint_dir=checkpoint_dir
    )


# ---------------------------------------------------------------------------
# Fig. 3 -- motivational: useful vs unuseful traffic, non-tiling vs perfect
# ---------------------------------------------------------------------------
def figure_3(
    datasets: Sequence[str] = ("TW", "SW", "FS"),
    scale: ExperimentScale = DEFAULT_SCALE,
) -> list[dict]:
    rows = []
    for dataset in datasets:
        graph = load_dataset(dataset, scale.scale_shift)
        for mode in ("Non-Tiling", "Perfect Tiling"):
            system = make_system(
                BASELINE,
                onchip_bytes=scale.baseline_cache_bytes,
                cache_ways=scale.cache_ways,
                tile_scale=1,
                chunk_size=scale.chunk_size,
                replay_capacity=scale.replay_capacity,
                tile_backing=scale.tile_backing,
                tile_store_root=scale.tile_store_root,
                tile_bucket_edges=scale.tile_bucket_edges,
            )
            width = graph.num_vertices if mode == "Non-Tiling" else None
            result = system.run(graph, "BFS", tile_width=width)
            rows.append(
                {
                    "dataset": dataset,
                    "mode": mode,
                    "useful_pct": 100.0 * result.useful_fraction,
                    "unuseful_pct": 100.0 * (1 - result.useful_fraction),
                    "read_transactions": result.dram.read_bursts,
                    "write_transactions": result.dram.write_bursts,
                    "cache_hit_rate": result.cache_hit_rate,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Fig. 9 -- FPGA microbenchmark
# ---------------------------------------------------------------------------
def figure_9(total_bytes: int = 16 * 1024 * 1024) -> list[dict]:
    rows = []
    for result in microbench.sweep(total_bytes):
        rows.append(
            {
                "layout": "single-row" if result.single_row else "multi-row",
                "stride": result.stride_words,
                "speedup": result.speedup,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Fig. 10 -- overall speedup over the six systems
# ---------------------------------------------------------------------------
def figure_10(
    datasets: Sequence[str] = REAL_WORLD,
    algorithms: Sequence[str] = ALGORITHM_ORDER,
    systems: Sequence[str] = SYSTEM_ORDER,
    scale: ExperimentScale = DEFAULT_SCALE,
    *,
    workers: int | None = None,
    resume: bool = False,
    checkpoint_dir=None,
) -> list[dict]:
    _sweep(
        [
            CellSpec(system=s, algorithm=a, dataset=d, scale=scale)
            for a in algorithms for d in datasets
            for s in dict.fromkeys((BASELINE, *systems))
        ],
        workers=workers, resume=resume, checkpoint_dir=checkpoint_dir,
    )
    rows = []
    speedups_by_system: dict[str, list[float]] = {s: [] for s in systems}
    for algorithm in algorithms:
        for dataset in datasets:
            base = run_system(BASELINE, algorithm, dataset, scale=scale)
            for system in systems:
                result = (
                    base if system == BASELINE
                    else run_system(system, algorithm, dataset, scale=scale)
                )
                speedup = base.total_ns / result.total_ns
                speedups_by_system[system].append(speedup)
                rows.append(
                    {
                        "algorithm": algorithm,
                        "dataset": dataset,
                        "system": system,
                        "speedup": speedup,
                        "cycles": result.cycles,
                    }
                )
    for system in systems:
        rows.append(
            {
                "algorithm": "GM",
                "dataset": "-",
                "system": system,
                "speedup": geometric_mean(speedups_by_system[system]),
                "cycles": float("nan"),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Fig. 11 -- fine-grained cache designs on top of Piccolo-FIM
# ---------------------------------------------------------------------------
#: Fig. 11 design name -> ``(size, scale) -> cache``, derived from the
#: single-source registry (:data:`repro.cache.variants.FIG11_DESIGNS`);
#: the tuple order is the figure's plotting order.
CACHE_DESIGNS = {
    design: (
        lambda size, scale, _d=design: fig11_cache_factory(
            _d, ways=scale.cache_ways, fg_tag_bits=scale.fg_tag_bits
        )(size)
    )
    for design in FIG11_DESIGNS
}


def figure_11(
    datasets: Sequence[str] = REAL_WORLD,
    algorithms: Sequence[str] = ALGORITHM_ORDER,
    designs: Iterable[str] = FIG11_DESIGNS,
    scale: ExperimentScale = DEFAULT_SCALE,
    *,
    workers: int | None = None,
    resume: bool = False,
    checkpoint_dir=None,
) -> list[dict]:
    designs = tuple(designs)
    _sweep(
        [
            CellSpec(system=BASELINE, algorithm=a, dataset=d, scale=scale)
            for a in algorithms for d in datasets
        ] + [
            CellSpec(
                system="Piccolo", algorithm=a, dataset=d, scale=scale,
                cache_design=design,
            )
            for a in algorithms for d in datasets for design in designs
        ],
        workers=workers, resume=resume, checkpoint_dir=checkpoint_dir,
    )
    rows = []
    speedups: dict[str, list[float]] = {d: [] for d in designs}
    for algorithm in algorithms:
        for dataset in datasets:
            base = run_system(BASELINE, algorithm, dataset, scale=scale)
            for design in designs:
                result = run_system(
                    "Piccolo", algorithm, dataset, scale=scale,
                    cache_design=design,
                )
                speedup = base.total_ns / result.total_ns
                speedups[design].append(speedup)
                rows.append(
                    {
                        "algorithm": algorithm,
                        "dataset": dataset,
                        "design": design,
                        "speedup": speedup,
                    }
                )
    for design in designs:
        rows.append(
            {
                "algorithm": "GM",
                "dataset": "-",
                "design": design,
                "speedup": geometric_mean(speedups[design]),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Fig. 12 -- normalized off-chip access breakdown
# ---------------------------------------------------------------------------
def figure_12(
    datasets: Sequence[str] = REAL_WORLD,
    algorithms: Sequence[str] = ALGORITHM_ORDER,
    scale: ExperimentScale = DEFAULT_SCALE,
    *,
    workers: int | None = None,
    resume: bool = False,
    checkpoint_dir=None,
) -> list[dict]:
    _sweep(
        [
            CellSpec(system=s, algorithm=a, dataset=d, scale=scale)
            for a in algorithms for d in datasets
            for s in (BASELINE, "Piccolo")
        ],
        workers=workers, resume=resume, checkpoint_dir=checkpoint_dir,
    )
    rows = []
    for algorithm in algorithms:
        for dataset in datasets:
            base = run_system(BASELINE, algorithm, dataset, scale=scale)
            picc = run_system("Piccolo", algorithm, dataset, scale=scale)
            base_total = base.dram.read_bursts + base.dram.write_bursts
            for name, result in ((BASELINE, base), ("Piccolo", picc)):
                rows.append(
                    {
                        "algorithm": algorithm,
                        "dataset": dataset,
                        "system": name,
                        "read_norm": result.dram.read_bursts / base_total,
                        "write_norm": result.dram.write_bursts / base_total,
                        "total_norm": (
                            result.dram.read_bursts + result.dram.write_bursts
                        ) / base_total,
                    }
                )
    return rows


# ---------------------------------------------------------------------------
# Fig. 13 -- off-chip and internal bandwidth
# ---------------------------------------------------------------------------
def figure_13(
    datasets: Sequence[str] = REAL_WORLD,
    algorithms: Sequence[str] = ALGORITHM_ORDER,
    systems: Sequence[str] = (BASELINE, "PIM", "Piccolo"),
    scale: ExperimentScale = DEFAULT_SCALE,
    *,
    workers: int | None = None,
    resume: bool = False,
    checkpoint_dir=None,
) -> list[dict]:
    _sweep(
        [
            CellSpec(system=s, algorithm=a, dataset=d, scale=scale)
            for a in algorithms for d in datasets for s in systems
        ],
        workers=workers, resume=resume, checkpoint_dir=checkpoint_dir,
    )
    rows = []
    for algorithm in algorithms:
        for dataset in datasets:
            for system in systems:
                result = run_system(system, algorithm, dataset, scale=scale)
                rows.append(
                    {
                        "algorithm": algorithm,
                        "dataset": dataset,
                        "system": system,
                        "offchip_gbps": result.offchip_bandwidth_gbps,
                        "internal_gbps": result.internal_bandwidth_gbps,
                    }
                )
    return rows


# ---------------------------------------------------------------------------
# Fig. 14 -- energy breakdown
# ---------------------------------------------------------------------------
def figure_14(
    datasets: Sequence[str] = REAL_WORLD,
    algorithms: Sequence[str] = ALGORITHM_ORDER,
    scale: ExperimentScale = DEFAULT_SCALE,
    *,
    workers: int | None = None,
    resume: bool = False,
    checkpoint_dir=None,
) -> list[dict]:
    _sweep(
        [
            CellSpec(system=s, algorithm=a, dataset=d, scale=scale)
            for a in algorithms for d in datasets
            for s in (BASELINE, "Piccolo")
        ],
        workers=workers, resume=resume, checkpoint_dir=checkpoint_dir,
    )
    rows = []
    config = scale.dram()
    for algorithm in algorithms:
        for dataset in datasets:
            base = run_system(BASELINE, algorithm, dataset, scale=scale)
            picc = run_system("Piccolo", algorithm, dataset, scale=scale)
            e_base = system_energy(base, config)
            e_picc = system_energy(picc, config, sequential_way_search=True)
            for name, bd in ((BASELINE, e_base), ("Piccolo", e_picc)):
                row = {
                    "algorithm": algorithm,
                    "dataset": dataset,
                    "system": name,
                    "total_norm": bd.total / e_base.total,
                }
                row.update(
                    {k: v / e_base.total for k, v in bd.as_dict().items()}
                )
                rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Fig. 15 -- memory-type sensitivity (SW dataset)
# ---------------------------------------------------------------------------
MEMORY_TYPES = (
    ("DDR4x4", "DDR4_2400_x4"),
    ("DDR4x8", "DDR4_2400_x8"),
    ("DDR4x16", "DDR4_2400_x16"),
    ("LPDDR4", "LPDDR4_3200"),
    ("GDDR5", "GDDR5_6000"),
    ("HBM", "HBM2_2000"),
)


def figure_15(
    algorithms: Sequence[str] = ALGORITHM_ORDER,
    dataset: str = "SW",
    scale: ExperimentScale = DEFAULT_SCALE,
    *,
    workers: int | None = None,
    resume: bool = False,
    checkpoint_dir=None,
) -> list[dict]:
    _sweep(
        [
            CellSpec(
                system=s, algorithm=a, dataset=dataset, scale=scale,
                dram_config=DRAMConfig(
                    spec=DEVICES[device], channels=1, ranks=4
                ),
            )
            for a in algorithms for _, device in MEMORY_TYPES
            for s in (BASELINE, "Piccolo")
        ],
        workers=workers, resume=resume, checkpoint_dir=checkpoint_dir,
    )
    rows = []
    for algorithm in algorithms:
        for label, device in MEMORY_TYPES:
            config = DRAMConfig(spec=DEVICES[device], channels=1, ranks=4)
            for system in (BASELINE, "Piccolo"):
                result = run_system(
                    system, algorithm, dataset, scale=scale,
                    dram_config=config,
                )
                rows.append(
                    {
                        "algorithm": algorithm,
                        "memory": label,
                        "system": system,
                        "cycles": result.cycles,
                    }
                )
    return rows


# ---------------------------------------------------------------------------
# Fig. 16 -- channel/rank sensitivity (SW dataset)
# ---------------------------------------------------------------------------
def figure_16(
    algorithms: Sequence[str] = ALGORITHM_ORDER,
    dataset: str = "SW",
    scale: ExperimentScale = DEFAULT_SCALE,
    *,
    workers: int | None = None,
    resume: bool = False,
    checkpoint_dir=None,
) -> list[dict]:
    _sweep(
        [
            CellSpec(
                system=s, algorithm=a, dataset=dataset, scale=scale,
                dram_config=DRAMConfig(
                    spec=DEVICES["DDR4_2400_x16"],
                    channels=channels, ranks=ranks,
                ),
            )
            for a in algorithms
            for channels in (1, 2) for ranks in (1, 2, 4)
            for s in (BASELINE, "Piccolo")
        ],
        workers=workers, resume=resume, checkpoint_dir=checkpoint_dir,
    )
    rows = []
    for algorithm in algorithms:
        for channels in (1, 2):
            for ranks in (1, 2, 4):
                config = DRAMConfig(
                    spec=DEVICES["DDR4_2400_x16"],
                    channels=channels, ranks=ranks,
                )
                for system in (BASELINE, "Piccolo"):
                    result = run_system(
                        system, algorithm, dataset, scale=scale,
                        dram_config=config,
                    )
                    rows.append(
                        {
                            "algorithm": algorithm,
                            "channels": channels,
                            "ranks": ranks,
                            "system": system,
                            "cycles": result.cycles,
                        }
                    )
    return rows


# ---------------------------------------------------------------------------
# Fig. 17 -- tile-size sensitivity (SW dataset)
# ---------------------------------------------------------------------------
def figure_17(
    algorithms: Sequence[str] = ALGORITHM_ORDER,
    dataset: str = "SW",
    scales: Sequence[int] = (1, 2, 4, 8, 16),
    scale: ExperimentScale = DEFAULT_SCALE,
    *,
    workers: int | None = None,
    resume: bool = False,
    checkpoint_dir=None,
) -> list[dict]:
    _sweep(
        [
            CellSpec(
                system=s, algorithm=a, dataset=dataset, scale=scale,
                tile_scale=scale_factor,
            )
            for a in algorithms for scale_factor in scales
            for s in (BASELINE, "Piccolo")
        ],
        workers=workers, resume=resume, checkpoint_dir=checkpoint_dir,
    )
    rows = []
    for algorithm in algorithms:
        base_ns = None
        for scale_factor in scales:
            for system in (BASELINE, "Piccolo"):
                result = run_system(
                    system, algorithm, dataset, scale=scale,
                    tile_scale=scale_factor,
                )
                if system == BASELINE and scale_factor == scales[0]:
                    base_ns = result.total_ns
                rows.append(
                    {
                        "algorithm": algorithm,
                        "scale": scale_factor,
                        "system": system,
                        "norm_cycles": result.total_ns / base_ns,
                    }
                )
    return rows


# ---------------------------------------------------------------------------
# Fig. 18 -- synthetic graphs (PR)
# ---------------------------------------------------------------------------
def figure_18(
    datasets: Sequence[str] = SYNTHETIC,
    systems: Sequence[str] = (
        "GraphDyns (SPM)", BASELINE, "NMP", "PIM", "Piccolo",
    ),
    scale: ExperimentScale = DEFAULT_SCALE,
    *,
    workers: int | None = None,
    resume: bool = False,
    checkpoint_dir=None,
) -> list[dict]:
    _sweep(
        [
            CellSpec(system=s, algorithm="PR", dataset=d, scale=scale)
            for d in datasets for s in dict.fromkeys((BASELINE, *systems))
        ],
        workers=workers, resume=resume, checkpoint_dir=checkpoint_dir,
    )
    rows = []
    for dataset in datasets:
        base = run_system(BASELINE, "PR", dataset, scale=scale)
        for system in systems:
            result = (
                base if system == BASELINE
                else run_system(system, "PR", dataset, scale=scale)
            )
            rows.append(
                {
                    "dataset": dataset,
                    "system": system,
                    "speedup": base.total_ns / result.total_ns,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Fig. 19a -- edge-centric vs vertex-centric (PR)
# ---------------------------------------------------------------------------
def figure_19a(
    datasets: Sequence[str] = REAL_WORLD,
    scale: ExperimentScale = DEFAULT_SCALE,
    *,
    workers: int | None = None,
    resume: bool = False,
    checkpoint_dir=None,
) -> list[dict]:
    # Only the vertex-centric half of the grid goes through run_system;
    # the edge-centric systems are constructed inline below and run
    # serially either way.
    _sweep(
        [
            CellSpec(system=s, algorithm="PR", dataset=d, scale=scale)
            for d in datasets for s in (BASELINE, "Piccolo")
        ],
        workers=workers, resume=resume, checkpoint_dir=checkpoint_dir,
    )
    rows = []
    for dataset in datasets:
        graph = load_dataset(dataset, scale.scale_shift)
        iters = scale.iterations_for("PR")
        vc_base = run_system(BASELINE, "PR", dataset, scale=scale)
        vc_picc = run_system("Piccolo", "PR", dataset, scale=scale)
        ec_base = ECConventionalSystem(
            onchip_bytes=scale.baseline_cache_bytes
        ).run(graph, "PR", max_iterations=iters)
        ec_picc = ECPiccoloSystem(
            onchip_bytes=scale.piccolo_cache_bytes,
            mshr_entries=scale.mshr_entries,
            fg_tag_bits=scale.fg_tag_bits,
            chunk_size=scale.chunk_size,
            replay_capacity=scale.replay_capacity,
        ).run(graph, "PR", max_iterations=iters)
        for label, result in (
            ("VC Conven.", vc_base),
            ("VC Piccolo", vc_picc),
            ("EC Conven.", ec_base),
            ("EC Piccolo", ec_picc),
        ):
            rows.append(
                {
                    "dataset": dataset,
                    "system": label,
                    "speedup": vc_base.total_ns / result.total_ns,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Fig. 19b -- OLAP queries
# ---------------------------------------------------------------------------
def figure_19b(num_rows: int = 1 << 16) -> list[dict]:
    return [
        {"query": name, "speedup": speedup}
        for name, speedup in query_speedups(num_rows).items()
    ]


# ---------------------------------------------------------------------------
# Fig. 20a -- enhanced designs for DDR4x4 and HBM
# ---------------------------------------------------------------------------
def figure_20a(
    algorithms: Sequence[str] = ALGORITHM_ORDER,
    dataset: str = "SW",
    scale: ExperimentScale = DEFAULT_SCALE,
    *,
    workers: int | None = None,
    resume: bool = False,
    checkpoint_dir=None,
) -> list[dict]:
    cases = (
        ("x4", DEVICES["DDR4_2400_x4"], {"offset_bits": 11}),
        ("HBM", DEVICES["HBM2_2000"], {"long_burst_fim": True}),
    )
    specs = []
    for algorithm in algorithms:
        for _, device, enhancement in cases:
            base_cfg = DRAMConfig(spec=device, channels=1, ranks=4)
            enh_cfg = DRAMConfig(spec=device, channels=1, ranks=4,
                                 **enhancement)
            specs += [
                CellSpec(system=BASELINE, algorithm=algorithm,
                         dataset=dataset, scale=scale, dram_config=base_cfg),
                CellSpec(system="Piccolo", algorithm=algorithm,
                         dataset=dataset, scale=scale, dram_config=base_cfg),
                CellSpec(system="Piccolo", algorithm=algorithm,
                         dataset=dataset, scale=scale, dram_config=enh_cfg),
            ]
    _sweep(specs, workers=workers, resume=resume,
           checkpoint_dir=checkpoint_dir)
    rows = []
    for algorithm in algorithms:
        for label, device, enhancement in cases:
            base_cfg = DRAMConfig(spec=device, channels=1, ranks=4)
            enh_cfg = DRAMConfig(spec=device, channels=1, ranks=4, **enhancement)
            base = run_system(BASELINE, algorithm, dataset, scale=scale,
                              dram_config=base_cfg)
            picc = run_system("Piccolo", algorithm, dataset, scale=scale,
                              dram_config=base_cfg)
            enh = run_system("Piccolo", algorithm, dataset, scale=scale,
                             dram_config=enh_cfg)
            for system, result in (
                (BASELINE, base), ("Piccolo", picc), ("Piccolo enhanced", enh),
            ):
                rows.append(
                    {
                        "algorithm": algorithm,
                        "memory": label,
                        "system": system,
                        "speedup": base.total_ns / result.total_ns,
                    }
                )
    return rows


# ---------------------------------------------------------------------------
# Fig. 20b -- prefetching disabled
# ---------------------------------------------------------------------------
def figure_20b(
    datasets: Sequence[str] = REAL_WORLD,
    scale: ExperimentScale = DEFAULT_SCALE,
    *,
    workers: int | None = None,
    resume: bool = False,
    checkpoint_dir=None,
) -> list[dict]:
    _sweep(
        [
            CellSpec(system="Piccolo", algorithm="PR", dataset=d,
                     scale=scale, pipeline=pipe)
            for d in datasets
            for pipe in (None, PipelineConfig(prefetch=False))
        ],
        workers=workers, resume=resume, checkpoint_dir=checkpoint_dir,
    )
    rows = []
    for dataset in datasets:
        with_pf = run_system("Piccolo", "PR", dataset, scale=scale)
        without = run_system(
            "Piccolo", "PR", dataset, scale=scale,
            pipeline=PipelineConfig(prefetch=False),
        )
        rows.append(
            {
                "dataset": dataset,
                "norm_perf_with": 1.0,
                "norm_perf_without": with_pf.total_ns / without.total_ns,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Pretty-printing helper used by the benchmark harness
# ---------------------------------------------------------------------------
def format_rows(title: str, rows: list[dict]) -> str:
    """Render rows as an aligned text table (one line per row)."""
    lines = [f"\n=== {title} ==="]
    if not rows:
        lines.append("(no rows)")
        return "\n".join(lines)
    keys = list(rows[0].keys())
    lines.append("  ".join(f"{k:>14s}" for k in keys))
    for row in rows:
        cells = []
        for key in keys:
            value = row.get(key, "")
            if isinstance(value, float):
                cells.append(f"{value:>14.3f}")
            else:
                cells.append(f"{str(value):>14s}")
        lines.append("  ".join(cells))
    return "\n".join(lines)


def print_rows(title: str, rows: list[dict]) -> None:
    """Print :func:`format_rows` output (kept for script/example use)."""
    print(format_rows(title, rows))
