"""On-chip cache substrate and comparison designs (Fig. 11).

All caches share the :class:`~repro.cache.base.BaseCache` protocol: an
``access(addr, is_write)`` call returns what physical traffic the access
caused (a fill and/or dirty write-backs).  Fills are installed immediately
-- the timing model is throughput-oriented, so MSHR merging of misses to
an in-flight line is implicit.
"""

from repro.cache.base import AccessResult, BaseCache, CacheStats
from repro.cache.conventional import ConventionalCache
from repro.cache.sectored import SectoredCache
from repro.cache.fine8b import EightByteLineCache
from repro.cache.variants import AmoebaCache, ScrabbleCache, GraphfireCache

__all__ = [
    "AccessResult",
    "BaseCache",
    "CacheStats",
    "ConventionalCache",
    "SectoredCache",
    "EightByteLineCache",
    "AmoebaCache",
    "ScrabbleCache",
    "GraphfireCache",
]
