"""Shared machinery for array-backed ``access_many`` cache engines.

Every batched cache engine in this package follows the same recipe
(PERFORMANCE.md, docs/CACHE_ENGINES.md):

1. keep per-set line/block metadata in contiguous NumPy arrays between
   batches (one row per set, one column per way/slot, ``-1`` marking an
   invalid entry) with a monotone recency stamp per entry;
2. vectorize the per-address bit slicing (set index, tag, word/sector
   bit, fill address) over the whole batch in a few NumPy passes;
3. materialise only the *touched* sets into flat Python structures
   (lists plus a tag->ways dict, MRU-first so the LRU victim is the
   tail), run one tight per-access loop, and write the sets back;
4. emit the fill/write-back event stream exactly as the scalar loop
   would have, packed into :class:`~repro.cache.base.BatchResult`
   arrays.

This module holds the parts of that recipe that are identical across
designs, so a cache variant only implements its replacement/sectoring
policy:

- event-stream assembly (:func:`pack_events`, :func:`pack_events_sized`,
  :func:`empty_batch`): events accumulate in one flat Python list with
  the write-back flag packed into bit 0 of the (always 8 B-aligned)
  address, and are unpacked into the ``BatchResult`` arrays in two
  vectorized operations;
- the batch-replay memo hooks (:class:`BatchedCacheEngine`):
  ``state_digest`` / ``state_snapshot`` / ``state_restore`` /
  ``counter_vector`` / ``counter_apply``, driven by declarative class
  attributes naming the design's state arrays and counters, so
  ``core.memory_path``'s exact-replay memo works on any engine without
  per-design boilerplate.

Digest canonicality: lines are hashed in per-set recency order
(``argsort(-RECENCY_ARRAY)``), so neither the absolute clock value nor
the physical way an entry landed in affects the digest -- two caches
with equal digests behave identically on any future access stream,
which is the contract ``BatchReplayMemo`` relies on.  Invalid entries
must carry identical zeroed-out state so their position within the
sort cannot break canonicality.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.cache.base import BatchResult

_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_BOOL = np.empty(0, dtype=bool)


def empty_batch() -> BatchResult:
    """The result of an empty address batch."""
    return BatchResult(0, 0, _EMPTY_I64, _EMPTY_BOOL, _EMPTY_I64)


def pack_events(n: int, hits: int, events: list[int], nbytes: int) -> BatchResult:
    """Pack a flat event list into a :class:`BatchResult`.

    ``events`` carries one integer per fill/write-back, in scalar-loop
    order, with the write-back flag in bit 0 (event addresses are 8 B
    aligned, so bit 0 is free).  All events share one size ``nbytes``
    (uniform-granularity designs: piccolo, conventional, sectored,
    scrabble, fine-8B).
    """
    packed = np.asarray(events, dtype=np.int64)
    return BatchResult(
        accesses=n,
        hits=hits,
        ev_addr=packed & -2,
        ev_is_wb=(packed & 1).astype(bool),
        ev_bytes=np.full(packed.size, nbytes, dtype=np.int64),
    )


def pack_events_sized(
    n: int, hits: int, events: list[int], sizes: list[int]
) -> BatchResult:
    """Like :func:`pack_events` for variable-granularity designs
    (amoeba's predicted-size fills, graphfire's stream fills): ``sizes``
    carries the byte count of each event."""
    packed = np.asarray(events, dtype=np.int64)
    return BatchResult(
        accesses=n,
        hits=hits,
        ev_addr=packed & -2,
        ev_is_wb=(packed & 1).astype(bool),
        ev_bytes=np.asarray(sizes, dtype=np.int64),
    )


def split_free_mru(ids: list[int], ord_: list[int]) -> tuple[list[int], list[int]]:
    """Partition one set's entries for the batched loop.

    ``ids`` is the entry-id column (``-1`` = free slot), ``ord_`` the
    recency stamps.  Returns ``(free, order)``: the free slots sorted
    ascending, and the occupied slots MRU-first -- so ``order``'s tail
    is the LRU victim and ``order.pop()`` needs no stamp scan.
    """
    free: list[int] = []
    order: list[int] = []
    # repro-lint: disable=RL006 -- per-way scan bounded by associativity,
    # runs once per canonicalized set, not per request
    for w in sorted(range(len(ids)), key=ord_.__getitem__, reverse=True):
        if ids[w] == -1:
            free.append(w)
        else:
            order.append(w)
    free.sort()
    return free, order


class BatchedCacheEngine:
    """Mixin providing the exact-replay hooks for array-backed caches.

    A design declares its state layout through class attributes; the
    mixin derives the canonical digest, snapshot/restore, and counter
    delta plumbing that ``core.memory_path.BatchReplayMemo`` needs.

    Attributes:
        RECENCY_ARRAY: name of the ``(num_sets, entries)`` recency-stamp
            array; its descending argsort is the canonical per-set
            entry order.
        CANONICAL_ARRAYS: names of per-set state arrays hashed in
            recency-permuted order (first axis sets, second entries;
            deeper axes ride along).  Recency stamps themselves are
            *excluded*: only the order they induce matters.
        DIGEST_RAW: names of additional state hashed raw -- global
            predictor tables, per-set scalars indexed by (stable) set
            number, or plain ints such as a way quota.
        STATE_ARRAYS: names of every NumPy array copied by
            ``state_snapshot`` (canonical arrays + recency stamps +
            any raw tables).
        STATE_SCALARS: names of scalar attributes snapshot alongside
            (clocks, stream cursors).
        EXTRA_COUNTERS: names of integer counters beyond ``CacheStats``
            included in the replay counter vector.
    """

    RECENCY_ARRAY: str = "_ord"
    CANONICAL_ARRAYS: tuple[str, ...] = ()
    DIGEST_RAW: tuple[str, ...] = ()
    STATE_ARRAYS: tuple[str, ...] = ()
    STATE_SCALARS: tuple[str, ...] = ()
    EXTRA_COUNTERS: tuple[str, ...] = ()

    # ------------------------------------------------------------------
    def state_digest(self) -> bytes:
        perm = np.argsort(
            -getattr(self, self.RECENCY_ARRAY), axis=1, kind="stable"
        )
        h = hashlib.blake2b(digest_size=16)
        for name in self.CANONICAL_ARRAYS:
            arr = getattr(self, name)
            p = perm
            # repro-lint: disable=RL006 -- ndim alignment, bounded by rank
            while p.ndim < arr.ndim:
                p = p[..., None]
            h.update(np.take_along_axis(arr, p, axis=1).tobytes())
        for name in self.DIGEST_RAW:
            value = getattr(self, name)
            if isinstance(value, np.ndarray):
                h.update(value.tobytes())
            else:
                # repro-lint: disable=RL001 -- DIGEST_RAW values are ints/
                # bools/int tuples; repr is canonical for those on CPython
                h.update(repr(value).encode())
        return h.digest()

    def state_snapshot(self) -> tuple:
        return (
            tuple(getattr(self, name).copy() for name in self.STATE_ARRAYS),
            tuple(getattr(self, name) for name in self.STATE_SCALARS),
        )

    def state_restore(self, snap: tuple) -> None:
        arrays, scalars = snap
        for name, value in zip(self.STATE_ARRAYS, arrays):
            np.copyto(getattr(self, name), value)
        for name, value in zip(self.STATE_SCALARS, scalars):
            setattr(self, name, value)

    # ------------------------------------------------------------------
    def counter_vector(self) -> tuple[int, ...]:
        """Every externally visible counter (replay delta domain)."""
        s = self.stats
        return (
            s.accesses,
            s.hits,
            s.misses,
            s.evictions,
            s.writeback_bytes,
            s.fill_bytes,
            s.requested_bytes,
        ) + tuple(getattr(self, name) for name in self.EXTRA_COUNTERS)

    def counter_apply(self, delta: tuple[int, ...]) -> None:
        s = self.stats
        s.accesses += delta[0]
        s.hits += delta[1]
        s.misses += delta[2]
        s.evictions += delta[3]
        s.writeback_bytes += delta[4]
        s.fill_bytes += delta[5]
        s.requested_bytes += delta[6]
        for name, value in zip(self.EXTRA_COUNTERS, delta[7:]):
            setattr(self, name, getattr(self, name) + value)
