"""Cache access protocol shared by every on-chip cache design.

The timing layer is throughput-oriented: a miss installs its line
immediately and the returned :class:`AccessResult` describes the physical
traffic (fill reads, dirty write-backs) that the memory system must be
charged for.  Subsequent accesses to the same line therefore hit, which
models ideal MSHR merging of misses to in-flight lines.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import NamedTuple


class AccessResult(NamedTuple):
    """Physical consequence of one cache access.

    Attributes:
        hit: True when the requested word was already resident.
        fill_addr: byte address of the fill request (-1 when hit).
        fill_bytes: size of the fill (line or sector granularity).
        writebacks: list of (addr, nbytes) dirty evictions, or None.
    """

    hit: bool
    fill_addr: int = -1
    fill_bytes: int = 0
    writebacks: list[tuple[int, int]] | None = None


@dataclass
class CacheStats:
    """Aggregate cache activity counters."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writeback_bytes: int = 0
    fill_bytes: int = 0
    #: bytes the program actually asked for (8 B per access)
    requested_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def unuseful_fill_fraction(self) -> float:
        """Fraction of fetched bytes never requested (Fig. 3's red bars,
        upper bound: a fetched word may be requested later)."""
        if self.fill_bytes == 0:
            return 0.0
        useful = min(self.requested_bytes, self.fill_bytes)
        return 1.0 - useful / self.fill_bytes

    def reset(self) -> None:
        self.accesses = self.hits = self.misses = self.evictions = 0
        self.writeback_bytes = self.fill_bytes = self.requested_bytes = 0


class BaseCache(ABC):
    """Interface every cache design implements."""

    def __init__(self) -> None:
        self.stats = CacheStats()

    @abstractmethod
    def access(self, addr: int, is_write: bool) -> AccessResult:
        """Perform one 8-byte-granularity access."""

    @abstractmethod
    def flush(self) -> list[tuple[int, int]]:
        """Evict everything; returns dirty (addr, nbytes) write-backs."""

    @property
    @abstractmethod
    def capacity_bytes(self) -> int:
        """Usable data capacity."""

    @property
    @abstractmethod
    def tag_overhead_bits(self) -> int:
        """Total tag/metadata storage in bits (area/energy accounting)."""


@dataclass
class _Way:
    """One way of a set for line-granularity caches."""

    tag: int = -1
    dirty: bool = False
    extra: dict = field(default_factory=dict)
