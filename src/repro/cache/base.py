"""Cache access protocol shared by every on-chip cache design.

The timing layer is throughput-oriented: a miss installs its line
immediately and the returned :class:`AccessResult` describes the physical
traffic (fill reads, dirty write-backs) that the memory system must be
charged for.  Subsequent accesses to the same line therefore hit, which
models ideal MSHR merging of misses to in-flight lines.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import NamedTuple

import numpy as np


class AccessResult(NamedTuple):
    """Physical consequence of one cache access.

    Attributes:
        hit: True when the requested word was already resident.
        fill_addr: byte address of the fill request (-1 when hit).
        fill_bytes: size of the fill (line or sector granularity).
        writebacks: list of (addr, nbytes) dirty evictions, or None.
    """

    hit: bool
    fill_addr: int = -1
    fill_bytes: int = 0
    writebacks: list[tuple[int, int]] | None = None


@dataclass
class CacheStats:
    """Aggregate cache activity counters."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writeback_bytes: int = 0
    fill_bytes: int = 0
    #: bytes the program actually asked for (8 B per access)
    requested_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def unuseful_fill_fraction(self) -> float:
        """Fraction of fetched bytes never requested (Fig. 3's red bars,
        upper bound: a fetched word may be requested later)."""
        if self.fill_bytes == 0:
            return 0.0
        useful = min(self.requested_bytes, self.fill_bytes)
        return 1.0 - useful / self.fill_bytes

    def reset(self) -> None:
        self.accesses = self.hits = self.misses = self.evictions = 0
        self.writeback_bytes = self.fill_bytes = self.requested_bytes = 0


@dataclass
class BatchResult:
    """Physical consequence of a whole batch of accesses.

    The event stream is the exact concatenation the scalar loop would
    have produced: for every access, in order, its fill request (when it
    missed) followed by its dirty write-backs.  Consumers that only need
    the DRAM request stream can therefore use the arrays directly
    without replaying per-access results.

    Attributes:
        accesses: number of accesses in the batch.
        hits: how many of them hit.
        ev_addr: byte address of each fill/write-back event, in order.
        ev_is_wb: True where the event is a write-back, False for fills.
        ev_bytes: size of each event in bytes.
    """

    accesses: int
    hits: int
    ev_addr: np.ndarray
    ev_is_wb: np.ndarray
    ev_bytes: np.ndarray

    @property
    def misses(self) -> int:
        return self.accesses - self.hits


class BaseCache(ABC):
    """Interface every cache design implements."""

    def __init__(self) -> None:
        self.stats = CacheStats()

    @abstractmethod
    def access(self, addr: int, is_write: bool) -> AccessResult:
        """Perform one 8-byte-granularity access."""

    def access_many(self, addrs: np.ndarray, is_write: bool) -> BatchResult:
        """Perform a batch of 8-byte accesses.

        The default implementation is an exact scalar fallback: it loops
        :meth:`access` and packs the resulting fills/write-backs into a
        :class:`BatchResult`.  Array-backed designs override this with a
        vectorized engine; every override must stay event-for-event
        identical to this loop (the batched-equivalence suite enforces
        it).  The engine recipe and the shared machinery live in
        :mod:`repro.cache.batched` / docs/CACHE_ENGINES.md.
        """
        ev_addr: list[int] = []
        ev_is_wb: list[bool] = []
        ev_bytes: list[int] = []
        hits = 0
        access = self.access
        addr_list = np.asarray(addrs, dtype=np.int64).tolist()
        for addr in addr_list:
            hit, fill_addr, fill_bytes, writebacks = access(addr, is_write)
            if hit:
                hits += 1
            else:
                ev_addr.append(fill_addr)
                ev_is_wb.append(False)
                ev_bytes.append(fill_bytes)
            if writebacks:
                for wb_addr, wb_bytes in writebacks:
                    ev_addr.append(wb_addr)
                    ev_is_wb.append(True)
                    ev_bytes.append(wb_bytes)
        return BatchResult(
            accesses=len(addr_list),
            hits=hits,
            ev_addr=np.asarray(ev_addr, dtype=np.int64),
            ev_is_wb=np.asarray(ev_is_wb, dtype=bool),
            ev_bytes=np.asarray(ev_bytes, dtype=np.int64),
        )

    def state_digest(self) -> bytes | None:
        """Canonical digest of the replacement state, or None when the
        design does not support exact batch replay (scalar-only
        variants).  Two caches with equal digests must behave
        identically on any future access stream."""
        return None

    @abstractmethod
    def flush(self) -> list[tuple[int, int]]:
        """Evict everything; returns dirty (addr, nbytes) write-backs."""

    @property
    @abstractmethod
    def capacity_bytes(self) -> int:
        """Usable data capacity."""

    @property
    @abstractmethod
    def tag_overhead_bits(self) -> int:
        """Total tag/metadata storage in bits (area/energy accounting)."""
