"""8 B-line cache: the fine-grained ideal with prohibitive tag overhead.

Every 8-byte word gets its own tag, so only useful data is ever resident
-- the performance upper bound of Fig. 11 -- but the tag store costs
~45 % of the data capacity at 4 MB/48-bit addressing (Sec. V-A), which is
why Piccolo-cache exists.

Batched engine (docs/CACHE_ENGINES.md): the design is exactly a
conventional LRU cache specialised to 8 B lines, so it inherits
:class:`~repro.cache.conventional.ConventionalCache`'s array-backed
``access_many`` engine and replay hooks unchanged -- a one-word line
means the touched/dirty masks collapse to single bits and the
same-block run compression degenerates to same-word runs, with no
behavioural difference from the scalar loop.
"""

from __future__ import annotations

from repro.cache.conventional import ConventionalCache


class EightByteLineCache(ConventionalCache):
    """A conventional LRU cache specialised to 8 B lines."""

    def __init__(
        self,
        size_bytes: int,
        ways: int = 8,
        addr_bits: int = 48,
        capacity_scale: float = 1.0,
    ) -> None:
        # ``capacity_scale`` models designs that steal data capacity for
        # in-array metadata (amoeba/graphfire approximations).
        effective = int(size_bytes * capacity_scale)
        line = 8
        ways_total = ways * line
        effective -= effective % ways_total
        # Round down to a power-of-two set count.
        sets = effective // ways_total
        sets = 1 << max(0, sets.bit_length() - 1)
        super().__init__(
            size_bytes=sets * ways_total,
            ways=ways,
            line_bytes=line,
            addr_bits=addr_bits,
        )

    @property
    def tag_overhead_fraction(self) -> float:
        """Tag bits relative to data bits (the paper quotes 45.31 % for
        4 MB / 8-way / 48-bit)."""
        return self.tag_overhead_bits / (self.size_bytes * 8)
