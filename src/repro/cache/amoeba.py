"""Amoeba-cache (Kumar et al., MICRO'12): variable-granularity blocks.

Amoeba stores blocks of 1-8 words directly in the data array together
with their tags, so no capacity is wasted on never-used words -- but
every resident block spends one extra word on its in-array tag, and a
spatial-granularity predictor decides how much to fetch on a miss.
Under-fetching costs extra misses; over-fetching wastes bandwidth and
capacity: exactly the trade the paper's Fig. 11 discussion attributes
to the design ("they store the metadata along with the cache data,
resulting in lower effective cache capacity").

The set is a word budget (``ways x 64 B``).  Blocks are
``[start_word, n_words, dirty_mask, touched_mask]`` kept in MRU order;
installing a block evicts LRU blocks until its footprint
(``n_words + 1`` for the tag) fits.  The predictor keeps a per-region
granularity hint that doubles when evicted blocks were fully used and
halves when they were mostly untouched.
"""

from __future__ import annotations

from repro.cache.base import AccessResult, BaseCache
from repro.utils.units import log2_exact

#: largest block, in 8-byte words (one conventional line)
MAX_BLOCK_WORDS = 8
#: predictor regions: one hint per 512 B of address space
REGION_SHIFT = 6  # words -> 64-word = 512 B regions
#: predictor table entries (direct-mapped, hashed)
PREDICTOR_ENTRIES = 1024
DEFAULT_GRANULARITY = 2


class AmoebaCache(BaseCache):
    """Variable-granularity cache with in-array tags.

    Args:
        size_bytes: data-array size (shared by blocks and their tags).
        ways: nominal associativity; sizes the per-set word budget.
        addr_bits: physical address width for metadata accounting.
    """

    def __init__(self, size_bytes: int, ways: int = 8,
                 addr_bits: int = 48) -> None:
        super().__init__()
        if size_bytes % (ways * 64) != 0:
            raise ValueError("size must be a multiple of ways * 64")
        self.size_bytes = size_bytes
        self.ways = ways
        self.addr_bits = addr_bits
        self.num_sets = size_bytes // (ways * 64)
        log2_exact(self.num_sets)
        self._set_mask = self.num_sets - 1
        self._budget_words = ways * 8
        # Per set: MRU-first [start_word, n_words, dirty_mask, touched_mask].
        self._sets: list[list[list]] = [[] for _ in range(self.num_sets)]
        self._used_words = [0] * self.num_sets
        self._hints = [DEFAULT_GRANULARITY] * PREDICTOR_ENTRIES
        self.useful_fill_bytes = 0
        self.useful_wb_bytes = 0

    # ------------------------------------------------------------------
    def _set_of(self, word: int) -> int:
        return (word >> 3) & self._set_mask

    def _hint_slot(self, word: int) -> int:
        return (word >> REGION_SHIFT) % PREDICTOR_ENTRIES

    # ------------------------------------------------------------------
    def access(self, addr: int, is_write: bool) -> AccessResult:
        """One 8 B access; misses install a predicted-size block."""
        stats = self.stats
        stats.accesses += 1
        stats.requested_bytes += 8
        word = addr >> 3
        set_idx = self._set_of(word)
        blocks = self._sets[set_idx]
        for i, block in enumerate(blocks):
            start, n_words = block[0], block[1]
            if start <= word < start + n_words:
                stats.hits += 1
                bit = 1 << (word - start)
                if is_write:
                    block[2] |= bit
                block[3] |= bit
                if i:
                    blocks.insert(0, blocks.pop(i))
                return AccessResult(hit=True)

        stats.misses += 1
        lo, hi = self._fetch_range(word, blocks)
        n_words = hi - lo
        footprint = n_words + 1  # the in-array tag word
        writebacks: list[tuple[int, int]] = []
        while self._used_words[set_idx] + footprint > self._budget_words:
            victim = blocks.pop()
            self._used_words[set_idx] -= victim[1] + 1
            stats.evictions += 1
            self._retire(victim, writebacks)
        bit = 1 << (word - lo)
        blocks.insert(0, [lo, n_words, bit if is_write else 0, bit])
        self._used_words[set_idx] += footprint
        stats.fill_bytes += n_words * 8
        return AccessResult(
            hit=False,
            fill_addr=lo * 8,
            fill_bytes=n_words * 8,
            writebacks=writebacks or None,
        )

    # ------------------------------------------------------------------
    def _fetch_range(self, word: int, blocks: list[list]) -> tuple[int, int]:
        """Predicted fetch window around ``word``, trimmed so it never
        overlaps a resident block."""
        gran = self._hints[self._hint_slot(word)]
        lo = word - (word % gran)
        hi = lo + gran
        for block in blocks:
            start, end = block[0], block[0] + block[1]
            if end <= word:
                lo = max(lo, end)
            elif start > word:
                hi = min(hi, start)
        return lo, hi

    def _retire(self, block: list, writebacks: list[tuple[int, int]]) -> None:
        start, n_words, dirty_mask, touched_mask = block
        used = bin(touched_mask).count("1")
        self.useful_fill_bytes += 8 * used
        # Train the granularity predictor on observed utilisation.  A
        # fully-used single word proves nothing about spatial locality,
        # so growth needs a fully-used multi-word block (else the hint
        # would oscillate 1 <-> 2 on sparse regions).
        slot = self._hint_slot(start)
        hint = self._hints[slot]
        if used == n_words and MAX_BLOCK_WORDS > n_words >= 2:
            self._hints[slot] = min(MAX_BLOCK_WORDS, hint * 2)
        elif used * 2 <= n_words and n_words > 1:
            self._hints[slot] = max(1, hint // 2)
        if not dirty_mask:
            return
        # Coalesce contiguous dirty words into write-back runs.
        run_start = None
        for offset in range(n_words + 1):
            dirty = offset < n_words and dirty_mask & (1 << offset)
            if dirty and run_start is None:
                run_start = offset
            elif not dirty and run_start is not None:
                nbytes = (offset - run_start) * 8
                writebacks.append(((start + run_start) * 8, nbytes))
                self.stats.writeback_bytes += nbytes
                self.useful_wb_bytes += nbytes
                run_start = None

    # ------------------------------------------------------------------
    def flush(self) -> list[tuple[int, int]]:
        """Evict every block; returns coalesced dirty write-backs."""
        writebacks: list[tuple[int, int]] = []
        for set_idx, blocks in enumerate(self._sets):
            for block in blocks:
                self._retire(block, writebacks)
            blocks.clear()
            self._used_words[set_idx] = 0
        return writebacks

    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        """Expected data capacity: one tag word per average-granularity
        block (~4 words) leaves ~4/5 of the array for data."""
        return self.size_bytes * 4 // 5

    @property
    def tag_overhead_bits(self) -> int:
        """Dedicated (out-of-array) metadata only: the predictor table
        and per-set fill bookkeeping; tags live in the data array."""
        predictor_bits = PREDICTOR_ENTRIES * 4
        per_set_bits = self.num_sets * 16
        return predictor_bits + per_set_bits

    @property
    def in_array_tag_bits(self) -> int:
        """Worst-case in-array tag spend (one word per resident block)."""
        return self._budget_words // 2 * self.num_sets * 64
