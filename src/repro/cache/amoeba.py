"""Amoeba-cache (Kumar et al., MICRO'12): variable-granularity blocks.

Amoeba stores blocks of 1-8 words directly in the data array together
with their tags, so no capacity is wasted on never-used words -- but
every resident block spends one extra word on its in-array tag, and a
spatial-granularity predictor decides how much to fetch on a miss.
Under-fetching costs extra misses; over-fetching wastes bandwidth and
capacity: exactly the trade the paper's Fig. 11 discussion attributes
to the design ("they store the metadata along with the cache data,
resulting in lower effective cache capacity").

The set is a word budget (``ways x 64 B``).  Blocks are
``(start_word, n_words, dirty_mask, touched_mask)`` kept in MRU order;
installing a block evicts LRU blocks until its footprint
(``n_words + 1`` for the tag) fits.  The predictor keeps a per-region
granularity hint that doubles when evicted blocks were fully used and
halves when they were mostly untouched.

Storage layout (batched engine, docs/CACHE_ENGINES.md): block state
lives in contiguous NumPy arrays of fixed per-set capacity (a block
occupies at least two budget words -- one data word plus its in-array
tag -- so ``budget // 2`` slots suffice), with ``start == -1`` marking
a free slot and a recency stamp ordering the rest.  :meth:`access`
walks the arrays one address at a time; :meth:`access_many` vectorizes
the word/set decomposition and replays the batch in one tight loop
over the materialised sets, using a resident-word -> slot dict so both
the hit check and the predictor's fetch-window trimming are O(1) per
word instead of a scan over the set's blocks.  Both paths are
event-for-event identical (``tests/test_batched_equivalence.py``).
"""

from __future__ import annotations

from bisect import insort

import numpy as np

from repro.cache.base import AccessResult, BaseCache, BatchResult
from repro.cache.batched import (
    BatchedCacheEngine,
    empty_batch,
    pack_events_sized,
    split_free_mru,
)
from repro.utils.units import log2_exact

#: largest block, in 8-byte words (one conventional line)
MAX_BLOCK_WORDS = 8
#: predictor regions: one hint per 512 B of address space
REGION_SHIFT = 6  # words -> 64-word = 512 B regions
#: predictor table entries (direct-mapped, hashed)
PREDICTOR_ENTRIES = 1024
DEFAULT_GRANULARITY = 2


class AmoebaCache(BatchedCacheEngine, BaseCache):
    """Variable-granularity cache with in-array tags.

    Args:
        size_bytes: data-array size (shared by blocks and their tags).
        ways: nominal associativity; sizes the per-set word budget.
        addr_bits: physical address width for metadata accounting.
    """

    # Replay-memo state layout (see cache/batched.py).  The predictor
    # table and per-set occupancy are indexed by stable ids (region
    # hash, set number), so they hash raw.
    CANONICAL_ARRAYS = ("_start", "_nw", "_dirty", "_touched")
    DIGEST_RAW = ("_hints", "_used_words")
    STATE_ARRAYS = ("_start", "_nw", "_dirty", "_touched", "_ord",
                    "_hints", "_used_words")
    STATE_SCALARS = ("_clock",)
    EXTRA_COUNTERS = ("useful_fill_bytes", "useful_wb_bytes")

    def __init__(self, size_bytes: int, ways: int = 8,
                 addr_bits: int = 48) -> None:
        super().__init__()
        if ways < 2:
            # A max-granularity block's footprint (MAX_BLOCK_WORDS + 1
            # for the in-array tag) must fit the per-set word budget
            # (ways * 8), or eviction can never make room for it.
            raise ValueError("amoeba needs >= 2 ways")
        if size_bytes % (ways * 64) != 0:
            raise ValueError("size must be a multiple of ways * 64")
        self.size_bytes = size_bytes
        self.ways = ways
        self.addr_bits = addr_bits
        self.num_sets = size_bytes // (ways * 64)
        log2_exact(self.num_sets)
        self._set_mask = self.num_sets - 1
        self._budget_words = ways * 8
        #: block slots per set: every block costs >= 2 budget words
        self._max_blocks = self._budget_words // 2
        # Array-backed block state (start -1 = free slot).
        shape = (self.num_sets, self._max_blocks)
        self._start = np.full(shape, -1, dtype=np.int64)
        self._nw = np.zeros(shape, dtype=np.int64)
        self._dirty = np.zeros(shape, dtype=np.int64)
        self._touched = np.zeros(shape, dtype=np.int64)
        self._ord = np.zeros(shape, dtype=np.int64)
        self._clock = 1
        self._used_words = np.zeros(self.num_sets, dtype=np.int64)
        self._hints = np.full(PREDICTOR_ENTRIES, DEFAULT_GRANULARITY,
                              dtype=np.int64)
        self.useful_fill_bytes = 0
        self.useful_wb_bytes = 0

    # ------------------------------------------------------------------
    def _set_of(self, word: int) -> int:
        return (word >> 3) & self._set_mask

    def _hint_slot(self, word: int) -> int:
        return (word >> REGION_SHIFT) % PREDICTOR_ENTRIES

    # ------------------------------------------------------------------
    def access(self, addr: int, is_write: bool) -> AccessResult:
        """One 8 B access; misses install a predicted-size block."""
        stats = self.stats
        stats.accesses += 1
        stats.requested_bytes += 8
        word = addr >> 3
        set_idx = self._set_of(word)
        start_row = self._start[set_idx].tolist()
        nw_row = self._nw[set_idx].tolist()
        for i, (start, n_words) in enumerate(zip(start_row, nw_row)):
            if start >= 0 and start <= word < start + n_words:
                stats.hits += 1
                bit = 1 << (word - start)
                if is_write:
                    self._dirty[set_idx, i] |= bit
                self._touched[set_idx, i] |= bit
                self._ord[set_idx, i] = self._clock
                self._clock += 1
                return AccessResult(hit=True)

        stats.misses += 1
        lo, hi = self._fetch_range(word, start_row, nw_row)
        n_words = hi - lo
        footprint = n_words + 1  # the in-array tag word
        writebacks: list[tuple[int, int]] = []
        used = int(self._used_words[set_idx])
        while used + footprint > self._budget_words:
            victim = self._lru_slot(set_idx)
            used -= int(self._nw[set_idx, victim]) + 1
            stats.evictions += 1
            self._retire(set_idx, victim, writebacks)
            self._start[set_idx, victim] = -1
            self._nw[set_idx, victim] = 0
            self._dirty[set_idx, victim] = 0
            self._touched[set_idx, victim] = 0
            self._ord[set_idx, victim] = 0
        slot = int(np.flatnonzero(self._start[set_idx] == -1)[0])
        bit = 1 << (word - lo)
        self._start[set_idx, slot] = lo
        self._nw[set_idx, slot] = n_words
        self._dirty[set_idx, slot] = bit if is_write else 0
        self._touched[set_idx, slot] = bit
        self._ord[set_idx, slot] = self._clock
        self._clock += 1
        self._used_words[set_idx] = used + footprint
        stats.fill_bytes += n_words * 8
        return AccessResult(
            hit=False,
            fill_addr=lo * 8,
            fill_bytes=n_words * 8,
            writebacks=writebacks or None,
        )

    def _lru_slot(self, set_idx: int) -> int:
        """Occupied slot with the lowest recency stamp."""
        ord_row = self._ord[set_idx]
        occupied = np.flatnonzero(self._start[set_idx] >= 0)
        return int(occupied[np.argmin(ord_row[occupied])])

    # ------------------------------------------------------------------
    def _fetch_range(
        self, word: int, start_row: list[int], nw_row: list[int]
    ) -> tuple[int, int]:
        """Predicted fetch window around ``word``, trimmed so it never
        overlaps a resident block."""
        gran = int(self._hints[self._hint_slot(word)])
        lo = word - (word % gran)
        hi = lo + gran
        for start, n_words in zip(start_row, nw_row):
            if start < 0:
                continue
            end = start + n_words
            if end <= word:
                lo = max(lo, end)
            elif start > word:
                hi = min(hi, start)
        return lo, hi

    def _retire(
        self, set_idx: int, slot: int, writebacks: list[tuple[int, int]]
    ) -> None:
        start = int(self._start[set_idx, slot])
        n_words = int(self._nw[set_idx, slot])
        dirty_mask = int(self._dirty[set_idx, slot])
        touched_mask = int(self._touched[set_idx, slot])
        used = touched_mask.bit_count()
        self.useful_fill_bytes += 8 * used
        # Train the granularity predictor on observed utilisation.  A
        # fully-used single word proves nothing about spatial locality,
        # so growth needs a fully-used multi-word block (else the hint
        # would oscillate 1 <-> 2 on sparse regions).
        hslot = self._hint_slot(start)
        hint = int(self._hints[hslot])
        if used == n_words and MAX_BLOCK_WORDS > n_words >= 2:
            self._hints[hslot] = min(MAX_BLOCK_WORDS, hint * 2)
        elif used * 2 <= n_words and n_words > 1:
            self._hints[hslot] = max(1, hint // 2)
        if not dirty_mask:
            return
        # Coalesce contiguous dirty words into write-back runs.
        run_start = None
        for offset in range(n_words + 1):
            dirty = offset < n_words and dirty_mask & (1 << offset)
            if dirty and run_start is None:
                run_start = offset
            elif not dirty and run_start is not None:
                nbytes = (offset - run_start) * 8
                writebacks.append(((start + run_start) * 8, nbytes))
                self.stats.writeback_bytes += nbytes
                self.useful_wb_bytes += nbytes
                run_start = None

    # ------------------------------------------------------------------
    # Batched path (whole-tile address arrays)
    # ------------------------------------------------------------------
    def access_many(self, addrs: np.ndarray, is_write: bool) -> BatchResult:
        addrs = np.asarray(addrs, dtype=np.int64)
        n = int(addrs.size)
        if n == 0:
            return empty_batch()

        budget = self._budget_words

        words = addrs >> 3
        word_l = words.tolist()
        set_l = ((words >> 3) & self._set_mask).tolist()
        hslot_l = ((words >> REGION_SHIFT) % PREDICTOR_ENTRIES).tolist()

        # Materialise the touched sets.  ``wmap`` maps every resident
        # word to its block slot: the hit check and the fetch-window
        # trimming walk words, not blocks.
        state: dict[int, tuple] = {}
        for s in set(set_l):
            start = self._start[s].tolist()
            nw = self._nw[s].tolist()
            dirty = self._dirty[s].tolist()
            touched = self._touched[s].tolist()
            ord_ = self._ord[s].tolist()
            free, order = split_free_mru(start, ord_)
            wmap: dict[int, int] = {}
            for i in order:
                for w in range(start[i], start[i] + nw[i]):
                    wmap[w] = i
            state[s] = (
                start, nw, dirty, touched, ord_,
                wmap, free, order, [int(self._used_words[s])],
            )

        hints = self._hints.tolist()
        events: list[int] = []
        sizes: list[int] = []
        clk = self._clock
        hits = fill_bytes = evictions = 0
        wb_bytes = useful_fill = useful_wb = 0
        cur_s = -1
        start = nw = dirty = touched = ord_ = wmap = free = order = used = None

        for word, s, hslot in zip(word_l, set_l, hslot_l):
            if s != cur_s:
                (start, nw, dirty, touched, ord_,
                 wmap, free, order, used) = state[s]
                cur_s = s
            i = wmap.get(word)
            if i is not None:
                hits += 1
                bit = 1 << (word - start[i])
                if is_write:
                    dirty[i] |= bit
                touched[i] |= bit
                ord_[i] = clk
                clk += 1
                if order[0] != i:
                    order.remove(i)
                    order.insert(0, i)
                continue

            # Miss: predicted fetch window, trimmed at the nearest
            # resident word on each side (equivalent to trimming at
            # block boundaries: the first resident word below ``word``
            # is necessarily the last word of its block, the first one
            # above necessarily the first word of its block).
            gran = hints[hslot]
            lo = word - (word % gran)
            hi = lo + gran
            for w in range(word - 1, lo - 1, -1):
                if w in wmap:
                    lo = w + 1
                    break
            for w in range(word + 1, hi):
                if w in wmap:
                    hi = w
                    break
            n_words = hi - lo
            footprint = n_words + 1  # the in-array tag word
            nbytes = n_words * 8
            fill_bytes += nbytes
            events.append(lo * 8)
            sizes.append(nbytes)

            while used[0] + footprint > budget:
                v = order.pop()
                v_start = start[v]
                v_nw = nw[v]
                used[0] -= v_nw + 1
                evictions += 1
                # --- retire: predictor training + useful-byte settling
                t_used = touched[v].bit_count()
                useful_fill += t_used
                v_hslot = (v_start >> REGION_SHIFT) % PREDICTOR_ENTRIES
                hint = hints[v_hslot]
                if t_used == v_nw and MAX_BLOCK_WORDS > v_nw >= 2:
                    hints[v_hslot] = min(MAX_BLOCK_WORDS, hint * 2)
                elif t_used * 2 <= v_nw and v_nw > 1:
                    hints[v_hslot] = max(1, hint // 2)
                d = dirty[v]
                if d:
                    # Coalesce contiguous dirty words into runs.
                    run = -1
                    for off in range(v_nw + 1):
                        if off < v_nw and d & (1 << off):
                            if run < 0:
                                run = off
                        elif run >= 0:
                            rbytes = (off - run) * 8
                            events.append(((v_start + run) * 8) | 1)
                            sizes.append(rbytes)
                            wb_bytes += rbytes
                            useful_wb += rbytes
                            run = -1
                for w in range(v_start, v_start + v_nw):
                    del wmap[w]
                start[v] = -1
                nw[v] = 0
                dirty[v] = 0
                touched[v] = 0
                ord_[v] = 0
                insort(free, v)  # keep ascending: pop(0) = lowest index

            slot = free.pop(0)
            bit = 1 << (word - lo)
            start[slot] = lo
            nw[slot] = n_words
            dirty[slot] = bit if is_write else 0
            touched[slot] = bit
            ord_[slot] = clk
            clk += 1
            used[0] += footprint
            for w in range(lo, hi):
                wmap[w] = slot
            order.insert(0, slot)

        # Write the mutated sets back to the arrays.
        for s, (start, nw, dirty, touched, ord_, _, _, _, used) in state.items():
            self._start[s] = start
            self._nw[s] = nw
            self._dirty[s] = dirty
            self._touched[s] = touched
            self._ord[s] = ord_
            self._used_words[s] = used[0]
        self._hints[:] = hints
        self._clock = clk

        misses = n - hits
        stats = self.stats
        stats.accesses += n
        stats.requested_bytes += 8 * n
        stats.hits += hits
        stats.misses += misses
        stats.fill_bytes += fill_bytes
        stats.writeback_bytes += wb_bytes
        stats.evictions += evictions
        self.useful_fill_bytes += 8 * useful_fill
        self.useful_wb_bytes += useful_wb

        return pack_events_sized(n, hits, events, sizes)

    # ------------------------------------------------------------------
    def flush(self) -> list[tuple[int, int]]:
        """Evict every block; returns coalesced dirty write-backs."""
        writebacks: list[tuple[int, int]] = []
        for set_idx in range(self.num_sets):
            occupied = np.flatnonzero(self._start[set_idx] >= 0)
            # MRU-first, matching the original list ordering
            for slot in sorted(
                occupied.tolist(),
                key=lambda i: -int(self._ord[set_idx, i]),
            ):
                self._retire(set_idx, slot, writebacks)
            self._used_words[set_idx] = 0
        self._start.fill(-1)
        self._nw.fill(0)
        self._dirty.fill(0)
        self._touched.fill(0)
        self._ord.fill(0)
        return writebacks

    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        """Expected data capacity: one tag word per average-granularity
        block (~4 words) leaves ~4/5 of the array for data."""
        return self.size_bytes * 4 // 5

    @property
    def tag_overhead_bits(self) -> int:
        """Dedicated (out-of-array) metadata only: the predictor table
        and per-set fill bookkeeping; tags live in the data array."""
        predictor_bits = PREDICTOR_ENTRIES * 4
        per_set_bits = self.num_sets * 16
        return predictor_bits + per_set_bits

    @property
    def in_array_tag_bits(self) -> int:
        """Worst-case in-array tag spend (one word per resident block)."""
        return self._budget_words // 2 * self.num_sets * 64
