"""Graphfire cache (Manocha et al., ToC'23): graph-tuned policies.

Graphfire synergises three policies for graph analytics on a sectored
frame organisation:

- **Fetch**: random accesses fill only the missing 8 B sector; a stream
  detector upgrades sequential walks to full-frame fills.
- **Insertion**: a hashed 2-bit hotness table predicts reuse; frames
  for cold (predicted-dead) addresses are inserted at the LRU end
  (LIP-style) so scans and one-touch vertices leave quickly instead of
  polluting the set, while predicted-hot frames insert at MRU.
- **Replacement**: LRU over the insertion-biased order, with dead-block
  feedback -- a frame evicted without a single reuse cools its hotness
  entry, so mispredicted blocks stop being promoted.

Its per-frame reuse metadata lives alongside the data (the paper's
"store the metadata along with the cache data"), modelled by reserving
one way per set for metadata: an 8-way set keeps 7 data ways, i.e.
87.5 % effective capacity.

Storage layout (batched engine, docs/CACHE_ENGINES.md): per-set frame
state lives in contiguous NumPy arrays -- block id, present/dirty
sector masks, reuse flag, recency stamp.  LIP insertion maps onto the
stamp domain with a second, *decrementing* clock: MRU insertions and
touches take stamps from the incrementing clock, LRU-end insertions
from the decrementing one, so one signed stamp reproduces the original
insertion-biased list order (newest LIP insertion = most LRU) without
list churn.  :meth:`access` walks the arrays one address at a time;
:meth:`access_many` vectorizes block/sector/stream decomposition and
replays the batch in one tight loop over the materialised sets.  Both
paths are event-for-event identical
(``tests/test_batched_equivalence.py``).
"""

from __future__ import annotations

import numpy as np

from repro.cache.base import AccessResult, BaseCache, BatchResult
from repro.cache.batched import (
    BatchedCacheEngine,
    empty_batch,
    pack_events_sized,
    split_free_mru,
)
from repro.utils.units import log2_exact

#: hashed reuse-predictor entries x 2-bit counters
HOTNESS_ENTRIES = 1024
#: hotness threshold for MRU insertion
HOT_THRESHOLD = 2


class GraphfireCache(BatchedCacheEngine, BaseCache):
    """Sectored cache with reuse-predicted insertion and stream fills.

    Args:
        size_bytes: physical array size; one way per set holds metadata,
            so data capacity is ``size * (ways - 1) / ways``.
        ways: physical associativity (data ways = ways - 1).
        addr_bits: physical address width for tag accounting.
    """

    # Replay-memo state layout (see cache/batched.py).  The hotness
    # table and stream cursor are global predictor state: raw-hashed
    # (set-stable) and snapshot alongside the per-set arrays.
    CANONICAL_ARRAYS = ("_block", "_present", "_dirty", "_reused")
    DIGEST_RAW = ("_hotness", "_last_word")
    STATE_ARRAYS = ("_block", "_present", "_dirty", "_reused", "_ord", "_hotness")
    STATE_SCALARS = ("_clock", "_lip", "_last_word")

    def __init__(self, size_bytes: int, ways: int = 8,
                 addr_bits: int = 48) -> None:
        super().__init__()
        if ways < 2:
            raise ValueError("graphfire needs >= 2 ways (one holds metadata)")
        if size_bytes % (ways * 64) != 0:
            raise ValueError("size must be a multiple of ways * 64")
        self.size_bytes = size_bytes
        self.ways = ways
        self.data_ways = ways - 1
        self.addr_bits = addr_bits
        self.num_sets = size_bytes // (ways * 64)
        log2_exact(self.num_sets)
        self._set_mask = self.num_sets - 1
        # Array-backed frame state (block -1 = invalid way).
        shape = (self.num_sets, self.data_ways)
        self._block = np.full(shape, -1, dtype=np.int64)
        self._present = np.zeros(shape, dtype=np.int64)
        self._dirty = np.zeros(shape, dtype=np.int64)
        self._reused = np.zeros(shape, dtype=np.int64)
        #: signed recency: MRU stamps > 0 (incrementing clock), LIP
        #: stamps < 0 (decrementing clock), invalid frames 0.
        self._ord = np.zeros(shape, dtype=np.int64)
        self._clock = 1
        self._lip = 0
        self._hotness = np.zeros(HOTNESS_ENTRIES, dtype=np.int64)
        self._last_word = -2

    # ------------------------------------------------------------------
    def access(self, addr: int, is_write: bool) -> AccessResult:
        """One 8 B access with stream-aware fill and LIP insertion."""
        stats = self.stats
        stats.accesses += 1
        stats.requested_bytes += 8
        word = addr >> 3
        block = word >> 3
        sector_bit = 1 << (word & 7)
        set_idx = block & self._set_mask
        streaming = word == self._last_word + 1
        self._last_word = word
        slot = self._hotness_slot(block)
        hotness = self._hotness

        block_row = self._block[set_idx].tolist()
        for w, b in enumerate(block_row):
            if b == block:
                self._reused[set_idx, w] = 1
                hotness[slot] = min(3, int(hotness[slot]) + 1)
                if int(self._present[set_idx, w]) & sector_bit:
                    stats.hits += 1
                    if is_write:
                        self._dirty[set_idx, w] |= sector_bit
                    self._ord[set_idx, w] = self._clock
                    self._clock += 1
                    return AccessResult(hit=True)
                # Frame present, sector missing: sector fill, no eviction.
                stats.misses += 1
                fill_mask = self._fill_mask(
                    sector_bit, streaming, int(self._present[set_idx, w])
                )
                self._present[set_idx, w] |= fill_mask
                if is_write:
                    self._dirty[set_idx, w] |= sector_bit
                self._ord[set_idx, w] = self._clock
                self._clock += 1
                nbytes = 8 * fill_mask.bit_count()
                stats.fill_bytes += nbytes
                return AccessResult(
                    hit=False,
                    fill_addr=addr & ~0x7,
                    fill_bytes=nbytes,
                    writebacks=None,
                )

        stats.misses += 1
        writebacks = None
        free = [w for w, b in enumerate(block_row) if b == -1]
        if not free:
            ord_row = self._ord[set_idx]
            w = min(range(self.data_ways), key=lambda i: ord_row[i])
            stats.evictions += 1
            if not self._reused[set_idx, w]:
                # Dead-block feedback: evicted untouched -> cool it.
                vslot = self._hotness_slot(int(block_row[w]))
                hotness[vslot] = max(0, int(hotness[vslot]) - 1)
            writebacks = self._retire(set_idx, w)
        else:
            w = free[0]
        fill_mask = self._fill_mask(sector_bit, streaming, 0)
        self._block[set_idx, w] = block
        self._present[set_idx, w] = fill_mask
        self._dirty[set_idx, w] = sector_bit if is_write else 0
        self._reused[set_idx, w] = 0
        if hotness[slot] >= HOT_THRESHOLD:
            self._ord[set_idx, w] = self._clock
            self._clock += 1
        else:
            # LIP: cold frames enter at the LRU end of the stamp order.
            self._lip -= 1
            self._ord[set_idx, w] = self._lip
        hotness[slot] = min(3, int(hotness[slot]) + 1)
        nbytes = 8 * fill_mask.bit_count()
        stats.fill_bytes += nbytes
        return AccessResult(
            hit=False,
            fill_addr=addr & ~0x7,
            fill_bytes=nbytes,
            writebacks=writebacks,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _fill_mask(sector_bit: int, streaming: bool, present: int) -> int:
        if streaming:
            return 0xFF & ~present
        return sector_bit

    def _hotness_slot(self, block: int) -> int:
        return (block ^ (block >> 10)) % HOTNESS_ENTRIES

    def _retire(self, set_idx: int, way: int) -> list[tuple[int, int]] | None:
        block = int(self._block[set_idx, way])
        dirty_mask = int(self._dirty[set_idx, way])
        if not dirty_mask:
            return None
        writebacks = []
        for offset in range(8):
            if dirty_mask & (1 << offset):
                self.stats.writeback_bytes += 8
                writebacks.append(((block << 6) + offset * 8, 8))
        return writebacks

    # ------------------------------------------------------------------
    # Batched path (whole-tile address arrays)
    # ------------------------------------------------------------------
    def access_many(self, addrs: np.ndarray, is_write: bool) -> BatchResult:
        addrs = np.asarray(addrs, dtype=np.int64)
        n = int(addrs.size)
        if n == 0:
            return empty_batch()

        words = addrs >> 3
        blocks = words >> 3
        bit_a = np.left_shift(1, words & 7)
        # Stream detection is a global property of the access order:
        # one vectorized diff covers the whole batch, seeded by the
        # cross-batch cursor.
        streaming = np.empty(n, dtype=bool)
        streaming[0] = int(words[0]) == self._last_word + 1
        np.equal(words[1:] - words[:-1], 1, out=streaming[1:])
        hot_slot_a = (blocks ^ (blocks >> 10)) % HOTNESS_ENTRIES

        word_l = words.tolist()
        blk_l = blocks.tolist()
        set_l = (blocks & self._set_mask).tolist()
        bit_l = bit_a.tolist()
        fill_l = (addrs & ~0x7).tolist()
        stream_l = streaming.tolist()
        hslot_l = hot_slot_a.tolist()

        # Materialise the touched sets; ``order`` is MRU-first (signed
        # stamps: LIP entries trail), so the LRU victim is its tail.
        state: dict[int, tuple] = {}
        for s in set(set_l):
            blk = self._block[s].tolist()
            present = self._present[s].tolist()
            dirty = self._dirty[s].tolist()
            reused = self._reused[s].tolist()
            ord_ = self._ord[s].tolist()
            free, order = split_free_mru(blk, ord_)
            bmap = {blk[w]: w for w in order}
            state[s] = (blk, present, dirty, reused, ord_, bmap, free, order)

        hot = self._hotness.tolist()
        events: list[int] = []
        sizes: list[int] = []
        clk = self._clock
        lip = self._lip
        hits = fill_bytes = evictions = wb_events = 0
        cur_s = -1
        blk = present = dirty = reused = ord_ = bmap = free = order = None

        for word, b, s, bit, fill, stream, hslot in zip(
            word_l, blk_l, set_l, bit_l, fill_l, stream_l, hslot_l
        ):
            if s != cur_s:
                blk, present, dirty, reused, ord_, bmap, free, order = state[s]
                cur_s = s
            w = bmap.get(b)
            if w is not None:
                reused[w] = 1
                h = hot[hslot]
                if h < 3:
                    hot[hslot] = h + 1
                if present[w] & bit:
                    hits += 1
                    if is_write:
                        dirty[w] |= bit
                else:
                    # Frame present, sector missing: sector fill only.
                    fill_mask = (0xFF & ~present[w]) if stream else bit
                    present[w] |= fill_mask
                    if is_write:
                        dirty[w] |= bit
                    nbytes = 8 * fill_mask.bit_count()
                    fill_bytes += nbytes
                    events.append(fill)
                    sizes.append(nbytes)
                ord_[w] = clk
                clk += 1
                if order[0] != w:
                    order.remove(w)
                    order.insert(0, w)
                continue
            # Frame miss: the fill precedes the victim's write-backs.
            fill_mask = 0xFF if stream else bit
            nbytes = 8 * fill_mask.bit_count()
            fill_bytes += nbytes
            events.append(fill)
            sizes.append(nbytes)
            if free:
                w = free.pop(0)
            else:
                w = order.pop()
                evictions += 1
                if not reused[w]:
                    vb = blk[w]
                    vslot = (vb ^ (vb >> 10)) % HOTNESS_ENTRIES
                    if hot[vslot] > 0:
                        hot[vslot] -= 1
                d = dirty[w]
                if d:
                    base = blk[w] << 6
                    o = 0
                    while d:
                        if d & 1:
                            events.append((base + o * 8) | 1)
                            sizes.append(8)
                            wb_events += 1
                        d >>= 1
                        o += 1
                del bmap[blk[w]]
            blk[w] = b
            present[w] = fill_mask
            dirty[w] = bit if is_write else 0
            reused[w] = 0
            if hot[hslot] >= HOT_THRESHOLD:
                ord_[w] = clk
                clk += 1
                order.insert(0, w)
            else:
                lip -= 1
                ord_[w] = lip
                order.append(w)
            h = hot[hslot]
            if h < 3:
                hot[hslot] = h + 1
            bmap[b] = w

        # Write the mutated sets back to the arrays.
        for s, (blk, present, dirty, reused, ord_, _, _, _) in state.items():
            self._block[s] = blk
            self._present[s] = present
            self._dirty[s] = dirty
            self._reused[s] = reused
            self._ord[s] = ord_
        self._hotness[:] = hot
        self._clock = clk
        self._lip = lip
        self._last_word = int(words[-1])

        misses = n - hits
        stats = self.stats
        stats.accesses += n
        stats.requested_bytes += 8 * n
        stats.hits += hits
        stats.misses += misses
        stats.fill_bytes += fill_bytes
        stats.writeback_bytes += 8 * wb_events
        stats.evictions += evictions

        return pack_events_sized(n, hits, events, sizes)

    # ------------------------------------------------------------------
    def _mru_order(self, set_idx: int) -> list[int]:
        """Way indices in the original insertion-biased list order."""
        valid = [
            w for w in range(self.data_ways) if self._block[set_idx, w] != -1
        ]
        return sorted(valid, key=lambda w: -int(self._ord[set_idx, w]))

    @property
    def _sets(self) -> list[list[list]]:
        """Read-only frame views per set, MRU-first (back-compat)."""
        return [
            [
                [
                    int(self._block[s, w]),
                    int(self._present[s, w]),
                    int(self._dirty[s, w]),
                    bool(self._reused[s, w]),
                ]
                for w in self._mru_order(s)
            ]
            for s in range(self.num_sets)
        ]

    def flush(self) -> list[tuple[int, int]]:
        """Evict every frame; returns per-sector dirty write-backs."""
        writebacks = []
        for set_idx in range(self.num_sets):
            for w in self._mru_order(set_idx):
                retired = self._retire(set_idx, w)
                if retired:
                    writebacks.extend(retired)
        self._block.fill(-1)
        self._present.fill(0)
        self._dirty.fill(0)
        self._reused.fill(0)
        self._ord.fill(0)
        return writebacks

    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        """Data capacity after the reserved metadata way."""
        return self.size_bytes * self.data_ways // self.ways

    @property
    def tag_overhead_bits(self) -> int:
        """Frame tags plus the dedicated hotness table (the in-array
        reuse metadata is charged as the reserved way instead)."""
        set_bits = log2_exact(self.num_sets)
        tag_bits = self.addr_bits - set_bits - 6
        frames = self.num_sets * self.data_ways
        return frames * (tag_bits + 8) + HOTNESS_ENTRIES * 2
