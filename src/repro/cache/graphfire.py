"""Graphfire cache (Manocha et al., ToC'23): graph-tuned policies.

Graphfire synergises three policies for graph analytics on a sectored
frame organisation:

- **Fetch**: random accesses fill only the missing 8 B sector; a stream
  detector upgrades sequential walks to full-frame fills.
- **Insertion**: a hashed 2-bit hotness table predicts reuse; frames
  for cold (predicted-dead) addresses are inserted at the LRU end
  (LIP-style) so scans and one-touch vertices leave quickly instead of
  polluting the set, while predicted-hot frames insert at MRU.
- **Replacement**: LRU over the insertion-biased order, with dead-block
  feedback -- a frame evicted without a single reuse cools its hotness
  entry, so mispredicted blocks stop being promoted.

Its per-frame reuse metadata lives alongside the data (the paper's
"store the metadata along with the cache data"), modelled by reserving
one way per set for metadata: an 8-way set keeps 7 data ways, i.e.
87.5 % effective capacity.
"""

from __future__ import annotations

from repro.cache.base import AccessResult, BaseCache
from repro.utils.units import log2_exact

#: hashed reuse-predictor entries x 2-bit counters
HOTNESS_ENTRIES = 1024
#: hotness threshold for MRU insertion
HOT_THRESHOLD = 2

# frame fields
_BLOCK, _PRESENT, _DIRTY, _REUSED = range(4)


class GraphfireCache(BaseCache):
    """Sectored cache with reuse-predicted insertion and stream fills.

    Args:
        size_bytes: physical array size; one way per set holds metadata,
            so data capacity is ``size * (ways - 1) / ways``.
        ways: physical associativity (data ways = ways - 1).
        addr_bits: physical address width for tag accounting.
    """

    def __init__(self, size_bytes: int, ways: int = 8,
                 addr_bits: int = 48) -> None:
        super().__init__()
        if ways < 2:
            raise ValueError("graphfire needs >= 2 ways (one holds metadata)")
        if size_bytes % (ways * 64) != 0:
            raise ValueError("size must be a multiple of ways * 64")
        self.size_bytes = size_bytes
        self.ways = ways
        self.data_ways = ways - 1
        self.addr_bits = addr_bits
        self.num_sets = size_bytes // (ways * 64)
        log2_exact(self.num_sets)
        self._set_mask = self.num_sets - 1
        # Per set: MRU-first [block, present_mask, dirty_mask, reused].
        self._sets: list[list[list]] = [[] for _ in range(self.num_sets)]
        self._hotness = [0] * HOTNESS_ENTRIES
        self._last_word = -2

    # ------------------------------------------------------------------
    def access(self, addr: int, is_write: bool) -> AccessResult:
        """One 8 B access with stream-aware fill and LIP insertion."""
        stats = self.stats
        stats.accesses += 1
        stats.requested_bytes += 8
        word = addr >> 3
        block = word >> 3
        sector_bit = 1 << (word & 7)
        set_idx = block & self._set_mask
        frames = self._sets[set_idx]
        streaming = word == self._last_word + 1
        self._last_word = word
        slot = self._hotness_slot(block)

        for i, frame in enumerate(frames):
            if frame[_BLOCK] == block:
                frame[_REUSED] = True
                self._hotness[slot] = min(3, self._hotness[slot] + 1)
                if frame[_PRESENT] & sector_bit:
                    stats.hits += 1
                    if is_write:
                        frame[_DIRTY] |= sector_bit
                    if i:
                        frames.insert(0, frames.pop(i))
                    return AccessResult(hit=True)
                # Frame present, sector missing: sector fill, no eviction.
                stats.misses += 1
                fill_mask = self._fill_mask(sector_bit, streaming,
                                            frame[_PRESENT])
                frame[_PRESENT] |= fill_mask
                if is_write:
                    frame[_DIRTY] |= sector_bit
                if i:
                    frames.insert(0, frames.pop(i))
                nbytes = 8 * bin(fill_mask).count("1")
                stats.fill_bytes += nbytes
                return AccessResult(
                    hit=False,
                    fill_addr=addr & ~0x7,
                    fill_bytes=nbytes,
                    writebacks=None,
                )

        stats.misses += 1
        writebacks = None
        if len(frames) >= self.data_ways:
            victim = frames.pop()
            stats.evictions += 1
            if not victim[_REUSED]:
                # Dead-block feedback: evicted untouched -> cool it.
                vslot = self._hotness_slot(victim[_BLOCK])
                self._hotness[vslot] = max(0, self._hotness[vslot] - 1)
            writebacks = self._retire(victim)
        fill_mask = self._fill_mask(sector_bit, streaming, 0)
        frame = [block, fill_mask, sector_bit if is_write else 0, False]
        if self._hotness[slot] >= HOT_THRESHOLD:
            frames.insert(0, frame)
        else:
            frames.append(frame)  # LIP: cold frames enter at LRU
        self._hotness[slot] = min(3, self._hotness[slot] + 1)
        nbytes = 8 * bin(fill_mask).count("1")
        stats.fill_bytes += nbytes
        return AccessResult(
            hit=False,
            fill_addr=addr & ~0x7,
            fill_bytes=nbytes,
            writebacks=writebacks,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _fill_mask(sector_bit: int, streaming: bool, present: int) -> int:
        if streaming:
            return 0xFF & ~present
        return sector_bit

    def _hotness_slot(self, block: int) -> int:
        return (block ^ (block >> 10)) % HOTNESS_ENTRIES

    def _retire(self, frame: list) -> list[tuple[int, int]] | None:
        block, _, dirty_mask = frame[_BLOCK], frame[_PRESENT], frame[_DIRTY]
        if not dirty_mask:
            return None
        writebacks = []
        for offset in range(8):
            if dirty_mask & (1 << offset):
                self.stats.writeback_bytes += 8
                writebacks.append(((block << 6) + offset * 8, 8))
        return writebacks

    def flush(self) -> list[tuple[int, int]]:
        """Evict every frame; returns per-sector dirty write-backs."""
        writebacks = []
        for frames in self._sets:
            for frame in frames:
                retired = self._retire(frame)
                if retired:
                    writebacks.extend(retired)
            frames.clear()
        return writebacks

    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        """Data capacity after the reserved metadata way."""
        return self.size_bytes * self.data_ways // self.ways

    @property
    def tag_overhead_bits(self) -> int:
        """Frame tags plus the dedicated hotness table (the in-array
        reuse metadata is charged as the reserved way instead)."""
        set_bits = log2_exact(self.num_sets)
        tag_bits = self.addr_bits - set_bits - 6
        frames = self.num_sets * self.data_ways
        return frames * (tag_bits + 8) + HOTNESS_ENTRIES * 2
