"""Conventional set-associative write-back cache with 64 B lines.

The baseline on-chip memory of GraphDyns (Cache): every miss fetches a
full burst even when the program needs 8 bytes -- the bandwidth waste the
motivational experiment quantifies (Fig. 3).  To reproduce that figure's
useful/unuseful split, each line tracks which 8 B words were actually
touched (and which are dirty); the counts are settled at eviction time.

Storage layout (batched engine, PERFORMANCE.md): per-set line state
lives in contiguous NumPy arrays (block id, dirty mask, touched mask,
recency stamp) instead of per-line Python lists.  :meth:`access` walks
the arrays one address at a time; :meth:`access_many` compresses the
batch into runs of consecutive same-block accesses (after the first
access of a run the line is resident and MRU, so the rest are pure
mask updates), materialises the touched sets into flat structures, and
replays the runs in one tight loop.
"""

from __future__ import annotations

import numpy as np

from repro.cache.base import AccessResult, BaseCache, BatchResult
from repro.cache.batched import (
    BatchedCacheEngine,
    empty_batch,
    pack_events,
    split_free_mru,
)
from repro.utils.units import log2_exact


class ConventionalCache(BatchedCacheEngine, BaseCache):
    """LRU set-associative cache with burst-sized lines.

    Args:
        size_bytes: total data capacity.
        ways: associativity.
        line_bytes: line (and fill/write-back) granularity.
        addr_bits: modelled physical address width (tag accounting).
    """

    # Replay-memo state layout (see cache/batched.py).
    CANONICAL_ARRAYS = ("_block", "_dirty", "_touched")
    STATE_ARRAYS = ("_block", "_dirty", "_touched", "_ord")
    STATE_SCALARS = ("_clock",)
    EXTRA_COUNTERS = ("useful_fill_bytes", "useful_wb_bytes")

    def __init__(
        self,
        size_bytes: int,
        ways: int = 8,
        line_bytes: int = 64,
        addr_bits: int = 48,
    ) -> None:
        super().__init__()
        if size_bytes % (ways * line_bytes) != 0:
            raise ValueError("size must be a multiple of ways * line size")
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.addr_bits = addr_bits
        self.num_sets = size_bytes // (ways * line_bytes)
        self._line_shift = log2_exact(line_bytes)
        self._set_mask = self.num_sets - 1
        self._words_per_line = max(1, line_bytes // 8)
        log2_exact(self.num_sets)
        if self._words_per_line > 63:
            raise ValueError(
                "words_per_line > 63 exceeds the int64 touched-mask width"
            )
        # Array-backed line state (block -1 = invalid way).
        shape = (self.num_sets, ways)
        self._block = np.full(shape, -1, dtype=np.int64)
        self._dirty = np.zeros(shape, dtype=np.int64)
        self._touched = np.zeros(shape, dtype=np.int64)
        self._ord = np.zeros(shape, dtype=np.int64)
        self._clock = 1
        #: bytes of fetched lines actually consumed before eviction and
        #: bytes of written-back lines actually dirty (Fig. 3 accounting)
        self.useful_fill_bytes = 0
        self.useful_wb_bytes = 0

    # ------------------------------------------------------------------
    def access(self, addr: int, is_write: bool) -> AccessResult:
        stats = self.stats
        stats.accesses += 1
        stats.requested_bytes += 8
        block = addr >> self._line_shift
        set_idx = block & self._set_mask
        word_bit = 1 << ((addr >> 3) & (self._words_per_line - 1))
        block_row = self._block[set_idx].tolist()
        for w, b in enumerate(block_row):
            if b == block:
                stats.hits += 1
                if is_write:
                    self._dirty[set_idx, w] |= word_bit
                self._touched[set_idx, w] |= word_bit
                self._ord[set_idx, w] = self._clock
                self._clock += 1
                return AccessResult(hit=True)

        stats.misses += 1
        stats.fill_bytes += self.line_bytes
        writebacks = None
        free = [w for w, b in enumerate(block_row) if b == -1]
        if free:
            w = free[0]
        else:
            ord_row = self._ord[set_idx]
            w = min(range(self.ways), key=lambda i: ord_row[i])
            stats.evictions += 1
            writebacks = self._retire(set_idx, w)
        self._block[set_idx, w] = block
        self._dirty[set_idx, w] = word_bit if is_write else 0
        self._touched[set_idx, w] = word_bit
        self._ord[set_idx, w] = self._clock
        self._clock += 1
        return AccessResult(
            hit=False,
            fill_addr=block << self._line_shift,
            fill_bytes=self.line_bytes,
            writebacks=writebacks,
        )

    def _retire(self, set_idx: int, way: int) -> list[tuple[int, int]] | None:
        """Settle useful-byte accounting; return the write-back if dirty."""
        dirty = int(self._dirty[set_idx, way])
        touched = int(self._touched[set_idx, way])
        self.useful_fill_bytes += 8 * touched.bit_count()
        if not dirty:
            return None
        self.useful_wb_bytes += 8 * dirty.bit_count()
        self.stats.writeback_bytes += self.line_bytes
        return [(int(self._block[set_idx, way]) << self._line_shift, self.line_bytes)]

    # ------------------------------------------------------------------
    # Batched path (whole-tile address arrays)
    # ------------------------------------------------------------------
    def access_many(self, addrs: np.ndarray, is_write: bool) -> BatchResult:
        addrs = np.asarray(addrs, dtype=np.int64)
        n = int(addrs.size)
        if n == 0:
            return empty_batch()

        shift = self._line_shift
        line_bytes = self.line_bytes

        blocks = addrs >> shift
        word_bits = np.left_shift(
            1, (addrs >> 3) & (self._words_per_line - 1)
        )
        # Compress runs of consecutive same-block accesses: after the
        # first access the line is resident and MRU, the rest only OR
        # word bits into the masks.
        change = np.empty(n, dtype=bool)
        change[0] = True
        np.not_equal(blocks[1:], blocks[:-1], out=change[1:])
        starts = np.flatnonzero(change)
        run_len = np.diff(np.append(starts, n))
        run_bits = np.bitwise_or.reduceat(word_bits, starts)
        run_blocks = blocks[starts]

        rb_l = run_blocks.tolist()
        rs_l = (run_blocks & self._set_mask).tolist()
        bits_l = run_bits.tolist()
        len_l = run_len.tolist()
        fill_l = (run_blocks << shift).tolist()

        # Materialise the touched sets into flat Python structures; the
        # per-set ``order`` list is MRU-first so the LRU victim is its
        # tail (no per-miss min() scan).
        state: dict[int, tuple] = {}
        for s in set(rs_l):
            blk = self._block[s].tolist()
            dirty = self._dirty[s].tolist()
            touched = self._touched[s].tolist()
            ord_ = self._ord[s].tolist()
            free, order = split_free_mru(blk, ord_)
            bmap = {blk[w]: w for w in order}
            state[s] = (blk, dirty, touched, ord_, bmap, free, order)

        events: list[int] = []
        clk = self._clock
        hits = misses = evictions = wb_events = 0
        useful_fill = useful_wb = 0
        cur_s = -1
        blk = dirty = touched = ord_ = bmap = free = order = None

        for b, s, bits, length, fill in zip(rb_l, rs_l, bits_l, len_l, fill_l):
            if s != cur_s:
                blk, dirty, touched, ord_, bmap, free, order = state[s]
                cur_s = s
            w = bmap.get(b)
            if w is not None:
                hits += length
                if is_write:
                    dirty[w] |= bits
                touched[w] |= bits
                ord_[w] = clk
                clk += 1
                if order[0] != w:
                    order.remove(w)
                    order.insert(0, w)
                continue
            hits += length - 1
            misses += 1
            events.append(fill)
            if free:
                w = free.pop(0)
            else:
                w = order.pop()
                evictions += 1
                useful_fill += touched[w].bit_count()
                d = dirty[w]
                if d:
                    useful_wb += d.bit_count()
                    wb_events += 1
                    events.append((blk[w] << shift) | 1)
                del bmap[blk[w]]
            blk[w] = b
            dirty[w] = bits if is_write else 0
            touched[w] = bits
            ord_[w] = clk
            clk += 1
            bmap[b] = w
            order.insert(0, w)

        # Write the mutated sets back to the arrays.
        for s, (blk, dirty, touched, ord_, _, _, _) in state.items():
            self._block[s] = blk
            self._dirty[s] = dirty
            self._touched[s] = touched
            self._ord[s] = ord_
        self._clock = clk

        stats = self.stats
        stats.accesses += n
        stats.requested_bytes += 8 * n
        stats.hits += hits
        stats.misses += misses
        stats.fill_bytes += misses * line_bytes
        stats.writeback_bytes += wb_events * line_bytes
        stats.evictions += evictions
        self.useful_fill_bytes += 8 * useful_fill
        self.useful_wb_bytes += 8 * useful_wb

        return pack_events(n, hits, events, line_bytes)

    # ------------------------------------------------------------------
    def flush(self) -> list[tuple[int, int]]:
        writebacks = []
        for set_idx in range(self.num_sets):
            valid = [
                w for w in range(self.ways) if self._block[set_idx, w] != -1
            ]
            # MRU-first, matching the original list ordering
            for w in sorted(valid, key=lambda i: -int(self._ord[set_idx, i])):
                wb = self._retire(set_idx, w)
                if wb:
                    writebacks.extend(wb)
        self._block.fill(-1)
        self._dirty.fill(0)
        self._touched.fill(0)
        self._ord.fill(0)
        return writebacks

    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        return self.size_bytes

    @property
    def tag_overhead_bits(self) -> int:
        set_bits = log2_exact(self.num_sets)
        tag_bits = self.addr_bits - set_bits - self._line_shift
        lines = self.num_sets * self.ways
        # The paper's tag accounting (Sec. V-A) excludes valid/dirty state.
        return lines * tag_bits
