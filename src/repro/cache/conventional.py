"""Conventional set-associative write-back cache with 64 B lines.

The baseline on-chip memory of GraphDyns (Cache): every miss fetches a
full burst even when the program needs 8 bytes -- the bandwidth waste the
motivational experiment quantifies (Fig. 3).  To reproduce that figure's
useful/unuseful split, each line tracks which 8 B words were actually
touched (and which are dirty); the counts are settled at eviction time.
"""

from __future__ import annotations

from repro.cache.base import AccessResult, BaseCache
from repro.utils.units import log2_exact


class ConventionalCache(BaseCache):
    """LRU set-associative cache with burst-sized lines.

    Args:
        size_bytes: total data capacity.
        ways: associativity.
        line_bytes: line (and fill/write-back) granularity.
        addr_bits: modelled physical address width (tag accounting).
    """

    def __init__(
        self,
        size_bytes: int,
        ways: int = 8,
        line_bytes: int = 64,
        addr_bits: int = 48,
    ) -> None:
        super().__init__()
        if size_bytes % (ways * line_bytes) != 0:
            raise ValueError("size must be a multiple of ways * line size")
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.addr_bits = addr_bits
        self.num_sets = size_bytes // (ways * line_bytes)
        self._line_shift = log2_exact(line_bytes)
        self._set_mask = self.num_sets - 1
        self._words_per_line = max(1, line_bytes // 8)
        log2_exact(self.num_sets)
        # Per set: MRU-first list of [block, dirty_mask, touched_mask].
        self._sets: list[list[list]] = [[] for _ in range(self.num_sets)]
        #: bytes of fetched lines actually consumed before eviction and
        #: bytes of written-back lines actually dirty (Fig. 3 accounting)
        self.useful_fill_bytes = 0
        self.useful_wb_bytes = 0

    # ------------------------------------------------------------------
    def access(self, addr: int, is_write: bool) -> AccessResult:
        stats = self.stats
        stats.accesses += 1
        stats.requested_bytes += 8
        block = addr >> self._line_shift
        set_idx = block & self._set_mask
        word_bit = 1 << ((addr >> 3) & (self._words_per_line - 1))
        ways = self._sets[set_idx]
        for i, entry in enumerate(ways):
            if entry[0] == block:
                stats.hits += 1
                if is_write:
                    entry[1] |= word_bit
                entry[2] |= word_bit
                if i:
                    ways.insert(0, ways.pop(i))
                return AccessResult(hit=True)

        stats.misses += 1
        stats.fill_bytes += self.line_bytes
        writebacks = None
        if len(ways) >= self.ways:
            victim = ways.pop()
            stats.evictions += 1
            writebacks = self._retire(victim)
        ways.insert(0, [block, word_bit if is_write else 0, word_bit])
        return AccessResult(
            hit=False,
            fill_addr=block << self._line_shift,
            fill_bytes=self.line_bytes,
            writebacks=writebacks,
        )

    def _retire(self, entry: list) -> list[tuple[int, int]] | None:
        """Settle useful-byte accounting; return the write-back if dirty."""
        block, dirty_mask, touched_mask = entry
        self.useful_fill_bytes += 8 * bin(touched_mask).count("1")
        if not dirty_mask:
            return None
        self.useful_wb_bytes += 8 * bin(dirty_mask).count("1")
        self.stats.writeback_bytes += self.line_bytes
        return [(block << self._line_shift, self.line_bytes)]

    def flush(self) -> list[tuple[int, int]]:
        writebacks = []
        for ways in self._sets:
            for entry in ways:
                wb = self._retire(entry)
                if wb:
                    writebacks.extend(wb)
            ways.clear()
        return writebacks

    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        return self.size_bytes

    @property
    def tag_overhead_bits(self) -> int:
        set_bits = log2_exact(self.num_sets)
        tag_bits = self.addr_bits - set_bits - self._line_shift
        lines = self.num_sets * self.ways
        # The paper's tag accounting (Sec. V-A) excludes valid/dirty state.
        return lines * tag_bits
