"""Sectored cache (Liptay, IBM S/360 Model 85): one tag per line,
per-sector valid/dirty bits.

The oldest fine-grained design in the Fig. 11 sweep.  A line-granularity
tag covers ``line_bytes`` of address space, but data moves at sector
(8 B) granularity: a miss fetches only the requested sector and dirty
sectors write back individually.  On top of Piccolo-FIM those sector
fills can be gathered, which is why the paper includes it -- and its
weakness is exactly what Sec. V-A / Fig. 6 (left) show: a single
resident sector still claims a whole line of capacity, so sparse graph
accesses waste most of the array and the design can land *below* the
conventional baseline.

Storage layout (batched engine, docs/CACHE_ENGINES.md): per-set line
state lives in contiguous NumPy arrays -- block id, per-sector
valid/dirty masks, recency stamp -- rather than per-line Python lists.
:meth:`access` walks the arrays one address at a time;
:meth:`access_many` vectorizes the address decomposition for the whole
batch, materialises the touched sets into flat structures (block->way
dict, MRU-first order list), and replays the batch in one tight loop.
Both paths are event-for-event identical (enforced by
``tests/test_batched_equivalence.py``).
"""

from __future__ import annotations

import numpy as np

from repro.cache.base import AccessResult, BaseCache, BatchResult
from repro.cache.batched import (
    BatchedCacheEngine,
    empty_batch,
    pack_events,
    split_free_mru,
)
from repro.utils.units import log2_exact


class SectoredCache(BatchedCacheEngine, BaseCache):
    """LRU sectored cache: line-granularity tags, sector-granularity data."""

    # Replay-memo state layout (see cache/batched.py).
    CANONICAL_ARRAYS = ("_block", "_valid", "_dirty")
    STATE_ARRAYS = ("_block", "_valid", "_dirty", "_ord")
    STATE_SCALARS = ("_clock",)

    def __init__(
        self,
        size_bytes: int,
        ways: int = 8,
        line_bytes: int = 64,
        sector_bytes: int = 8,
        addr_bits: int = 48,
    ) -> None:
        super().__init__()
        if line_bytes % sector_bytes != 0:
            raise ValueError("line must be a multiple of the sector size")
        if size_bytes % (ways * line_bytes) != 0:
            raise ValueError("size must be a multiple of ways * line size")
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.sector_bytes = sector_bytes
        self.sectors_per_line = line_bytes // sector_bytes
        self.addr_bits = addr_bits
        self.num_sets = size_bytes // (ways * line_bytes)
        log2_exact(self.num_sets)
        self._line_shift = log2_exact(line_bytes)
        self._sector_shift = log2_exact(sector_bytes)
        self._set_mask = self.num_sets - 1
        if self.sectors_per_line > 63:
            raise ValueError(
                "sectors_per_line > 63 exceeds the int64 valid-mask width"
            )
        # Array-backed line state (block -1 = invalid way).
        shape = (self.num_sets, ways)
        self._block = np.full(shape, -1, dtype=np.int64)
        self._valid = np.zeros(shape, dtype=np.int64)
        self._dirty = np.zeros(shape, dtype=np.int64)
        self._ord = np.zeros(shape, dtype=np.int64)
        self._clock = 1

    # ------------------------------------------------------------------
    def access(self, addr: int, is_write: bool) -> AccessResult:
        stats = self.stats
        stats.accesses += 1
        stats.requested_bytes += self.sector_bytes
        block = addr >> self._line_shift
        set_idx = block & self._set_mask
        sector = (addr >> self._sector_shift) & (self.sectors_per_line - 1)
        sector_bit = 1 << sector
        block_row = self._block[set_idx].tolist()

        for w, b in enumerate(block_row):
            if b == block:
                if int(self._valid[set_idx, w]) & sector_bit:
                    stats.hits += 1
                    if is_write:
                        self._dirty[set_idx, w] |= sector_bit
                    self._touch(set_idx, w)
                    return AccessResult(hit=True)
                # Line present, sector invalid: fetch just the sector.
                stats.misses += 1
                stats.fill_bytes += self.sector_bytes
                self._valid[set_idx, w] |= sector_bit
                if is_write:
                    self._dirty[set_idx, w] |= sector_bit
                self._touch(set_idx, w)
                return AccessResult(
                    hit=False,
                    fill_addr=(block << self._line_shift)
                    | (sector << self._sector_shift),
                    fill_bytes=self.sector_bytes,
                )

        # Line miss: allocate a line, fetch only the requested sector.
        stats.misses += 1
        stats.fill_bytes += self.sector_bytes
        writebacks = None
        free = [w for w, b in enumerate(block_row) if b == -1]
        if free:
            w = free[0]
        else:
            ord_row = self._ord[set_idx]
            w = min(range(self.ways), key=lambda i: ord_row[i])
            stats.evictions += 1
            writebacks = self._dirty_sectors(set_idx, w)
        self._block[set_idx, w] = block
        self._valid[set_idx, w] = sector_bit
        self._dirty[set_idx, w] = sector_bit if is_write else 0
        self._touch(set_idx, w)
        return AccessResult(
            hit=False,
            fill_addr=(block << self._line_shift) | (sector << self._sector_shift),
            fill_bytes=self.sector_bytes,
            writebacks=writebacks,
        )

    def _touch(self, set_idx: int, way: int) -> None:
        self._ord[set_idx, way] = self._clock
        self._clock += 1

    def _dirty_sectors(self, set_idx: int, way: int) -> list[tuple[int, int]] | None:
        dirty = int(self._dirty[set_idx, way])
        if not dirty:
            return None
        base = int(self._block[set_idx, way]) << self._line_shift
        writebacks = []
        for s in range(self.sectors_per_line):
            if dirty & (1 << s):
                writebacks.append(
                    (base | (s << self._sector_shift), self.sector_bytes)
                )
        self.stats.writeback_bytes += len(writebacks) * self.sector_bytes
        return writebacks

    # ------------------------------------------------------------------
    # Batched path (whole-tile address arrays)
    # ------------------------------------------------------------------
    def access_many(self, addrs: np.ndarray, is_write: bool) -> BatchResult:
        addrs = np.asarray(addrs, dtype=np.int64)
        n = int(addrs.size)
        if n == 0:
            return empty_batch()

        line_shift = self._line_shift
        sector_shift = self._sector_shift
        sector_bytes = self.sector_bytes

        blocks = addrs >> line_shift
        sector_a = (addrs >> sector_shift) & (self.sectors_per_line - 1)
        bit_a = np.left_shift(1, sector_a)
        fill_a = (blocks << line_shift) | (sector_a << sector_shift)

        blk_l = blocks.tolist()
        set_l = (blocks & self._set_mask).tolist()
        bit_l = bit_a.tolist()
        fill_l = fill_a.tolist()

        # Materialise the touched sets; ``order`` is MRU-first so the
        # LRU victim is its tail (no per-miss min() scan).
        state: dict[int, tuple] = {}
        for s in set(set_l):
            blk = self._block[s].tolist()
            valid = self._valid[s].tolist()
            dirty = self._dirty[s].tolist()
            ord_ = self._ord[s].tolist()
            free, order = split_free_mru(blk, ord_)
            bmap = {blk[w]: w for w in order}
            state[s] = (blk, valid, dirty, ord_, bmap, free, order)

        events: list[int] = []
        clk = self._clock
        hits = misses = evictions = wb_events = 0
        cur_s = -1
        blk = valid = dirty = ord_ = bmap = free = order = None

        for b, s, bit, fill in zip(blk_l, set_l, bit_l, fill_l):
            if s != cur_s:
                blk, valid, dirty, ord_, bmap, free, order = state[s]
                cur_s = s
            w = bmap.get(b)
            if w is not None:
                if valid[w] & bit:
                    hits += 1
                else:
                    # Line present, sector invalid: sector fill only.
                    misses += 1
                    valid[w] |= bit
                    events.append(fill)
                if is_write:
                    dirty[w] |= bit
                ord_[w] = clk
                clk += 1
                if order[0] != w:
                    order.remove(w)
                    order.insert(0, w)
                continue
            # Line miss: the fill precedes the victim's write-backs.
            misses += 1
            events.append(fill)
            if free:
                w = free.pop(0)
            else:
                w = order.pop()
                evictions += 1
                d = dirty[w]
                if d:
                    base = blk[w] << line_shift
                    o = 0
                    while d:
                        if d & 1:
                            events.append(base | (o << sector_shift) | 1)
                            wb_events += 1
                        d >>= 1
                        o += 1
                del bmap[blk[w]]
            blk[w] = b
            valid[w] = bit
            dirty[w] = bit if is_write else 0
            ord_[w] = clk
            clk += 1
            bmap[b] = w
            order.insert(0, w)

        # Write the mutated sets back to the arrays.
        for s, (blk, valid, dirty, ord_, _, _, _) in state.items():
            self._block[s] = blk
            self._valid[s] = valid
            self._dirty[s] = dirty
            self._ord[s] = ord_
        self._clock = clk

        stats = self.stats
        stats.accesses += n
        stats.requested_bytes += n * sector_bytes
        stats.hits += hits
        stats.misses += misses
        stats.fill_bytes += misses * sector_bytes
        stats.writeback_bytes += wb_events * sector_bytes
        stats.evictions += evictions

        return pack_events(n, hits, events, sector_bytes)

    # ------------------------------------------------------------------
    def flush(self) -> list[tuple[int, int]]:
        writebacks: list[tuple[int, int]] = []
        for set_idx in range(self.num_sets):
            valid = [
                w for w in range(self.ways) if self._block[set_idx, w] != -1
            ]
            # MRU-first, matching the original list ordering
            for w in sorted(valid, key=lambda i: -int(self._ord[set_idx, i])):
                wb = self._dirty_sectors(set_idx, w)
                if wb:
                    writebacks.extend(wb)
        self._block.fill(-1)
        self._valid.fill(0)
        self._dirty.fill(0)
        self._ord.fill(0)
        return writebacks

    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        return self.size_bytes

    @property
    def tag_overhead_bits(self) -> int:
        set_bits = log2_exact(self.num_sets)
        tag_bits = self.addr_bits - set_bits - self._line_shift
        lines = self.num_sets * self.ways
        # tag + (valid + dirty) per sector
        return lines * (tag_bits + 2 * self.sectors_per_line)
