"""Sectored cache (Liptay, IBM S/360 M85): one tag per line, per-sector
valid/dirty bits.

Sector fills are fine-grained (8 B), so on top of Piccolo-FIM the fills
can be gathered; the design's weakness is that a single sector still
claims a whole line, wasting capacity (Sec. V-A, Fig. 6 left).
"""

from __future__ import annotations

from repro.cache.base import AccessResult, BaseCache
from repro.utils.units import log2_exact


class SectoredCache(BaseCache):
    """LRU sectored cache: line-granularity tags, sector-granularity data."""

    def __init__(
        self,
        size_bytes: int,
        ways: int = 8,
        line_bytes: int = 64,
        sector_bytes: int = 8,
        addr_bits: int = 48,
    ) -> None:
        super().__init__()
        if line_bytes % sector_bytes != 0:
            raise ValueError("line must be a multiple of the sector size")
        if size_bytes % (ways * line_bytes) != 0:
            raise ValueError("size must be a multiple of ways * line size")
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.sector_bytes = sector_bytes
        self.sectors_per_line = line_bytes // sector_bytes
        self.addr_bits = addr_bits
        self.num_sets = size_bytes // (ways * line_bytes)
        log2_exact(self.num_sets)
        self._line_shift = log2_exact(line_bytes)
        self._sector_shift = log2_exact(sector_bytes)
        self._set_mask = self.num_sets - 1
        # Per set: MRU-first list of [tag, valid_mask, dirty_mask].
        self._sets: list[list[list]] = [[] for _ in range(self.num_sets)]

    # ------------------------------------------------------------------
    def access(self, addr: int, is_write: bool) -> AccessResult:
        stats = self.stats
        stats.accesses += 1
        stats.requested_bytes += self.sector_bytes
        block = addr >> self._line_shift
        set_idx = block & self._set_mask
        sector = (addr >> self._sector_shift) & (self.sectors_per_line - 1)
        sector_bit = 1 << sector
        ways = self._sets[set_idx]

        for i, entry in enumerate(ways):
            if entry[0] == block:
                if entry[1] & sector_bit:
                    stats.hits += 1
                    if is_write:
                        entry[2] |= sector_bit
                    if i:
                        ways.insert(0, ways.pop(i))
                    return AccessResult(hit=True)
                # Line present, sector invalid: fetch just the sector.
                stats.misses += 1
                stats.fill_bytes += self.sector_bytes
                entry[1] |= sector_bit
                if is_write:
                    entry[2] |= sector_bit
                if i:
                    ways.insert(0, ways.pop(i))
                return AccessResult(
                    hit=False,
                    fill_addr=(block << self._line_shift)
                    | (sector << self._sector_shift),
                    fill_bytes=self.sector_bytes,
                )

        # Line miss: allocate a line, fetch only the requested sector.
        stats.misses += 1
        stats.fill_bytes += self.sector_bytes
        writebacks = None
        if len(ways) >= self.ways:
            victim = ways.pop()
            stats.evictions += 1
            writebacks = self._dirty_sectors(victim)
        ways.insert(
            0, [block, sector_bit, sector_bit if is_write else 0]
        )
        return AccessResult(
            hit=False,
            fill_addr=(block << self._line_shift) | (sector << self._sector_shift),
            fill_bytes=self.sector_bytes,
            writebacks=writebacks,
        )

    def _dirty_sectors(self, entry: list) -> list[tuple[int, int]] | None:
        block, _, dirty = entry
        if not dirty:
            return None
        base = block << self._line_shift
        writebacks = []
        for s in range(self.sectors_per_line):
            if dirty & (1 << s):
                writebacks.append(
                    (base | (s << self._sector_shift), self.sector_bytes)
                )
        self.stats.writeback_bytes += len(writebacks) * self.sector_bytes
        return writebacks

    def flush(self) -> list[tuple[int, int]]:
        writebacks: list[tuple[int, int]] = []
        for ways in self._sets:
            for entry in ways:
                wb = self._dirty_sectors(entry)
                if wb:
                    writebacks.extend(wb)
            ways.clear()
        return writebacks

    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        return self.size_bytes

    @property
    def tag_overhead_bits(self) -> int:
        set_bits = log2_exact(self.num_sets)
        tag_bits = self.addr_bits - set_bits - self._line_shift
        lines = self.num_sets * self.ways
        # tag + (valid + dirty) per sector
        return lines * (tag_bits + 2 * self.sectors_per_line)
