"""Scrabble cache (Zhang et al., ToC'20): adaptive merged blocks.

Scrabble keeps word-granularity residency like an 8 B-line cache, but
packs words from *different* addresses into shared physical lines (the
"merged block"), identified by a per-slot map of full sub-tags.  The
merge map lets any word of the set's address space land in any slot of
the set's physical lines, which behaves like an 8 B-line cache whose
associativity is ``ways x 8`` slots -- the reason the paper measures it
"achieving similar speedup compared to 8B-line cache" -- at the price
of a much larger metadata store and comparator tree (per-slot full
tags plus the merge map), the "design complexity and metadata overhead"
Sec. VII-D calls out.
"""

from __future__ import annotations

from repro.cache.base import AccessResult, BaseCache
from repro.utils.units import log2_exact

#: word slots per physical 64 B line
SLOTS_PER_LINE = 8
#: merge-map bits per slot (slot-occupancy + way routing)
MERGE_MAP_BITS = 8


class ScrabbleCache(BaseCache):
    """Merged-block word cache.

    Args:
        size_bytes: data capacity (fully usable; metadata is dedicated).
        ways: physical lines per set.
        addr_bits: physical address width for tag accounting.
    """

    def __init__(self, size_bytes: int, ways: int = 8,
                 addr_bits: int = 48) -> None:
        super().__init__()
        if size_bytes % (ways * 64) != 0:
            raise ValueError("size must be a multiple of ways * 64")
        self.size_bytes = size_bytes
        self.ways = ways
        self.addr_bits = addr_bits
        self.num_sets = size_bytes // (ways * 64)
        log2_exact(self.num_sets)
        self._set_mask = self.num_sets - 1
        self._slots_per_set = ways * SLOTS_PER_LINE
        # Per set: MRU-first [word, dirty] slots.
        self._sets: list[list[list]] = [[] for _ in range(self.num_sets)]

    # ------------------------------------------------------------------
    def access(self, addr: int, is_write: bool) -> AccessResult:
        """One 8 B access against the set's merged word slots."""
        stats = self.stats
        stats.accesses += 1
        stats.requested_bytes += 8
        word = addr >> 3
        set_idx = (word >> 3) & self._set_mask
        slots = self._sets[set_idx]
        for i, slot in enumerate(slots):
            if slot[0] == word:
                stats.hits += 1
                if is_write:
                    slot[1] = True
                if i:
                    slots.insert(0, slots.pop(i))
                return AccessResult(hit=True)

        stats.misses += 1
        stats.fill_bytes += 8
        writebacks = None
        if len(slots) >= self._slots_per_set:
            victim = slots.pop()
            stats.evictions += 1
            if victim[1]:
                stats.writeback_bytes += 8
                writebacks = [(victim[0] * 8, 8)]
        slots.insert(0, [word, is_write])
        return AccessResult(
            hit=False,
            fill_addr=word * 8,
            fill_bytes=8,
            writebacks=writebacks,
        )

    def flush(self) -> list[tuple[int, int]]:
        """Evict every slot; returns per-word dirty write-backs."""
        writebacks = []
        for slots in self._sets:
            for word, dirty in slots:
                if dirty:
                    self.stats.writeback_bytes += 8
                    writebacks.append((word * 8, 8))
            slots.clear()
        return writebacks

    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        """Full data array (metadata is dedicated, not in-array)."""
        return self.size_bytes

    @property
    def tag_overhead_bits(self) -> int:
        """Per-slot full sub-tag plus the merge map -- substantially
        heavier than the 8 B-line cache's tag store."""
        set_bits = log2_exact(self.num_sets)
        # The merged-block lookup cannot use the slot position to shorten
        # the tag: any word of the (set-indexed) space may sit anywhere.
        sub_tag_bits = self.addr_bits - set_bits - 3
        slots = self.num_sets * self._slots_per_set
        return slots * (sub_tag_bits + MERGE_MAP_BITS)
