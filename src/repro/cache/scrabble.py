"""Scrabble cache (Zhang et al., ToC'20): adaptive merged blocks.

Scrabble keeps word-granularity residency like an 8 B-line cache, but
packs words from *different* addresses into shared physical lines (the
"merged block"), identified by a per-slot map of full sub-tags.  The
merge map lets any word of the set's address space land in any slot of
the set's physical lines, which behaves like an 8 B-line cache whose
associativity is ``ways x 8`` slots -- the reason the paper measures it
"achieving similar speedup compared to 8B-line cache" -- at the price
of a much larger metadata store and comparator tree (per-slot full
tags plus the merge map), the "design complexity and metadata overhead"
Sec. VII-D calls out.

Storage layout (batched engine, docs/CACHE_ENGINES.md): the per-set
slot pool lives in contiguous NumPy arrays -- resident word id, dirty
flag, recency stamp -- rather than per-slot Python lists.
:meth:`access` walks the arrays one address at a time;
:meth:`access_many` vectorizes the word/set decomposition, materialises
the touched sets into flat structures (word->slot dict, MRU-first order
list), and replays the batch in one tight loop.  Both paths are
event-for-event identical (``tests/test_batched_equivalence.py``).
"""

from __future__ import annotations

import numpy as np

from repro.cache.base import AccessResult, BaseCache, BatchResult
from repro.cache.batched import (
    BatchedCacheEngine,
    empty_batch,
    pack_events,
    split_free_mru,
)
from repro.utils.units import log2_exact

#: word slots per physical 64 B line
SLOTS_PER_LINE = 8
#: merge-map bits per slot (slot-occupancy + way routing)
MERGE_MAP_BITS = 8


class ScrabbleCache(BatchedCacheEngine, BaseCache):
    """Merged-block word cache.

    Args:
        size_bytes: data capacity (fully usable; metadata is dedicated).
        ways: physical lines per set.
        addr_bits: physical address width for tag accounting.
    """

    # Replay-memo state layout (see cache/batched.py).
    CANONICAL_ARRAYS = ("_word", "_dirty")
    STATE_ARRAYS = ("_word", "_dirty", "_ord")
    STATE_SCALARS = ("_clock",)

    def __init__(self, size_bytes: int, ways: int = 8,
                 addr_bits: int = 48) -> None:
        super().__init__()
        if size_bytes % (ways * 64) != 0:
            raise ValueError("size must be a multiple of ways * 64")
        self.size_bytes = size_bytes
        self.ways = ways
        self.addr_bits = addr_bits
        self.num_sets = size_bytes // (ways * 64)
        log2_exact(self.num_sets)
        self._set_mask = self.num_sets - 1
        self._slots_per_set = ways * SLOTS_PER_LINE
        # Array-backed slot pool (word -1 = free slot).
        shape = (self.num_sets, self._slots_per_set)
        self._word = np.full(shape, -1, dtype=np.int64)
        self._dirty = np.zeros(shape, dtype=np.int64)
        self._ord = np.zeros(shape, dtype=np.int64)
        self._clock = 1

    # ------------------------------------------------------------------
    def access(self, addr: int, is_write: bool) -> AccessResult:
        """One 8 B access against the set's merged word slots."""
        stats = self.stats
        stats.accesses += 1
        stats.requested_bytes += 8
        word = addr >> 3
        set_idx = (word >> 3) & self._set_mask
        word_row = self._word[set_idx]
        match = np.flatnonzero(word_row == word)
        if match.size:
            slot = int(match[0])
            stats.hits += 1
            if is_write:
                self._dirty[set_idx, slot] = 1
            self._ord[set_idx, slot] = self._clock
            self._clock += 1
            return AccessResult(hit=True)

        stats.misses += 1
        stats.fill_bytes += 8
        writebacks = None
        free = np.flatnonzero(word_row == -1)
        if free.size:
            slot = int(free[0])
        else:
            ord_row = self._ord[set_idx]
            slot = int(np.argmin(ord_row))
            stats.evictions += 1
            if self._dirty[set_idx, slot]:
                stats.writeback_bytes += 8
                writebacks = [(int(word_row[slot]) * 8, 8)]
        self._word[set_idx, slot] = word
        self._dirty[set_idx, slot] = 1 if is_write else 0
        self._ord[set_idx, slot] = self._clock
        self._clock += 1
        return AccessResult(
            hit=False,
            fill_addr=word * 8,
            fill_bytes=8,
            writebacks=writebacks,
        )

    # ------------------------------------------------------------------
    # Batched path (whole-tile address arrays)
    # ------------------------------------------------------------------
    def access_many(self, addrs: np.ndarray, is_write: bool) -> BatchResult:
        addrs = np.asarray(addrs, dtype=np.int64)
        n = int(addrs.size)
        if n == 0:
            return empty_batch()

        words = addrs >> 3
        word_l = words.tolist()
        set_l = ((words >> 3) & self._set_mask).tolist()

        # Materialise the touched sets; ``order`` is MRU-first so the
        # LRU victim is its tail.
        state: dict[int, tuple] = {}
        for s in set(set_l):
            wrd = self._word[s].tolist()
            dirty = self._dirty[s].tolist()
            ord_ = self._ord[s].tolist()
            free, order = split_free_mru(wrd, ord_)
            wmap = {wrd[slot]: slot for slot in order}
            state[s] = (wrd, dirty, ord_, wmap, free, order)

        events: list[int] = []
        clk = self._clock
        hits = misses = evictions = wb_events = 0
        cur_s = -1
        wrd = dirty = ord_ = wmap = free = order = None

        for word, s in zip(word_l, set_l):
            if s != cur_s:
                wrd, dirty, ord_, wmap, free, order = state[s]
                cur_s = s
            slot = wmap.get(word)
            if slot is not None:
                hits += 1
                if is_write:
                    dirty[slot] = 1
                ord_[slot] = clk
                clk += 1
                if order[0] != slot:
                    order.remove(slot)
                    order.insert(0, slot)
                continue
            # Miss: the fill precedes the victim's write-back.
            misses += 1
            events.append(word << 3)
            if free:
                slot = free.pop(0)
            else:
                slot = order.pop()
                evictions += 1
                if dirty[slot]:
                    wb_events += 1
                    events.append((wrd[slot] << 3) | 1)
                del wmap[wrd[slot]]
            wrd[slot] = word
            dirty[slot] = 1 if is_write else 0
            ord_[slot] = clk
            clk += 1
            wmap[word] = slot
            order.insert(0, slot)

        # Write the mutated sets back to the arrays.
        for s, (wrd, dirty, ord_, _, _, _) in state.items():
            self._word[s] = wrd
            self._dirty[s] = dirty
            self._ord[s] = ord_
        self._clock = clk

        stats = self.stats
        stats.accesses += n
        stats.requested_bytes += 8 * n
        stats.hits += hits
        stats.misses += misses
        stats.fill_bytes += 8 * misses
        stats.writeback_bytes += 8 * wb_events
        stats.evictions += evictions

        return pack_events(n, hits, events, 8)

    # ------------------------------------------------------------------
    def flush(self) -> list[tuple[int, int]]:
        """Evict every slot; returns per-word dirty write-backs."""
        writebacks = []
        for set_idx in range(self.num_sets):
            occupied = [
                s
                for s in range(self._slots_per_set)
                if self._word[set_idx, s] != -1
            ]
            # MRU-first, matching the original list ordering
            for s in sorted(occupied, key=lambda i: -int(self._ord[set_idx, i])):
                if self._dirty[set_idx, s]:
                    self.stats.writeback_bytes += 8
                    writebacks.append((int(self._word[set_idx, s]) * 8, 8))
        self._word.fill(-1)
        self._dirty.fill(0)
        self._ord.fill(0)
        return writebacks

    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        """Full data array (metadata is dedicated, not in-array)."""
        return self.size_bytes

    @property
    def tag_overhead_bits(self) -> int:
        """Per-slot full sub-tag plus the merge map -- substantially
        heavier than the 8 B-line cache's tag store."""
        set_bits = log2_exact(self.num_sets)
        # The merged-block lookup cannot use the slot position to shorten
        # the tag: any word of the (set-indexed) space may sit anywhere.
        sub_tag_bits = self.addr_bits - set_bits - 3
        slots = self.num_sets * self._slots_per_set
        return slots * (sub_tag_bits + MERGE_MAP_BITS)
