"""Registry of the fine-grained cache designs compared in Fig. 11.

The three published designs have full functional models in their own
modules --

- :mod:`repro.cache.amoeba`: variable-granularity blocks with in-array
  tags and a spatial-granularity predictor (Kumar et al., MICRO'12);
- :mod:`repro.cache.scrabble`: merged-block word cache with per-slot
  sub-tags and heavy metadata (Zhang et al., ToC'20);
- :mod:`repro.cache.graphfire`: sectored frames with reuse-predicted
  insertion and stream-aware fills (Manocha et al., ToC'23).

Each is a behavioural model of the property the paper's Fig. 11
analysis attributes to the design (amoeba/graphfire pay effective
capacity for in-array metadata; scrabble matches the 8 B-line cache's
hit behaviour at much higher metadata cost), implemented as a real
cache rather than a scaled approximation.  The paper applied "slight
modifications to get better performance for graph processing"
(Sec. VII-A); these models do the same.

Every design in :data:`FIG11_VARIANTS` (the two published sectored/
8 B-line references included) carries an array-backed ``access_many``
engine (docs/CACHE_ENGINES.md), so the whole Fig. 11 sweep runs on the
batched memory path.  The batched-equivalence suite, the CI variant
smoke, and ``tools/perf_report.py`` all derive their design lists from
this registry, so adding a design here automatically subjects it to
all three; only the figure itself
(``experiments.figures.CACHE_DESIGNS``) stays hand-listed, because its
entry order is the plotting order.
"""

from repro.cache.amoeba import AmoebaCache
from repro.cache.fine8b import EightByteLineCache
from repro.cache.graphfire import GraphfireCache
from repro.cache.scrabble import ScrabbleCache
from repro.cache.sectored import SectoredCache

#: Fig. 11 design name -> cache factory ``(size_bytes, ways) -> cache``.
#: The batched-equivalence suite and ``tools/perf_report.py`` iterate
#: this registry; keep entries in the figure's plotting order.
FIG11_VARIANTS = {
    "Sectored": lambda size, ways=8: SectoredCache(size, ways=ways),
    "Amoeba": lambda size, ways=8: AmoebaCache(size, ways=ways),
    "Scrabble": lambda size, ways=8: ScrabbleCache(size, ways=ways),
    "Graphfire": lambda size, ways=8: GraphfireCache(size, ways=ways),
    "8B-Line": lambda size, ways=8: EightByteLineCache(size, ways=ways),
}

#: Fig. 11 *figure* design list: the five registry variants plus the two
#: Piccolo policy rows, in the figure's plotting order.  These are the
#: names ``CellSpec.cache_design`` accepts -- the picklable way to
#: request a design substitution (a cache factory callable cannot cross
#: a process boundary and has no canonical digest form).
FIG11_DESIGNS = (
    "Sectored",
    "Amoeba",
    "Scrabble",
    "Graphfire",
    "Piccolo (LRU)",
    "Piccolo (RRIP)",
    "8B-Line",
)


def fig11_cache_factory(design: str, *, ways: int = 8, fg_tag_bits: int = 4):
    """``size -> cache`` factory for a named Fig. 11 design.

    ``ways``/``fg_tag_bits`` come from the experiment scale profile
    (``fg_tag_bits`` only applies to the Piccolo policy rows).
    """
    if design in FIG11_VARIANTS:
        variant = FIG11_VARIANTS[design]
        return lambda size: variant(size, ways=ways)
    if design in ("Piccolo (LRU)", "Piccolo (RRIP)"):
        # deferred: core.piccolo_cache imports cache.base/batched, so a
        # module-level import here would be a package-init cycle hazard
        from repro.core.piccolo_cache import PiccoloCache

        policy = "lru" if design == "Piccolo (LRU)" else "rrip"
        return lambda size: PiccoloCache(
            size, ways=ways, fg_tag_bits=fg_tag_bits, policy=policy
        )
    raise KeyError(
        f"unknown Fig. 11 cache design {design!r}; "
        f"available: {list(FIG11_DESIGNS)}"
    )


__all__ = [
    "AmoebaCache",
    "EightByteLineCache",
    "FIG11_DESIGNS",
    "FIG11_VARIANTS",
    "GraphfireCache",
    "ScrabbleCache",
    "SectoredCache",
    "fig11_cache_factory",
]
