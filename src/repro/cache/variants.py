"""Published fine-grained cache designs compared in Fig. 11.

Compatibility facade: the three designs now have full functional
models in their own modules --

- :mod:`repro.cache.amoeba`: variable-granularity blocks with in-array
  tags and a spatial-granularity predictor (Kumar et al., MICRO'12);
- :mod:`repro.cache.scrabble`: merged-block word cache with per-slot
  sub-tags and heavy metadata (Zhang et al., ToC'20);
- :mod:`repro.cache.graphfire`: sectored frames with reuse-predicted
  insertion and stream-aware fills (Manocha et al., ToC'23).

Each is a behavioural model of the property the paper's Fig. 11
analysis attributes to the design (amoeba/graphfire pay effective
capacity for in-array metadata; scrabble matches the 8 B-line cache's
hit behaviour at much higher metadata cost), implemented as a real
cache rather than a scaled approximation.  The paper applied "slight
modifications to get better performance for graph processing"
(Sec. VII-A); these models do the same.
"""

from repro.cache.amoeba import AmoebaCache
from repro.cache.graphfire import GraphfireCache
from repro.cache.scrabble import ScrabbleCache

__all__ = ["AmoebaCache", "GraphfireCache", "ScrabbleCache"]
