"""Graph substrate: CSR storage, synthetic generators, datasets, tiling."""

from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    erdos_renyi,
    kronecker,
    rmat,
    watts_strogatz,
    community_graph,
    shuffle_vertex_ids,
)
from repro.graph.datasets import DATASETS, load_dataset
from repro.graph.partition import TiledCSR, tile_count

__all__ = [
    "CSRGraph",
    "erdos_renyi",
    "kronecker",
    "rmat",
    "watts_strogatz",
    "community_graph",
    "shuffle_vertex_ids",
    "DATASETS",
    "load_dataset",
    "TiledCSR",
    "tile_count",
]
