"""Compressed sparse row (CSR) graph storage.

The accelerator models consume graphs in CSR form: a row-pointer array
(``indptr``, |V|+1 entries) and a column-index array (``indices``, |E|
entries), optionally with an integer edge-weight array.  This mirrors the
topology layout the paper charges to memory traffic (row indices
proportional to |V|, column indices proportional to |E|, Sec. II-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class CSRGraph:
    """A directed graph in CSR (push/source-major) layout.

    Attributes:
        indptr: ``int64[num_vertices + 1]`` row pointers.
        indices: ``int64[num_edges]`` destination vertex ids, grouped by
            source and sorted within each source.
        weights: ``int64[num_edges]`` integer edge weights (paper assigns
            random integers in [0, 255] to unweighted graphs).
        name: optional human-readable dataset name.
    """

    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray
    name: str = field(default="graph", compare=False)

    def __post_init__(self) -> None:
        indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        indices = np.ascontiguousarray(self.indices, dtype=np.int64)
        weights = np.ascontiguousarray(self.weights, dtype=np.int64)
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "weights", weights)
        if indptr.ndim != 1 or indptr.size < 1:
            raise ValueError("indptr must be a 1-D array with >= 1 entry")
        if indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if indptr[-1] != indices.size:
            raise ValueError("indptr[-1] must equal the number of edges")
        if weights.size != indices.size:
            raise ValueError("weights must have one entry per edge")
        n = indptr.size - 1
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise ValueError("edge destination out of range")

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.indptr.size - 1

    @property
    def num_edges(self) -> int:
        return self.indices.size

    @property
    def average_degree(self) -> float:
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex (``int64[num_vertices]``)."""
        return np.diff(self.indptr)

    def neighbors(self, vertex: int) -> np.ndarray:
        """Destination ids of ``vertex``'s outgoing edges."""
        lo, hi = self.indptr[vertex], self.indptr[vertex + 1]
        return self.indices[lo:hi]

    def edge_weights(self, vertex: int) -> np.ndarray:
        """Weights of ``vertex``'s outgoing edges."""
        lo, hi = self.indptr[vertex], self.indptr[vertex + 1]
        return self.weights[lo:hi]

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        src: np.ndarray,
        dst: np.ndarray,
        weights: np.ndarray | None = None,
        *,
        dedupe: bool = True,
        name: str = "graph",
    ) -> "CSRGraph":
        """Build a CSR graph from parallel src/dst (and optional weight) arrays.

        Self-loops are kept (some algorithms tolerate them); duplicate
        parallel edges are removed when ``dedupe`` is True, keeping the first
        weight encountered.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src and dst must have the same shape")
        if src.size and (src.min() < 0 or src.max() >= num_vertices):
            raise ValueError("edge source out of range")
        if dst.size and (dst.min() < 0 or dst.max() >= num_vertices):
            raise ValueError("edge destination out of range")
        if weights is None:
            weights = np.zeros(src.size, dtype=np.int64)
        else:
            weights = np.asarray(weights, dtype=np.int64)
            if weights.shape != src.shape:
                raise ValueError("weights must have one entry per edge")

        order = np.lexsort((dst, src))
        src, dst, weights = src[order], dst[order], weights[order]
        if dedupe and src.size:
            keep = np.ones(src.size, dtype=bool)
            keep[1:] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
            src, dst, weights = src[keep], dst[keep], weights[keep]

        counts = np.bincount(src, minlength=num_vertices)
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr=indptr, indices=dst, weights=weights, name=name)

    @classmethod
    def from_edges_consuming(
        cls,
        num_vertices: int,
        edges: list,
        *,
        name: str = "graph",
    ) -> "CSRGraph":
        """:meth:`from_edges` (dedupe, zero weights) taking *ownership*
        of ``edges = [src, dst]``: the list is emptied so each original
        array is freed as soon as its sorted copy exists.

        At paper scale the edge arrays are hundreds of megabytes; the
        plain :meth:`from_edges` call necessarily keeps the caller's
        originals alive next to the sorted copies, which makes graph
        *generation* (not simulation) the transient-RSS peak of a run.
        Generators use this entry point to stay within the paper-profile
        memory budget; the produced graph is identical.
        """
        src, dst = edges
        edges.clear()
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src and dst must have the same shape")
        if src.size and (src.min() < 0 or src.max() >= num_vertices):
            raise ValueError("edge source out of range")
        if dst.size and (dst.min() < 0 or dst.max() >= num_vertices):
            raise ValueError("edge destination out of range")
        order = np.lexsort((dst, src))
        src = src[order]  # sequential rebinds: originals free one by one
        dst = dst[order]
        del order
        if src.size:
            keep = np.ones(src.size, dtype=bool)
            keep[1:] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
            src = src[keep]
            dst = dst[keep]
            del keep
        counts = np.bincount(src, minlength=num_vertices)
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        # untouched zeros stay unmapped; generators overwrite them anyway
        weights = np.zeros(src.size, dtype=np.int64)
        return cls(indptr=indptr, indices=dst, weights=weights, name=name)

    def edge_array(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (src, dst, weight) parallel arrays in CSR order."""
        src = np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.out_degrees())
        return src, self.indices.copy(), self.weights.copy()

    def reversed(self) -> "CSRGraph":
        """Return the transpose graph (every edge direction flipped)."""
        src, dst, weights = self.edge_array()
        return CSRGraph.from_edges(
            self.num_vertices, dst, src, weights, dedupe=False, name=f"{self.name}^T"
        )

    def with_weights(self, weights: np.ndarray) -> "CSRGraph":
        """Return a copy of this graph with a new weight array."""
        return CSRGraph(
            indptr=self.indptr, indices=self.indices, weights=weights, name=self.name
        )

    def relabel(self, permutation: np.ndarray) -> "CSRGraph":
        """Return an isomorphic graph with vertex ids mapped by ``permutation``.

        ``permutation[v]`` is the new id of old vertex ``v``.  Used to
        destroy (shuffle) or impose (sort-by-community) vertex-id locality.
        """
        permutation = np.asarray(permutation, dtype=np.int64)
        if permutation.shape != (self.num_vertices,):
            raise ValueError("permutation must have one entry per vertex")
        if np.unique(permutation).size != self.num_vertices:
            raise ValueError("permutation must be a bijection")
        src, dst, weights = self.edge_array()
        return CSRGraph.from_edges(
            self.num_vertices,
            permutation[src],
            permutation[dst],
            weights,
            dedupe=False,
            name=self.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CSRGraph(name={self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}, avg_deg={self.average_degree:.2f})"
        )
