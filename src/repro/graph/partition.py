"""Destination-range tiling of a CSR graph (Fig. 2b, Sec. II-B).

Graph tiling restricts the destination vertices of each pass to a
contiguous range (a *tile*) so the random accesses to the temporary vertex
property array stay within a working set that fits on chip.  The cost is
repetition: the source-major topology must be re-walked once per tile, and
row indices exist separately per tile.

:class:`TiledCSR` materialises, per tile, the edge list sorted by source --
exactly the stream the accelerator's prefetcher would fetch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.units import ceil_div

if TYPE_CHECKING:
    import os


def tile_count(num_vertices: int, tile_width: int) -> int:
    """Number of destination tiles for a given tile width."""
    if tile_width <= 0:
        raise ValueError("tile_width must be positive")
    return ceil_div(num_vertices, tile_width)


@dataclass(frozen=True)
class Tile:
    """One destination tile: edges (grouped by source) whose dst is in range.

    Attributes:
        index: tile position.
        dst_lo / dst_hi: destination-id range [dst_lo, dst_hi).
        src: ``int64[n_edges]`` edge sources, ascending.
        dst: ``int64[n_edges]`` edge destinations within the range.
        weight: ``int64[n_edges]`` edge weights.
        src_unique: unique source ids present in this tile.
        src_edge_start: prefix offsets into src/dst per unique source
            (``len(src_unique)+1``), i.e. a per-tile CSR row index.
    """

    index: int
    dst_lo: int
    dst_hi: int
    src: np.ndarray
    dst: np.ndarray
    weight: np.ndarray
    src_unique: np.ndarray
    src_edge_start: np.ndarray

    @property
    def num_edges(self) -> int:
        return self.src.size

    @property
    def width(self) -> int:
        return self.dst_hi - self.dst_lo


class TiledCSR:
    """Pre-computed destination tiling of a graph.

    Building the tiling is a one-off cost per (graph, tile_width); the
    accelerator models re-walk tiles every iteration, which is where the
    paper's topology-repetition cost comes from.

    ``backing`` selects where the sorted tile arrays live:

    - ``"memory"`` (default): the global stable packed-key argsort below,
      every tile's arrays resident for the tiling's lifetime.
    - ``"disk"``: a :mod:`repro.graph.tilestore` store built by bucketed
      external sort (O(chunk) transient RSS, no global argsort) and
      attached as memmaps; ``__getitem__`` assembles tiles whose
      src/dst/weight are memmap *views*, so the chunk-streaming memory
      paths pull tile bytes straight off disk and the OS drops them
      after each walk.  Tile contents are bit-identical to the
      in-memory build (pinned by the differential suite in
      ``tests/test_tilestore.py``).
    """

    def __init__(
        self,
        graph: CSRGraph,
        tile_width: int,
        with_weights: bool = True,
        backing: str = "memory",
        store_root: str | os.PathLike | None = None,
        bucket_edges: int | None = None,
    ) -> None:
        if tile_width <= 0:
            raise ValueError("tile_width must be positive")
        if backing not in ("memory", "disk"):
            raise ValueError(
                f"backing must be 'memory' or 'disk', got {backing!r}"
            )
        self.graph = graph
        self.tile_width = min(tile_width, max(1, graph.num_vertices))
        self.num_tiles = tile_count(graph.num_vertices, self.tile_width)
        #: algorithms that never read edge weights (PR/BFS/CC) skip the
        #: per-tile weight copy; ``tile.weight`` is then a zero-stride
        #: all-zeros view (same dtype/shape, no memory)
        self.with_weights = with_weights
        self.backing = backing
        if backing == "disk":
            from repro.graph import tilestore

            self.store = tilestore.build_or_attach(
                graph,
                self.tile_width,
                with_weights,
                root=store_root,
                bucket_edges=bucket_edges,
            )
            self._tiles = None
        else:
            self.store = None
            self._tiles: list[Tile] = self._build()

    def _build(self) -> list[Tile]:
        # Memory-lean construction: no whole-graph pre-copies, originals
        # freed one by one as their sorted copies appear.  At paper
        # scale the edge arrays are ~64 MB each, and the previous
        # all-at-once reorder held eight of them plus sort temporaries
        # -- the transient-RSS peak of a run.  Tile boundaries come from
        # per-tile counts (== searchsorted on the sorted tile ids).
        graph = self.graph
        n_v = max(1, graph.num_vertices)
        src = np.repeat(
            np.arange(graph.num_vertices, dtype=np.int64), graph.out_degrees()
        )
        key = graph.indices // self.tile_width
        counts = np.bincount(key, minlength=self.num_tiles)
        boundaries = np.zeros(self.num_tiles + 1, dtype=np.int64)
        np.cumsum(counts, out=boundaries[1:])
        del counts
        if self.num_tiles * n_v * n_v < 2**62:
            # pack (tile, src, dst) into one int64 key, built in place --
            # a stable argsort of the packed key is exactly the stable
            # lexsort by (tile, src, dst), without its per-key buffers
            key *= n_v
            key += src
            key *= n_v
            key += graph.indices
            order = np.argsort(key, kind="stable")
        else:
            order = np.lexsort((graph.indices, src, key))
        del key
        src = src[order]
        dst = graph.indices[order]
        weight = graph.weights[order] if self.with_weights else None
        del order
        tiles: list[Tile] = []
        for t in range(self.num_tiles):
            lo, hi = boundaries[t], boundaries[t + 1]
            t_src = src[lo:hi]
            uniq, start = np.unique(t_src, return_index=True)
            edge_start = np.empty(uniq.size + 1, dtype=np.int64)
            edge_start[:-1] = start
            edge_start[-1] = t_src.size
            tiles.append(
                Tile(
                    index=t,
                    dst_lo=t * self.tile_width,
                    dst_hi=min((t + 1) * self.tile_width, graph.num_vertices),
                    src=t_src,
                    dst=dst[lo:hi],
                    weight=(
                        weight[lo:hi] if weight is not None
                        else np.broadcast_to(
                            np.zeros(1, dtype=np.int64), (int(hi - lo),)
                        )
                    ),
                    src_unique=uniq,
                    src_edge_start=edge_start,
                )
            )
        return tiles

    def _disk_tile(self, index: int) -> Tile:
        src, dst, weight, src_unique, src_edge_start = (
            self.store.tile_arrays(index)
        )
        if weight is None:
            weight = np.broadcast_to(
                np.zeros(1, dtype=np.int64), (src.size,)
            )
        return Tile(
            index=index,
            dst_lo=index * self.tile_width,
            dst_hi=min(
                (index + 1) * self.tile_width, self.graph.num_vertices
            ),
            src=src,
            dst=dst,
            weight=weight,
            src_unique=src_unique,
            src_edge_start=src_edge_start,
        )

    def __len__(self) -> int:
        return self.num_tiles

    def __getitem__(self, index: int) -> Tile:
        if self._tiles is not None:
            return self._tiles[index]
        if index < 0:
            index += self.num_tiles
        if not 0 <= index < self.num_tiles:
            raise IndexError("tile index out of range")
        return self._disk_tile(index)

    def __iter__(self) -> Iterator[Tile]:
        if self._tiles is not None:
            return iter(self._tiles)
        return (self._disk_tile(t) for t in range(self.num_tiles))

    def total_edges(self) -> int:
        """Sum of per-tile edges; equals the graph's edge count."""
        if self.store is not None:
            return self.store.num_edges
        return sum(t.num_edges for t in self._tiles)


def perfect_tile_width(
    num_vertices: int, onchip_bytes: int, bytes_per_vertex: int = 8
) -> int:
    """Tile width for *perfect tiling*: the tile's Vtemp fits on chip.

    Used by the scratchpad baselines (Graphicionado, GraphDyns-SPM), which
    require the whole destination range to be resident (Sec. VII-A).
    """
    width = max(1, onchip_bytes // bytes_per_vertex)
    return min(width, max(1, num_vertices))
