"""Dataset registry: seeded, scaled stand-ins for the paper's graphs.

The paper's real-world datasets (Table II) range from 92 M to 2.7 B edges;
full-size graphs are out of reach for a pure-Python timing model and the
raw data is unavailable offline.  Each dataset here is a deterministic
synthetic graph, roughly 2^10 smaller, engineered to preserve the
characteristics the evaluation hinges on:

==========  ===========================  ==============================
Name        Paper characteristics        Stand-in construction
==========  ===========================  ==============================
UU          |V| 58M, |E| 92M, deg ~3,    sparse Erdos-Renyi, avg deg 1.6
            very sparse friendship
SW          21M/261M, deg ~12, social    RMAT, avg deg 12
            power law
TW          41M/1465M, deg ~36, dense    community RMAT (id locality),
            clusters, high locality      avg deg 36
FS          65M/1806M, deg ~28, poor     RMAT + shuffled ids
            locality
PP          111M/1615M, deg ~15,         RMAT (mild skew), avg deg 15
            citation
WS26/WS27   small-world, deg 5           Watts-Strogatz, k=5
KN25..KN28  Kronecker, deg ~10,          RMAT at doubling scales
            scalability sweep
==========  ===========================  ==============================

Scaling discipline: the memory-system capacities in
``repro.experiments.config`` are scaled by the same factor, so the ratios
that determine cache pressure match the paper (see docs/EXPERIMENTS.md).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, NamedTuple

from repro.graph.csr import CSRGraph
from repro.graph import generators as gen

if TYPE_CHECKING:  # heavy imports stay lazy at runtime
    import os

    import numpy as np


@dataclass(frozen=True)
class DatasetSpec:
    """Registry entry mapping a paper dataset to its stand-in generator."""

    name: str
    description: str
    paper_vertices: int
    paper_edges: int
    build: Callable[[int], CSRGraph]
    #: default scale shift relative to the paper size (2**shift reduction)
    scale_shift: int = 12


def _uu(scale_shift: int) -> CSRGraph:
    n = max(1024, 58_000_000 >> scale_shift)
    return gen.erdos_renyi(n, avg_degree=1.6, seed=101, name="UU")


def _sw(scale_shift: int) -> CSRGraph:
    n = max(1024, 21_000_000 >> scale_shift)
    return gen.rmat(n, avg_degree=12.4, seed=102, name="SW")


def _tw(scale_shift: int) -> CSRGraph:
    n = max(1024, 41_000_000 >> scale_shift)
    return gen.community_graph(
        n, avg_degree=35.7, num_communities=max(8, n // 256), p_internal=0.75,
        seed=103, name="TW",
    )


def _fs(scale_shift: int) -> CSRGraph:
    n = max(1024, 65_000_000 >> scale_shift)
    graph = gen.rmat(n, avg_degree=27.8, seed=104, name="FS")
    return gen.shuffle_vertex_ids(graph, seed=105)


def _pp(scale_shift: int) -> CSRGraph:
    n = max(1024, 111_000_000 >> scale_shift)
    return gen.rmat(n, avg_degree=14.5, seed=106, a=0.45, b=0.25, c=0.2, name="PP")


def _ws(scale: int) -> Callable[[int], CSRGraph]:
    def build(scale_shift: int) -> CSRGraph:
        n = max(1024, (1 << scale) >> scale_shift)
        return gen.watts_strogatz(n, k=5, beta=0.1, seed=110 + scale, name=f"WS{scale}")

    return build


def _kn(scale: int) -> Callable[[int], CSRGraph]:
    def build(scale_shift: int) -> CSRGraph:
        n = max(1024, (1 << scale) >> scale_shift)
        return gen.rmat(n, avg_degree=10.0, seed=120 + scale, name=f"KN{scale}")

    return build


DATASETS: dict[str, DatasetSpec] = {
    "UU": DatasetSpec("UU", "Facebook friendship (Uci-Uni)", 58_000_000, 92_000_000, _uu, 12),
    "SW": DatasetSpec("SW", "Sina Weibo social", 21_000_000, 261_000_000, _sw, 12),
    "TW": DatasetSpec("TW", "Twitter follower", 41_000_000, 1_465_000_000, _tw, 12),
    "FS": DatasetSpec("FS", "Friendster social", 65_000_000, 1_806_000_000, _fs, 12),
    "PP": DatasetSpec("PP", "OGB papers citation", 111_000_000, 1_615_000_000, _pp, 12),
    "WS26": DatasetSpec("WS26", "Watts-Strogatz scale 26", 67_000_000, 336_000_000, _ws(26), 12),
    "WS27": DatasetSpec("WS27", "Watts-Strogatz scale 27", 134_000_000, 671_000_000, _ws(27), 12),
    "KN25": DatasetSpec("KN25", "Kronecker scale 25", 34_000_000, 336_000_000, _kn(25), 12),
    "KN26": DatasetSpec("KN26", "Kronecker scale 26", 67_000_000, 671_000_000, _kn(26), 12),
    "KN27": DatasetSpec("KN27", "Kronecker scale 27", 134_000_000, 1_342_000_000, _kn(27), 12),
    "KN28": DatasetSpec("KN28", "Kronecker scale 28", 268_000_000, 2_684_000_000, _kn(28), 12),
}

#: The five real-world datasets used by most figures, in paper order.
REAL_WORLD = ("UU", "TW", "SW", "FS", "PP")

#: Synthetic datasets of Fig. 18, in paper order.
SYNTHETIC = ("WS26", "WS27", "KN25", "KN26", "KN27", "KN28")


#: default byte budget for memoised graphs.  At toy scale every graph
#: fits many times over (the old ``lru_cache(maxsize=32)`` behaviour);
#: at mid/paper scale the budget is what keeps a sweep over several
#: datasets from pinning gigabytes of edge arrays for the process
#: lifetime.
DATASET_CACHE_BUDGET_BYTES = 1 << 29  # 512 MB


class DatasetCacheInfo(NamedTuple):
    """``load_dataset.cache_info()`` result (lru_cache-compatible shape,
    plus the byte accounting the budget evicts on).  ``resident_bytes``
    is what the budget actually charges (private anonymous pages);
    ``mapped_bytes`` is the file-backed remainder served from shared
    page-cache mappings."""

    hits: int
    misses: int
    budget_bytes: int
    currsize: int
    total_bytes: int
    resident_bytes: int = 0
    mapped_bytes: int = 0


def _is_file_backed(array: np.ndarray) -> bool:
    import numpy as np

    return isinstance(array, np.memmap) or isinstance(array.base, np.memmap)


class _DatasetCache:
    """LRU graph cache evicting by *resident* edge-array bytes.

    Anonymous (generated) graphs cost their full ``nbytes``; memmap-
    backed graphs cost ~0 -- their pages live in the shared page cache
    and are reclaimable by the OS, so charging them at ``nbytes`` made
    the budget evict exactly the entries that were free to keep (and
    keep exactly the ones that were expensive).  Eviction therefore
    skips zero-resident entries entirely: removing them frees nothing.
    """

    def __init__(self, budget_bytes: int) -> None:
        self.budget_bytes = budget_bytes
        self._entries: OrderedDict[tuple, CSRGraph] = OrderedDict()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def graph_nbytes(graph: CSRGraph) -> int:
        return graph.indptr.nbytes + graph.indices.nbytes + graph.weights.nbytes

    @staticmethod
    def graph_resident_nbytes(graph: CSRGraph) -> int:
        """The budget charge: bytes held as private anonymous memory."""
        return sum(
            array.nbytes
            for array in (graph.indptr, graph.indices, graph.weights)
            if not _is_file_backed(array)
        )

    def total_bytes(self) -> int:
        return sum(self.graph_nbytes(g) for g in self._entries.values())

    def resident_bytes(self) -> int:
        return sum(
            self.graph_resident_nbytes(g) for g in self._entries.values()
        )

    def get(self, key: tuple) -> CSRGraph | None:
        graph = self._entries.get(key)
        if graph is None:
            self.misses += 1
        else:
            self.hits += 1
            self._entries.move_to_end(key)
        return graph

    def put(self, key: tuple, graph: CSRGraph) -> None:
        self._entries[key] = graph
        self._entries.move_to_end(key)
        # Evict least-recently-used *resident* graphs until the budget
        # holds; the newest entry always stays (a single over-budget
        # graph is kept while in use rather than rebuilt on every call)
        # and memmap-backed entries are never victims -- evicting them
        # frees no memory.
        while self.resident_bytes() > self.budget_bytes:
            newest = next(reversed(self._entries))
            victim = next(
                (
                    k for k, g in self._entries.items()
                    if k != newest and self.graph_resident_nbytes(g) > 0
                ),
                None,
            )
            if victim is None:
                break
            del self._entries[victim]

    def replace(self, key: tuple, graph: CSRGraph) -> None:
        """Swap an entry's graph in place (no hit/miss/recency change).

        :func:`materialize_memmap` uses this to substitute the memmap-
        backed copy for a freshly generated anonymous graph: same
        arrays bit-for-bit, but the entry's budget charge drops to ~0,
        so materialising a sweep's graphs actively *frees* cache budget
        instead of competing for it.
        """
        if key in self._entries:
            self._entries[key] = graph

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def info(self) -> DatasetCacheInfo:
        total = self.total_bytes()
        resident = self.resident_bytes()
        return DatasetCacheInfo(
            hits=self.hits,
            misses=self.misses,
            budget_bytes=self.budget_bytes,
            currsize=len(self._entries),
            total_bytes=total,
            resident_bytes=resident,
            mapped_bytes=total - resident,
        )


_CACHE = _DatasetCache(DATASET_CACHE_BUDGET_BYTES)

#: memmap-attached graphs by (name, shift) -- the worker-side graph
#: source of the parallel sweep runner.  Attached graphs are served
#: before the generate-and-cache path and are never evicted (they hold
#: file mappings, not private pages).
_ATTACHED: dict[tuple[str, int], CSRGraph] = {}

#: when True, a load that would *generate* a graph raises instead.
#: Pool workers set this: every dataset a sweep needs was materialised
#: once by the parent, so a worker-side generation is always a bug (it
#: would silently multiply million-edge RMAT builds by the worker count).
_REQUIRE_ATTACHED = False


def resolve_shift(name: str, scale_shift: int | None = None) -> int:
    """The actual 2**shift reduction a load of ``name`` would use
    (``None`` resolves to the dataset spec's default)."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None
    shift = spec.scale_shift if scale_shift is None else scale_shift
    if shift < 0:
        raise ValueError("scale_shift must be >= 0")
    return shift


def attach_memmap(
    name: str, scale_shift: int | None, path: str | os.PathLike
) -> CSRGraph:
    """Serve ``load_dataset(name, shift)`` from a memmap directory.

    Used by pool workers: the parent materialises each graph once
    (:func:`materialize_memmap`) and ships the paths; workers attach
    read-only, so the machine holds one copy of the edge arrays no
    matter how many workers run.
    """
    from repro.graph import graphio

    shift = resolve_shift(name, scale_shift)
    graph = graphio.from_memmap(path)
    _ATTACHED[(name, shift)] = graph
    return graph


def detach_memmaps() -> None:
    """Drop every memmap attachment (tests / sweep teardown)."""
    _ATTACHED.clear()


def set_require_attached(flag: bool) -> bool:
    """Toggle the no-generation guard; returns the previous setting."""
    global _REQUIRE_ATTACHED
    previous = _REQUIRE_ATTACHED
    _REQUIRE_ATTACHED = bool(flag)
    return previous


def materialize_memmap(
    name: str, scale_shift: int | None, root: str | os.PathLike
) -> "os.PathLike":
    """Ensure a memmap directory for (dataset, shift) exists under
    ``root`` and return its path.

    Builds the graph (through the normal memoised :func:`load_dataset`
    path, so a sweep generates each graph exactly once) only when the
    directory is missing; an existing directory is reused as-is, which
    is what lets resumed sweeps and repeated runs skip generation
    entirely.
    """
    import os as _os
    import pathlib

    from repro.graph import graphio

    shift = resolve_shift(name, scale_shift)
    target = pathlib.Path(_os.fspath(root)) / f"{name}-s{shift}"
    if not graphio._memmap_dir_valid(target):
        graph = load_dataset(name, shift)
        target = pathlib.Path(graphio.to_memmap(graph, target))
    # Swap any anonymous cached copy for the memmap attachment: the
    # arrays are bit-identical, but the cache entry's resident charge
    # drops to ~0 (see _DatasetCache.replace).
    key = (name, shift)
    cached = _CACHE._entries.get(key)
    if cached is not None and _CACHE.graph_resident_nbytes(cached) > 0:
        _CACHE.replace(key, graphio.from_memmap(target))
    return target


def load_dataset(name: str, scale_shift: int | None = None) -> CSRGraph:
    """Build (and memoise) the scaled stand-in for a paper dataset.

    Memoisation is byte-budgeted: built graphs are kept LRU up to
    :data:`DATASET_CACHE_BUDGET_BYTES` of edge-array storage, so a
    mid/paper-profile sweep cannot pin gigabytes for the process
    lifetime (the old ``lru_cache(maxsize=32)`` did exactly that).
    ``load_dataset.cache_clear()`` and ``load_dataset.cache_info()``
    keep the ``functools.lru_cache`` test surface.

    Args:
        name: dataset key from :data:`DATASETS` (e.g. ``"TW"``).
        scale_shift: optional override for the 2**shift size reduction;
            larger shifts mean smaller graphs.  ``None`` uses the spec
            default.
    """
    shift = resolve_shift(name, scale_shift)
    key = (name, shift)
    attached = _ATTACHED.get(key)
    if attached is not None:
        return attached
    graph = _CACHE.get(key)
    if graph is None:
        if _REQUIRE_ATTACHED:
            raise RuntimeError(
                f"dataset {name!r} (shift {shift}) is not memmap-attached "
                f"and generation is disabled in this process; the sweep "
                f"parent must materialise it (materialize_memmap) before "
                f"workers run"
            )
        graph = DATASETS[name].build(shift)
        _CACHE.put(key, graph)
    return graph


load_dataset.cache_clear = _CACHE.clear
load_dataset.cache_info = _CACHE.info
