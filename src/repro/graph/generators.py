"""Synthetic graph generators.

The paper evaluates on five real-world graphs plus Watts-Strogatz and
Kronecker synthetic graphs (Table II).  Real datasets are unavailable
offline, so the dataset registry (``repro.graph.datasets``) builds seeded
stand-ins from the generators here, preserving the characteristics the
evaluation depends on: average degree, degree skew, and vertex-id locality.

All generators are deterministic given ``seed``.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

#: Default RMAT/Kronecker partition probabilities (Graph500 uses
#: a=0.57, b=0.19, c=0.19); the paper cites Leskovec et al. for Kronecker.
RMAT_A, RMAT_B, RMAT_C = 0.57, 0.19, 0.19


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def assign_random_weights(
    graph: CSRGraph, low: int = 0, high: int = 255, seed: int = 7
) -> CSRGraph:
    """Assign integer weights uniform in [low, high], as the paper does for
    unweighted real-world graphs (Sec. VII-A)."""
    rng = _rng(seed)
    weights = rng.integers(low, high + 1, size=graph.num_edges, dtype=np.int64)
    return graph.with_weights(weights)


def erdos_renyi(
    num_vertices: int, avg_degree: float, seed: int = 1, name: str = "erdos"
) -> CSRGraph:
    """Uniform random directed graph with the requested average out-degree."""
    if num_vertices <= 0:
        raise ValueError("num_vertices must be positive")
    if avg_degree < 0:
        raise ValueError("avg_degree must be non-negative")
    rng = _rng(seed)
    num_edges = int(round(num_vertices * avg_degree))
    src = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    dst = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    graph = CSRGraph.from_edges(num_vertices, src, dst, name=name)
    return assign_random_weights(graph, seed=seed + 1)


def rmat(
    num_vertices: int,
    avg_degree: float,
    seed: int = 1,
    a: float = RMAT_A,
    b: float = RMAT_B,
    c: float = RMAT_C,
    name: str = "rmat",
) -> CSRGraph:
    """RMAT / stochastic-Kronecker graph (power-law degree distribution).

    ``num_vertices`` is rounded up to the next power of two internally for
    edge generation; edges landing on padding vertices (ids in
    ``[num_vertices, 2**ceil(log2(num_vertices)))``) are remapped to a
    uniform random valid id.  (An earlier implementation remapped by
    modulo, which folded the whole padding range onto the low ids
    ``[0, 2**ceil - num_vertices)`` and roughly doubled their expected
    degree whenever ``num_vertices`` is not a power of two --
    ``tests/test_generators.py`` pins the uniform behaviour.)
    """
    if num_vertices <= 0:
        raise ValueError("num_vertices must be positive")
    d = 1.0 - a - b - c
    if d < 0 or min(a, b, c) < 0:
        raise ValueError("RMAT probabilities must be non-negative and sum <= 1")
    rng = _rng(seed)
    scale = int(np.ceil(np.log2(max(2, num_vertices))))
    num_edges = int(round(num_vertices * avg_degree))

    # Vectorised RMAT: one random draw per (edge, bit) decides the quadrant.
    # Bit decisions stay boolean and the conditional dst threshold is a
    # scalar select, so per-level temporaries are two float draws plus
    # bool masks (the paper-profile graphs make 8-byte-per-edge
    # temporaries the dominant transient cost; the produced bit
    # decisions -- and hence the graph -- are unchanged).
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    p_dst_given_src0 = b / max(a + b, 1e-12)
    p_dst_given_src1 = d / max(c + d, 1e-12)
    for _ in range(scale):
        r = rng.random(num_edges)
        src_bit = r >= a + b
        # Probability of dst bit depends on src bit: P(dst=1 | src=0) = b/(a+b).
        r2 = rng.random(num_edges)
        src <<= 1
        src |= src_bit
        dst <<= 1
        dst |= np.where(src_bit, r2 < p_dst_given_src1, r2 < p_dst_given_src0)
    del r, r2, src_bit
    for endpoint in (src, dst):
        over = endpoint >= num_vertices
        count = int(np.count_nonzero(over))
        if count:
            endpoint[over] = rng.integers(
                0, num_vertices, size=count, dtype=np.int64
            )
        del over
    graph = CSRGraph.from_edges_consuming(num_vertices, [src, dst], name=name)
    del src, dst
    return assign_random_weights(graph, seed=seed + 1)


def kronecker(
    scale: int, avg_degree: float = 10.0, seed: int = 1, name: str | None = None
) -> CSRGraph:
    """Kronecker random graph at ``2**scale`` vertices (paper's KN graphs)."""
    if scale < 1 or scale > 30:
        raise ValueError("scale must be in [1, 30]")
    if name is None:
        name = f"kron{scale}"
    return rmat(2**scale, avg_degree, seed=seed, name=name)


def watts_strogatz(
    num_vertices: int,
    k: int,
    beta: float = 0.1,
    seed: int = 1,
    name: str = "ws",
) -> CSRGraph:
    """Directed Watts-Strogatz small-world graph.

    Each vertex gets ``k`` successor edges on a ring lattice; each edge is
    rewired to a uniform random destination with probability ``beta``.
    Degree distribution is near-regular (no power law), matching the
    paper's use of WS graphs to test non-power-law behaviour (Fig. 18).
    """
    if num_vertices <= 0:
        raise ValueError("num_vertices must be positive")
    if k < 1 or k >= num_vertices:
        raise ValueError("k must be in [1, num_vertices)")
    if not 0.0 <= beta <= 1.0:
        raise ValueError("beta must be in [0, 1]")
    rng = _rng(seed)
    src = np.repeat(np.arange(num_vertices, dtype=np.int64), k)
    offsets = np.tile(np.arange(1, k + 1, dtype=np.int64), num_vertices)
    dst = (src + offsets) % num_vertices
    rewire = rng.random(src.size) < beta
    dst[rewire] = rng.integers(0, num_vertices, size=int(rewire.sum()), dtype=np.int64)
    graph = CSRGraph.from_edges(num_vertices, src, dst, name=name)
    return assign_random_weights(graph, seed=seed + 1)


def community_graph(
    num_vertices: int,
    avg_degree: float,
    num_communities: int = 64,
    p_internal: float = 0.8,
    seed: int = 1,
    name: str = "community",
) -> CSRGraph:
    """Power-law graph with planted communities and id locality.

    Vertex ids are assigned contiguously per community, so intra-community
    edges have nearby destination ids.  This models the Twitter dataset's
    "dense clusters / high locality" character (Sec. VII-C).
    """
    if num_communities < 1 or num_communities > num_vertices:
        raise ValueError("num_communities must be in [1, num_vertices]")
    if not 0.0 <= p_internal <= 1.0:
        raise ValueError("p_internal must be in [0, 1]")
    rng = _rng(seed)
    base = rmat(num_vertices, avg_degree, seed=seed, name=name)
    src, dst, weights = base.edge_array()
    community_size = max(1, num_vertices // num_communities)
    internal = rng.random(src.size) < p_internal
    # Redirect internal edges to a destination inside the source's community.
    comm_start = (src // community_size) * community_size
    local = rng.integers(0, community_size, size=src.size, dtype=np.int64)
    dst = np.where(internal, np.minimum(comm_start + local, num_vertices - 1), dst)
    graph = CSRGraph.from_edges(num_vertices, src, dst, weights, name=name)
    return graph


def shuffle_vertex_ids(graph: CSRGraph, seed: int = 1) -> CSRGraph:
    """Random-permute vertex ids, destroying id locality.

    Models the Friendster dataset's poor-locality character: the paper
    observes >80 % unuseful accessed data on FS even with perfect tiling
    (Fig. 3, Sec. VII-C).
    """
    rng = _rng(seed)
    permutation = rng.permutation(graph.num_vertices).astype(np.int64)
    return graph.relabel(permutation)
