"""Disk-backed tile store: bucketed external sort + memmapped tile arrays.

The in-memory :class:`~repro.graph.partition.TiledCSR` build performs a
global stable argsort of a packed (tile, src, dst) key, which
materialises ~2 extra edge-sized temporaries and then keeps every
tile's sorted copies resident for the whole run -- the RSS ceiling of
paper-profile sweeps.  This module replaces that with an *external*
two-pass build whose transient memory is O(bucket), not O(edges):

1. **Scatter pass.**  One sequential walk over the CSR edge arrays in
   bounded chunks; each chunk is grouped by destination-tile id and
   appended to a per-tile-row *spill bucket* (a raw int64 row file in a
   temporary directory).  Because the walk is in CSR order and appends
   preserve it, every bucket holds its tile's edges in original CSR
   (src, dst)-sorted order.
2. **Per-bucket sort pass.**  Each bucket is loaded alone, stably
   sorted by (src, dst) -- which, composed with the grouping, equals
   the global stable (tile, src, dst) sort bit-for-bit -- and written
   into memmapped ``.npy`` output arrays, together with the per-tile
   ``src_unique`` / ``src_edge_start`` CSR row index.  The bucket file
   is deleted as soon as it is consumed.

The finished store is a directory of plain ``.npy`` arrays plus a
``meta.json`` manifest, committed with the same tmp-dir + ``os.replace``
first-writer-wins discipline as :func:`repro.graph.graphio.to_memmap`:
a killed build can never leave a store that attaches, and concurrent
builders (parallel sweep workers) converge on one copy.  Stores are
keyed by a canonical content digest over (graph arrays, tile width,
with_weights), so repeat runs and pool workers *attach* an existing
store instead of rebuilding -- the tile analogue of the shared
memmapped CSR graphs.

Spill-bucket hygiene: the scatter pass runs inside a
``tempfile.TemporaryDirectory`` (removed on any exception), and
``build_or_attach`` sweeps stale partial build directories left behind
by a SIGKILLed predecessor before starting, matching the
checkpoint-store "atomic or missing" discipline.  A manifest whose
arrays are missing or *short* (truncated by a crash or disk-full) reads
as absent and the store is rebuilt.
"""

from __future__ import annotations

import atexit
import json
import os
import pathlib
import shutil
import tempfile
from typing import TYPE_CHECKING, Any

import numpy as np
from numpy.lib.format import open_memmap

if TYPE_CHECKING:
    from repro.graph.csr import CSRGraph

#: format marker written into a tile store's meta.json
TILE_STORE_FORMAT = 1

#: default scatter-chunk / spill-buffer size in edges; transient build
#: memory is O(max(bucket_edges, largest tile's edges)), so smaller
#: values bound the scatter pass tighter without changing the output
DEFAULT_BUCKET_EDGES = 1 << 20

#: the memmapped output arrays of a complete store, in manifest order
_STORE_ARRAYS = (
    "src",
    "dst",
    "boundaries",
    "src_unique",
    "uniq_boundaries",
    "src_edge_start",
)

_HASH_CHUNK = 1 << 22

# -- default store root -----------------------------------------------------
#: explicit process-wide root (parallel sweep workers share one through
#: :func:`set_default_root`; the ``REPRO_TILE_STORE`` env var wins)
_DEFAULT_ROOT: pathlib.Path | None = None
#: lazily created per-process fallback root, removed at interpreter exit
_PROCESS_ROOT: pathlib.Path | None = None


def set_default_root(path: str | os.PathLike | None) -> pathlib.Path | None:
    """Set the process-wide default store root; returns the previous one.

    The parallel sweep orchestrator points every worker at a shared
    root, so the first worker that needs a (graph, tile_width) store
    builds it and the rest attach.
    """
    global _DEFAULT_ROOT
    previous = _DEFAULT_ROOT
    _DEFAULT_ROOT = None if path is None else pathlib.Path(path)
    return previous


def default_root() -> pathlib.Path:
    """The store root used when none is given explicitly.

    Resolution order: ``REPRO_TILE_STORE`` env var, the root installed
    by :func:`set_default_root`, then a per-process temporary directory
    (created on first use, removed at interpreter exit) so casual
    ``backing="disk"`` use never litters the filesystem.
    """
    env = os.environ.get("REPRO_TILE_STORE")
    if env:
        return pathlib.Path(env)
    if _DEFAULT_ROOT is not None:
        return _DEFAULT_ROOT
    global _PROCESS_ROOT
    if _PROCESS_ROOT is None:
        _PROCESS_ROOT = pathlib.Path(
            tempfile.mkdtemp(prefix="repro-tilestore-")
        )
        atexit.register(shutil.rmtree, _PROCESS_ROOT, ignore_errors=True)
    return _PROCESS_ROOT


# -- canonical store digest -------------------------------------------------
def _hash_array(h: Any, array: np.ndarray) -> None:
    h.update(str(array.dtype).encode())
    h.update(str(array.size).encode())
    for lo in range(0, array.size, _HASH_CHUNK):
        # repro-lint: disable=RL004 -- deliberate chunk-bounded copy
        # (<= _HASH_CHUNK elems) to get a contiguous buffer for hashing
        h.update(np.ascontiguousarray(array[lo:lo + _HASH_CHUNK]).data)


def store_digest(
    graph: "CSRGraph", tile_width: int, with_weights: bool
) -> str:
    """Canonical content digest keying a (graph, tiling) store.

    Hashes the graph's actual arrays (not its name), so two datasets
    with identical topology share one store and a store can never be
    served for the wrong graph.  ``weights`` only participate when the
    tiling carries them.
    """
    import hashlib

    h = hashlib.blake2b(digest_size=16)
    h.update(f"tilestore-v{TILE_STORE_FORMAT}".encode())
    h.update(f"|V={graph.num_vertices}|w={tile_width}".encode())
    h.update(f"|weights={int(bool(with_weights))}".encode())
    _hash_array(h, graph.indptr)
    _hash_array(h, graph.indices)
    if with_weights:
        _hash_array(h, graph.weights)
    return h.hexdigest()


# -- manifest validation ----------------------------------------------------
def _expected_arrays(meta: dict) -> dict[str, int] | None:
    arrays = meta.get("arrays")
    if not isinstance(arrays, dict):
        return None
    names = list(_STORE_ARRAYS)
    if meta.get("with_weights"):
        names.append("weight")
    if sorted(arrays) != sorted(names):
        return None
    return arrays


def store_valid(directory: str | os.PathLike) -> bool:
    """True when ``directory`` holds a complete, attachable tile store.

    A store with a missing, unparsable, or *short* array (header shape
    disagreeing with the manifest, or file bytes truncated below the
    header's promise) reads as absent -- the "atomic or missing"
    discipline of the sweep checkpoint store.
    """
    directory = pathlib.Path(directory)
    meta_path = directory / "meta.json"
    if not meta_path.is_file():
        return False
    try:
        meta = json.loads(meta_path.read_text())
    except (OSError, ValueError):
        return False
    if meta.get("format") != TILE_STORE_FORMAT:
        return False
    arrays = _expected_arrays(meta)
    if arrays is None:
        return False
    for name, length in arrays.items():
        path = directory / f"{name}.npy"
        try:
            mapped = np.load(path, mmap_mode="r")
        except (OSError, ValueError):
            return False
        if mapped.shape != (int(length),) or mapped.dtype != np.int64:
            return False
        # a truncated file can still parse its header; mapping the last
        # element forces the byte range to exist
        try:
            if mapped.size:
                int(mapped[-1])
        except (IndexError, OSError, ValueError):
            return False
    return True


# -- build ------------------------------------------------------------------
def _edge_sources(indptr: np.ndarray, lo: int, hi: int) -> np.ndarray:
    """Source vertex of edges [lo, hi) in CSR order (== np.repeat of the
    degree sequence, computed per chunk instead of per graph)."""
    positions = np.arange(lo, hi, dtype=np.int64)
    return (
        np.searchsorted(indptr, positions, side="right").astype(np.int64) - 1
    )


def _raw_to_npy(
    raw_path: pathlib.Path, npy_path: pathlib.Path, count: int
) -> None:
    """Convert a raw int64 append file into a .npy array, chunk-copied
    so the conversion stays O(chunk) like the build itself."""
    # repro-lint: disable=RL002 -- callers pass paths inside the store's
    # private build dir; the store root itself commits via os.replace
    out = open_memmap(npy_path, mode="w+", dtype=np.int64, shape=(count,))
    with open(raw_path, "rb") as handle:
        written = 0
        while written < count:
            n = min(_HASH_CHUNK, count - written)
            block = np.fromfile(handle, dtype=np.int64, count=n)
            if block.size != n:
                raise OSError(f"{raw_path} is short: {written + block.size} "
                              f"of {count} entries")
            out[written:written + n] = block
            written += n
    out.flush()
    del out
    raw_path.unlink()


def _external_sort_build(
    graph: "CSRGraph",
    tile_width: int,
    with_weights: bool,
    target: pathlib.Path,
    bucket_edges: int,
) -> None:
    """Build a complete store at ``target`` (which must not exist)."""
    from repro.utils.units import ceil_div

    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    num_edges = int(graph.num_edges)
    num_tiles = ceil_div(graph.num_vertices, tile_width)
    ncols = 3 if with_weights else 2

    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.parent / f".{target.name}.tmp.{os.getpid()}"
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir()
    try:
        counts = np.zeros(max(1, num_tiles), dtype=np.int64)
        with tempfile.TemporaryDirectory(
            prefix=f".{target.name}.spill.{os.getpid()}.", dir=target.parent
        ) as spill:
            spill_dir = pathlib.Path(spill)
            # -- pass 1: scatter CSR chunks into per-tile spill buckets
            for lo in range(0, num_edges, bucket_edges):
                hi = min(lo + bucket_edges, num_edges)
                dst = np.asarray(indices[lo:hi])
                src = _edge_sources(indptr, lo, hi)
                key = dst // tile_width
                order = np.argsort(key, kind="stable")
                key = key[order]
                columns = [src[order], dst[order]]
                if with_weights:
                    columns.append(np.asarray(weights[lo:hi])[order])
                rows = np.stack(columns, axis=1)  # (n, ncols) C-order
                del src, dst, order, columns
                tiles_here = np.unique(key)
                cuts = np.searchsorted(key, tiles_here)
                cuts = np.append(cuts, key.size)
                counts += np.bincount(key, minlength=counts.size)
                for i, tile in enumerate(tiles_here.tolist()):
                    block = rows[cuts[i]:cuts[i + 1]]
                    with open(spill_dir / f"bucket_{tile}.bin", "ab") as f:
                        block.tofile(f)
                del key, rows
            # -- pass 2: sort each bucket alone, stream into the outputs
            boundaries = np.zeros(num_tiles + 1, dtype=np.int64)
            np.cumsum(counts[:num_tiles], out=boundaries[1:])
            out_src = open_memmap(
                tmp / "src.npy", mode="w+", dtype=np.int64, shape=(num_edges,)
            )
            out_dst = open_memmap(
                tmp / "dst.npy", mode="w+", dtype=np.int64, shape=(num_edges,)
            )
            out_w = (
                open_memmap(
                    tmp / "weight.npy", mode="w+", dtype=np.int64,
                    shape=(num_edges,),
                )
                if with_weights else None
            )
            uniq_counts = np.zeros(num_tiles, dtype=np.int64)
            uniq_raw = tmp / "src_unique.raw"
            start_raw = tmp / "src_edge_start.raw"
            with open(uniq_raw, "wb") as uniq_f, \
                    open(start_raw, "wb") as start_f:
                for t in range(num_tiles):
                    lo, hi = int(boundaries[t]), int(boundaries[t + 1])
                    bucket = spill_dir / f"bucket_{t}.bin"
                    if hi > lo:
                        data = np.fromfile(bucket, dtype=np.int64)
                        bucket.unlink()
                        data = data.reshape(-1, ncols)
                        if data.shape[0] != hi - lo:
                            raise OSError(
                                f"spill bucket {t} is short: "
                                f"{data.shape[0]} of {hi - lo} edges"
                            )
                        t_src = data[:, 0]
                        order = np.lexsort((data[:, 1], t_src))
                        t_src = t_src[order]
                        out_src[lo:hi] = t_src
                        out_dst[lo:hi] = data[:, 1][order]
                        if out_w is not None:
                            out_w[lo:hi] = data[:, 2][order]
                        del data, order
                    else:
                        t_src = np.empty(0, dtype=np.int64)
                    # identical unique/prefix construction to the
                    # in-memory build (bit-for-bit per-tile row index)
                    uniq, start = np.unique(t_src, return_index=True)
                    edge_start = np.empty(uniq.size + 1, dtype=np.int64)
                    edge_start[:-1] = start
                    edge_start[-1] = t_src.size
                    uniq_counts[t] = uniq.size
                    uniq.astype(np.int64, copy=False).tofile(uniq_f)
                    edge_start.tofile(start_f)
                    del t_src, uniq, start, edge_start
            for mapped in (out_src, out_dst, out_w):
                if mapped is not None:
                    mapped.flush()
            del out_src, out_dst, out_w
        total_uniq = int(uniq_counts.sum())
        _raw_to_npy(uniq_raw, tmp / "src_unique.npy", total_uniq)
        _raw_to_npy(
            start_raw, tmp / "src_edge_start.npy", total_uniq + num_tiles
        )
        uniq_boundaries = np.zeros(num_tiles + 1, dtype=np.int64)
        np.cumsum(uniq_counts, out=uniq_boundaries[1:])
        np.save(tmp / "boundaries.npy", boundaries)
        np.save(tmp / "uniq_boundaries.npy", uniq_boundaries)
        arrays = {
            "src": num_edges,
            "dst": num_edges,
            "boundaries": num_tiles + 1,
            "src_unique": total_uniq,
            "uniq_boundaries": num_tiles + 1,
            "src_edge_start": total_uniq + num_tiles,
        }
        if with_weights:
            arrays["weight"] = num_edges
        meta = {
            "format": TILE_STORE_FORMAT,
            "graph_name": graph.name,
            "num_vertices": graph.num_vertices,
            "num_edges": num_edges,
            "tile_width": tile_width,
            "num_tiles": num_tiles,
            "with_weights": bool(with_weights),
            "arrays": arrays,
        }
        (tmp / "meta.json").write_text(json.dumps(meta, indent=1) + "\n")
        try:
            os.replace(tmp, target)
        except OSError:
            if not store_valid(target):
                raise
            shutil.rmtree(tmp)  # lost the race to a concurrent builder
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except (OverflowError, OSError):
        return False
    return True


def _sweep_stale_partials(root: pathlib.Path, store_name: str) -> None:
    """Remove partial build/spill directories whose owning builder died
    (SIGKILL skips the exception/context cleanup paths).

    Partial names embed the builder's pid (``.<store>.tmp.<pid>`` /
    ``.<store>.spill.<pid>.<rand>``); a partial whose pid is still
    alive belongs to a concurrent builder racing us to ``os.replace``
    and must be left alone -- first-writer-wins makes either finishing
    order safe.  Unparsable names are treated as live (never deleted)."""
    import re

    for stale in root.glob(f".{store_name}.*"):
        match = re.fullmatch(
            re.escape(f".{store_name}") + r"\.(?:tmp|spill)\.(\d+)(?:\..*)?",
            stale.name,
        )
        if match and not _pid_alive(int(match.group(1))):
            shutil.rmtree(stale, ignore_errors=True)


class TileStore:
    """An attached (read-only, memmapped) tile store directory.

    Per-tile arrays are *views* into six flat memmaps; constructing a
    tile costs no I/O, and pages are read on demand as the simulation
    streams the tile, then dropped by the OS under memory pressure --
    nothing pins edge-sized arrays for the run's lifetime.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = pathlib.Path(directory)
        meta = json.loads((self.directory / "meta.json").read_text())
        self.num_vertices: int = int(meta["num_vertices"])
        self.num_edges: int = int(meta["num_edges"])
        self.tile_width: int = int(meta["tile_width"])
        self.num_tiles: int = int(meta["num_tiles"])
        self.with_weights: bool = bool(meta["with_weights"])
        self._src = self._load("src")
        self._dst = self._load("dst")
        self._weight = self._load("weight") if self.with_weights else None
        self._boundaries = self._load("boundaries")
        self._src_unique = self._load("src_unique")
        self._uniq_boundaries = self._load("uniq_boundaries")
        self._src_edge_start = self._load("src_edge_start")

    def _load(self, name: str) -> np.ndarray:
        return np.load(self.directory / f"{name}.npy", mmap_mode="r")

    def mapped_bytes(self) -> int:
        """Total bytes of the mapped arrays (page-cache backed, shared
        across attachments -- the *resident* private cost is ~0)."""
        arrays = [
            self._src, self._dst, self._boundaries, self._src_unique,
            self._uniq_boundaries, self._src_edge_start,
        ]
        if self._weight is not None:
            arrays.append(self._weight)
        return sum(a.nbytes for a in arrays)

    def tile_arrays(
        self, index: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None,
               np.ndarray, np.ndarray]:
        """(src, dst, weight-or-None, src_unique, src_edge_start) memmap
        views for one tile."""
        lo = int(self._boundaries[index])
        hi = int(self._boundaries[index + 1])
        ulo = int(self._uniq_boundaries[index])
        uhi = int(self._uniq_boundaries[index + 1])
        return (
            self._src[lo:hi],
            self._dst[lo:hi],
            self._weight[lo:hi] if self._weight is not None else None,
            self._src_unique[ulo:uhi],
            # per-tile prefix rows are (uniq+1) long, so tile t's segment
            # starts t entries past its uniq offset
            self._src_edge_start[ulo + index:uhi + index + 1],
        )


def build_or_attach(
    graph: "CSRGraph",
    tile_width: int,
    with_weights: bool,
    root: str | os.PathLike | None = None,
    bucket_edges: int | None = None,
) -> TileStore:
    """Attach the store for (graph, tile_width, with_weights), building
    it with the bucketed external sort if it does not exist yet.

    Concurrent callers converge: the build lands via ``os.replace``
    first-writer-wins, and a caller that loses the race attaches the
    winner's store.
    """
    if tile_width <= 0:
        raise ValueError("tile_width must be positive")
    bucket = DEFAULT_BUCKET_EDGES if bucket_edges is None else int(bucket_edges)
    if bucket < 1:
        raise ValueError("bucket_edges must be >= 1")
    root = pathlib.Path(root) if root is not None else default_root()
    root.mkdir(parents=True, exist_ok=True)
    digest = store_digest(graph, tile_width, with_weights)
    target = root / f"tiles-{digest}"
    if not store_valid(target):
        if target.exists():
            # invalid remnant (truncated arrays, foreign junk): treat as
            # absent, exactly like a missing checkpoint record
            shutil.rmtree(target, ignore_errors=True)
        _sweep_stale_partials(root, target.name)
        _external_sort_build(graph, tile_width, with_weights, target, bucket)
    return TileStore(target)
