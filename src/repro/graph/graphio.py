"""Edge-list I/O for CSR graphs.

Supports the plain text edge-list format used by SNAP/network-repository
(``src dst [weight]`` per line, ``#`` comments) and a fast NumPy ``.npz``
container for round-tripping generated datasets.
"""

from __future__ import annotations

import os

import numpy as np

from repro.graph.csr import CSRGraph


def save_npz(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Save a graph as a compressed ``.npz`` archive."""
    np.savez_compressed(
        path,
        indptr=graph.indptr,
        indices=graph.indices,
        weights=graph.weights,
        name=np.array(graph.name),
    )


def load_npz(path: str | os.PathLike) -> CSRGraph:
    """Load a graph saved by :func:`save_npz`."""
    with np.load(path, allow_pickle=False) as data:
        return CSRGraph(
            indptr=data["indptr"],
            indices=data["indices"],
            weights=data["weights"],
            name=str(data["name"]),
        )


def load_edge_list(
    path: str | os.PathLike,
    *,
    num_vertices: int | None = None,
    name: str | None = None,
) -> CSRGraph:
    """Parse a whitespace-separated edge list file.

    Lines starting with ``#`` or ``%`` are comments.  Each data line is
    ``src dst`` or ``src dst weight``.  Vertex ids must be non-negative
    integers; ``num_vertices`` defaults to ``max(id) + 1``.
    """
    srcs: list[int] = []
    dsts: list[int] = []
    weights: list[int] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise ValueError(f"{path}:{lineno}: expected 2 or 3 fields")
            srcs.append(int(parts[0]))
            dsts.append(int(parts[1]))
            weights.append(int(parts[2]) if len(parts) == 3 else 0)
    src = np.asarray(srcs, dtype=np.int64)
    dst = np.asarray(dsts, dtype=np.int64)
    w = np.asarray(weights, dtype=np.int64)
    if num_vertices is None:
        num_vertices = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)
    graph_name = name if name is not None else os.path.basename(os.fspath(path))
    return CSRGraph.from_edges(num_vertices, src, dst, w, name=graph_name)


def save_edge_list(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write a graph as a ``src dst weight`` text edge list."""
    src, dst, weight = graph.edge_array()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# {graph.name}: {graph.num_vertices} vertices, "
                     f"{graph.num_edges} edges\n")
        for s, d, w in zip(src.tolist(), dst.tolist(), weight.tolist()):
            handle.write(f"{s} {d} {w}\n")
