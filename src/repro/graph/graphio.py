"""Edge-list I/O for CSR graphs.

Supports the plain text edge-list format used by SNAP/network-repository
(``src dst [weight]`` per line, ``#`` comments), a fast NumPy ``.npz``
container for round-tripping generated datasets, and a memmappable
directory layout (:func:`to_memmap` / :func:`from_memmap`) that lets
many processes share one on-disk copy of a graph's arrays.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil

import numpy as np

from repro.graph.csr import CSRGraph

#: format marker written into a memmap directory's meta.json
MEMMAP_FORMAT = 1
_MEMMAP_ARRAYS = ("indptr", "indices", "weights")


def save_npz(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Save a graph as a compressed ``.npz`` archive."""
    # repro-lint: disable=RL002 -- export helper writing a caller-supplied
    # path outside any store root; stores route through to_memmap's commit
    np.savez_compressed(
        path,
        indptr=graph.indptr,
        indices=graph.indices,
        weights=graph.weights,
        name=np.array(graph.name),
    )


def load_npz(path: str | os.PathLike) -> CSRGraph:
    """Load a graph saved by :func:`save_npz`."""
    with np.load(path, allow_pickle=False) as data:
        return CSRGraph(
            indptr=data["indptr"],
            indices=data["indices"],
            weights=data["weights"],
            name=str(data["name"]),
        )


def to_memmap(graph: CSRGraph, directory: str | os.PathLike) -> pathlib.Path:
    """Write a graph as uncompressed per-array ``.npy`` files.

    The directory (``indptr.npy`` / ``indices.npy`` / ``weights.npy`` +
    ``meta.json``) is the shared-memory layout of the parallel sweep
    runner: the parent materialises a dataset once and every pool worker
    attaches the same files read-only via :func:`from_memmap`, so a
    machine holds one copy of the edge arrays (in page cache) however
    many workers simulate against it.

    The write is atomic at directory granularity: arrays land in a
    temporary sibling that is renamed into place, so a killed sweep
    never leaves a half-written graph behind.  If the target directory
    already exists it is left untouched (first writer wins).
    """
    target = pathlib.Path(directory)
    if target.exists():
        return target
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.parent / f".{target.name}.tmp.{os.getpid()}"
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir()
    try:
        np.save(tmp / "indptr.npy", graph.indptr)
        np.save(tmp / "indices.npy", graph.indices)
        np.save(tmp / "weights.npy", graph.weights)
        (tmp / "meta.json").write_text(
            json.dumps({"format": MEMMAP_FORMAT, "name": graph.name})
        )
        try:
            os.replace(tmp, target)
        except OSError:
            if not _memmap_dir_valid(target):
                raise
            shutil.rmtree(tmp)  # lost the race to a concurrent writer
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return target


def _memmap_dir_valid(directory: pathlib.Path) -> bool:
    """True when a memmap directory holds a complete record."""
    if not (directory / "meta.json").is_file():
        return False
    try:
        meta = json.loads((directory / "meta.json").read_text())
    except (OSError, ValueError):
        return False
    if meta.get("format") != MEMMAP_FORMAT:
        return False
    return all((directory / f"{a}.npy").is_file() for a in _MEMMAP_ARRAYS)


def from_memmap(directory: str | os.PathLike) -> CSRGraph:
    """Attach a graph written by :func:`to_memmap`, read-only.

    The arrays are ``numpy.memmap`` views (``mmap_mode="r"``): pages are
    shared between every process mapping the same files, and writes
    fault -- a simulation that mutated graph topology would crash
    instead of silently diverging between workers.
    """
    directory = pathlib.Path(directory)
    if not _memmap_dir_valid(directory):
        raise FileNotFoundError(
            f"{directory} is not a complete graph memmap directory"
        )
    meta = json.loads((directory / "meta.json").read_text())
    return CSRGraph(
        indptr=np.load(directory / "indptr.npy", mmap_mode="r"),
        indices=np.load(directory / "indices.npy", mmap_mode="r"),
        weights=np.load(directory / "weights.npy", mmap_mode="r"),
        name=str(meta.get("name", directory.name)),
    )


def load_edge_list(
    path: str | os.PathLike,
    *,
    num_vertices: int | None = None,
    name: str | None = None,
) -> CSRGraph:
    """Parse a whitespace-separated edge list file.

    Lines starting with ``#`` or ``%`` are comments.  Each data line is
    ``src dst`` or ``src dst weight``.  Vertex ids must be non-negative
    integers; ``num_vertices`` defaults to ``max(id) + 1``.
    """
    srcs: list[int] = []
    dsts: list[int] = []
    weights: list[int] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise ValueError(f"{path}:{lineno}: expected 2 or 3 fields")
            srcs.append(int(parts[0]))
            dsts.append(int(parts[1]))
            weights.append(int(parts[2]) if len(parts) == 3 else 0)
    src = np.asarray(srcs, dtype=np.int64)
    dst = np.asarray(dsts, dtype=np.int64)
    w = np.asarray(weights, dtype=np.int64)
    if num_vertices is None:
        num_vertices = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)
    graph_name = name if name is not None else os.path.basename(os.fspath(path))
    return CSRGraph.from_edges(num_vertices, src, dst, w, name=graph_name)


def save_edge_list(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write a graph as a ``src dst weight`` text edge list."""
    src, dst, weight = graph.edge_array()
    # repro-lint: disable=RL002 -- export helper, caller-supplied path
    # outside any store root (no concurrent-writer commit protocol needed)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# {graph.name}: {graph.num_vertices} vertices, "
                     f"{graph.num_edges} edges\n")
        for s, d, w in zip(src.tolist(), dst.tolist(), weight.tolist()):
            handle.write(f"{s} {d} {w}\n")
