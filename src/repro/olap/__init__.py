"""In-memory database workload (Sec. VIII-A, Fig. 19b).

OLAP select queries scan specific columns of row-major tables, producing
fixed-stride fine-grained access patterns -- exactly what Piccolo-FIM
gathers efficiently.  :mod:`repro.olap.table` builds a columnar/row-store
table; :mod:`repro.olap.queries` defines the four select-style queries
(Qa-Qd) and evaluates them on conventional vs. Piccolo memory.
"""

from repro.olap.table import Table, ColumnSpec
from repro.olap.queries import OLAP_QUERIES, run_query, query_speedups

__all__ = [
    "Table",
    "ColumnSpec",
    "OLAP_QUERIES",
    "run_query",
    "query_speedups",
]
