"""The four OLAP-style select queries of Fig. 19b (Qa-Qd).

Modelled after the RCNVMBench select statements the paper evaluates: each
query scans one or two columns of a row-store table, optionally
materialising a second column for the selected rows.  Queries differ in
row width (stride) and selectivity, spanning the stride range where
in-row gathering pays off.

Timing: the conventional system reads one 64 B burst per touched field
(strides >= 64 B; narrower strides share bursts); Piccolo gathers eight
fields per in-row operation.  Both run on the same
:class:`~repro.dram.system.DRAMModel`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dram.spec import DRAMConfig, default_config
from repro.dram.system import DRAMModel, FimOp


@dataclass(frozen=True)
class OLAPQuery:
    """One select-style query over the synthetic row store."""

    name: str
    num_fields: int      # row width in 8 B fields (stride = 8x this)
    selectivity: float   # fraction of rows whose payload is materialised
    description: str


OLAP_QUERIES: tuple[OLAPQuery, ...] = (
    OLAPQuery("Qa", 8, 0.10, "select payload where key < p (64 B rows)"),
    OLAPQuery("Qb", 16, 0.10, "select payload where key < p (128 B rows)"),
    OLAPQuery("Qc", 16, 0.50, "select payload, half the rows match"),
    OLAPQuery("Qd", 32, 0.02, "needle-in-haystack over wide rows"),
)


def _gather_ops(model: DRAMModel, addrs: np.ndarray) -> list[FimOp]:
    """Group a fine-grained address stream into in-row gather operations.

    Mirrors the collection-extended MSHR: elements accumulate per
    (bank, row) -- regardless of interleaving order -- and fire one
    operation per ``items_per_op`` offsets, plus a partial for leftovers.
    """
    items = model.config.fim_items_per_op
    ch, ra, _, row, _ = model.mapper.decode_many(addrs)
    global_bank, _ = model.mapper.bank_key_many(addrs)
    key = row * model.config.total_banks + global_bank
    order = np.argsort(key, kind="stable")
    ops: list[FimOp] = []
    i = 0
    n = addrs.size
    while i < n:
        j = i + 1
        while j < n and key[order[j]] == key[order[i]] and j - i < items:
            j += 1
        k = order[i]
        ops.append(
            FimOp(
                channel=int(ch[k]), rank=int(ra[k]),
                bank=int(global_bank[k]),
                row=int(row[k]), items=j - i, is_scatter=False,
            )
        )
        i = j
    return ops


def run_query(
    query: OLAPQuery,
    num_rows: int = 1 << 16,
    config: DRAMConfig | None = None,
) -> dict[str, float]:
    """Evaluate one query on conventional vs. Piccolo memory.

    Returns a dict with ``conventional_ns``, ``piccolo_ns``, ``speedup``.
    """
    from repro.olap.table import Table  # local import avoids cycle

    config = config if config is not None else default_config()
    table = Table(num_rows, query.num_fields)
    model_conv = DRAMModel(config)
    model_fim = DRAMModel(config)

    # Phase 1: scan the key column (every row).
    key_addrs = table.column_addrs(0)
    # Phase 2: materialise the payload column for selected rows.
    threshold = np.quantile(table.data[:, 0], query.selectivity)
    selected = table.select(0, lambda col: col <= threshold)
    payload_addrs = table.column_addrs(min(1, table.num_fields - 1), selected)

    conv_ns = 0.0
    fim_ns = 0.0
    for addrs in (key_addrs, payload_addrs):
        if addrs.size == 0:
            continue
        # Conventional: distinct bursts only (narrow strides share bursts).
        blocks = np.unique(addrs >> 6) << 6
        conv_ns += model_conv.phase(addrs=blocks).time_ns
        fim_ns += model_fim.phase(fim_ops=_gather_ops(model_fim, addrs)).time_ns
    return {
        "conventional_ns": conv_ns,
        "piccolo_ns": fim_ns,
        "speedup": conv_ns / fim_ns if fim_ns else float("inf"),
    }


def query_speedups(
    num_rows: int = 1 << 16, config: DRAMConfig | None = None
) -> dict[str, float]:
    """Speedup per query (the Fig. 19b bars; paper reports ~3.8x)."""
    return {
        q.name: run_query(q, num_rows, config)["speedup"] for q in OLAP_QUERIES
    }
