"""Row-major in-memory table for the OLAP workload.

A row-store table of fixed-width 8 B fields: scanning one column touches
one 8 B word per ``row_bytes`` stride, the pattern RC-NVM/SAM-style prior
work accelerates and that Piccolo-FIM serves with in-row gathers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

FIELD_BYTES = 8


@dataclass(frozen=True)
class ColumnSpec:
    """One fixed-width column of the table."""

    name: str
    index: int  # field position within the row


class Table:
    """A row-major table of 8-byte fields with generated contents.

    Args:
        num_rows: row count.
        num_fields: 8 B fields per row (row stride = 8 * num_fields).
        base_addr: placement in the simulated address space.
        seed: deterministic content generation.
    """

    def __init__(
        self,
        num_rows: int,
        num_fields: int,
        base_addr: int = 0x2000_0000,
        seed: int = 11,
    ) -> None:
        if num_rows <= 0 or num_fields <= 0:
            raise ValueError("num_rows and num_fields must be positive")
        self.num_rows = num_rows
        self.num_fields = num_fields
        self.base_addr = base_addr
        rng = np.random.default_rng(seed)
        self.data = rng.integers(
            0, 1 << 32, size=(num_rows, num_fields), dtype=np.int64
        )
        self.columns = [ColumnSpec(f"c{i}", i) for i in range(num_fields)]

    @property
    def row_bytes(self) -> int:
        return self.num_fields * FIELD_BYTES

    def column_addrs(self, field_index: int, rows: np.ndarray | None = None) -> np.ndarray:
        """Byte addresses of one column's fields (optionally row-filtered)."""
        if not 0 <= field_index < self.num_fields:
            raise IndexError("field index out of range")
        if rows is None:
            rows = np.arange(self.num_rows, dtype=np.int64)
        return (
            self.base_addr
            + rows.astype(np.int64) * self.row_bytes
            + field_index * FIELD_BYTES
        )

    def select(self, field_index: int, predicate) -> np.ndarray:
        """Row ids where ``predicate(column_value)`` holds (functional)."""
        column = self.data[:, field_index]
        mask = predicate(column)
        return np.flatnonzero(mask).astype(np.int64)
