"""PageRank in the vertex-centric model.

``Vprop`` holds each vertex's rank.  ``process`` emits the source's rank
divided by its out-degree; ``reduce`` accumulates; ``apply`` computes
``(1 - d)/|V| + d * sum``.  All vertices are active every iteration
(Sec. VII-C: "PageRank accesses all edges in the graph during each
iteration").
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.vcm import AlgorithmSpec
from repro.graph.csr import CSRGraph

DEFAULT_DAMPING = 0.85


def pagerank_spec(
    graph: CSRGraph,
    damping: float = DEFAULT_DAMPING,
    tolerance: float = 1e-7,
) -> AlgorithmSpec:
    """Build the PageRank algorithm spec for ``graph``."""
    if not 0.0 < damping < 1.0:
        raise ValueError("damping must be in (0, 1)")
    n = graph.num_vertices
    out_deg = graph.out_degrees().astype(np.float64)
    # Dangling vertices contribute nothing; guard the division.
    inv_deg = np.where(out_deg > 0, 1.0 / np.maximum(out_deg, 1.0), 0.0)
    base = (1.0 - damping) / n if n else 0.0

    def process(weights: np.ndarray, src_prop: np.ndarray, src: np.ndarray) -> np.ndarray:
        return src_prop * inv_deg[src]

    def apply(prop_old: np.ndarray, vtemp: np.ndarray, vertex_ids: np.ndarray) -> np.ndarray:
        return base + damping * vtemp

    init = np.full(n, 1.0 / n if n else 0.0, dtype=np.float64)
    return AlgorithmSpec(
        name="PR",
        graph=graph,
        process=process,
        reduce_name="add",
        apply=apply,
        init_prop=init,
        init_active=np.arange(n, dtype=np.int64),
        applies_all_vertices=True,
        uses_weights=False,
        convergence_tol=tolerance,
    )


def reference_pagerank(
    graph: CSRGraph, damping: float = DEFAULT_DAMPING, iterations: int = 40
) -> np.ndarray:
    """Dense-matrix PageRank used as a test oracle (no tiling, no engine)."""
    n = graph.num_vertices
    rank = np.full(n, 1.0 / n, dtype=np.float64)
    out_deg = graph.out_degrees().astype(np.float64)
    inv_deg = np.where(out_deg > 0, 1.0 / np.maximum(out_deg, 1.0), 0.0)
    src, dst, _ = graph.edge_array()
    base = (1.0 - damping) / n
    for _ in range(iterations):
        contrib = rank[src] * inv_deg[src]
        acc = np.zeros(n, dtype=np.float64)
        np.add.at(acc, dst, contrib)
        rank = base + damping * acc
    return rank
