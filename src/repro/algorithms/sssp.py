"""Single-source shortest path (Bellman-Ford style) in the VCM.

``Vprop`` holds the tentative distance; ``process`` proposes
``dist[u] + w(u, v)``; ``reduce``/``apply`` keep the minimum and activate
improved vertices.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.vcm import AlgorithmSpec
from repro.graph.csr import CSRGraph


def sssp_spec(graph: CSRGraph, source: int = 0) -> AlgorithmSpec:
    """Build the SSSP spec rooted at ``source`` (non-negative weights)."""
    n = graph.num_vertices
    if not 0 <= source < max(n, 1):
        raise ValueError("source out of range")
    if graph.num_edges and graph.weights.min() < 0:
        raise ValueError("SSSP requires non-negative weights")

    def process(weights: np.ndarray, src_prop: np.ndarray, src: np.ndarray) -> np.ndarray:
        return src_prop + weights

    def apply(prop_old: np.ndarray, vtemp: np.ndarray, vertex_ids: np.ndarray) -> np.ndarray:
        return np.minimum(prop_old, vtemp)

    init = np.full(n, np.inf, dtype=np.float64)
    if n:
        init[source] = 0.0
    return AlgorithmSpec(
        name="SSSP",
        graph=graph,
        process=process,
        reduce_name="min",
        apply=apply,
        init_prop=init,
        init_active=np.asarray([source], dtype=np.int64) if n else np.empty(0, np.int64),
        applies_all_vertices=False,
        uses_weights=True,
    )


def reference_sssp(graph: CSRGraph, source: int = 0) -> np.ndarray:
    """Dijkstra oracle (heap-based) returning exact distances."""
    import heapq

    n = graph.num_vertices
    dist = np.full(n, np.inf, dtype=np.float64)
    if n == 0:
        return dist
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        lo, hi = graph.indptr[u], graph.indptr[u + 1]
        for v, w in zip(graph.indices[lo:hi], graph.weights[lo:hi]):
            nd = d + float(w)
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, int(v)))
    return dist
