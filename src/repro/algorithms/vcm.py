"""Vertex-centric model (VCM) engine implementing Algorithm 1 of the paper.

The engine is *functional*: it computes exact algorithm results with NumPy,
while simultaneously recording the per-tile access structure (active
sources, traversed edges, touched destinations) that the accelerator
timing models replay through their memory hierarchies.

Semantics
---------
- Synchronous ("Jacobi") iterations: ``process`` reads the property array
  from the previous iteration; ``apply`` writes the next one.  Destination
  tiles partition the vertex set, so each vertex is applied at most once
  per iteration.
- ``reduce`` is one of the three commutative monoids used by the paper's
  workloads: ``add`` (PageRank), ``min`` (BFS/CC/SSSP), ``max`` (SSWP).
- A vertex is activated for the next iteration when ``apply`` changed its
  property (Algorithm 1 lines 8-10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.partition import TiledCSR

#: reduce-operator name -> (ufunc used for scatter-reduce, identity value)
REDUCE_OPS: dict[str, tuple[np.ufunc, float]] = {
    "add": (np.add, 0.0),
    "min": (np.minimum, np.inf),
    "max": (np.maximum, -np.inf),
}


@dataclass
class AlgorithmSpec:
    """Application-defined operators of Algorithm 1 plus initial state.

    Attributes:
        name: short algorithm name ("PR", "BFS", ...).
        graph: the input graph.
        process: ``f(weights, src_prop, src_ids) -> contributions`` --
            line 4 of Algorithm 1, vectorised over edges.
        reduce_name: "add" | "min" | "max" -- line 5.
        apply: ``f(prop_old, vtemp, vertex_ids) -> prop_new`` -- line 7,
            vectorised over vertices.
        init_prop: initial property array (``float64[|V|]``).
        init_active: initially active vertex ids.
        applies_all_vertices: True when apply must visit every vertex of a
            tile (PageRank); False when only touched destinations are
            applied (active-vertex algorithms).
        uses_weights: whether ``process`` consumes edge weights (affects
            topology traffic accounting).
        convergence_tol: treat |new - old| <= tol as unchanged (PageRank).
    """

    name: str
    graph: CSRGraph
    process: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]
    reduce_name: str
    apply: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]
    init_prop: np.ndarray
    init_active: np.ndarray
    applies_all_vertices: bool = False
    uses_weights: bool = False
    convergence_tol: float = 0.0

    def __post_init__(self) -> None:
        if self.reduce_name not in REDUCE_OPS:
            raise ValueError(f"unknown reduce op {self.reduce_name!r}")
        self.init_prop = np.asarray(self.init_prop, dtype=np.float64)
        if self.init_prop.shape != (self.graph.num_vertices,):
            raise ValueError("init_prop must have one entry per vertex")
        self.init_active = np.asarray(self.init_active, dtype=np.int64)

    @property
    def reduce_identity(self) -> float:
        return REDUCE_OPS[self.reduce_name][1]


@dataclass
class TileTrace:
    """Access record for one destination tile within one iteration.

    All arrays are vertex ids (``int64``); the accelerator models translate
    them to byte addresses.
    """

    tile_index: int
    dst_lo: int
    dst_hi: int
    #: number of sources with >= 1 edge into this tile that are active
    active_sources: int
    #: edge endpoints traversed this tile (sources ascending)
    edge_src: np.ndarray = field(repr=False)
    edge_dst: np.ndarray = field(repr=False)
    #: unique destinations touched by reduce, ascending
    touched_dst: np.ndarray = field(repr=False)
    #: destinations visited by apply (all tile vertices for PR)
    apply_dst: np.ndarray = field(repr=False)
    #: destinations whose property changed (activated for next iteration)
    changed_dst: np.ndarray = field(repr=False)

    @property
    def num_edges(self) -> int:
        return self.edge_src.size

    @property
    def width(self) -> int:
        return self.dst_hi - self.dst_lo


@dataclass
class IterationTrace:
    """Access record for one full iteration (all tiles)."""

    iteration: int
    #: number of globally active vertices at the start of the iteration
    active_vertices: int
    tiles: list[TileTrace]

    @property
    def num_edges(self) -> int:
        return sum(t.num_edges for t in self.tiles)

    @property
    def next_active(self) -> int:
        return sum(t.changed_dst.size for t in self.tiles)


class VertexCentricEngine:
    """Drives Algorithm 1 over a (possibly tiled) graph.

    Args:
        spec: the algorithm's operators and initial state.
        tile_width: destination-tile width in vertices; ``None`` disables
            tiling (a single tile spanning all vertices).
    """

    def __init__(
        self,
        spec: AlgorithmSpec,
        tile_width: int | None = None,
        edge_chunk: int | None = None,
        tile_backing: str = "memory",
        tile_store_root=None,
        tile_bucket_edges: int | None = None,
    ) -> None:
        if edge_chunk is not None and edge_chunk < 1:
            raise ValueError("edge_chunk must be >= 1")
        self.spec = spec
        self.graph = spec.graph
        width = tile_width if tile_width else self.graph.num_vertices
        # With tile_backing="disk" each tile's src/dst/weight are memmap
        # views assembled per visit in the walk below, so the sorted edge
        # copies are paged in while the tile is processed and dropped by
        # the OS afterwards -- nothing edge-sized stays resident.
        self.tiled = TiledCSR(
            self.graph,
            max(1, width),
            with_weights=spec.uses_weights,
            backing=tile_backing,
            store_root=tile_store_root,
            bucket_edges=tile_bucket_edges,
        )
        self.prop = spec.init_prop.copy()
        self.active_mask = np.zeros(self.graph.num_vertices, dtype=bool)
        self.active_mask[spec.init_active] = True
        self.iteration = 0
        #: process/reduce over at most this many edges at a time, keeping
        #: per-edge float temporaries O(chunk) (paper-scale profiles);
        #: identical results -- ufunc.at applies updates in element order
        #: regardless of the split, and every spec's ``process`` is
        #: elementwise.  None = whole tile.
        self.edge_chunk = edge_chunk
        self._reduce_ufunc, self._identity = REDUCE_OPS[spec.reduce_name]

    @property
    def num_active(self) -> int:
        return int(np.count_nonzero(self.active_mask))

    def converged(self) -> bool:
        return self.num_active == 0

    # ------------------------------------------------------------------
    def step(self) -> IterationTrace:
        """Run one synchronous iteration; returns its access trace."""
        spec = self.spec
        prop_old = self.prop
        prop_new = prop_old.copy()
        next_active = np.zeros_like(self.active_mask)
        all_active = spec.applies_all_vertices
        n_active = self.num_active
        tiles: list[TileTrace] = []

        for tile in self.tiled:
            if all_active:
                e_src, e_dst, e_w = tile.src, tile.dst, tile.weight
                active_sources = tile.src_unique.size
            else:
                mask = self.active_mask[tile.src]
                e_src = tile.src[mask]
                e_dst = tile.dst[mask]
                e_w = tile.weight[mask]
                active_sources = int(
                    np.count_nonzero(self.active_mask[tile.src_unique])
                )

            touched = np.unique(e_dst) if e_dst.size else e_dst
            vtemp = np.full(tile.width, self._identity, dtype=np.float64)
            if e_src.size:
                chunk = self.edge_chunk or e_src.size
                for lo in range(0, e_src.size, chunk):
                    sl = slice(lo, lo + chunk)
                    contributions = spec.process(
                        e_w[sl].astype(np.float64), prop_old[e_src[sl]],
                        e_src[sl],
                    )
                    self._reduce_ufunc.at(
                        vtemp, e_dst[sl] - tile.dst_lo, contributions
                    )

            if all_active:
                apply_dst = np.arange(tile.dst_lo, tile.dst_hi, dtype=np.int64)
            else:
                apply_dst = touched

            if apply_dst.size:
                old_vals = prop_old[apply_dst]
                new_vals = spec.apply(
                    old_vals, vtemp[apply_dst - tile.dst_lo], apply_dst
                )
                if spec.convergence_tol > 0.0:
                    changed_mask = (
                        np.abs(new_vals - old_vals) > spec.convergence_tol
                    )
                else:
                    changed_mask = new_vals != old_vals
                changed = apply_dst[changed_mask]
                prop_new[apply_dst] = new_vals
            else:
                changed = apply_dst

            next_active[changed] = True
            tiles.append(
                TileTrace(
                    tile_index=tile.index,
                    dst_lo=tile.dst_lo,
                    dst_hi=tile.dst_hi,
                    active_sources=active_sources,
                    edge_src=e_src,
                    edge_dst=e_dst,
                    touched_dst=touched,
                    apply_dst=apply_dst,
                    changed_dst=changed,
                )
            )

        trace = IterationTrace(
            iteration=self.iteration, active_vertices=n_active, tiles=tiles
        )
        self.prop = prop_new
        if all_active:
            # PageRank-style: all vertices stay active; convergence is
            # signalled by an empty changed set.
            if trace.next_active == 0:
                self.active_mask[:] = False
            # else: keep everything active.
        else:
            self.active_mask = next_active
        self.iteration += 1
        return trace

    def run(self, max_iterations: int = 40) -> list[IterationTrace]:
        """Run until convergence or ``max_iterations`` (paper caps at 40)."""
        return list(self.run_iter(max_iterations))

    def run_iter(self, max_iterations: int = 40) -> Iterator[IterationTrace]:
        """Lazily yield per-iteration traces until convergence or the cap."""
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        for _ in range(max_iterations):
            if self.converged():
                return
            yield self.step()
