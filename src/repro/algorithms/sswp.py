"""Single-source widest path in the VCM.

``Vprop`` holds the best bottleneck width from the source.  ``process``
proposes ``min(width[u], w(u, v))`` (the path's bottleneck); ``reduce`` /
``apply`` keep the maximum.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.vcm import AlgorithmSpec
from repro.graph.csr import CSRGraph


def sswp_spec(graph: CSRGraph, source: int = 0) -> AlgorithmSpec:
    """Build the SSWP spec rooted at ``source``."""
    n = graph.num_vertices
    if not 0 <= source < max(n, 1):
        raise ValueError("source out of range")

    def process(weights: np.ndarray, src_prop: np.ndarray, src: np.ndarray) -> np.ndarray:
        return np.minimum(src_prop, weights)

    def apply(prop_old: np.ndarray, vtemp: np.ndarray, vertex_ids: np.ndarray) -> np.ndarray:
        return np.maximum(prop_old, vtemp)

    init = np.full(n, -np.inf, dtype=np.float64)
    if n:
        init[source] = np.inf
    return AlgorithmSpec(
        name="SSWP",
        graph=graph,
        process=process,
        reduce_name="max",
        apply=apply,
        init_prop=init,
        init_active=np.asarray([source], dtype=np.int64) if n else np.empty(0, np.int64),
        applies_all_vertices=False,
        uses_weights=True,
    )


def reference_sswp(graph: CSRGraph, source: int = 0) -> np.ndarray:
    """Dijkstra-style oracle maximising the bottleneck width."""
    import heapq

    n = graph.num_vertices
    width = np.full(n, -np.inf, dtype=np.float64)
    if n == 0:
        return width
    width[source] = np.inf
    # Max-heap via negated widths.
    heap: list[tuple[float, int]] = [(-np.inf, source)]
    while heap:
        neg_w, u = heapq.heappop(heap)
        w_u = -neg_w
        if w_u < width[u]:
            continue
        lo, hi = graph.indptr[u], graph.indptr[u + 1]
        for v, ew in zip(graph.indices[lo:hi], graph.weights[lo:hi]):
            nw = min(w_u, float(ew))
            if nw > width[v]:
                width[v] = nw
                heapq.heappush(heap, (-nw, int(v)))
    return width
