"""Breadth-first search in the vertex-centric model.

``Vprop`` holds the BFS level (inf = unvisited).  ``process`` proposes
``level[u] + 1``; ``reduce`` keeps the minimum; ``apply`` accepts a smaller
level and re-activates the vertex.  Only frontier vertices are active each
iteration, which is the sparsity the paper exploits (Sec. VII-C).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.vcm import AlgorithmSpec
from repro.graph.csr import CSRGraph


def bfs_spec(graph: CSRGraph, source: int = 0) -> AlgorithmSpec:
    """Build the BFS algorithm spec rooted at ``source``."""
    n = graph.num_vertices
    if not 0 <= source < max(n, 1):
        raise ValueError("source out of range")

    def process(weights: np.ndarray, src_prop: np.ndarray, src: np.ndarray) -> np.ndarray:
        return src_prop + 1.0

    def apply(prop_old: np.ndarray, vtemp: np.ndarray, vertex_ids: np.ndarray) -> np.ndarray:
        return np.minimum(prop_old, vtemp)

    init = np.full(n, np.inf, dtype=np.float64)
    if n:
        init[source] = 0.0
    return AlgorithmSpec(
        name="BFS",
        graph=graph,
        process=process,
        reduce_name="min",
        apply=apply,
        init_prop=init,
        init_active=np.asarray([source], dtype=np.int64) if n else np.empty(0, np.int64),
        applies_all_vertices=False,
        uses_weights=False,
    )


def reference_bfs(graph: CSRGraph, source: int = 0) -> np.ndarray:
    """Queue-based BFS oracle returning levels (inf = unreachable)."""
    n = graph.num_vertices
    level = np.full(n, np.inf, dtype=np.float64)
    if n == 0:
        return level
    level[source] = 0.0
    frontier = [source]
    depth = 0.0
    while frontier:
        depth += 1.0
        next_frontier = []
        for u in frontier:
            for v in graph.neighbors(u):
                if level[v] == np.inf:
                    level[v] = depth
                    next_frontier.append(int(v))
        frontier = next_frontier
    return level
