"""Graph algorithms in the vertex-centric model of Algorithm 1.

Each algorithm defines the three application operators -- ``process``,
``reduce`` and ``apply`` -- over NumPy arrays, plus its initial state.  The
:class:`~repro.algorithms.vcm.VertexCentricEngine` drives iterations
(optionally tiled) and records, per iteration and per tile, exactly which
topology, sequential-property and random-property accesses occurred; the
accelerator models replay those records through their memory hierarchies.
"""

from repro.algorithms.vcm import AlgorithmSpec, VertexCentricEngine, IterationTrace
from repro.algorithms.ecm import EdgeCentricEngine
from repro.algorithms.pagerank import pagerank_spec
from repro.algorithms.bfs import bfs_spec
from repro.algorithms.cc import cc_spec
from repro.algorithms.sssp import sssp_spec
from repro.algorithms.sswp import sswp_spec

ALGORITHMS = {
    "PR": pagerank_spec,
    "BFS": bfs_spec,
    "CC": cc_spec,
    "SSSP": sssp_spec,
    "SSWP": sswp_spec,
}

#: Paper ordering of the evaluated algorithms (Fig. 10 et al.).
ALGORITHM_ORDER = ("PR", "BFS", "CC", "SSSP", "SSWP")


def make_algorithm(name: str, graph, **kwargs) -> AlgorithmSpec:
    """Instantiate a named algorithm spec for ``graph``."""
    try:
        factory = ALGORITHMS[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {sorted(ALGORITHMS)}"
        ) from None
    return factory(graph, **kwargs)


__all__ = [
    "AlgorithmSpec",
    "VertexCentricEngine",
    "EdgeCentricEngine",
    "IterationTrace",
    "ALGORITHMS",
    "ALGORITHM_ORDER",
    "make_algorithm",
    "pagerank_spec",
    "bfs_spec",
    "cc_spec",
    "sssp_spec",
    "sswp_spec",
]
