"""Connected components (label propagation) in the vertex-centric model.

``Vprop`` holds the component label, initialised to the vertex id; labels
propagate along edges and ``reduce``/``apply`` keep the minimum.  On
directed inputs this computes weakly connected components when run on the
symmetrised graph, or forward-reachable label minima otherwise; the
dataset registry's graphs are treated as the paper treats them (directed
edge lists fed to the same kernel).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.vcm import AlgorithmSpec
from repro.graph.csr import CSRGraph


def cc_spec(graph: CSRGraph) -> AlgorithmSpec:
    """Build the CC (label propagation) spec."""
    n = graph.num_vertices

    def process(weights: np.ndarray, src_prop: np.ndarray, src: np.ndarray) -> np.ndarray:
        return src_prop

    def apply(prop_old: np.ndarray, vtemp: np.ndarray, vertex_ids: np.ndarray) -> np.ndarray:
        return np.minimum(prop_old, vtemp)

    return AlgorithmSpec(
        name="CC",
        graph=graph,
        process=process,
        reduce_name="min",
        apply=apply,
        init_prop=np.arange(n, dtype=np.float64),
        init_active=np.arange(n, dtype=np.int64),
        applies_all_vertices=False,
        uses_weights=False,
    )


def reference_cc(graph: CSRGraph) -> np.ndarray:
    """Fixed-point label-propagation oracle (same directed semantics)."""
    n = graph.num_vertices
    labels = np.arange(n, dtype=np.float64)
    src, dst, _ = graph.edge_array()
    while True:
        proposed = labels.copy()
        np.minimum.at(proposed, dst, labels[src])
        if np.array_equal(proposed, labels):
            return labels
        labels = proposed
